// gaugenn_cli: a driver mirroring how the paper's tool is operated —
// subcommands for each pipeline stage.
//
//   gaugenn_cli crawl [category ...]      crawl + offline analysis summary
//   gaugenn_cli inspect <package>         one app: stacks, cloud APIs, models
//   gaugenn_cli bench <package>           benchmark an app's models on all devices
//   gaugenn_cli report <dir> [category ...]  write a CSV report bundle
//   gaugenn_cli diff                      temporal diff between the snapshots
//
// The global option `--telemetry-out <dir>` (before the subcommand) writes
// the run's telemetry on exit: <dir>/trace.json (Chrome trace_event format,
// load in chrome://tracing or ui.perfetto.dev), <dir>/metrics.txt and
// <dir>/metrics.json (counter/gauge/histogram dump).
//
// The global option `--threads <n>` sets the pipeline's worker-thread count
// (0 = serial). The dataset is identical for any value; the default is the
// hardware concurrency.
//
// The global option `--workers <n>` scales the crawl past one process: the
// CLI becomes a coordinator that forks n local worker processes and shards
// the app chart over them (DESIGN.md §15). The dataset digest is identical
// to a serial run for any worker count, and `--journal/--resume` compose —
// the coordinator owns the journal. `--worker-fault-plan <spec>` injects
// deterministic worker faults (kill-after=W:N; drop-result=W:N;
// stall=W:N:SECONDS) for testing the requeue/steal machinery.
//
// Crash-safe runs (DESIGN.md §10): `--journal <file>` makes every completed
// app durable as the crawl progresses; after a crash or Ctrl-C, rerunning
// with `--journal <file> --resume` replays the journal and continues from
// the first unprocessed app. `--digest` prints the dataset digest after a
// crawl (resume verification), and `--crash-plan <spec>` injects
// deterministic crashes into the journal path (testing; see
// core::parse_crash_plan for the grammar).
//
// Everything runs against the calibrated synthetic store.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "android/detect.hpp"
#include "core/analysis.hpp"
#include "core/bundle.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/runtime.hpp"
#include "device/soc.hpp"
#include "formats/plugin.hpp"
#include "formats/validate.hpp"
#include "nn/checksum.hpp"
#include "nn/describe.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace gauge;

int usage() {
  std::fprintf(stderr,
               "usage: gaugenn_cli [--telemetry-out <dir>] [--threads <n>] "
               "[--workers <n>] [--worker-fault-plan <spec>] "
               "[--journal <file>] [--resume] [--digest] "
               "[--crash-plan <spec>] "
               "<crawl [category ...] | inspect <pkg> | "
               "describe <pkg> | bench <pkg> | report <dir> [category ...] | "
               "diff | formats>\n");
  return 2;
}

// --threads override (nullopt = PipelineOptions default).
std::optional<unsigned> g_threads;
// --workers: 0 = in-process executor; >0 forks that many worker processes.
unsigned g_workers = 0;
core::WorkerFaultPlan g_worker_faults;
// Crash-safety globals: --journal/--resume/--digest/--crash-plan, plus the
// SIGINT flag the pipeline polls for graceful cancellation.
std::string g_journal;
bool g_resume = false;
bool g_digest = false;
core::CrashPlan g_crash_plan;
std::atomic<bool> g_interrupted{false};

extern "C" void handle_sigint(int) {
  g_interrupted.store(true);
  // Restore the default disposition so a second Ctrl-C kills immediately —
  // exactly the crash the journal is designed to survive.
  std::signal(SIGINT, SIG_DFL);
}

core::PipelineOptions pipeline_options() {
  core::PipelineOptions options;
  if (g_threads) options.threads = *g_threads;
  options.workers = g_workers;
  options.worker_faults = g_worker_faults;
  if (g_workers > 0) options.worker_launcher = core::process_worker_launcher();
  options.journal_path = g_journal;
  options.resume = g_resume;
  options.crash_plan = g_crash_plan;
  options.cancel = &g_interrupted;
  return options;
}

const android::PlayStore& play() {
  static const android::PlayStore kPlay{android::StoreConfig{}};
  return kPlay;
}

// Appendix-Table-5 view straight from the plugin registry: which frameworks
// gaugeNN can parse/serialise vs. candidate-match only, and the runtime
// markers the store plants for each.
int cmd_formats() {
  const auto& registry = formats::PluginRegistry::instance();
  util::Table table{{"framework", "support", "extensions", "runtime markers"}};
  for (const auto& entry : registry.format_table()) {
    const auto* plugin = registry.find(entry.framework);
    std::vector<std::string> markers;
    if (plugin != nullptr) {
      markers = plugin->native_libs();
      markers.insert(markers.end(), plugin->dex_markers().begin(),
                     plugin->dex_markers().end());
    }
    table.add_row({registry.framework_name(entry.framework),
                   plugin != nullptr ? "parse + serialise" : "candidate only",
                   util::join(entry.extensions, " "),
                   util::join(markers, " ")});
  }
  util::print_section("Format plugin registry", table.render());
  return 0;
}

int cmd_crawl(const std::vector<std::string>& categories) {
  auto options = pipeline_options();
  options.categories = categories;
  const auto data = core::run_pipeline(play(), options);
  if (data.interrupted) {
    const std::string workers_flag =
        g_workers > 0 ? util::format(" --workers %u", g_workers) : "";
    std::fprintf(stderr,
                 "interrupted: %zu apps in dataset so far; resume with\n"
                 "  gaugenn_cli --journal %s%s --resume crawl%s%s\n",
                 data.apps_crawled(), g_journal.c_str(), workers_flag.c_str(),
                 categories.empty() ? "" : " ",
                 util::join(categories, " ").c_str());
    return 130;  // 128 + SIGINT, the conventional interrupted-exit code
  }
  util::print_section("Dataset", core::table2_dataset(data).render());
  util::print_section("Frameworks", core::fig4_framework_totals(data).render());
  util::print_section(
      "Uniqueness",
      core::sec45_uniqueness(core::analyze_uniqueness(data)).render());
  if (g_digest) {
    std::printf("dataset digest: 0x%016llx\n",
                static_cast<unsigned long long>(core::dataset_digest(data)));
  }
  return 0;
}

int cmd_inspect(const std::string& package) {
  const auto* entry = play().find(package);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown package: %s\n", package.c_str());
    return 1;
  }
  auto pkg = play().download(package, android::Snapshot::Apr2021, "SM-G977B");
  if (!pkg.ok()) {
    std::fprintf(stderr, "download failed: %s\n", pkg.error().c_str());
    return 1;
  }
  auto apk = android::Apk::open(pkg.value().apk);
  if (!apk.ok()) {
    std::fprintf(stderr, "bad apk: %s\n", apk.error().c_str());
    return 1;
  }
  std::printf("%s (%s) — %lld installs, rating %.1f\n", entry->title.c_str(),
              entry->category.c_str(), static_cast<long long>(entry->installs),
              entry->rating);
  for (const auto& hit : android::detect_ml_stacks(apk.value())) {
    std::printf("  ML stack: %-8s (%s)\n", android::ml_stack_name(hit.stack),
                hit.evidence.c_str());
  }
  for (const auto& hit : android::detect_cloud_apis(apk.value())) {
    std::printf("  cloud API: %s\n", android::cloud_provider_name(hit.provider));
  }
  for (const auto& name : apk.value().entry_names()) {
    if (!formats::is_candidate_model_file(name)) continue;
    auto data = apk.value().read(name);
    const auto framework =
        data.ok() ? formats::validate_signature(name, data.value())
                  : std::nullopt;
    std::printf("  model file: %-50s %s\n", name.c_str(),
                framework ? formats::framework_name(*framework)
                          : "FAILED VALIDATION");
  }
  return 0;
}

int cmd_bench(const std::string& package) {
  auto options = pipeline_options();
  const auto* entry = play().find(package);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown package: %s\n", package.c_str());
    return 1;
  }
  options.categories = {entry->category};
  const auto data = core::run_pipeline(play(), options);

  util::Table table{{"model", "task", "device", "latency ms", "energy mJ"}};
  for (const auto& model : data.models) {
    if (model.app_package != package) continue;
    for (const auto& dev : device::all_devices()) {
      const auto r =
          device::simulate_inference(dev, model.trace(), {}, model.checksum);
      table.add_row({std::string{util::basename(model.file_path)},
                     model.task, dev.name,
                     util::Table::num(r.latency_s * 1e3, 3),
                     util::Table::num(r.soc_energy_j * 1e3, 3)});
    }
  }
  if (table.rows() == 0) {
    std::printf("no extractable models in %s\n", package.c_str());
    return 0;
  }
  util::print_section("On-device benchmark: " + package, table.render());
  return 0;
}

int cmd_describe(const std::string& package) {
  // Netron-style layer dump of every model inside an app (§4.4 manual
  // inspection).
  const auto* entry = play().find(package);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown package: %s\n", package.c_str());
    return 1;
  }
  auto options = pipeline_options();
  options.categories = {entry->category};
  const auto data = core::run_pipeline(play(), options);
  bool any = false;
  for (const auto& model : data.models) {
    if (model.app_package != package) continue;
    any = true;
    // Re-materialise the graph from the store by matching the checksum in
    // the unique pool (cheap: the APK bytes are deterministic).
    for (const auto& unique : play().unique_models()) {
      const auto graph = play().build_unique_model(unique.id);
      if (nn::model_checksum(graph) == model.checksum) {
        util::print_section(model.file_path, nn::describe(graph));
        break;
      }
    }
  }
  if (!any) std::printf("no extractable models in %s\n", package.c_str());
  return 0;
}

int cmd_report(const std::string& directory,
               const std::vector<std::string>& categories) {
  auto options = pipeline_options();
  options.categories = categories;
  const auto data = core::run_pipeline(play(), options);
  const auto written = core::write_report_bundle(data, directory);
  if (!written.ok()) {
    std::fprintf(stderr, "report failed: %s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote %d artifacts to %s/\n", written.value(), directory.c_str());
  return 0;
}

int cmd_diff() {
  auto o20 = pipeline_options();
  auto o21 = pipeline_options();
  o20.snapshot = android::Snapshot::Feb2020;
  const auto d20 = core::run_pipeline(play(), o20);
  const auto d21 = core::run_pipeline(play(), o21);
  util::print_section("Temporal diff (Feb'20 -> Apr'21)",
                      core::fig5_temporal(d20, d21).render());
  return 0;
}

}  // namespace

int run_command(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (cmd == "crawl") {
    return cmd_crawl({args.begin() + 1, args.end()});
  }
  if (cmd == "inspect" && args.size() == 2) return cmd_inspect(args[1]);
  if (cmd == "describe" && args.size() == 2) return cmd_describe(args[1]);
  if (cmd == "bench" && args.size() == 2) return cmd_bench(args[1]);
  if (cmd == "report" && args.size() >= 2) {
    return cmd_report(args[1], {args.begin() + 2, args.end()});
  }
  if (cmd == "diff") return cmd_diff();
  if (cmd == "formats") return cmd_formats();
  return usage();
}

int main(int argc, char** argv) {
  std::string telemetry_dir;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-out") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') return usage();
      g_threads = static_cast<unsigned>(value);
      continue;
    }
    if (std::strcmp(argv[i], "--workers") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') return usage();
      g_workers = static_cast<unsigned>(value);
      continue;
    }
    if (std::strcmp(argv[i], "--worker-fault-plan") == 0) {
      if (i + 1 >= argc) return usage();
      auto plan = core::parse_worker_fault_plan(argv[++i]);
      if (!plan.ok()) {
        std::fprintf(stderr, "bad --worker-fault-plan: %s\n",
                     plan.error().c_str());
        return 2;
      }
      g_worker_faults = plan.value();
      continue;
    }
    if (std::strcmp(argv[i], "--journal") == 0) {
      if (i + 1 >= argc) return usage();
      g_journal = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      g_resume = true;
      continue;
    }
    if (std::strcmp(argv[i], "--digest") == 0) {
      g_digest = true;
      continue;
    }
    if (std::strcmp(argv[i], "--crash-plan") == 0) {
      if (i + 1 >= argc) return usage();
      auto plan = core::parse_crash_plan(argv[++i]);
      if (!plan.ok()) {
        std::fprintf(stderr, "bad --crash-plan: %s\n", plan.error().c_str());
        return 2;
      }
      g_crash_plan = plan.value();
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (g_resume && g_journal.empty()) {
    std::fprintf(stderr, "--resume requires --journal <file>\n");
    return 2;
  }

  // Graceful Ctrl-C: the pipeline polls the flag, drains in-flight apps,
  // flushes the journal and returns the partial dataset. A second SIGINT
  // falls back to the default handler (immediate death — which the journal
  // is designed to survive anyway).
  std::signal(SIGINT, handle_sigint);

  int code = 0;
  try {
    code = run_command(args);
  } catch (const core::CrashInjected& crash) {
    // Stands in for SIGKILL in tests and the check.sh smoke: skip all
    // orderly teardown output, leave the journal exactly as a crash would.
    std::fprintf(stderr, "%s\n", crash.what());
    return 70;  // EX_SOFTWARE
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fatal: %s\n", error.what());
    return 1;
  }

  if (!telemetry_dir.empty()) {
    const auto& registry = telemetry::current_registry();
    if (auto written = telemetry::write_telemetry(registry, telemetry_dir);
        !written.ok()) {
      std::fprintf(stderr, "telemetry export failed: %s\n",
                   written.error().c_str());
      return code != 0 ? code : 1;
    }
    std::printf("telemetry written to %s/{trace.json,metrics.txt,metrics.json}\n",
                telemetry_dir.c_str());
  }
  return code;
}
