// Optimisation advisor: given a model, explore the deployment knobs the
// paper studies (Sec. 6) — thread count/affinity, batch size and backend —
// on a chosen device, and print the best setting per objective.
//
// Usage:  ./build/examples/optimization_advisor [device] [archetype]
//         e.g. ./build/examples/optimization_advisor Q845 fssd
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "device/latency.hpp"
#include "nn/checksum.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gauge;

  const std::string device_name = argc > 1 ? argv[1] : "Q845";
  nn::ZooSpec spec;
  spec.archetype = argc > 2 ? argv[2] : "mobilenet";
  spec.resolution = 64;
  spec.seed = 4;
  const device::Device dev = device::make_device(device_name);
  const nn::Graph model = nn::build_model(spec);
  const auto trace = nn::trace_model(model);
  const std::string key = nn::model_checksum(model);

  std::printf("advising for '%s' on %s (%s)\n\n", spec.archetype.c_str(),
              dev.name.c_str(), dev.soc.name.c_str());

  // --- thread sweep ---
  util::Table threads{{"setup", "latency ms", "throughput/s"}};
  struct Best {
    std::string label;
    double value = 0.0;
  };
  Best best_latency{"", 1e300};
  for (const device::ThreadConfig& tc :
       std::vector<device::ThreadConfig>{{1, 0}, {2, 0}, {4, 0}, {8, 0},
                                         {4, 2}, {4, 4}}) {
    device::RunConfig config;
    config.threads = tc;
    const auto r = device::simulate_inference(dev, trace.value(), config, key);
    threads.add_row({tc.label(), util::Table::num(r.latency_s * 1e3, 3),
                     util::Table::num(r.throughput_ips, 1)});
    if (r.latency_s < best_latency.value) {
      best_latency = {tc.label(), r.latency_s};
    }
  }
  util::print_section("Thread count & affinity", threads.render());

  // --- batch sweep (throughput-oriented deployments) ---
  util::Table batches{{"batch", "latency ms", "throughput/s"}};
  Best best_tput{"", 0.0};
  for (int b : {1, 2, 5, 10, 25}) {
    device::RunConfig config;
    config.batch = b;
    const auto r = device::simulate_inference(dev, trace.value(), config, key);
    batches.add_row({std::to_string(b), util::Table::num(r.latency_s * 1e3, 3),
                     util::Table::num(r.throughput_ips, 1)});
    if (r.throughput_ips > best_tput.value) {
      best_tput = {std::to_string(b), r.throughput_ips};
    }
  }
  util::print_section("Batch size", batches.render());

  // --- backend sweep ---
  util::Table backends{{"backend", "available", "latency ms", "energy mJ",
                        "MFLOP/sW", "fallback"}};
  Best best_eff{"", 0.0};
  for (int b = 0; b < static_cast<int>(device::Backend::kCount); ++b) {
    const auto backend = static_cast<device::Backend>(b);
    if (!device::backend_available(backend, dev)) {
      backends.add_row({device::backend_name(backend), "no", "-", "-", "-", "-"});
      continue;
    }
    device::RunConfig config;
    config.backend = backend;
    const auto r = device::simulate_inference(dev, trace.value(), config, key);
    backends.add_row({device::backend_name(backend), "yes",
                      util::Table::num(r.latency_s * 1e3, 3),
                      util::Table::num(r.soc_energy_j * 1e3, 3),
                      util::Table::num(r.efficiency_mflops_sw, 0),
                      r.cpu_fallback ? "yes" : "no"});
    if (r.efficiency_mflops_sw > best_eff.value) {
      best_eff = {device::backend_name(backend), r.efficiency_mflops_sw};
    }
  }
  util::print_section("Backend", backends.render());

  // --- bottleneck breakdown (top cost layers on the CPU baseline) ---
  auto breakdown = device::layer_breakdown(dev, trace.value());
  std::sort(breakdown.begin(), breakdown.end(),
            [](const device::LayerTiming& a, const device::LayerTiming& b) {
              return a.seconds > b.seconds;
            });
  double total = 0.0;
  for (const auto& timing : breakdown) total += timing.seconds;
  util::Table hot{{"layer", "type", "share of time", "bound by"}};
  for (std::size_t i = 0; i < std::min<std::size_t>(breakdown.size(), 5); ++i) {
    const auto& t = breakdown[i];
    hot.add_row({t.name, nn::layer_type_name(t.type),
                 util::Table::pct(t.seconds / total),
                 t.memory_bound ? "memory" : "compute"});
  }
  util::print_section("Hottest layers (CPU baseline)", hot.render());

  std::printf(
      "\nrecommendation: threads=%s for latency, batch=%s for throughput, "
      "backend=%s for energy efficiency\n",
      best_latency.label.c_str(), best_tput.label.c_str(),
      best_eff.label.c_str());
  return 0;
}
