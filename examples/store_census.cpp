// Store census: crawl a slice of the synthetic Play Store, run the full
// gaugeNN pipeline and print the offline analyses — a miniature of the
// paper's Sec. 4.
//
// Usage:  ./build/examples/store_census [category ...]
//         (defaults to communication, photography and finance)
#include <cstdio>

#include "core/analysis.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace gauge;
  util::set_log_level(util::LogLevel::Info);

  core::PipelineOptions options;
  for (int i = 1; i < argc; ++i) options.categories.emplace_back(argv[i]);
  if (options.categories.empty()) {
    options.categories = {"communication", "photography", "finance"};
  }

  const android::PlayStore play{android::StoreConfig{}};
  const auto dataset = core::run_pipeline(play, options);

  util::print_section("Dataset", core::table2_dataset(dataset).render());
  util::print_section("Frameworks",
                      core::fig4_framework_totals(dataset).render());
  util::print_section("Models per category",
                      core::fig4_frameworks(dataset, 1).render());
  util::print_section("Tasks", core::table3_tasks(dataset).render());
  util::print_section("Layer composition",
                      core::fig6_layer_composition(dataset).render());
  util::print_section(
      "Uniqueness",
      core::sec45_uniqueness(core::analyze_uniqueness(dataset)).render());
  util::print_section(
      "Optimisations",
      core::sec61_optimisations(core::analyze_optimisations(dataset)).render());
  util::print_section("Cloud APIs", core::fig15_cloud(dataset, 1).render());
  return 0;
}
