// Device profiler: run one model through the full master-slave benchmark
// harness (Fig. 2/3 of the paper) on every Table 1 device — adb push, USB
// power cut, on-device daemon with warm-ups, Monsoon energy capture and the
// TCP completion message (a real loopback socket).
//
// Usage:  ./build/examples/device_profiler [archetype] [resolution]
//             [--job-deadline-s <s>] [--push-retries <n>]
//             [--fault-plan "<spec>"]
//         e.g. ./build/examples/device_profiler unet 96
//         e.g. ./build/examples/device_profiler mobilenet 64 \
//                --job-deadline-s 0.5 --fault-plan "drop-push=1;kill-daemon"
//
// The fault-plan grammar (see harness/fault.hpp) injects the field failures
// the recovery layer handles: dropped pushes, dead daemons, delayed
// completion messages, reconnect-refusing hubs, uncut power rails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "harness/workflow.hpp"
#include "nn/checksum.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gauge;

  harness::HarnessOptions options;
  harness::FaultPlan faults;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--job-deadline-s") == 0 && i + 1 < argc) {
      options.job_deadline_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--push-retries") == 0 && i + 1 < argc) {
      options.push_retry.max_attempts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      auto plan = harness::parse_fault_plan(argv[++i]);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.error().c_str());
        return 2;
      }
      faults = std::move(plan).take();
    } else {
      positional.push_back(argv[i]);
    }
  }

  nn::ZooSpec spec;
  spec.archetype = !positional.empty() ? positional[0] : "mobilenet";
  spec.resolution = positional.size() > 1 ? std::atoi(positional[1]) : 64;
  spec.seed = 99;
  const nn::Graph model = nn::build_model(spec);
  auto trace = nn::trace_model(model);
  if (!trace.ok()) {
    std::fprintf(stderr, "bad model: %s\n", trace.error().c_str());
    return 1;
  }
  std::printf("profiling '%s' (%.2f MFLOPs, %lld params) across devices\n\n",
              spec.archetype.c_str(),
              static_cast<double>(trace.value().total_flops) / 1e6,
              static_cast<long long>(trace.value().total_params));

  util::Table table{{"device", "mean ms", "p95 ms", "energy/inf (Monsoon)",
                     "mean W", "done msg"}};
  for (const auto& dev : device::all_devices()) {
    harness::UsbHub hub{1};
    hub.inject_faults(faults);
    harness::DeviceAgent agent{dev, /*seed=*/1234};
    agent.inject_faults(faults);
    harness::BenchmarkMaster master{hub, 0, agent, options};

    harness::BenchmarkJob job;
    job.job_id = "profile-" + dev.name;
    job.model_key = nn::model_checksum(model);
    job.trace = trace.value();
    job.warmup_iterations = 5;
    job.iterations = 30;
    job.sleep_between_s = 0.02;

    const auto outcomes = master.run_jobs_detailed({job});
    const auto& outcome = outcomes.front();
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed at %s: %s (%s)\n", dev.name.c_str(),
                   outcome.failure_stage.c_str(),
                   outcome.result.error().c_str(),
                   outcome.recovery_action.c_str());
      continue;
    }
    const auto& result = outcome.result.value();
    std::vector<double> ms;
    for (double s : result.job.latencies_s) ms.push_back(s * 1e3);
    table.add_row(
        {dev.name, util::Table::num(util::mean(ms), 3),
         util::Table::num(util::percentile(ms, 95.0), 3),
         util::Table::num(result.measured_energy_per_inference_j * 1e3, 3) +
             " mJ",
         util::Table::num(result.monsoon_mean_power_w),
         result.done_message});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
