// Device profiler: run one model through the full master-slave benchmark
// harness (Fig. 2/3 of the paper) on every Table 1 device — adb push, USB
// power cut, on-device daemon with warm-ups, Monsoon energy capture and the
// TCP completion message (a real loopback socket).
//
// Usage:  ./build/examples/device_profiler [archetype] [resolution]
//         e.g. ./build/examples/device_profiler unet 96
#include <cstdio>
#include <cstdlib>

#include "harness/workflow.hpp"
#include "nn/checksum.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gauge;

  nn::ZooSpec spec;
  spec.archetype = argc > 1 ? argv[1] : "mobilenet";
  spec.resolution = argc > 2 ? std::atoi(argv[2]) : 64;
  spec.seed = 99;
  const nn::Graph model = nn::build_model(spec);
  auto trace = nn::trace_model(model);
  if (!trace.ok()) {
    std::fprintf(stderr, "bad model: %s\n", trace.error().c_str());
    return 1;
  }
  std::printf("profiling '%s' (%.2f MFLOPs, %lld params) across devices\n\n",
              spec.archetype.c_str(),
              static_cast<double>(trace.value().total_flops) / 1e6,
              static_cast<long long>(trace.value().total_params));

  util::Table table{{"device", "mean ms", "p95 ms", "energy/inf (Monsoon)",
                     "mean W", "done msg"}};
  for (const auto& dev : device::all_devices()) {
    harness::UsbHub hub{1};
    harness::DeviceAgent agent{dev, /*seed=*/1234};
    harness::BenchmarkMaster master{hub, 0, agent};

    harness::BenchmarkJob job;
    job.job_id = "profile-" + dev.name;
    job.model_key = nn::model_checksum(model);
    job.trace = trace.value();
    job.warmup_iterations = 5;
    job.iterations = 30;
    job.sleep_between_s = 0.02;

    auto result = master.run_job(job);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", dev.name.c_str(),
                   result.error().c_str());
      continue;
    }
    std::vector<double> ms;
    for (double s : result.value().job.latencies_s) ms.push_back(s * 1e3);
    table.add_row(
        {dev.name, util::Table::num(util::mean(ms), 3),
         util::Table::num(util::percentile(ms, 95.0), 3),
         util::Table::num(result.value().measured_energy_per_inference_j * 1e3,
                          3) +
             " mJ",
         util::Table::num(result.value().monsoon_mean_power_w),
         result.value().done_message});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
