// gaugenn_serve: the inference service binary (DESIGN.md §11). Loads the
// nn::zoo population, binds a loopback TCP port and serves the line-framed
// inference protocol with dynamic batching, per-request backend selection,
// admission control and SLO accounting.
//
//   gaugenn_serve [--port N] [--device S21] [--models a,b,c] [--batch N]
//                 [--queue-cap N] [--slo-ms X] [--exec-threads N]
//                 [--conn-workers N] [--time-scale X] [--real]
//                 [--real-backend auto|reference|optimised|quantised]
//                 [--fault-plan SPEC] [--breaker-threshold N]
//                 [--breaker-cooldown-ms X] [--watchdog-budget-ms X]
//                 [--duration-s N] [--telemetry-out <dir>]
//
// --port 0 (default) binds an ephemeral port; the bound port is printed as
//   "listening on 127.0.0.1:<port>" so scripts can connect.
// --batch 1 disables coalescing (the bench_serve A/B baseline).
// --time-scale maps the device model's simulated seconds onto wall-clock
//   sleeps (execution realism without real hardware); --real runs the
//   interpreter instead.
// --real-backend picks the interpreter's kernel backend under --real:
//   "auto" (default) mirrors each lane's device backend, a fixed name forces
//   one nn::kernels backend for every lane.
// --fault-plan injects deterministic runtime failures (serve/fault.hpp
//   grammar), e.g. "kill-backend=GPU:50" kills the GPU after its 50th
//   batch — the breaker opens, traffic redispatches to the CPU lane, and
//   the shutdown report's availability lines show the recovery.
// --breaker-threshold / --breaker-cooldown-ms / --watchdog-budget-ms tune
//   the recovery machinery (DESIGN.md §16).
// --duration-s 0 (default) serves until SIGINT/SIGTERM. On shutdown the
//   per-model SLO report (serve/slo.hpp) is printed to stdout and, with
//   --telemetry-out, the full registry is exported.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/slo.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "util/strings.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: gaugenn_serve [--port N] [--device NAME] "
               "[--models a,b,c] [--batch N] [--queue-cap N] [--slo-ms X] "
               "[--exec-threads N] [--conn-workers N] [--time-scale X] "
               "[--real] [--real-backend auto|reference|optimised|quantised] "
               "[--fault-plan SPEC] [--breaker-threshold N] "
               "[--breaker-cooldown-ms X] [--watchdog-budget-ms X] "
               "[--duration-s N] [--telemetry-out <dir>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gauge;

  serve::ServeOptions options;
  double duration_s = 0.0;
  std::string telemetry_dir;

  for (int i = 1; i < argc; ++i) {
    const auto next_value = [&](double* out) {
      if (i + 1 >= argc) return false;
      const auto parsed = util::parse_double(argv[++i]);
      if (!parsed) return false;
      *out = *parsed;
      return true;
    };
    double value = 0.0;
    if (std::strcmp(argv[i], "--port") == 0 && next_value(&value)) {
      options.port = static_cast<std::uint16_t>(value);
    } else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      options.device = argv[++i];
    } else if (std::strcmp(argv[i], "--models") == 0 && i + 1 < argc) {
      options.models = util::split(argv[++i], ',');
    } else if (std::strcmp(argv[i], "--batch") == 0 && next_value(&value)) {
      options.max_batch = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--queue-cap") == 0 && next_value(&value)) {
      options.queue_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--slo-ms") == 0 && next_value(&value)) {
      options.default_slo_ms = value;
    } else if (std::strcmp(argv[i], "--exec-threads") == 0 &&
               next_value(&value)) {
      options.exec_threads = static_cast<unsigned>(value);
    } else if (std::strcmp(argv[i], "--conn-workers") == 0 &&
               next_value(&value)) {
      options.conn_workers = static_cast<unsigned>(value);
    } else if (std::strcmp(argv[i], "--time-scale") == 0 &&
               next_value(&value)) {
      options.time_scale = value;
    } else if (std::strcmp(argv[i], "--real") == 0) {
      options.real_exec = true;
    } else if (std::strcmp(argv[i], "--real-backend") == 0 && i + 1 < argc) {
      options.real_backend = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      options.fault_plan = argv[++i];
    } else if (std::strcmp(argv[i], "--breaker-threshold") == 0 &&
               next_value(&value)) {
      options.breaker_threshold = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--breaker-cooldown-ms") == 0 &&
               next_value(&value)) {
      options.breaker_cooldown_ms = value;
    } else if (std::strcmp(argv[i], "--watchdog-budget-ms") == 0 &&
               next_value(&value)) {
      options.watchdog_budget_ms = value;
    } else if (std::strcmp(argv[i], "--duration-s") == 0 &&
               next_value(&value)) {
      duration_s = value;
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      telemetry_dir = argv[++i];
    } else {
      return usage();
    }
  }

  auto server = serve::InferenceServer::start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "gaugenn_serve: start failed: %s\n",
                 server.error().c_str());
    return 1;
  }
  std::printf("gaugenn_serve: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.value()->port()));
  const std::string exec_desc =
      options.real_exec ? "interpreter/" + options.real_backend
                        : "device-model";
  std::printf("gaugenn_serve: device=%s batch=%d models=%s exec=%s\n",
              options.device.c_str(), options.max_batch,
              util::join(server.value()->model_names(), ",").c_str(),
              exec_desc.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
    if (duration_s > 0 &&
        std::chrono::duration<double>{std::chrono::steady_clock::now() - start}
                .count() >= duration_s) {
      break;
    }
  }

  server.value()->shutdown();
  const auto& registry = telemetry::current_registry();
  std::printf("%s", serve::slo_report(registry).c_str());
  if (!telemetry_dir.empty()) {
    if (auto written = telemetry::write_telemetry(registry, telemetry_dir);
        !written.ok()) {
      std::fprintf(stderr, "telemetry export failed: %s\n",
                   written.error().c_str());
      return 1;
    }
    std::printf("telemetry written to %s/\n", telemetry_dir.c_str());
  }
  return 0;
}
