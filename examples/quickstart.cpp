// Quickstart: the gaugeNN public API end to end on a single app.
//
//   1. build a DNN (model zoo) and run a real inference on it,
//   2. serialise it into a TFLite-style file and package it into an APK,
//   3. point the extraction + validation + analysis pipeline at the bytes,
//   4. benchmark the model on a simulated device, with energy.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "android/apk.hpp"
#include "core/taskclassify.hpp"
#include "device/latency.hpp"
#include "device/soc.hpp"
#include "formats/tfl.hpp"
#include "formats/validate.hpp"
#include "nn/checksum.hpp"
#include "nn/describe.hpp"
#include "nn/interp.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"

int main() {
  using namespace gauge;

  // 1. Build a face detector and run an inference.
  nn::ZooSpec spec;
  spec.archetype = "blazeface";
  spec.resolution = 64;
  spec.seed = 2021;
  spec.name = "face_detection_blazeface_demo.tflite";
  const nn::Graph model = nn::build_model(spec);
  std::printf("%s\n", nn::describe(model).c_str());

  nn::Interpreter interpreter{model, /*threads=*/4};
  auto inputs = nn::random_inputs(model, /*seed=*/7);
  auto outputs = interpreter.run(inputs.value());
  if (!outputs.ok()) {
    std::fprintf(stderr, "inference failed: %s\n", outputs.error().c_str());
    return 1;
  }
  std::printf("inference ok: output %s, peak activations %lld bytes\n",
              outputs.value()[0].shape().str().c_str(),
              static_cast<long long>(interpreter.stats().peak_activation_bytes));

  // 2. Serialise and package into an APK.
  const util::Bytes tfl = formats::write_tfl(model);
  android::ApkSpec apk_spec;
  apk_spec.manifest.package = "com.example.quickstart";
  apk_spec.dex.classes = {"Lcom/example/quickstart/MainActivity;",
                          "Lorg/tensorflow/lite/Interpreter;"};
  apk_spec.native_libs = {"libtensorflowlite_jni.so"};
  apk_spec.files.emplace_back("assets/models/" + spec.name, tfl);
  const util::Bytes apk_bytes = android::build_apk(apk_spec);
  std::printf("packaged %s: %zu bytes\n", apk_spec.manifest.package.c_str(),
              apk_bytes.size());

  // 3. Extract, validate and analyse like the pipeline does.
  auto apk = android::Apk::open(apk_bytes);
  for (const auto& name : apk.value().entry_names()) {
    if (!formats::is_candidate_model_file(name)) continue;
    auto data = apk.value().read(name);
    const auto framework = formats::validate_signature(name, data.value());
    if (!framework) continue;
    auto graph = formats::read_tfl(data.value());
    auto trace = nn::trace_model(graph.value());
    const std::string task = core::classify_task(name, trace.value());
    std::printf("extracted %s: framework=%s task='%s' %.2f MFLOPs, %lld params, "
                "md5=%s\n",
                name.c_str(), formats::framework_name(*framework), task.c_str(),
                static_cast<double>(trace.value().total_flops) / 1e6,
                static_cast<long long>(trace.value().total_params),
                nn::model_checksum(graph.value()).substr(0, 12).c_str());

    // 4. Benchmark across device tiers.
    for (const auto& dev : device::all_devices()) {
      const auto result = device::simulate_inference(
          dev, trace.value(), {}, nn::model_checksum(graph.value()));
      std::printf("  %-5s latency %.3f ms, energy %.3f mJ, %.0f MFLOP/sW\n",
                  dev.name.c_str(), result.latency_s * 1e3,
                  result.soc_energy_j * 1e3, result.efficiency_mflops_sw);
    }
  }
  return 0;
}
