file(REMOVE_RECURSE
  "CMakeFiles/test_android.dir/android/apk_test.cpp.o"
  "CMakeFiles/test_android.dir/android/apk_test.cpp.o.d"
  "CMakeFiles/test_android.dir/android/playstore_test.cpp.o"
  "CMakeFiles/test_android.dir/android/playstore_test.cpp.o.d"
  "test_android"
  "test_android.pdb"
  "test_android[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
