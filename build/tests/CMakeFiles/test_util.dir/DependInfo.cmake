
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bytes_test.cpp" "tests/CMakeFiles/test_util.dir/util/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/bytes_test.cpp.o.d"
  "/root/repo/tests/util/hash_test.cpp" "tests/CMakeFiles/test_util.dir/util/hash_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/hash_test.cpp.o.d"
  "/root/repo/tests/util/result_log_test.cpp" "tests/CMakeFiles/test_util.dir/util/result_log_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/result_log_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/test_util.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/strings_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gauge_util.dir/DependInfo.cmake"
  "/root/repo/build/src/zipfile/CMakeFiles/gauge_zipfile.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gauge_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gauge_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/gauge_android.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gauge_store.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/gauge_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gauge_net.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/gauge_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gauge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
