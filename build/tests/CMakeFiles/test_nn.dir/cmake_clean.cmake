file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/checksum_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/checksum_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/graph_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/graph_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/interp_quant_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/interp_quant_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/interp_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/interp_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/threadpool_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/threadpool_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/trace_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/trace_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/training_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/training_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
