# Empty compiler generated dependencies file for test_zipfile.
# This may be replaced when dependencies are built.
