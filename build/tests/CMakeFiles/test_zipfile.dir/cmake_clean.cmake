file(REMOVE_RECURSE
  "CMakeFiles/test_zipfile.dir/zipfile/deflate_test.cpp.o"
  "CMakeFiles/test_zipfile.dir/zipfile/deflate_test.cpp.o.d"
  "CMakeFiles/test_zipfile.dir/zipfile/dynamic_deflate_test.cpp.o"
  "CMakeFiles/test_zipfile.dir/zipfile/dynamic_deflate_test.cpp.o.d"
  "CMakeFiles/test_zipfile.dir/zipfile/zip_test.cpp.o"
  "CMakeFiles/test_zipfile.dir/zipfile/zip_test.cpp.o.d"
  "test_zipfile"
  "test_zipfile.pdb"
  "test_zipfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zipfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
