# Empty dependencies file for gaugenn_cli.
# This may be replaced when dependencies are built.
