file(REMOVE_RECURSE
  "CMakeFiles/gaugenn_cli.dir/gaugenn_cli.cpp.o"
  "CMakeFiles/gaugenn_cli.dir/gaugenn_cli.cpp.o.d"
  "gaugenn_cli"
  "gaugenn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugenn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
