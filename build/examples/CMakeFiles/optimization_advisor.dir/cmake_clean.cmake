file(REMOVE_RECURSE
  "CMakeFiles/optimization_advisor.dir/optimization_advisor.cpp.o"
  "CMakeFiles/optimization_advisor.dir/optimization_advisor.cpp.o.d"
  "optimization_advisor"
  "optimization_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
