# Empty compiler generated dependencies file for optimization_advisor.
# This may be replaced when dependencies are built.
