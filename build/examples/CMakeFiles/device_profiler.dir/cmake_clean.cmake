file(REMOVE_RECURSE
  "CMakeFiles/device_profiler.dir/device_profiler.cpp.o"
  "CMakeFiles/device_profiler.dir/device_profiler.cpp.o.d"
  "device_profiler"
  "device_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
