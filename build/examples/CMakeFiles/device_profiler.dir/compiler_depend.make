# Empty compiler generated dependencies file for device_profiler.
# This may be replaced when dependencies are built.
