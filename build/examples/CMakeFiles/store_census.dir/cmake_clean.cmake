file(REMOVE_RECURSE
  "CMakeFiles/store_census.dir/store_census.cpp.o"
  "CMakeFiles/store_census.dir/store_census.cpp.o.d"
  "store_census"
  "store_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
