# Empty compiler generated dependencies file for store_census.
# This may be replaced when dependencies are built.
