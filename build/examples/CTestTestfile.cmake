# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_store_census "/root/repo/build/examples/store_census" "dating")
set_tests_properties(example_store_census PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_device_profiler "/root/repo/build/examples/device_profiler" "blazeface" "48")
set_tests_properties(example_device_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimization_advisor "/root/repo/build/examples/optimization_advisor" "S21" "fssd")
set_tests_properties(example_optimization_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_inspect "/root/repo/build/examples/gaugenn_cli" "inspect" "com.finance.app001")
set_tests_properties(example_cli_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_crawl "/root/repo/build/examples/gaugenn_cli" "crawl" "parenting")
set_tests_properties(example_cli_crawl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
