file(REMOVE_RECURSE
  "libgauge_android.a"
)
