
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/apk.cpp" "src/android/CMakeFiles/gauge_android.dir/apk.cpp.o" "gcc" "src/android/CMakeFiles/gauge_android.dir/apk.cpp.o.d"
  "/root/repo/src/android/bundle.cpp" "src/android/CMakeFiles/gauge_android.dir/bundle.cpp.o" "gcc" "src/android/CMakeFiles/gauge_android.dir/bundle.cpp.o.d"
  "/root/repo/src/android/detect.cpp" "src/android/CMakeFiles/gauge_android.dir/detect.cpp.o" "gcc" "src/android/CMakeFiles/gauge_android.dir/detect.cpp.o.d"
  "/root/repo/src/android/dex.cpp" "src/android/CMakeFiles/gauge_android.dir/dex.cpp.o" "gcc" "src/android/CMakeFiles/gauge_android.dir/dex.cpp.o.d"
  "/root/repo/src/android/playstore.cpp" "src/android/CMakeFiles/gauge_android.dir/playstore.cpp.o" "gcc" "src/android/CMakeFiles/gauge_android.dir/playstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gauge_util.dir/DependInfo.cmake"
  "/root/repo/build/src/zipfile/CMakeFiles/gauge_zipfile.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gauge_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gauge_formats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
