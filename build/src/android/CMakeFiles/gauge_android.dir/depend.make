# Empty dependencies file for gauge_android.
# This may be replaced when dependencies are built.
