file(REMOVE_RECURSE
  "CMakeFiles/gauge_android.dir/apk.cpp.o"
  "CMakeFiles/gauge_android.dir/apk.cpp.o.d"
  "CMakeFiles/gauge_android.dir/bundle.cpp.o"
  "CMakeFiles/gauge_android.dir/bundle.cpp.o.d"
  "CMakeFiles/gauge_android.dir/detect.cpp.o"
  "CMakeFiles/gauge_android.dir/detect.cpp.o.d"
  "CMakeFiles/gauge_android.dir/dex.cpp.o"
  "CMakeFiles/gauge_android.dir/dex.cpp.o.d"
  "CMakeFiles/gauge_android.dir/playstore.cpp.o"
  "CMakeFiles/gauge_android.dir/playstore.cpp.o.d"
  "libgauge_android.a"
  "libgauge_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
