file(REMOVE_RECURSE
  "libgauge_nn.a"
)
