# Empty compiler generated dependencies file for gauge_nn.
# This may be replaced when dependencies are built.
