file(REMOVE_RECURSE
  "CMakeFiles/gauge_nn.dir/checksum.cpp.o"
  "CMakeFiles/gauge_nn.dir/checksum.cpp.o.d"
  "CMakeFiles/gauge_nn.dir/describe.cpp.o"
  "CMakeFiles/gauge_nn.dir/describe.cpp.o.d"
  "CMakeFiles/gauge_nn.dir/graph.cpp.o"
  "CMakeFiles/gauge_nn.dir/graph.cpp.o.d"
  "CMakeFiles/gauge_nn.dir/interp.cpp.o"
  "CMakeFiles/gauge_nn.dir/interp.cpp.o.d"
  "CMakeFiles/gauge_nn.dir/threadpool.cpp.o"
  "CMakeFiles/gauge_nn.dir/threadpool.cpp.o.d"
  "CMakeFiles/gauge_nn.dir/trace.cpp.o"
  "CMakeFiles/gauge_nn.dir/trace.cpp.o.d"
  "CMakeFiles/gauge_nn.dir/training.cpp.o"
  "CMakeFiles/gauge_nn.dir/training.cpp.o.d"
  "CMakeFiles/gauge_nn.dir/zoo.cpp.o"
  "CMakeFiles/gauge_nn.dir/zoo.cpp.o.d"
  "libgauge_nn.a"
  "libgauge_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
