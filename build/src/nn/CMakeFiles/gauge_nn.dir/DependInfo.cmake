
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checksum.cpp" "src/nn/CMakeFiles/gauge_nn.dir/checksum.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/checksum.cpp.o.d"
  "/root/repo/src/nn/describe.cpp" "src/nn/CMakeFiles/gauge_nn.dir/describe.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/describe.cpp.o.d"
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/gauge_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/interp.cpp" "src/nn/CMakeFiles/gauge_nn.dir/interp.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/interp.cpp.o.d"
  "/root/repo/src/nn/threadpool.cpp" "src/nn/CMakeFiles/gauge_nn.dir/threadpool.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/threadpool.cpp.o.d"
  "/root/repo/src/nn/trace.cpp" "src/nn/CMakeFiles/gauge_nn.dir/trace.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/trace.cpp.o.d"
  "/root/repo/src/nn/training.cpp" "src/nn/CMakeFiles/gauge_nn.dir/training.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/training.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/nn/CMakeFiles/gauge_nn.dir/zoo.cpp.o" "gcc" "src/nn/CMakeFiles/gauge_nn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gauge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
