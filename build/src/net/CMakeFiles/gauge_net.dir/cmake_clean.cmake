file(REMOVE_RECURSE
  "CMakeFiles/gauge_net.dir/socket.cpp.o"
  "CMakeFiles/gauge_net.dir/socket.cpp.o.d"
  "libgauge_net.a"
  "libgauge_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
