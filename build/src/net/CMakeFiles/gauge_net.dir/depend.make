# Empty dependencies file for gauge_net.
# This may be replaced when dependencies are built.
