file(REMOVE_RECURSE
  "libgauge_net.a"
)
