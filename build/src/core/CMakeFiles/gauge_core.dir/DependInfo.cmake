
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/gauge_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/bundle.cpp" "src/core/CMakeFiles/gauge_core.dir/bundle.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/bundle.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/gauge_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/records.cpp" "src/core/CMakeFiles/gauge_core.dir/records.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/records.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/gauge_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/report.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/gauge_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "src/core/CMakeFiles/gauge_core.dir/scenarios.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/scenarios.cpp.o.d"
  "/root/repo/src/core/taskclassify.cpp" "src/core/CMakeFiles/gauge_core.dir/taskclassify.cpp.o" "gcc" "src/core/CMakeFiles/gauge_core.dir/taskclassify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gauge_util.dir/DependInfo.cmake"
  "/root/repo/build/src/zipfile/CMakeFiles/gauge_zipfile.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gauge_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gauge_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/gauge_android.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gauge_store.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/gauge_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
