file(REMOVE_RECURSE
  "CMakeFiles/gauge_core.dir/analysis.cpp.o"
  "CMakeFiles/gauge_core.dir/analysis.cpp.o.d"
  "CMakeFiles/gauge_core.dir/bundle.cpp.o"
  "CMakeFiles/gauge_core.dir/bundle.cpp.o.d"
  "CMakeFiles/gauge_core.dir/pipeline.cpp.o"
  "CMakeFiles/gauge_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/gauge_core.dir/records.cpp.o"
  "CMakeFiles/gauge_core.dir/records.cpp.o.d"
  "CMakeFiles/gauge_core.dir/report.cpp.o"
  "CMakeFiles/gauge_core.dir/report.cpp.o.d"
  "CMakeFiles/gauge_core.dir/runtime.cpp.o"
  "CMakeFiles/gauge_core.dir/runtime.cpp.o.d"
  "CMakeFiles/gauge_core.dir/scenarios.cpp.o"
  "CMakeFiles/gauge_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/gauge_core.dir/taskclassify.cpp.o"
  "CMakeFiles/gauge_core.dir/taskclassify.cpp.o.d"
  "libgauge_core.a"
  "libgauge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
