file(REMOVE_RECURSE
  "libgauge_core.a"
)
