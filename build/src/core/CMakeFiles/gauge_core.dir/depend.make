# Empty dependencies file for gauge_core.
# This may be replaced when dependencies are built.
