file(REMOVE_RECURSE
  "CMakeFiles/gauge_formats.dir/caffe.cpp.o"
  "CMakeFiles/gauge_formats.dir/caffe.cpp.o.d"
  "CMakeFiles/gauge_formats.dir/convert.cpp.o"
  "CMakeFiles/gauge_formats.dir/convert.cpp.o.d"
  "CMakeFiles/gauge_formats.dir/ncnn.cpp.o"
  "CMakeFiles/gauge_formats.dir/ncnn.cpp.o.d"
  "CMakeFiles/gauge_formats.dir/registry.cpp.o"
  "CMakeFiles/gauge_formats.dir/registry.cpp.o.d"
  "CMakeFiles/gauge_formats.dir/tfl.cpp.o"
  "CMakeFiles/gauge_formats.dir/tfl.cpp.o.d"
  "CMakeFiles/gauge_formats.dir/validate.cpp.o"
  "CMakeFiles/gauge_formats.dir/validate.cpp.o.d"
  "libgauge_formats.a"
  "libgauge_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
