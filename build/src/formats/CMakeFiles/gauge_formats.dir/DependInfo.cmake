
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/caffe.cpp" "src/formats/CMakeFiles/gauge_formats.dir/caffe.cpp.o" "gcc" "src/formats/CMakeFiles/gauge_formats.dir/caffe.cpp.o.d"
  "/root/repo/src/formats/convert.cpp" "src/formats/CMakeFiles/gauge_formats.dir/convert.cpp.o" "gcc" "src/formats/CMakeFiles/gauge_formats.dir/convert.cpp.o.d"
  "/root/repo/src/formats/ncnn.cpp" "src/formats/CMakeFiles/gauge_formats.dir/ncnn.cpp.o" "gcc" "src/formats/CMakeFiles/gauge_formats.dir/ncnn.cpp.o.d"
  "/root/repo/src/formats/registry.cpp" "src/formats/CMakeFiles/gauge_formats.dir/registry.cpp.o" "gcc" "src/formats/CMakeFiles/gauge_formats.dir/registry.cpp.o.d"
  "/root/repo/src/formats/tfl.cpp" "src/formats/CMakeFiles/gauge_formats.dir/tfl.cpp.o" "gcc" "src/formats/CMakeFiles/gauge_formats.dir/tfl.cpp.o.d"
  "/root/repo/src/formats/validate.cpp" "src/formats/CMakeFiles/gauge_formats.dir/validate.cpp.o" "gcc" "src/formats/CMakeFiles/gauge_formats.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gauge_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gauge_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
