# Empty dependencies file for gauge_formats.
# This may be replaced when dependencies are built.
