file(REMOVE_RECURSE
  "libgauge_formats.a"
)
