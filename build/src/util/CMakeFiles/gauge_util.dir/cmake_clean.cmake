file(REMOVE_RECURSE
  "CMakeFiles/gauge_util.dir/fileio.cpp.o"
  "CMakeFiles/gauge_util.dir/fileio.cpp.o.d"
  "CMakeFiles/gauge_util.dir/hash.cpp.o"
  "CMakeFiles/gauge_util.dir/hash.cpp.o.d"
  "CMakeFiles/gauge_util.dir/log.cpp.o"
  "CMakeFiles/gauge_util.dir/log.cpp.o.d"
  "CMakeFiles/gauge_util.dir/rng.cpp.o"
  "CMakeFiles/gauge_util.dir/rng.cpp.o.d"
  "CMakeFiles/gauge_util.dir/stats.cpp.o"
  "CMakeFiles/gauge_util.dir/stats.cpp.o.d"
  "CMakeFiles/gauge_util.dir/strings.cpp.o"
  "CMakeFiles/gauge_util.dir/strings.cpp.o.d"
  "CMakeFiles/gauge_util.dir/table.cpp.o"
  "CMakeFiles/gauge_util.dir/table.cpp.o.d"
  "libgauge_util.a"
  "libgauge_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
