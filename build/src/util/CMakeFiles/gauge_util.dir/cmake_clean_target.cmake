file(REMOVE_RECURSE
  "libgauge_util.a"
)
