# Empty compiler generated dependencies file for gauge_util.
# This may be replaced when dependencies are built.
