# Empty dependencies file for gauge_harness.
# This may be replaced when dependencies are built.
