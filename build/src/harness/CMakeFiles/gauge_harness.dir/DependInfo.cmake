
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/adb.cpp" "src/harness/CMakeFiles/gauge_harness.dir/adb.cpp.o" "gcc" "src/harness/CMakeFiles/gauge_harness.dir/adb.cpp.o.d"
  "/root/repo/src/harness/agent.cpp" "src/harness/CMakeFiles/gauge_harness.dir/agent.cpp.o" "gcc" "src/harness/CMakeFiles/gauge_harness.dir/agent.cpp.o.d"
  "/root/repo/src/harness/workflow.cpp" "src/harness/CMakeFiles/gauge_harness.dir/workflow.cpp.o" "gcc" "src/harness/CMakeFiles/gauge_harness.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gauge_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gauge_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/gauge_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gauge_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
