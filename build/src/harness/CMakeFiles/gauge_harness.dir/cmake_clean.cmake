file(REMOVE_RECURSE
  "CMakeFiles/gauge_harness.dir/adb.cpp.o"
  "CMakeFiles/gauge_harness.dir/adb.cpp.o.d"
  "CMakeFiles/gauge_harness.dir/agent.cpp.o"
  "CMakeFiles/gauge_harness.dir/agent.cpp.o.d"
  "CMakeFiles/gauge_harness.dir/workflow.cpp.o"
  "CMakeFiles/gauge_harness.dir/workflow.cpp.o.d"
  "libgauge_harness.a"
  "libgauge_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
