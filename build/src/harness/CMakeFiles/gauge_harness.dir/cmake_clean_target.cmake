file(REMOVE_RECURSE
  "libgauge_harness.a"
)
