file(REMOVE_RECURSE
  "libgauge_store.a"
)
