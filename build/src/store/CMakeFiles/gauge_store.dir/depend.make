# Empty dependencies file for gauge_store.
# This may be replaced when dependencies are built.
