file(REMOVE_RECURSE
  "CMakeFiles/gauge_store.dir/docstore.cpp.o"
  "CMakeFiles/gauge_store.dir/docstore.cpp.o.d"
  "libgauge_store.a"
  "libgauge_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
