# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("zipfile")
subdirs("nn")
subdirs("formats")
subdirs("android")
subdirs("store")
subdirs("device")
subdirs("net")
subdirs("harness")
subdirs("core")
