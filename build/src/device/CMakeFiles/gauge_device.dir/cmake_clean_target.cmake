file(REMOVE_RECURSE
  "libgauge_device.a"
)
