file(REMOVE_RECURSE
  "CMakeFiles/gauge_device.dir/backends.cpp.o"
  "CMakeFiles/gauge_device.dir/backends.cpp.o.d"
  "CMakeFiles/gauge_device.dir/latency.cpp.o"
  "CMakeFiles/gauge_device.dir/latency.cpp.o.d"
  "CMakeFiles/gauge_device.dir/monsoon.cpp.o"
  "CMakeFiles/gauge_device.dir/monsoon.cpp.o.d"
  "CMakeFiles/gauge_device.dir/sched.cpp.o"
  "CMakeFiles/gauge_device.dir/sched.cpp.o.d"
  "CMakeFiles/gauge_device.dir/soc.cpp.o"
  "CMakeFiles/gauge_device.dir/soc.cpp.o.d"
  "libgauge_device.a"
  "libgauge_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
