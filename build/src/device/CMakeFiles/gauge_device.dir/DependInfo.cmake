
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/backends.cpp" "src/device/CMakeFiles/gauge_device.dir/backends.cpp.o" "gcc" "src/device/CMakeFiles/gauge_device.dir/backends.cpp.o.d"
  "/root/repo/src/device/latency.cpp" "src/device/CMakeFiles/gauge_device.dir/latency.cpp.o" "gcc" "src/device/CMakeFiles/gauge_device.dir/latency.cpp.o.d"
  "/root/repo/src/device/monsoon.cpp" "src/device/CMakeFiles/gauge_device.dir/monsoon.cpp.o" "gcc" "src/device/CMakeFiles/gauge_device.dir/monsoon.cpp.o.d"
  "/root/repo/src/device/sched.cpp" "src/device/CMakeFiles/gauge_device.dir/sched.cpp.o" "gcc" "src/device/CMakeFiles/gauge_device.dir/sched.cpp.o.d"
  "/root/repo/src/device/soc.cpp" "src/device/CMakeFiles/gauge_device.dir/soc.cpp.o" "gcc" "src/device/CMakeFiles/gauge_device.dir/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gauge_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gauge_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
