# Empty compiler generated dependencies file for gauge_device.
# This may be replaced when dependencies are built.
