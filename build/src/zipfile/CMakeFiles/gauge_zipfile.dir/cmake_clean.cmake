file(REMOVE_RECURSE
  "CMakeFiles/gauge_zipfile.dir/deflate.cpp.o"
  "CMakeFiles/gauge_zipfile.dir/deflate.cpp.o.d"
  "CMakeFiles/gauge_zipfile.dir/zip.cpp.o"
  "CMakeFiles/gauge_zipfile.dir/zip.cpp.o.d"
  "libgauge_zipfile.a"
  "libgauge_zipfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauge_zipfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
