file(REMOVE_RECURSE
  "libgauge_zipfile.a"
)
