# Empty dependencies file for gauge_zipfile.
# This may be replaced when dependencies are built.
