file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_distribution.dir/bench_sec42_distribution.cpp.o"
  "CMakeFiles/bench_sec42_distribution.dir/bench_sec42_distribution.cpp.o.d"
  "bench_sec42_distribution"
  "bench_sec42_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
