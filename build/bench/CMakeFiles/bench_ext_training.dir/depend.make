# Empty dependencies file for bench_ext_training.
# This may be replaced when dependencies are built.
