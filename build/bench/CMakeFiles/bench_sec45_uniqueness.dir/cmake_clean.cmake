file(REMOVE_RECURSE
  "CMakeFiles/bench_sec45_uniqueness.dir/bench_sec45_uniqueness.cpp.o"
  "CMakeFiles/bench_sec45_uniqueness.dir/bench_sec45_uniqueness.cpp.o.d"
  "bench_sec45_uniqueness"
  "bench_sec45_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec45_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
