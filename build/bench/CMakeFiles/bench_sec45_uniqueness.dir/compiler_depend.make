# Empty compiler generated dependencies file for bench_sec45_uniqueness.
# This may be replaced when dependencies are built.
