# Empty dependencies file for bench_fig15_cloud_apis.
# This may be replaced when dependencies are built.
