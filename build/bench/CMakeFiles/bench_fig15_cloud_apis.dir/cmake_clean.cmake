file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cloud_apis.dir/bench_fig15_cloud_apis.cpp.o"
  "CMakeFiles/bench_fig15_cloud_apis.dir/bench_fig15_cloud_apis.cpp.o.d"
  "bench_fig15_cloud_apis"
  "bench_fig15_cloud_apis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cloud_apis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
