# Empty dependencies file for bench_table3_tasks.
# This may be replaced when dependencies are built.
