file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cohabitation.dir/bench_ext_cohabitation.cpp.o"
  "CMakeFiles/bench_ext_cohabitation.dir/bench_ext_cohabitation.cpp.o.d"
  "bench_ext_cohabitation"
  "bench_ext_cohabitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cohabitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
