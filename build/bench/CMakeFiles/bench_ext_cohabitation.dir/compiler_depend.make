# Empty compiler generated dependencies file for bench_ext_cohabitation.
# This may be replaced when dependencies are built.
