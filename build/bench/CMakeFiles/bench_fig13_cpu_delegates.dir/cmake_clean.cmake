file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cpu_delegates.dir/bench_fig13_cpu_delegates.cpp.o"
  "CMakeFiles/bench_fig13_cpu_delegates.dir/bench_fig13_cpu_delegates.cpp.o.d"
  "bench_fig13_cpu_delegates"
  "bench_fig13_cpu_delegates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cpu_delegates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
