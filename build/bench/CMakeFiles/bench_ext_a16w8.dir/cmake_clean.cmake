file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_a16w8.dir/bench_ext_a16w8.cpp.o"
  "CMakeFiles/bench_ext_a16w8.dir/bench_ext_a16w8.cpp.o.d"
  "bench_ext_a16w8"
  "bench_ext_a16w8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_a16w8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
