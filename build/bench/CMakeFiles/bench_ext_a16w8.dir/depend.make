# Empty dependencies file for bench_ext_a16w8.
# This may be replaced when dependencies are built.
