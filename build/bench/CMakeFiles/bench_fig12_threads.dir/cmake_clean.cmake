file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_threads.dir/bench_fig12_threads.cpp.o"
  "CMakeFiles/bench_fig12_threads.dir/bench_fig12_threads.cpp.o.d"
  "bench_fig12_threads"
  "bench_fig12_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
