# Empty dependencies file for bench_fig14_snpe.
# This may be replaced when dependencies are built.
