file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_snpe.dir/bench_fig14_snpe.cpp.o"
  "CMakeFiles/bench_fig14_snpe.dir/bench_fig14_snpe.cpp.o.d"
  "bench_fig14_snpe"
  "bench_fig14_snpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_snpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
