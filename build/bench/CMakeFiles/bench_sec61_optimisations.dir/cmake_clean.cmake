file(REMOVE_RECURSE
  "CMakeFiles/bench_sec61_optimisations.dir/bench_sec61_optimisations.cpp.o"
  "CMakeFiles/bench_sec61_optimisations.dir/bench_sec61_optimisations.cpp.o.d"
  "bench_sec61_optimisations"
  "bench_sec61_optimisations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_optimisations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
