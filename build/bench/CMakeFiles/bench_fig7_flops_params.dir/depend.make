# Empty dependencies file for bench_fig7_flops_params.
# This may be replaced when dependencies are built.
