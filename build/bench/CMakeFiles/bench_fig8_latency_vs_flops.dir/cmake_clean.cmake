file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_latency_vs_flops.dir/bench_fig8_latency_vs_flops.cpp.o"
  "CMakeFiles/bench_fig8_latency_vs_flops.dir/bench_fig8_latency_vs_flops.cpp.o.d"
  "bench_fig8_latency_vs_flops"
  "bench_fig8_latency_vs_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_latency_vs_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
