# Empty dependencies file for bench_fig8_latency_vs_flops.
# This may be replaced when dependencies are built.
