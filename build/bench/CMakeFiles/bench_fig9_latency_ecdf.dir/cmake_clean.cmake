file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_latency_ecdf.dir/bench_fig9_latency_ecdf.cpp.o"
  "CMakeFiles/bench_fig9_latency_ecdf.dir/bench_fig9_latency_ecdf.cpp.o.d"
  "bench_fig9_latency_ecdf"
  "bench_fig9_latency_ecdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_latency_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
