# Empty dependencies file for bench_fig9_latency_ecdf.
# This may be replaced when dependencies are built.
