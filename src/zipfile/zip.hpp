// Minimal but real ZIP (PKWARE APPNOTE) reader/writer. APKs, OBB expansion
// files and App Bundle asset packs are all ZIP containers; gaugeNN's model
// extraction walks these byte-for-byte.
//
// Supported: store (method 0) and DEFLATE (method 8) entries, CRC-32
// verification, central directory + EOCD. Not supported (not needed by the
// pipeline): ZIP64, encryption, data descriptors, multi-disk archives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::zipfile {

enum class Method : std::uint16_t { Store = 0, Deflate = 8 };

struct EntryInfo {
  std::string name;
  Method method = Method::Store;
  std::uint32_t crc32 = 0;
  std::uint32_t compressed_size = 0;
  std::uint32_t uncompressed_size = 0;
  std::uint32_t local_header_offset = 0;
};

class ZipWriter {
 public:
  // Adds a file entry. Deflate is used when it actually shrinks the payload
  // (mirroring what real packagers do); pass `Method::Store` to force store.
  void add(std::string name, std::span<const std::uint8_t> data,
           std::optional<Method> force_method = std::nullopt);
  void add(std::string name, std::string_view text,
           std::optional<Method> force_method = std::nullopt);

  // Serialises central directory + EOCD and returns the archive bytes.
  // The writer can keep being used afterwards (finish() is pure).
  util::Bytes finish() const;

  std::size_t entry_count() const { return entries_.size(); }

 private:
  struct PendingEntry {
    EntryInfo info;
    util::Bytes compressed;
  };
  std::vector<PendingEntry> entries_;
};

class ZipReader {
 public:
  // An empty reader (no entries); assign from open() to use.
  ZipReader() = default;

  static util::Result<ZipReader> open(util::Bytes archive);

  const std::vector<EntryInfo>& entries() const { return entries_; }
  bool contains(std::string_view name) const;
  // Extracts and CRC-verifies one entry.
  util::Result<util::Bytes> read(std::string_view name) const;

 private:
  util::Bytes archive_;
  std::vector<EntryInfo> entries_;
};

}  // namespace gauge::zipfile
