// Minimal but real ZIP (PKWARE APPNOTE) reader/writer. APKs, OBB expansion
// files and App Bundle asset packs are all ZIP containers; gaugeNN's model
// extraction walks these byte-for-byte.
//
// Supported: store (method 0) and DEFLATE (method 8) entries, CRC-32
// verification, central directory + EOCD. Not supported (not needed by the
// pipeline): ZIP64, encryption, data descriptors, multi-disk archives.
//
// Hostile-input model (DESIGN.md §10): archives come from untrusted apps, so
// open() rejects overlapping entry ranges and hides entries whose names
// escape the archive root (path traversal, absolute paths), and read()
// enforces inflation caps (absolute size and compression ratio) so a zip
// bomb surfaces as an error instead of an OOM.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::zipfile {

enum class Method : std::uint16_t { Store = 0, Deflate = 8 };

// Resource limits enforced by ZipReader::read on untrusted archives. The
// defaults bound any single entry to 256 MiB inflated and a 100:1
// compression ratio — far above anything a legitimate APK ships (the Play
// base-apk cap is 100 MB) and far below what exhausts a crawler worker.
// The ratio cap only applies past `ratio_floor_bytes` declared inflated
// bytes: tiny repetitive payloads (string tables, manifests) legitimately
// deflate past 100:1, and a bomb that can't clear the floor isn't a bomb.
struct ReadLimits {
  std::uint64_t max_entry_bytes = 256ull << 20;
  std::uint32_t max_compression_ratio = 100;
  std::uint64_t ratio_floor_bytes = 1ull << 20;
};

// True when an error string returned by ZipReader::read denotes a zip-bomb
// rejection (the pipeline surfaces these as `gauge.pipeline.drop.zip_bomb`
// rather than a generic read failure).
bool is_zip_bomb_error(std::string_view error);

// Entry-name hygiene: false for empty names, absolute paths (leading '/'),
// Windows drive letters, backslashes, and any "." or ".." path component —
// names that could escape the archive root if ever used to resolve
// companion files or extraction targets.
bool safe_entry_name(std::string_view name);

struct EntryInfo {
  std::string name;
  Method method = Method::Store;
  std::uint32_t crc32 = 0;
  std::uint32_t compressed_size = 0;
  std::uint32_t uncompressed_size = 0;
  std::uint32_t local_header_offset = 0;
};

class ZipWriter {
 public:
  // Adds a file entry. Deflate is used when it actually shrinks the payload
  // (mirroring what real packagers do); pass `Method::Store` to force store.
  void add(std::string name, std::span<const std::uint8_t> data,
           std::optional<Method> force_method = std::nullopt);
  void add(std::string name, std::string_view text,
           std::optional<Method> force_method = std::nullopt);

  // Serialises central directory + EOCD and returns the archive bytes.
  // The writer can keep being used afterwards (finish() is pure).
  util::Bytes finish() const;

  std::size_t entry_count() const { return entries_.size(); }

 private:
  struct PendingEntry {
    EntryInfo info;
    util::Bytes compressed;
  };
  std::vector<PendingEntry> entries_;
};

class ZipReader {
 public:
  // An empty reader (no entries); assign from open() to use.
  ZipReader() = default;

  static util::Result<ZipReader> open(util::Bytes archive,
                                      ReadLimits limits = {});

  const std::vector<EntryInfo>& entries() const { return entries_; }
  bool contains(std::string_view name) const;
  // Extracts and CRC-verifies one entry, enforcing the open()-time limits.
  util::Result<util::Bytes> read(std::string_view name) const;
  // Central-directory entries hidden by open() because their names failed
  // safe_entry_name (path traversal / absolute paths).
  std::size_t rejected_entry_names() const { return rejected_entry_names_; }

 private:
  util::Bytes archive_;
  std::vector<EntryInfo> entries_;
  ReadLimits limits_;
  std::size_t rejected_entry_names_ = 0;
};

}  // namespace gauge::zipfile
