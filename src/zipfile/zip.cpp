#include "zipfile/zip.hpp"

#include <algorithm>

#include "util/hash.hpp"
#include "util/strings.hpp"
#include "zipfile/deflate.hpp"

namespace gauge::zipfile {

namespace {
constexpr std::uint32_t kLocalHeaderSig = 0x04034b50;
constexpr std::uint32_t kCentralDirSig = 0x02014b50;
constexpr std::uint32_t kEocdSig = 0x06054b50;
constexpr std::uint16_t kVersion = 20;
constexpr std::uint32_t kLocalHeaderBytes = 30;  // fixed part, before name
constexpr std::string_view kZipBombPrefix = "zip bomb";
}  // namespace

bool is_zip_bomb_error(std::string_view error) {
  return error.substr(0, kZipBombPrefix.size()) == kZipBombPrefix;
}

bool safe_entry_name(std::string_view name) {
  if (name.empty()) return false;
  if (name.front() == '/') return false;
  if (name.find('\\') != std::string_view::npos) return false;
  if (name.find('\0') != std::string_view::npos) return false;
  if (name.size() >= 2 && name[1] == ':') return false;  // drive letter
  // Reject any "." or ".." path component.
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t slash = name.find('/', start);
    const std::string_view part =
        name.substr(start, slash == std::string_view::npos ? name.size() - start
                                                           : slash - start);
    if (part == "." || part == "..") return false;
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return true;
}

void ZipWriter::add(std::string name, std::span<const std::uint8_t> data,
                    std::optional<Method> force_method) {
  PendingEntry entry;
  entry.info.name = std::move(name);
  entry.info.crc32 = util::crc32(data);
  entry.info.uncompressed_size = static_cast<std::uint32_t>(data.size());

  const bool try_deflate =
      !force_method.has_value() || *force_method == Method::Deflate;
  util::Bytes deflated;
  if (try_deflate) deflated = deflate(data);

  const bool use_deflate =
      force_method.has_value()
          ? *force_method == Method::Deflate
          : deflated.size() < data.size();
  if (use_deflate) {
    entry.info.method = Method::Deflate;
    entry.compressed = std::move(deflated);
  } else {
    entry.info.method = Method::Store;
    entry.compressed.assign(data.begin(), data.end());
  }
  entry.info.compressed_size = static_cast<std::uint32_t>(entry.compressed.size());
  entries_.push_back(std::move(entry));
}

void ZipWriter::add(std::string name, std::string_view text,
                    std::optional<Method> force_method) {
  add(std::move(name), util::as_span(text), force_method);
}

util::Bytes ZipWriter::finish() const {
  util::ByteWriter out;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(entries_.size());

  for (const auto& entry : entries_) {
    offsets.push_back(static_cast<std::uint32_t>(out.size()));
    out.u32(kLocalHeaderSig);
    out.u16(kVersion);
    out.u16(0);  // flags
    out.u16(static_cast<std::uint16_t>(entry.info.method));
    out.u16(0);  // mod time
    out.u16(0);  // mod date
    out.u32(entry.info.crc32);
    out.u32(entry.info.compressed_size);
    out.u32(entry.info.uncompressed_size);
    out.u16(static_cast<std::uint16_t>(entry.info.name.size()));
    out.u16(0);  // extra length
    out.raw(entry.info.name);
    out.raw(entry.compressed);
  }

  const auto cd_offset = static_cast<std::uint32_t>(out.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& entry = entries_[i];
    out.u32(kCentralDirSig);
    out.u16(kVersion);  // version made by
    out.u16(kVersion);  // version needed
    out.u16(0);         // flags
    out.u16(static_cast<std::uint16_t>(entry.info.method));
    out.u16(0);  // mod time
    out.u16(0);  // mod date
    out.u32(entry.info.crc32);
    out.u32(entry.info.compressed_size);
    out.u32(entry.info.uncompressed_size);
    out.u16(static_cast<std::uint16_t>(entry.info.name.size()));
    out.u16(0);  // extra length
    out.u16(0);  // comment length
    out.u16(0);  // disk number
    out.u16(0);  // internal attrs
    out.u32(0);  // external attrs
    out.u32(offsets[i]);
    out.raw(entry.info.name);
  }
  const auto cd_size = static_cast<std::uint32_t>(out.size()) - cd_offset;

  out.u32(kEocdSig);
  out.u16(0);  // disk number
  out.u16(0);  // central dir disk
  out.u16(static_cast<std::uint16_t>(entries_.size()));
  out.u16(static_cast<std::uint16_t>(entries_.size()));
  out.u32(cd_size);
  out.u32(cd_offset);
  out.u16(0);  // comment length

  return std::move(out).take();
}

util::Result<ZipReader> ZipReader::open(util::Bytes archive,
                                        ReadLimits limits) {
  using R = util::Result<ZipReader>;
  if (archive.size() < 22) return R::failure("archive too small");

  // Scan backwards for EOCD (no comment support needed, but tolerate one).
  std::size_t eocd_pos = archive.size();
  const std::size_t scan_limit =
      archive.size() >= 22 + 65535 ? archive.size() - 22 - 65535 : 0;
  for (std::size_t pos = archive.size() - 22;; --pos) {
    if (archive[pos] == 0x50 && archive[pos + 1] == 0x4b &&
        archive[pos + 2] == 0x05 && archive[pos + 3] == 0x06) {
      eocd_pos = pos;
      break;
    }
    if (pos == scan_limit) break;
  }
  if (eocd_pos == archive.size()) return R::failure("EOCD not found");

  util::ByteReader eocd{std::span<const std::uint8_t>{archive}.subspan(eocd_pos)};
  eocd.u32();  // signature
  eocd.u16();  // disk
  eocd.u16();  // cd disk
  eocd.u16();  // entries on disk
  const std::uint16_t total_entries = eocd.u16();
  eocd.u32();  // cd size
  const std::uint32_t cd_offset = eocd.u32();
  if (!eocd.ok() || cd_offset > archive.size()) return R::failure("bad EOCD");

  ZipReader reader;
  reader.limits_ = limits;
  util::ByteReader cd{std::span<const std::uint8_t>{archive}.subspan(cd_offset)};
  for (std::uint16_t i = 0; i < total_entries; ++i) {
    if (cd.u32() != kCentralDirSig) return R::failure("bad central directory");
    cd.u16();  // made by
    cd.u16();  // needed
    cd.u16();  // flags
    const std::uint16_t method = cd.u16();
    cd.u16();  // time
    cd.u16();  // date
    EntryInfo info;
    info.crc32 = cd.u32();
    info.compressed_size = cd.u32();
    info.uncompressed_size = cd.u32();
    const std::uint16_t name_len = cd.u16();
    const std::uint16_t extra_len = cd.u16();
    const std::uint16_t comment_len = cd.u16();
    cd.u16();  // disk
    cd.u16();  // internal
    cd.u32();  // external
    info.local_header_offset = cd.u32();
    info.name = std::string{util::as_view(cd.raw(name_len))};
    cd.raw(extra_len);
    cd.raw(comment_len);
    if (!cd.ok()) return R::failure("truncated central directory");
    if (method != 0 && method != 8) return R::failure("unsupported method");
    if (info.local_header_offset >= archive.size()) {
      return R::failure("entry offset beyond archive");
    }
    info.method = static_cast<Method>(method);
    if (!safe_entry_name(info.name)) {
      // Hidden, not fatal: one hostile name must not discard an otherwise
      // valid APK. The count feeds `gauge.pipeline.drop.bad_entry_name`.
      ++reader.rejected_entry_names_;
      continue;
    }
    reader.entries_.push_back(std::move(info));
  }

  // Overlapping local-entry ranges are a tampering signature (two central
  // directory rows aliasing the same bytes, e.g. to confuse verifiers).
  // Each entry occupies at least header + name + compressed payload; sorted
  // by offset, consecutive spans must not intersect.
  std::vector<const EntryInfo*> by_offset;
  by_offset.reserve(reader.entries_.size());
  for (const auto& e : reader.entries_) by_offset.push_back(&e);
  std::sort(by_offset.begin(), by_offset.end(),
            [](const EntryInfo* a, const EntryInfo* b) {
              return a->local_header_offset < b->local_header_offset;
            });
  std::uint64_t prev_end = 0;
  for (const EntryInfo* e : by_offset) {
    if (e->local_header_offset < prev_end) {
      return R::failure("overlapping entries in central directory");
    }
    prev_end = static_cast<std::uint64_t>(e->local_header_offset) +
               kLocalHeaderBytes + e->name.size() + e->compressed_size;
  }

  reader.archive_ = std::move(archive);
  return reader;
}

bool ZipReader::contains(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const EntryInfo& e) { return e.name == name; });
}

util::Result<util::Bytes> ZipReader::read(std::string_view name) const {
  using R = util::Result<util::Bytes>;
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const EntryInfo& e) { return e.name == name; });
  if (it == entries_.end()) return R::failure("entry not found: " + std::string{name});
  if (it->local_header_offset >= archive_.size()) {
    return R::failure("corrupt entry offset");
  }
  // Zip-bomb guard: bound the inflated size before allocating anything. The
  // declared sizes come from the (attacker-controlled) central directory,
  // but inflate() itself is capped at the declared uncompressed size, so an
  // entry cannot exceed what is checked here.
  if (it->uncompressed_size > limits_.max_entry_bytes) {
    return R::failure(util::format(
        "zip bomb: entry '%s' declares %u inflated bytes (cap %llu)",
        it->name.c_str(), it->uncompressed_size,
        static_cast<unsigned long long>(limits_.max_entry_bytes)));
  }
  if (it->method == Method::Deflate &&
      static_cast<std::uint64_t>(it->uncompressed_size) >
          limits_.ratio_floor_bytes &&
      static_cast<std::uint64_t>(it->uncompressed_size) >
          static_cast<std::uint64_t>(it->compressed_size) *
              limits_.max_compression_ratio) {
    return R::failure(util::format(
        "zip bomb: entry '%s' compression ratio %u:%u exceeds %u:1",
        it->name.c_str(), it->uncompressed_size, it->compressed_size,
        limits_.max_compression_ratio));
  }

  util::ByteReader hdr{
      std::span<const std::uint8_t>{archive_}.subspan(it->local_header_offset)};
  if (hdr.u32() != kLocalHeaderSig) return R::failure("bad local header");
  hdr.u16();  // version
  hdr.u16();  // flags
  hdr.u16();  // method (trust central directory)
  hdr.u16();  // time
  hdr.u16();  // date
  hdr.u32();  // crc
  hdr.u32();  // csize
  hdr.u32();  // usize
  const std::uint16_t name_len = hdr.u16();
  const std::uint16_t extra_len = hdr.u16();
  hdr.raw(name_len);
  hdr.raw(extra_len);
  const auto payload = hdr.raw(it->compressed_size);
  if (!hdr.ok()) return R::failure("truncated entry payload");

  util::Bytes data;
  if (it->method == Method::Store) {
    data.assign(payload.begin(), payload.end());
  } else {
    auto inflated = inflate(payload, it->uncompressed_size);
    if (!inflated.ok()) return R::failure("inflate: " + inflated.error());
    data = std::move(inflated).take();
  }
  if (data.size() != it->uncompressed_size) {
    return R::failure("size mismatch after decompression");
  }
  if (util::crc32(data) != it->crc32) return R::failure("CRC mismatch");
  return data;
}

}  // namespace gauge::zipfile
