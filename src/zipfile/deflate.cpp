#include "zipfile/deflate.hpp"

#include <array>
#include <cassert>
#include <cstring>
#include <algorithm>
#include <queue>
#include <vector>

namespace gauge::zipfile {

namespace {

// ---------------------------------------------------------------- bit I/O

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_{data} {}

  // Read `n` bits LSB-first. Returns false on underrun.
  bool read(std::uint32_t n, std::uint32_t& out) {
    while (bit_count_ < n) {
      if (byte_pos_ >= data_.size()) return false;
      bit_buf_ |= static_cast<std::uint64_t>(data_[byte_pos_++]) << bit_count_;
      bit_count_ += 8;
    }
    out = static_cast<std::uint32_t>(bit_buf_ & ((1ull << n) - 1));
    bit_buf_ >>= n;
    bit_count_ -= n;
    return true;
  }

  bool read_bit(std::uint32_t& out) { return read(1, out); }

  // Discard bits up to the next byte boundary (stored blocks).
  void align() {
    const std::uint32_t drop = bit_count_ % 8;
    bit_buf_ >>= drop;
    bit_count_ -= drop;
  }

  bool read_bytes(std::size_t n, std::span<const std::uint8_t>& out) {
    assert(bit_count_ % 8 == 0);
    // Return buffered whole bytes first — simpler to just rewind.
    while (bit_count_ >= 8) {
      bit_count_ -= 8;
      --byte_pos_;
    }
    bit_buf_ = 0;
    bit_count_ = 0;
    if (byte_pos_ + n > data_.size()) return false;
    out = data_.subspan(byte_pos_, n);
    byte_pos_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t byte_pos_ = 0;
  std::uint64_t bit_buf_ = 0;
  std::uint32_t bit_count_ = 0;
};

class BitWriter {
 public:
  // Write `n` bits of `value` LSB-first.
  void write(std::uint32_t value, std::uint32_t n) {
    bit_buf_ |= static_cast<std::uint64_t>(value & ((1ull << n) - 1)) << bit_count_;
    bit_count_ += n;
    while (bit_count_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(bit_buf_ & 0xff));
      bit_buf_ >>= 8;
      bit_count_ -= 8;
    }
  }

  // Huffman codes are emitted MSB of the code first.
  void write_huff(std::uint32_t code, std::uint32_t len) {
    std::uint32_t reversed = 0;
    for (std::uint32_t i = 0; i < len; ++i) {
      reversed = (reversed << 1) | ((code >> i) & 1);
    }
    write(reversed, len);
  }

  util::Bytes finish() {
    if (bit_count_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(bit_buf_ & 0xff));
      bit_buf_ = 0;
      bit_count_ = 0;
    }
    return std::move(out_);
  }

 private:
  util::Bytes out_;
  std::uint64_t bit_buf_ = 0;
  std::uint32_t bit_count_ = 0;
};

// ----------------------------------------------------- Huffman decoding

// Canonical Huffman decoder built from code lengths. Decodes bit-by-bit,
// which is plenty fast for our payload sizes and keeps the code auditable.
class HuffmanDecoder {
 public:
  bool init(std::span<const std::uint8_t> lengths) {
    constexpr int kMaxBits = 15;
    std::array<std::uint32_t, kMaxBits + 1> bl_count{};
    for (std::uint8_t len : lengths) {
      if (len > kMaxBits) return false;
      bl_count[len]++;
    }
    bl_count[0] = 0;
    std::array<std::uint32_t, kMaxBits + 1> next_code{};
    std::uint32_t code = 0;
    for (int bits = 1; bits <= kMaxBits; ++bits) {
      code = (code + bl_count[bits - 1]) << 1;
      next_code[bits] = code;
    }
    first_code_.fill(0);
    first_symbol_.fill(0);
    symbols_.clear();
    symbols_.resize(lengths.size(), 0);
    // Order symbols canonically: by length then by symbol value.
    std::array<std::uint32_t, kMaxBits + 1> offs{};
    std::uint32_t total = 0;
    for (int bits = 1; bits <= kMaxBits; ++bits) {
      first_code_[bits] = next_code[bits];
      first_symbol_[bits] = total;
      offs[bits] = total;
      total += bl_count[bits];
    }
    count_ = bl_count;
    for (std::uint32_t sym = 0; sym < lengths.size(); ++sym) {
      if (lengths[sym] != 0) symbols_[offs[lengths[sym]]++] = sym;
    }
    symbols_.resize(total);
    return total > 0;
  }

  bool decode(BitReader& in, std::uint32_t& symbol) const {
    std::uint32_t code = 0;
    for (int bits = 1; bits <= 15; ++bits) {
      std::uint32_t bit;
      if (!in.read_bit(bit)) return false;
      code = (code << 1) | bit;
      const std::uint32_t count = count_[bits];
      if (count != 0 && code < first_code_[bits] + count) {
        symbol = symbols_[first_symbol_[bits] + (code - first_code_[bits])];
        return true;
      }
    }
    return false;
  }

 private:
  std::array<std::uint32_t, 16> first_code_{};
  std::array<std::uint32_t, 16> first_symbol_{};
  std::array<std::uint32_t, 16> count_{};
  std::vector<std::uint32_t> symbols_;
};

// Length/distance tables (RFC 1951 §3.2.5).
constexpr std::array<std::uint16_t, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, 29> kLenExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::array<std::uint16_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

void fixed_literal_lengths(std::array<std::uint8_t, 288>& lengths) {
  for (int i = 0; i <= 143; ++i) lengths[i] = 8;
  for (int i = 144; i <= 255; ++i) lengths[i] = 9;
  for (int i = 256; i <= 279; ++i) lengths[i] = 7;
  for (int i = 280; i <= 287; ++i) lengths[i] = 8;
}

bool inflate_block(BitReader& in, const HuffmanDecoder& lit,
                   const HuffmanDecoder& dist, util::Bytes& out,
                   std::size_t max_output) {
  for (;;) {
    std::uint32_t symbol;
    if (!lit.decode(in, symbol)) return false;
    if (symbol == 256) return true;  // end of block
    if (symbol < 256) {
      if (out.size() >= max_output) return false;
      out.push_back(static_cast<std::uint8_t>(symbol));
      continue;
    }
    if (symbol > 285) return false;
    const std::uint32_t len_idx = symbol - 257;
    std::uint32_t extra;
    if (!in.read(kLenExtra[len_idx], extra)) return false;
    const std::uint32_t length = kLenBase[len_idx] + extra;
    std::uint32_t dsym;
    if (!dist.decode(in, dsym)) return false;
    if (dsym > 29) return false;
    if (!in.read(kDistExtra[dsym], extra)) return false;
    const std::uint32_t distance = kDistBase[dsym] + extra;
    if (distance > out.size()) return false;
    if (out.size() + length > max_output) return false;
    const std::size_t start = out.size() - distance;
    for (std::uint32_t i = 0; i < length; ++i) {
      out.push_back(out[start + i]);  // may overlap, byte-by-byte is correct
    }
  }
}

}  // namespace

util::Result<util::Bytes> inflate(std::span<const std::uint8_t> compressed,
                                  std::size_t max_output) {
  BitReader in{compressed};
  util::Bytes out;
  for (;;) {
    std::uint32_t bfinal, btype;
    if (!in.read(1, bfinal)) return util::Result<util::Bytes>::failure("truncated header");
    if (!in.read(2, btype)) return util::Result<util::Bytes>::failure("truncated header");
    if (btype == 0) {
      in.align();
      std::span<const std::uint8_t> hdr;
      if (!in.read_bytes(4, hdr)) return util::Result<util::Bytes>::failure("truncated stored header");
      const std::uint16_t len = static_cast<std::uint16_t>(hdr[0] | (hdr[1] << 8));
      const std::uint16_t nlen = static_cast<std::uint16_t>(hdr[2] | (hdr[3] << 8));
      if (static_cast<std::uint16_t>(~len) != nlen) {
        return util::Result<util::Bytes>::failure("stored block LEN/NLEN mismatch");
      }
      std::span<const std::uint8_t> body;
      if (!in.read_bytes(len, body)) return util::Result<util::Bytes>::failure("truncated stored block");
      if (out.size() + len > max_output) return util::Result<util::Bytes>::failure("output too large");
      out.insert(out.end(), body.begin(), body.end());
    } else if (btype == 1) {
      std::array<std::uint8_t, 288> lit_lengths;
      fixed_literal_lengths(lit_lengths);
      std::array<std::uint8_t, 30> dist_lengths;
      dist_lengths.fill(5);
      HuffmanDecoder lit, dist;
      if (!lit.init(lit_lengths) || !dist.init(dist_lengths)) {
        return util::Result<util::Bytes>::failure("bad fixed tables");
      }
      if (!inflate_block(in, lit, dist, out, max_output)) {
        return util::Result<util::Bytes>::failure("corrupt fixed block");
      }
    } else if (btype == 2) {
      std::uint32_t hlit, hdist, hclen;
      if (!in.read(5, hlit) || !in.read(5, hdist) || !in.read(4, hclen)) {
        return util::Result<util::Bytes>::failure("truncated dynamic header");
      }
      static constexpr std::array<std::uint8_t, 19> kClOrder = {
          16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};
      std::array<std::uint8_t, 19> cl_lengths{};
      for (std::uint32_t i = 0; i < hclen + 4; ++i) {
        std::uint32_t v;
        if (!in.read(3, v)) return util::Result<util::Bytes>::failure("truncated code lengths");
        cl_lengths[kClOrder[i]] = static_cast<std::uint8_t>(v);
      }
      HuffmanDecoder cl;
      if (!cl.init(cl_lengths)) return util::Result<util::Bytes>::failure("bad CL table");
      const std::uint32_t total = (hlit + 257) + (hdist + 1);
      std::vector<std::uint8_t> lengths;
      lengths.reserve(total);
      while (lengths.size() < total) {
        std::uint32_t sym;
        if (!cl.decode(in, sym)) return util::Result<util::Bytes>::failure("corrupt CL stream");
        if (sym < 16) {
          lengths.push_back(static_cast<std::uint8_t>(sym));
        } else if (sym == 16) {
          std::uint32_t rep;
          if (!in.read(2, rep) || lengths.empty()) {
            return util::Result<util::Bytes>::failure("bad repeat");
          }
          const std::uint8_t prev = lengths.back();
          for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(prev);
        } else if (sym == 17) {
          std::uint32_t rep;
          if (!in.read(3, rep)) return util::Result<util::Bytes>::failure("bad zero repeat");
          for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(0);
        } else {
          std::uint32_t rep;
          if (!in.read(7, rep)) return util::Result<util::Bytes>::failure("bad zero repeat");
          for (std::uint32_t i = 0; i < rep + 11; ++i) lengths.push_back(0);
        }
      }
      if (lengths.size() != total) return util::Result<util::Bytes>::failure("length overflow");
      HuffmanDecoder lit, dist;
      const std::span<const std::uint8_t> all{lengths};
      if (!lit.init(all.subspan(0, hlit + 257)) ||
          !dist.init(all.subspan(hlit + 257))) {
        return util::Result<util::Bytes>::failure("bad dynamic tables");
      }
      if (!inflate_block(in, lit, dist, out, max_output)) {
        return util::Result<util::Bytes>::failure("corrupt dynamic block");
      }
    } else {
      return util::Result<util::Bytes>::failure("reserved block type");
    }
    if (bfinal) break;
  }
  return out;
}

// ------------------------------------------------------------ compressor

namespace {

struct FixedCode {
  std::uint32_t code;
  std::uint32_t bits;
};

FixedCode fixed_literal_code(std::uint32_t symbol) {
  if (symbol <= 143) return {0x30 + symbol, 8};
  if (symbol <= 255) return {0x190 + (symbol - 144), 9};
  if (symbol <= 279) return {symbol - 256, 7};
  return {0xC0 + (symbol - 280), 8};
}

// One LZ77 token: a literal byte or a (length, distance) back-reference.
struct Token {
  bool is_match = false;
  std::uint8_t literal = 0;
  std::uint16_t length = 0;
  std::uint16_t distance = 0;
};

std::uint32_t length_symbol(std::uint32_t length, std::uint32_t& extra,
                            std::uint32_t& extra_bits) {
  for (std::uint32_t i = kLenBase.size(); i-- > 0;) {
    if (length >= kLenBase[i]) {
      extra = length - kLenBase[i];
      extra_bits = kLenExtra[i];
      return 257 + i;
    }
  }
  extra = 0;
  extra_bits = 0;
  return 257;
}

std::uint32_t distance_symbol(std::uint32_t distance, std::uint32_t& extra,
                              std::uint32_t& extra_bits) {
  for (std::uint32_t i = kDistBase.size(); i-- > 0;) {
    if (distance >= kDistBase[i]) {
      extra = distance - kDistBase[i];
      extra_bits = kDistExtra[i];
      return i;
    }
  }
  extra = 0;
  extra_bits = 0;
  return 0;
}

constexpr std::size_t kWindow = 32768;
constexpr std::uint32_t kMinMatch = 3;
constexpr std::uint32_t kMaxMatch = 258;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1 << kHashBits;
constexpr int kMaxChain = 64;

std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}


// Greedy LZ77 pass producing the token stream both entropy coders share.
std::vector<Token> lz77_tokenize(std::span<const std::uint8_t> raw) {
  std::vector<Token> tokens;
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(raw.size(), -1);

  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::uint32_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= raw.size()) {
      const std::uint32_t h = hash3(raw.data() + pos);
      std::int64_t cand = head[h];
      int chain = kMaxChain;
      while (cand >= 0 && chain-- > 0 &&
             pos - static_cast<std::size_t>(cand) <= kWindow) {
        const auto cpos = static_cast<std::size_t>(cand);
        const std::uint32_t limit = static_cast<std::uint32_t>(
            std::min<std::size_t>(kMaxMatch, raw.size() - pos));
        std::uint32_t len = 0;
        while (len < limit && raw[cpos + len] == raw[pos + len]) ++len;
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_dist = pos - cpos;
          if (len == kMaxMatch) break;
        }
        cand = prev[cpos];
      }
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
    }

    if (best_len >= kMinMatch) {
      Token token;
      token.is_match = true;
      token.length = static_cast<std::uint16_t>(best_len);
      token.distance = static_cast<std::uint16_t>(best_dist);
      tokens.push_back(token);
      for (std::size_t i = 1; i < best_len && pos + i + kMinMatch <= raw.size();
           ++i) {
        const std::uint32_t h = hash3(raw.data() + pos + i);
        prev[pos + i] = head[h];
        head[h] = static_cast<std::int64_t>(pos + i);
      }
      pos += best_len;
    } else {
      Token token;
      token.literal = raw[pos];
      tokens.push_back(token);
      ++pos;
    }
  }
  return tokens;
}

// ------------------------------------------ Huffman code construction

// Length-limited canonical Huffman: plain Huffman depths via pairing, then
// zlib-style overflow redistribution into `max_bits`, then lengths
// re-assigned shortest-first to the most frequent symbols (Kraft holds by
// construction of the per-length counts).
std::vector<std::uint8_t> build_code_lengths(
    const std::vector<std::uint64_t>& freq, int max_bits) {
  const std::size_t n = freq.size();
  std::vector<std::uint8_t> lengths(n, 0);
  std::vector<std::size_t> live;
  for (std::size_t s = 0; s < n; ++s) {
    if (freq[s] > 0) live.push_back(s);
  }
  if (live.empty()) return lengths;
  if (live.size() == 1) {
    lengths[live[0]] = 1;  // DEFLATE needs at least a 1-bit code
    return lengths;
  }

  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t s : live) {
    nodes.push_back({freq[s], -1, -1});
    heap.emplace(freq[s], static_cast<int>(nodes.size() - 1));
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b});
    heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }

  // Iterative depth walk; leaf depths become preliminary code lengths.
  std::vector<std::uint32_t> bl_count(64, 0);
  int max_seen = 0;
  std::vector<std::pair<int, int>> stack{
      {static_cast<int>(nodes.size() - 1), 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.left < 0) {
      const int d = std::min(std::max(depth, 1), 63);
      bl_count[static_cast<std::size_t>(d)]++;
      max_seen = std::max(max_seen, d);
      continue;
    }
    stack.emplace_back(node.left, depth + 1);
    stack.emplace_back(node.right, depth + 1);
  }

  // Clamp to max_bits (zlib's overflow loop): fold deep leaves into
  // max_bits, then repair Kraft by demoting shallower leaves.
  if (max_seen > max_bits) {
    std::uint32_t overflow = 0;
    for (int bits = max_bits + 1; bits <= max_seen; ++bits) {
      overflow += bl_count[static_cast<std::size_t>(bits)];
      bl_count[static_cast<std::size_t>(max_bits)] +=
          bl_count[static_cast<std::size_t>(bits)];
      bl_count[static_cast<std::size_t>(bits)] = 0;
    }
    while (overflow > 0) {
      int bits = max_bits - 1;
      while (bl_count[static_cast<std::size_t>(bits)] == 0) --bits;
      bl_count[static_cast<std::size_t>(bits)]--;
      bl_count[static_cast<std::size_t>(bits + 1)] += 2;
      bl_count[static_cast<std::size_t>(max_bits)]--;
      overflow -= 2;
    }
  }

  // Most frequent symbols take the shortest codes.
  std::sort(live.begin(), live.end(), [&](std::size_t a, std::size_t b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });
  std::size_t next = 0;
  for (int bits = 1; bits <= max_bits; ++bits) {
    for (std::uint32_t k = 0; k < bl_count[static_cast<std::size_t>(bits)];
         ++k) {
      lengths[live[next++]] = static_cast<std::uint8_t>(bits);
    }
  }
  return lengths;
}

// Canonical codes from lengths (RFC 1951 section 3.2.2).
std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  std::array<std::uint32_t, 16> bl_count{};
  for (std::uint8_t len : lengths) bl_count[len]++;
  bl_count[0] = 0;
  std::array<std::uint32_t, 16> next_code{};
  std::uint32_t code = 0;
  for (int bits = 1; bits <= 15; ++bits) {
    code = (code + bl_count[static_cast<std::size_t>(bits - 1)]) << 1;
    next_code[static_cast<std::size_t>(bits)] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] != 0) codes[s] = next_code[lengths[s]]++;
  }
  return codes;
}

// ------------------------------------------------- token stream encoders

void emit_tokens(BitWriter& out, const std::vector<Token>& tokens,
                 const std::vector<std::uint8_t>& lit_lengths,
                 const std::vector<std::uint32_t>& lit_codes,
                 const std::vector<std::uint8_t>& dist_lengths,
                 const std::vector<std::uint32_t>& dist_codes) {
  for (const Token& token : tokens) {
    if (!token.is_match) {
      out.write_huff(lit_codes[token.literal], lit_lengths[token.literal]);
      continue;
    }
    std::uint32_t extra, extra_bits;
    const std::uint32_t lsym = length_symbol(token.length, extra, extra_bits);
    out.write_huff(lit_codes[lsym], lit_lengths[lsym]);
    if (extra_bits) out.write(extra, extra_bits);
    std::uint32_t dextra, dextra_bits;
    const std::uint32_t dsym =
        distance_symbol(token.distance, dextra, dextra_bits);
    out.write_huff(dist_codes[dsym], dist_lengths[dsym]);
    if (dextra_bits) out.write(dextra, dextra_bits);
  }
  out.write_huff(lit_codes[256], lit_lengths[256]);
}

util::Bytes encode_fixed(const std::vector<Token>& tokens) {
  std::vector<std::uint8_t> lit_lengths(288);
  std::vector<std::uint32_t> lit_codes(288);
  for (std::uint32_t s = 0; s < 288; ++s) {
    const FixedCode c = fixed_literal_code(s);
    lit_lengths[s] = static_cast<std::uint8_t>(c.bits);
    lit_codes[s] = c.code;
  }
  std::vector<std::uint8_t> dist_lengths(30, 5);
  std::vector<std::uint32_t> dist_codes(30);
  for (std::uint32_t s = 0; s < 30; ++s) dist_codes[s] = s;

  BitWriter out;
  out.write(1, 1);  // BFINAL
  out.write(1, 2);  // BTYPE = fixed
  emit_tokens(out, tokens, lit_lengths, lit_codes, dist_lengths, dist_codes);
  return out.finish();
}

// RLE of the concatenated code-length vector using the 16/17/18 alphabet.
struct ClSymbol {
  std::uint8_t symbol;
  std::uint8_t extra;       // repeat payload
  std::uint8_t extra_bits;  // 0, 2, 3 or 7
};

std::vector<ClSymbol> rle_code_lengths(
    const std::vector<std::uint8_t>& lengths) {
  std::vector<ClSymbol> out;
  std::size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t len = lengths[i];
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == len) ++run;
    if (len == 0) {
      while (run >= 11) {
        const auto take =
            static_cast<std::uint8_t>(std::min<std::size_t>(run, 138));
        out.push_back({18, static_cast<std::uint8_t>(take - 11), 7});
        run -= take;
        i += take;
      }
      if (run >= 3) {
        out.push_back({17, static_cast<std::uint8_t>(run - 3), 3});
        i += run;
        run = 0;
      }
      for (; run > 0; --run, ++i) out.push_back({0, 0, 0});
    } else {
      out.push_back({len, 0, 0});
      ++i;
      --run;
      while (run >= 3) {
        const auto take =
            static_cast<std::uint8_t>(std::min<std::size_t>(run, 6));
        out.push_back({16, static_cast<std::uint8_t>(take - 3), 2});
        run -= take;
        i += take;
      }
      for (; run > 0; --run, ++i) out.push_back({len, 0, 0});
    }
  }
  return out;
}

util::Bytes encode_dynamic(const std::vector<Token>& tokens) {
  std::vector<std::uint64_t> lit_freq(288, 0);
  std::vector<std::uint64_t> dist_freq(30, 0);
  lit_freq[256] = 1;  // end-of-block
  for (const Token& token : tokens) {
    if (!token.is_match) {
      lit_freq[token.literal]++;
      continue;
    }
    std::uint32_t extra, extra_bits;
    lit_freq[length_symbol(token.length, extra, extra_bits)]++;
    dist_freq[distance_symbol(token.distance, extra, extra_bits)]++;
  }
  // Keep both trees decodable even for degenerate streams: at least two
  // distance codes and two literal codes.
  if (std::count_if(dist_freq.begin(), dist_freq.end(),
                    [](std::uint64_t f) { return f > 0; }) < 2) {
    dist_freq[0] = std::max<std::uint64_t>(dist_freq[0], 1);
    dist_freq[1] = std::max<std::uint64_t>(dist_freq[1], 1);
  }
  if (std::count_if(lit_freq.begin(), lit_freq.end(),
                    [](std::uint64_t f) { return f > 0; }) < 2) {
    lit_freq[0] = std::max<std::uint64_t>(lit_freq[0], 1);
  }

  const auto lit_lengths = build_code_lengths(lit_freq, 15);
  const auto dist_lengths = build_code_lengths(dist_freq, 15);
  const auto lit_codes = canonical_codes(lit_lengths);
  const auto dist_codes = canonical_codes(dist_lengths);

  // Trim trailing zero lengths (HLIT >= 257, HDIST >= 1).
  std::size_t hlit = 288;
  while (hlit > 257 && lit_lengths[hlit - 1] == 0) --hlit;
  std::size_t hdist = 30;
  while (hdist > 1 && dist_lengths[hdist - 1] == 0) --hdist;

  std::vector<std::uint8_t> all_lengths(
      lit_lengths.begin(),
      lit_lengths.begin() + static_cast<std::ptrdiff_t>(hlit));
  all_lengths.insert(
      all_lengths.end(), dist_lengths.begin(),
      dist_lengths.begin() + static_cast<std::ptrdiff_t>(hdist));
  const auto cl_symbols = rle_code_lengths(all_lengths);

  std::vector<std::uint64_t> cl_freq(19, 0);
  for (const auto& s : cl_symbols) cl_freq[s.symbol]++;
  const auto cl_lengths = build_code_lengths(cl_freq, 7);
  const auto cl_codes = canonical_codes(cl_lengths);

  static constexpr std::array<std::uint8_t, 19> kClOrder = {
      16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};
  std::size_t hclen = 19;
  while (hclen > 4 && cl_lengths[kClOrder[hclen - 1]] == 0) --hclen;

  BitWriter out;
  out.write(1, 1);  // BFINAL
  out.write(2, 2);  // BTYPE = dynamic
  out.write(static_cast<std::uint32_t>(hlit - 257), 5);
  out.write(static_cast<std::uint32_t>(hdist - 1), 5);
  out.write(static_cast<std::uint32_t>(hclen - 4), 4);
  for (std::size_t i = 0; i < hclen; ++i) {
    out.write(cl_lengths[kClOrder[i]], 3);
  }
  for (const auto& s : cl_symbols) {
    out.write_huff(cl_codes[s.symbol], cl_lengths[s.symbol]);
    if (s.extra_bits) out.write(s.extra, s.extra_bits);
  }
  emit_tokens(out, tokens, lit_lengths, lit_codes, dist_lengths, dist_codes);
  return out.finish();
}

}  // namespace

util::Bytes deflate_fixed(std::span<const std::uint8_t> raw) {
  return encode_fixed(lz77_tokenize(raw));
}

util::Bytes deflate_dynamic(std::span<const std::uint8_t> raw) {
  return encode_dynamic(lz77_tokenize(raw));
}

util::Bytes deflate(std::span<const std::uint8_t> raw) {
  const auto tokens = lz77_tokenize(raw);
  auto fixed = encode_fixed(tokens);
  auto dynamic = encode_dynamic(tokens);
  return dynamic.size() < fixed.size() ? std::move(dynamic) : std::move(fixed);
}

}  // namespace gauge::zipfile
