// Raw DEFLATE (RFC 1951) implemented from scratch.
//
// - inflate(): full decompressor (stored, fixed-Huffman and dynamic-Huffman
//   blocks) — every APK/OBB entry the pipeline extracts goes through this.
// - deflate(): compressor with greedy LZ77 matching over hash chains; the
//   token stream is entropy-coded twice — fixed-Huffman and dynamic-Huffman
//   (frequency-derived, length-limited canonical codes) — and the smaller
//   encoding wins, as zlib does per block.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::zipfile {

util::Result<util::Bytes> inflate(std::span<const std::uint8_t> compressed,
                                  std::size_t max_output = 1ull << 31);

util::Bytes deflate(std::span<const std::uint8_t> raw);

// Single-strategy encoders, exposed for tests and size ablations.
util::Bytes deflate_fixed(std::span<const std::uint8_t> raw);
util::Bytes deflate_dynamic(std::span<const std::uint8_t> raw);

}  // namespace gauge::zipfile
