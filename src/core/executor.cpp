#include "core/executor.hpp"

#include <map>
#include <optional>
#include <utility>

#include "android/detect.hpp"
#include "core/pipeline.hpp"
#include "core/taskclassify.hpp"
#include "formats/plugin.hpp"
#include "nn/checksum.hpp"
#include "nn/zoo.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// One anchored model file parsed through its framework's plugin (plus its
// pre-read weights sibling for the two-file formats). Returns nullopt when
// parsing fails.
struct ParsedModel {
  nn::Graph graph;
  formats::Framework framework;
  std::size_t file_bytes = 0;
};

std::optional<ParsedModel> parse_model(const util::Bytes& data,
                                       const util::Bytes* weights,
                                       formats::Framework framework) {
  const formats::FormatPlugin* plugin =
      formats::PluginRegistry::instance().find(framework);
  if (plugin == nullptr) return std::nullopt;
  auto graph = plugin->parse(data, weights);
  if (!graph.ok()) return std::nullopt;
  ParsedModel out;
  out.framework = framework;
  out.file_bytes = data.size() + (weights != nullptr ? weights->size() : 0);
  out.graph = std::move(graph).take();
  return out;
}

// Weights-only companions of two-file formats: counted as candidates but
// never anchor a model record. A central-directory lookup suffices — the
// graph sibling's bytes are not needed to establish companionship. The
// check is path-based (any plugin recognising `path` as its weights side
// with the graph sibling present), matching signature validation which may
// attribute e.g. a TFLite-signed .bin to TfLite while a .param sibling
// still marks it as ncnn weights.
bool is_weights_companion(const std::string& path, const android::Apk& apk) {
  for (const auto* plugin : formats::PluginRegistry::instance().plugins()) {
    const std::string primary = plugin->companion_primary(path);
    if (!primary.empty() && apk.contains(primary)) return true;
  }
  return false;
}

// Builds the instance-agnostic analysis prototype for one parsed model.
// record_id, app_package, category and file_path are per-instance and get
// assigned by the merge stage; the heavy trace/digest payload is shared.
ModelRecord analyse_model(ParsedModel parsed, const std::string& path) {
  ModelRecord record;
  record.framework = parsed.framework;
  record.file_path = path;
  record.file_bytes = parsed.file_bytes;

  const nn::Graph& graph = parsed.graph;
  record.checksum = nn::model_checksum(graph);
  record.architecture_checksum = nn::architecture_checksum(graph);

  auto analysis = std::make_shared<ModelAnalysis>();
  analysis->layer_digests = nn::layer_weight_checksums(graph);

  auto trace = nn::trace_model(graph);
  if (trace.ok()) {
    analysis->trace = std::move(trace).take();
    analysis->op_family_counts = analysis->trace.op_family_counts();
    record.modality = infer_modality(analysis->trace);
    record.task = classify_task(
        std::string{util::basename(graph.name.empty() ? path : graph.name)},
        analysis->trace);
  } else {
    record.task = kUnidentified;
  }

  for (const auto& layer : graph.layers()) {
    if (layer.name.starts_with("cluster_")) record.has_cluster_prefix = true;
    if (layer.name.starts_with("prune_")) record.has_prune_prefix = true;
    if (layer.type == nn::LayerType::Dequantize) {
      record.has_dequantize_layer = true;
    }
    if (layer.has_weights() && layer.weight_bits == 8) {
      record.int8_weights = true;
    }
    if (layer.act_bits == 8) record.int8_activations = true;
  }
  record.near_zero_weight_fraction = nn::near_zero_weight_fraction(graph);
  record.analysis = std::move(analysis);
  return record;
}

}  // namespace

AppOutcome process_app(const android::PlayStore& play,
                       const PipelineOptions& options, AnalysisCache& cache,
                       const android::AppEntry& entry) {
  auto& metrics = telemetry::current_registry();

  AppOutcome out;
  out.package = entry.package;

  // Every registry increment this app makes funnels through `bump` so the
  // delta lands in out.counters too — a resumed run re-applies the deltas
  // verbatim instead of re-running the app, and a cluster coordinator
  // applies them for outcomes computed in a worker process.
  const auto bump = [&metrics, &out](const std::string& name,
                                     std::int64_t n = 1) {
    metrics.counter(name).increment(n);
    out.counters[name] += n;
  };
  const auto drop = [&bump](const char* reason) {
    bump(std::string{"gauge.pipeline.drop."} + reason);
  };

  // Root of the per-app stage spans. On a pool worker this is a root span
  // on its own thread (span parents never cross threads); the annotations
  // tie it back to the crawl position.
  telemetry::Span app_span{"pipeline.app"};
  app_span.annotate("package", entry.package);
  app_span.annotate("category", entry.category);

  bump("gauge.pipeline.apps_crawled");

  auto pkg = [&] {
    telemetry::Span span{"pipeline.download"};
    return play.download(entry.package, options.snapshot,
                         options.device_profile);
  }();
  if (!pkg.ok()) {
    drop("download_failed");
    out.status = AppOutcome::Status::DownloadFailed;
    out.error = pkg.error();
    return out;
  }
  auto apk = [&] {
    telemetry::Span span{"pipeline.apk_open"};
    return android::Apk::open(std::move(pkg.value().apk), options.zip_limits);
  }();
  if (!apk.ok()) {
    drop("bad_apk");
    out.status = AppOutcome::Status::BadApk;
    out.error = apk.error();
    return out;
  }
  // Hostile entry names (path traversal, absolute paths) were hidden by the
  // zip reader; surface the count without failing the whole APK.
  if (const std::size_t rejected = apk.value().rejected_entry_names();
      rejected > 0) {
    bump("gauge.pipeline.drop.bad_entry_name",
         static_cast<std::int64_t>(rejected));
  }

  AppRecord& app = out.app;
  app.package = entry.package;
  app.title = entry.title;
  app.category = entry.category;
  app.installs = entry.installs;

  {
    // Static detection: ML stacks, delegates, cloud APIs.
    telemetry::Span span{"pipeline.detect"};
    for (const auto& hit : android::detect_ml_stacks(apk.value())) {
      app.ml_stacks.push_back(android::ml_stack_name(hit.stack));
      if (hit.stack == android::MlStack::NnApi) app.uses_nnapi = true;
      if (hit.stack == android::MlStack::Xnnpack) app.uses_xnnpack = true;
      if (hit.stack == android::MlStack::Snpe) app.uses_snpe = true;
    }
    app.uses_ml = android::uses_ml(apk.value());
    for (const auto& hit : android::detect_cloud_apis(apk.value())) {
      app.cloud_providers.push_back(
          android::cloud_provider_name(hit.provider));
    }
  }

  // Read-once memo for this APK's entries: the weights sibling of a
  // two-file model is needed by the content key, the parser and (as a
  // candidate in its own right) the validation loop — inflate it once.
  std::map<std::string, util::Result<util::Bytes>, std::less<>> reads;
  const auto read_entry =
      [&](const std::string& name) -> const util::Result<util::Bytes>& {
    auto it = reads.find(name);
    if (it == reads.end()) {
      it = reads.emplace(name, apk.value().read(name)).first;
    }
    return it->second;
  };

  // Model extraction from the base APK. (Span closed explicitly before the
  // side-container sweep, which it should not cover.)
  std::optional<telemetry::Span> extract_span{std::in_place,
                                              "pipeline.extract"};
  const auto& registry = formats::PluginRegistry::instance();
  for (const auto& name : apk.value().entry_names()) {
    if (!registry.is_candidate(name)) continue;
    app.candidate_files++;
    const auto& data = read_entry(name);
    if (!data.ok()) {
      // Entries tripping the inflation caps are an attack signature, not an
      // I/O hiccup — give them their own drop bucket.
      drop(zipfile::is_zip_bomb_error(data.error()) ? "zip_bomb"
                                                    : "entry_read_failed");
      continue;
    }
    if (!registry.any_candidate_has_plugin(name)) {
      // Every framework claiming this extension lacks a parser (e.g. a
      // .joblib Sklearn pickle): surfaced per framework instead of being
      // folded into bad_signature.
      const auto candidates = registry.candidate_frameworks(name);
      const char* fw_name = registry.framework_name(candidates.front());
      drop("no_parser");
      bump(std::string{"gauge.pipeline.drop.no_parser."} + fw_name);
      ++out.no_parser[fw_name];
      ++out.models_rejected;
      continue;
    }
    const auto framework = [&] {
      telemetry::Span span{"pipeline.validate"};
      return registry.validate_signature(name, data.value());
    }();
    if (!framework) {  // obfuscated/encrypted or not a model
      drop("bad_signature");
      ++out.models_rejected;
      continue;
    }
    if (is_weights_companion(name, apk.value())) {
      drop("weights_companion");
      continue;
    }
    // Two-file formats: read the weights sibling exactly once and thread it
    // through both the content key and the parser.
    const util::Bytes* weights = nullptr;
    if (const std::string weights_path =
            registry.find(*framework)->companion(name);
        !weights_path.empty()) {
      if (const auto& sibling = read_entry(weights_path); sibling.ok()) {
        weights = &sibling.value();
      }
    }
    // Content key covers the graph file; two-file formats append the
    // weights blob so fine-tuned caffe/ncnn variants don't collide.
    std::uint64_t content_key = util::fnv1a64(data.value());
    if (weights != nullptr) {
      content_key = content_key * 1099511628211ULL + util::fnv1a64(*weights);
    }
    // Once-only analysis: duplicates (the common case — off-the-shelf
    // models shipped by many apps) adopt the owner's prototype, even when
    // owner and duplicate race on different workers. The cache increments
    // hit/miss registry counters itself; `computed` attributes the same
    // delta to this outcome for journal replay.
    bool computed = false;
    auto proto =
        cache.find_or_compute(content_key, [&]() -> AnalysisCache::Proto {
          computed = true;
          auto parsed = [&] {
            telemetry::Span span{"pipeline.parse"};
            return parse_model(data.value(), weights, *framework);
          }();
          if (!parsed) {
            drop("parse_failed");
            ++out.models_rejected;
            return nullptr;
          }
          telemetry::Span span{"pipeline.analyse"};
          return std::make_shared<const ModelRecord>(
              analyse_model(std::move(*parsed), name));
        });
    ++out.counters[computed ? "gauge.pipeline.cache_misses"
                            : "gauge.pipeline.cache_hits"];
    if (!proto) continue;
    app.validated_models++;
    out.extracted.push_back({name, content_key, std::move(proto)});
    bump("gauge.pipeline.models_validated");
  }
  extract_span.reset();

  // §4.2: sweep post-install deliverables for models.
  const auto sweep = [&](const android::SideContainer& side) {
    auto entries = android::side_container_entries(side);
    if (!entries.ok()) return;
    for (const auto& name : entries.value()) {
      app.side_container_files++;
      if (formats::is_candidate_model_file(name)) {
        app.side_container_models++;
      }
    }
  };
  for (const auto& side : pkg.value().expansions) sweep(side);
  for (const auto& side : pkg.value().asset_packs) sweep(side);

  return out;
}

LocalExecutor::LocalExecutor(const android::PlayStore& play,
                             const PipelineOptions& options,
                             AnalysisCache& cache)
    : play_{play}, options_{options}, cache_{cache}, pool_{options.threads} {
  // Bounded in-flight window: enough tasks to keep every worker busy while
  // the merge stage drains in submission order, without downloading a whole
  // category ahead of the merge. Serial (0 threads): a window of 1 makes
  // the driver drain each outcome before submitting the next.
  window_ = pool_.size() == 0
                ? 1
                : std::max<std::size_t>(2 * pool_.size(), 4);
}

void LocalExecutor::submit(const android::AppEntry& entry) {
  const android::AppEntry* target = &entry;
  in_flight_.push_back(pool_.submit([this, target] {
    return process_app(play_, options_, cache_, *target);
  }));
}

AppOutcome LocalExecutor::next() {
  AppOutcome out = in_flight_.front().get();
  in_flight_.pop_front();
  return out;
}

}  // namespace gauge::core
