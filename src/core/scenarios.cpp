#include "core/scenarios.hpp"

#include <cmath>

#include "core/runtime.hpp"
#include "device/latency.hpp"
#include "util/stats.hpp"

namespace gauge::core {

namespace {

ScenarioStats stats_from(const std::vector<double>& mah) {
  ScenarioStats stats;
  stats.models = mah.size();
  if (mah.empty()) return stats;
  const auto summary = util::summarize(mah);
  stats.avg_mah = summary.mean;
  stats.stdev_mah = summary.stdev;
  stats.median_mah = summary.median;
  stats.min_mah = summary.min;
  stats.max_mah = summary.max;
  return stats;
}

// Inference count for a sound-recognition model: the model consumes an
// audio window of `frames x hop` seconds per forward pass.
double sound_inferences(const nn::ModelTrace& trace,
                        const ScenarioAssumptions& assumptions) {
  // Input is [1, frames, mel, 1] (CNN) or [1, frames, features] (RNN).
  double frames = 16.0;
  for (const auto& layer : trace.layers) {
    if (layer.type == nn::LayerType::Input && layer.output_shape.rank() >= 2) {
      frames = static_cast<double>(layer.output_shape[1]);
      break;
    }
  }
  const double window_s = std::max(frames * assumptions.frame_hop_s, 1e-3);
  return assumptions.audio_hours * 3600.0 / window_s;
}

double scenario_mah(const device::Device& dev, const ModelRecord& model,
                    double inferences, double total_span_s) {
  // Steady-state thermal: long scenarios run at the sustained factor.
  device::RunConfig config;
  config.sustained_seconds = total_span_s > 60.0 ? 300.0 : 0.0;
  const auto r =
      device::simulate_inference(dev, model.trace(), config, model.checksum);
  const double energy_j = r.soc_energy_j * inferences;
  return device::battery_drain_mah(dev, energy_j);
}

}  // namespace

double battery_share(double mah, double battery_mah) {
  return battery_mah > 0.0 ? mah / battery_mah : 0.0;
}

std::vector<ScenarioReport> run_scenarios(
    const SnapshotDataset& dataset, const std::vector<device::Device>& devices,
    const ScenarioAssumptions& assumptions) {
  const auto models = distinct_models(dataset);

  std::vector<ScenarioReport> reports;
  for (const auto& dev : devices) {
    ScenarioReport report;
    report.device = dev.name;
    std::vector<double> sound, typing, segmentation;
    for (const ModelRecord* model : models) {
      if (model->task == "sound recognition") {
        sound.push_back(scenario_mah(
            dev, *model, sound_inferences(model->trace(), assumptions), 3600.0));
      } else if (model->task == "auto-complete") {
        typing.push_back(scenario_mah(
            dev, *model, static_cast<double>(assumptions.words_typed), 60.0));
      } else if (model->task == "semantic segmentation") {
        segmentation.push_back(scenario_mah(
            dev, *model,
            assumptions.video_hours * 3600.0 * assumptions.video_fps, 3600.0));
      }
    }
    report.sound_recognition = stats_from(sound);
    report.typing = stats_from(typing);
    report.segmentation = stats_from(segmentation);
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace gauge::core
