// The gaugeNN pipeline (paper Fig. 1): crawl the store's top charts, download
// every app package, extract candidate model files from APK + OBBs + asset
// packs, validate signatures, parse the survivors into graphs and build the
// offline-analysis records (architecture, FLOPs/params, task, checksums,
// optimisation census, cloud-API and ML-stack detection).
//
// Concurrency model: categories are walked in order on the calling thread;
// within a category the per-app work (download → apk-open → detect →
// extract → validate → parse → analyse) fans out to a thread pool with a
// bounded in-flight window. Duplicate model files are analysed exactly once
// via a sharded once-only cache, and a deterministic merge stage assigns
// record ids and dataset/DocStore order so the output is identical to a
// serial run regardless of thread count or completion order.
#pragma once

#include <map>
#include <thread>

#include "android/playstore.hpp"
#include "core/records.hpp"

namespace gauge::core {

struct PipelineOptions {
  android::Snapshot snapshot = android::Snapshot::Apr2021;
  std::string device_profile = "SM-G977B";  // the S10 5G used by the paper
  // Restrict to specific categories (empty = all); mostly for tests.
  std::vector<std::string> categories;
  // Per-category crawl cap (the store itself caps charts at 500).
  std::size_t max_apps_per_category = 500;
  // Worker threads for the per-app fan-out. 0 = serial fallback (everything
  // on the calling thread); the default is whatever the hardware offers.
  // Any value yields a byte-identical SnapshotDataset.
  unsigned threads = std::thread::hardware_concurrency();
};

struct SnapshotDataset {
  android::Snapshot snapshot = android::Snapshot::Apr2021;
  std::vector<AppRecord> apps;
  std::vector<ModelRecord> models;
  store::DocStore app_docs;
  store::DocStore model_docs;
  // Candidate files every candidate framework of which lacks a parser,
  // keyed by framework name (first candidate, enum order). These count as
  // rejected models; the breakdown feeds the §3.1 report table.
  std::map<std::string, std::size_t> no_parser_drops;

  std::size_t apps_crawled() const { return apps.size(); }
  std::size_t ml_apps() const;
  std::size_t apps_with_models() const;
  std::size_t total_models() const { return models.size(); }
  std::size_t unique_model_count() const;  // distinct md5 checksums
};

SnapshotDataset run_pipeline(const android::PlayStore& play,
                             const PipelineOptions& options = {});

}  // namespace gauge::core
