// The gaugeNN pipeline (paper Fig. 1): crawl the store's top charts, download
// every app package, extract candidate model files from APK + OBBs + asset
// packs, validate signatures, parse the survivors into graphs and build the
// offline-analysis records (architecture, FLOPs/params, task, checksums,
// optimisation census, cloud-API and ML-stack detection).
//
// Concurrency model: categories are walked in order on the calling thread;
// within a category the per-app work (download → apk-open → detect →
// extract → validate → parse → analyse) fans out to a thread pool with a
// bounded in-flight window. Duplicate model files are analysed exactly once
// via a sharded once-only cache, and a deterministic merge stage assigns
// record ids and dataset/DocStore order so the output is identical to a
// serial run regardless of thread count or completion order.
//
// Execution is split driver/executor (DESIGN.md §15): core/driver.hpp owns
// the deterministic parts, core/executor.hpp runs apps in-process and
// core/dist.hpp runs them on a coordinator/worker cluster. run_pipeline is
// the facade that wires the right executor to the driver from the options.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>

#include "android/playstore.hpp"
#include "core/dist.hpp"
#include "core/journal.hpp"
#include "core/records.hpp"
#include "util/retry.hpp"
#include "zipfile/zip.hpp"

namespace gauge::core {

struct PipelineOptions {
  android::Snapshot snapshot = android::Snapshot::Apr2021;
  std::string device_profile = "SM-G977B";  // the S10 5G used by the paper
  // Restrict to specific categories (empty = all); mostly for tests.
  std::vector<std::string> categories;
  // Per-category crawl cap (the store itself caps charts at 500).
  std::size_t max_apps_per_category = 500;
  // Worker threads for the per-app fan-out. 0 = serial fallback (everything
  // on the calling thread); the default is whatever the hardware offers.
  // Any value yields a byte-identical SnapshotDataset.
  unsigned threads = std::thread::hardware_concurrency();
  // Cluster fan-out (DESIGN.md §15): worker processes the chart is sharded
  // over. 0 = in-process execution. With workers > 0 the crawl runs as a
  // coordinator/worker cluster over loopback TCP; `threads` then sizes each
  // worker's internal pool (and its assignment capacity). Any (workers,
  // threads) pair yields a byte-identical SnapshotDataset.
  unsigned workers = 0;
  // An assignment not answered within this budget is requeued to another
  // worker (the original result, if it ever lands, is deduplicated).
  std::chrono::milliseconds worker_deadline{10'000};
  // With no pending work, an idle worker steals (duplicates) the oldest
  // assignment outstanding longer than this.
  std::chrono::milliseconds steal_after{2'000};
  // max_attempts bounds how often one app is (re)assigned before the
  // coordinator quarantines it and runs it inline. Backoff fields unused.
  util::RetryPolicy worker_retry;
  // Deterministic worker fault injection (tests, check.sh smoke); see
  // core::WorkerFaultPlan.
  WorkerFaultPlan worker_faults;
  // How workers are spawned; empty = fork-based process_worker_launcher().
  // Tests substitute thread_worker_launcher() so TSan can follow.
  WorkerLauncher worker_launcher;
  // Crash-safe run journal (DESIGN.md §10). When set, every completed
  // per-app outcome is append-logged (and fsync'd) to this file as it is
  // merged. With `resume` the journal is replayed first: already-completed
  // apps are skipped (their records and telemetry deltas re-applied, their
  // analysis prototypes seeded into the cache) and the crawl continues from
  // the first unprocessed app — the resulting SnapshotDataset is
  // byte-identical to an uninterrupted run at any thread count. Journal
  // misconfiguration (unreadable file, meta mismatch) throws.
  std::string journal_path;
  bool resume = false;
  // Deterministic crash injection into the journal path (tests and the
  // check.sh crash-resume smoke); see core::CrashPlan.
  CrashPlan crash_plan;
  // Cooperative cancellation (SIGINT): when the pointee becomes true the
  // pipeline stops dispatching new apps, drains the in-flight window
  // through the merge stage (journaling every drained outcome) and returns
  // the partial dataset with `interrupted` set.
  const std::atomic<bool>* cancel = nullptr;
  // Zip extraction bounds for untrusted APK entries (zip-bomb guard).
  zipfile::ReadLimits zip_limits;
};

struct SnapshotDataset {
  android::Snapshot snapshot = android::Snapshot::Apr2021;
  std::vector<AppRecord> apps;
  std::vector<ModelRecord> models;
  store::DocStore app_docs;
  store::DocStore model_docs;
  // Candidate files every candidate framework of which lacks a parser,
  // keyed by framework name (first candidate, enum order). These count as
  // rejected models; the breakdown feeds the §3.1 report table.
  std::map<std::string, std::size_t> no_parser_drops;
  // True when the run stopped early on PipelineOptions::cancel; the dataset
  // is the journaled prefix and the run can be resumed.
  bool interrupted = false;

  std::size_t apps_crawled() const { return apps.size(); }
  std::size_t ml_apps() const;
  std::size_t apps_with_models() const;
  std::size_t total_models() const { return models.size(); }
  std::size_t unique_model_count() const;  // distinct md5 checksums
};

SnapshotDataset run_pipeline(const android::PlayStore& play,
                             const PipelineOptions& options = {});

// Order-sensitive digest over both DocStore mirrors plus the record counts:
// two datasets agree on this iff they agree document-for-document (ids,
// insertion order, every serialised field). Used by the parity and resume
// tests and by `gaugenn_cli --digest`.
std::uint64_t dataset_digest(const SnapshotDataset& dataset);

}  // namespace gauge::core
