// Offline analyses over a crawled snapshot: model uniqueness and
// fine-tuning lineage (§4.5), the model-level optimisation census (§6.1)
// and the cross-snapshot temporal diff (§4.6 / Fig. 5).
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace gauge::core {

struct UniquenessReport {
  std::size_t total_models = 0;
  std::size_t unique_models = 0;
  double unique_fraction = 0.0;  // paper: 19.1%
  // The paper's "close to 80.9% of the models are shared across two or
  // more applications" is the complement of the unique fraction; reported
  // with the same arithmetic here.
  double shared_across_apps_fraction = 0.0;
  // Stricter instance-level metric: share of instances whose checksum
  // appears in >= 2 copies or >= 2 apps.
  double multi_copy_fraction = 0.0;
  // Among unique models (duplicates excluded): how many share >= 20% of
  // their weight layers with another unique model (paper: 9.02%) and how
  // many differ from a same-architecture sibling in <= 3 layers (4.2%).
  std::size_t finetuned_models = 0;
  double finetuned_fraction = 0.0;
  std::size_t small_delta_models = 0;
  double small_delta_fraction = 0.0;
};

UniquenessReport analyze_uniqueness(const SnapshotDataset& dataset);

struct OptimisationReport {
  std::size_t total_models = 0;
  std::size_t clustering_models = 0;  // "cluster_" prefix (paper: 0)
  std::size_t pruning_models = 0;     // "prune_" prefix (paper: 0)
  double dequantize_fraction = 0.0;   // paper: 10.3%
  double int8_weight_fraction = 0.0;  // paper: 20.27%
  double int8_act_fraction = 0.0;     // paper: 10.31%
  double near_zero_weight_share = 0.0;  // weight-mass weighted; paper: 3.15%
};

OptimisationReport analyze_optimisations(const SnapshotDataset& dataset);

struct TemporalRow {
  std::string category;
  int added = 0;    // model instances new in the later snapshot
  int removed = 0;  // model instances gone from the earlier snapshot
  int delta() const { return added - removed; }
};

// Instance identity = (app package, path, checksum). Rows sorted by delta,
// descending — the Fig. 5 ordering.
std::vector<TemporalRow> temporal_diff(const SnapshotDataset& earlier,
                                       const SnapshotDataset& later);

}  // namespace gauge::core
