// Task classification of extracted models (paper §4.4): the paper had three
// ML researchers label every model from its name, I/O dimensions and layer
// types, taking a majority vote. We reproduce that as three independent
// heuristic classifiers and a majority vote; ties and three-way disagreement
// yield "unidentified" (the paper identified 91.9%).
#pragma once

#include <string>

#include "nn/graph.hpp"
#include "nn/trace.hpp"

namespace gauge::core {

inline constexpr const char* kUnidentified = "unidentified";

// Classifier #1: filename / model-name keyword hints.
std::string classify_by_name(const std::string& name);
// Classifier #2: input/output tensor dimensions.
std::string classify_by_io(const nn::ModelTrace& trace);
// Classifier #3: layer-structure fingerprint.
std::string classify_by_layers(const nn::ModelTrace& trace);

// Majority vote of the three (>= 2 agreeing). When no majority exists, a
// single non-abstaining classifier wins; otherwise kUnidentified.
std::string classify_task(const std::string& name, const nn::ModelTrace& trace);

// Coarse modality from the model's input rank/shape.
nn::Modality infer_modality(const nn::ModelTrace& trace);

}  // namespace gauge::core
