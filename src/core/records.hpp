// Analysis records produced by the gaugeNN pipeline. ModelRecord keeps a
// model's *analysis* surface (checksums, trace, layer census, quantisation
// facts) rather than the full graph, so a whole snapshot stays small in
// memory; graphs can always be re-materialised from the store by id.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "formats/registry.hpp"
#include "nn/graph.hpp"
#include "nn/trace.hpp"
#include "store/docstore.hpp"

namespace gauge::core {

// The heavy part of a model's offline analysis (the full layer trace and
// per-layer digests dominate a record's footprint). Off-the-shelf models
// recur across many apps, so instances of the same content hash share one
// immutable payload via shared_ptr instead of deep-copying it per record.
struct ModelAnalysis {
  nn::ModelTrace trace;
  std::vector<std::string> layer_digests;
  std::map<std::string, std::int64_t> op_family_counts;
};

struct ModelRecord {
  int record_id = 0;
  std::string app_package;
  std::string category;
  formats::Framework framework = formats::Framework::TfLite;
  std::string file_path;   // path inside the APK
  std::size_t file_bytes = 0;

  // Identity.
  std::string checksum;               // md5 over graph + weights
  std::string architecture_checksum;  // md5 over graph only

  // Offline analysis.
  nn::Modality modality = nn::Modality::Unknown;
  std::string task;  // classifier output; "unidentified" when voting fails

  // Optimisation census (§6.1).
  bool has_cluster_prefix = false;
  bool has_prune_prefix = false;
  bool has_dequantize_layer = false;
  bool int8_weights = false;
  bool int8_activations = false;
  double near_zero_weight_fraction = 0.0;

  // Heavy analysis payload, shared across all instance records of the same
  // content hash (may be null for hand-built records; accessors then yield
  // an empty analysis).
  std::shared_ptr<const ModelAnalysis> analysis;

  const nn::ModelTrace& trace() const;
  const std::vector<std::string>& layer_digests() const;
  const std::map<std::string, std::int64_t>& op_family_counts() const;
  // Copy-on-write access for builders and tests: detaches from any shared
  // payload before mutating.
  ModelAnalysis& mutable_analysis();
};

struct AppRecord {
  std::string package;
  std::string title;
  std::string category;
  std::int64_t installs = 0;
  bool uses_ml = false;  // ML library present (§3.1 criterion)
  std::vector<std::string> ml_stacks;
  std::vector<std::string> cloud_providers;
  bool uses_nnapi = false;
  bool uses_xnnpack = false;
  bool uses_snpe = false;
  int candidate_files = 0;   // extension-matched files
  int validated_models = 0;  // passed signature validation + parse
  std::vector<int> model_record_ids;
  int side_container_files = 0;  // OBB/asset-pack entries swept (§4.2)
  int side_container_models = 0;  // model candidates found there (expect 0)
};

// ElasticSearch-style projections for ETL queries.
store::Document to_document(const AppRecord& app);
store::Document to_document(const ModelRecord& model);

}  // namespace gauge::core
