#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/fileio.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// On-disk framing. Every frame is
//   u32 magic | u32 payload_len | payload | u32 crc32(payload)
// so replay can detect a torn or corrupt tail without trusting anything
// beyond the bytes it has already validated. The first frame is the meta
// frame; every later frame is one AppOutcome.
constexpr std::uint32_t kFrameMagic = 0x314C4A47;  // "GJL1"
constexpr std::uint16_t kVersion = 1;
constexpr std::uint8_t kKindMeta = 0;
constexpr std::uint8_t kKindApp = 1;

void put_string_vector(util::ByteWriter& w, const std::vector<std::string>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) w.str(s);
}

bool get_string_vector(util::ByteReader& r, std::vector<std::string>& v) {
  const std::uint32_t n = r.u32();
  if (n > r.remaining()) return false;  // each element needs >= 4 bytes
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.str());
  return r.ok();
}

void put_analysis(util::ByteWriter& w, const ModelAnalysis& analysis) {
  const auto& trace = analysis.trace;
  w.u32(static_cast<std::uint32_t>(trace.layers.size()));
  for (const auto& layer : trace.layers) {
    w.u8(static_cast<std::uint8_t>(layer.type));
    w.str(layer.name);
    w.i64(layer.macs);
    w.i64(layer.flops);
    w.i64(layer.params);
    w.i64(layer.bytes_read);
    w.i64(layer.bytes_written);
    w.u32(static_cast<std::uint32_t>(layer.output_shape.dims.size()));
    for (const std::int64_t d : layer.output_shape.dims) w.i64(d);
  }
  w.i64(trace.total_macs);
  w.i64(trace.total_flops);
  w.i64(trace.total_params);
  w.i64(trace.total_bytes);
  w.i64(trace.peak_activation_bytes);
  put_string_vector(w, analysis.layer_digests);
  w.u32(static_cast<std::uint32_t>(analysis.op_family_counts.size()));
  for (const auto& [family, count] : analysis.op_family_counts) {
    w.str(family);
    w.i64(count);
  }
}

bool get_analysis(util::ByteReader& r, ModelAnalysis& analysis) {
  auto& trace = analysis.trace;
  const std::uint32_t layers = r.u32();
  if (layers > r.remaining()) return false;
  trace.layers.reserve(layers);
  for (std::uint32_t i = 0; i < layers; ++i) {
    nn::LayerCost layer;
    layer.type = static_cast<nn::LayerType>(r.u8());
    layer.name = r.str();
    layer.macs = r.i64();
    layer.flops = r.i64();
    layer.params = r.i64();
    layer.bytes_read = r.i64();
    layer.bytes_written = r.i64();
    const std::uint32_t rank = r.u32();
    if (rank > r.remaining()) return false;
    layer.output_shape.dims.reserve(rank);
    for (std::uint32_t d = 0; d < rank; ++d) {
      layer.output_shape.dims.push_back(r.i64());
    }
    trace.layers.push_back(std::move(layer));
  }
  trace.total_macs = r.i64();
  trace.total_flops = r.i64();
  trace.total_params = r.i64();
  trace.total_bytes = r.i64();
  trace.peak_activation_bytes = r.i64();
  if (!get_string_vector(r, analysis.layer_digests)) return false;
  const std::uint32_t families = r.u32();
  if (families > r.remaining()) return false;
  for (std::uint32_t i = 0; i < families; ++i) {
    std::string family = r.str();
    analysis.op_family_counts[std::move(family)] = r.i64();
  }
  return r.ok();
}

void put_proto(util::ByteWriter& w, const ModelRecord& proto) {
  w.u16(static_cast<std::uint16_t>(proto.framework));
  w.str(proto.file_path);
  w.u64(proto.file_bytes);
  w.str(proto.checksum);
  w.str(proto.architecture_checksum);
  w.u8(static_cast<std::uint8_t>(proto.modality));
  w.str(proto.task);
  std::uint8_t flags = 0;
  if (proto.has_cluster_prefix) flags |= 1u << 0;
  if (proto.has_prune_prefix) flags |= 1u << 1;
  if (proto.has_dequantize_layer) flags |= 1u << 2;
  if (proto.int8_weights) flags |= 1u << 3;
  if (proto.int8_activations) flags |= 1u << 4;
  w.u8(flags);
  w.f64(proto.near_zero_weight_fraction);
  w.u8(proto.analysis ? 1 : 0);
  if (proto.analysis) put_analysis(w, *proto.analysis);
}

bool get_proto(util::ByteReader& r, ModelRecord& proto) {
  proto.framework = static_cast<formats::Framework>(r.u16());
  proto.file_path = r.str();
  proto.file_bytes = r.u64();
  proto.checksum = r.str();
  proto.architecture_checksum = r.str();
  proto.modality = static_cast<nn::Modality>(r.u8());
  proto.task = r.str();
  const std::uint8_t flags = r.u8();
  proto.has_cluster_prefix = (flags & (1u << 0)) != 0;
  proto.has_prune_prefix = (flags & (1u << 1)) != 0;
  proto.has_dequantize_layer = (flags & (1u << 2)) != 0;
  proto.int8_weights = (flags & (1u << 3)) != 0;
  proto.int8_activations = (flags & (1u << 4)) != 0;
  proto.near_zero_weight_fraction = r.f64();
  if (r.u8() != 0) {
    auto analysis = std::make_shared<ModelAnalysis>();
    if (!get_analysis(r, *analysis)) return false;
    proto.analysis = std::move(analysis);
  }
  return r.ok();
}

void put_app_record(util::ByteWriter& w, const AppRecord& app) {
  w.str(app.package);
  w.str(app.title);
  w.str(app.category);
  w.i64(app.installs);
  w.u8(app.uses_ml ? 1 : 0);
  put_string_vector(w, app.ml_stacks);
  put_string_vector(w, app.cloud_providers);
  w.u8(app.uses_nnapi ? 1 : 0);
  w.u8(app.uses_xnnpack ? 1 : 0);
  w.u8(app.uses_snpe ? 1 : 0);
  w.i32(app.candidate_files);
  w.i32(app.validated_models);
  w.i32(app.side_container_files);
  w.i32(app.side_container_models);
}

bool get_app_record(util::ByteReader& r, AppRecord& app) {
  app.package = r.str();
  app.title = r.str();
  app.category = r.str();
  app.installs = r.i64();
  app.uses_ml = r.u8() != 0;
  if (!get_string_vector(r, app.ml_stacks)) return false;
  if (!get_string_vector(r, app.cloud_providers)) return false;
  app.uses_nnapi = r.u8() != 0;
  app.uses_xnnpack = r.u8() != 0;
  app.uses_snpe = r.u8() != 0;
  app.candidate_files = r.i32();
  app.validated_models = r.i32();
  app.side_container_files = r.i32();
  app.side_container_models = r.i32();
  return r.ok();
}

// Serialises one outcome. Prototypes are written inline only on their first
// appearance across the journal (tracked by `written_keys`); later records
// reference the content key alone, and replay re-links them — exactly the
// sharing the analysis cache established during the original run.
util::Bytes serialize_outcome(const AppOutcome& outcome,
                              std::set<std::uint64_t>& written_keys) {
  util::ByteWriter w;
  w.u8(kKindApp);
  w.u8(static_cast<std::uint8_t>(outcome.status));
  w.str(outcome.package);
  w.str(outcome.error);
  put_app_record(w, outcome.app);
  w.u32(static_cast<std::uint32_t>(outcome.extracted.size()));
  for (const auto& extracted : outcome.extracted) {
    w.str(extracted.path);
    w.u64(extracted.content_key);
    const bool inline_proto =
        extracted.proto != nullptr &&
        written_keys.insert(extracted.content_key).second;
    w.u8(inline_proto ? 1 : 0);
    if (inline_proto) put_proto(w, *extracted.proto);
  }
  w.u64(outcome.models_rejected);
  w.u32(static_cast<std::uint32_t>(outcome.no_parser.size()));
  for (const auto& [framework, count] : outcome.no_parser) {
    w.str(framework);
    w.u64(count);
  }
  w.u32(static_cast<std::uint32_t>(outcome.counters.size()));
  for (const auto& [name, delta] : outcome.counters) {
    w.str(name);
    w.i64(delta);
  }
  return std::move(w).take();
}

bool deserialize_outcome(
    util::ByteReader& r, AppOutcome& outcome,
    std::map<std::uint64_t, std::shared_ptr<const ModelRecord>>& protos) {
  outcome.status = static_cast<AppOutcome::Status>(r.u8());
  outcome.package = r.str();
  outcome.error = r.str();
  if (!get_app_record(r, outcome.app)) return false;
  const std::uint32_t extracted = r.u32();
  if (extracted > r.remaining()) return false;
  outcome.extracted.reserve(extracted);
  for (std::uint32_t i = 0; i < extracted; ++i) {
    AppOutcome::Extracted entry;
    entry.path = r.str();
    entry.content_key = r.u64();
    if (r.u8() != 0) {
      auto proto = std::make_shared<ModelRecord>();
      if (!get_proto(r, *proto)) return false;
      protos[entry.content_key] = std::move(proto);
    }
    const auto it = protos.find(entry.content_key);
    if (it == protos.end()) return false;  // dangling reference: corrupt
    entry.proto = it->second;
    outcome.extracted.push_back(std::move(entry));
  }
  outcome.models_rejected = r.u64();
  const std::uint32_t no_parser = r.u32();
  if (no_parser > r.remaining()) return false;
  for (std::uint32_t i = 0; i < no_parser; ++i) {
    std::string framework = r.str();
    outcome.no_parser[std::move(framework)] = r.u64();
  }
  const std::uint32_t counters = r.u32();
  if (counters > r.remaining()) return false;
  for (std::uint32_t i = 0; i < counters; ++i) {
    std::string name = r.str();
    outcome.counters[std::move(name)] = r.i64();
  }
  return r.ok();
}

util::Bytes serialize_meta(const JournalMeta& meta) {
  util::ByteWriter w;
  w.u8(kKindMeta);
  w.u16(kVersion);
  w.u8(static_cast<std::uint8_t>(meta.snapshot));
  w.str(meta.device_profile);
  w.u64(meta.max_apps_per_category);
  put_string_vector(w, meta.categories);
  return std::move(w).take();
}

bool deserialize_meta(util::ByteReader& r, JournalMeta& meta) {
  if (r.u16() != kVersion) return false;
  meta.snapshot = static_cast<android::Snapshot>(r.u8());
  meta.device_profile = r.str();
  meta.max_apps_per_category = r.u64();
  if (!get_string_vector(r, meta.categories)) return false;
  return r.ok();
}

util::Bytes make_frame(const util::Bytes& payload) {
  util::ByteWriter w;
  w.u32(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(util::crc32(payload));
  return std::move(w).take();
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

util::Result<CrashPlan> parse_crash_plan(const std::string& spec) {
  using R = util::Result<CrashPlan>;
  CrashPlan plan;
  for (const auto& raw : util::split(spec, ';')) {
    const std::string directive{util::trim(raw)};
    if (directive.empty()) continue;
    const auto eq = directive.find('=');
    const std::string key = directive.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : directive.substr(eq + 1);
    const auto index = util::parse_int(value);
    if (!index || *index < 1) {
      return R::failure("crash-plan: bad app index '" + value + "'");
    }
    if (key == "die-after-app") {
      plan.die_after_app = static_cast<int>(*index);
    } else if (key == "die-mid-journal-write") {
      plan.die_mid_journal_write = static_cast<int>(*index);
    } else if (key == "torn-tail") {
      plan.torn_tail = static_cast<int>(*index);
    } else {
      return R::failure("crash-plan: unknown directive '" + key + "'");
    }
  }
  return plan;
}

util::Result<Journal::Recovered> Journal::replay(const std::string& path) {
  using R = util::Result<Recovered>;
  auto bytes = util::read_file_bytes(path);
  if (!bytes.ok()) return R::failure(bytes.error());
  const util::Bytes& data = bytes.value();

  Recovered recovered;
  std::map<std::uint64_t, std::shared_ptr<const ModelRecord>> protos;
  std::size_t pos = 0;
  bool meta_seen = false;
  while (pos < data.size()) {
    // Frame header: magic + length, then payload + CRC. Anything that does
    // not check out marks the end of the valid prefix.
    util::ByteReader header{
        std::span<const std::uint8_t>{data}.subspan(pos)};
    const std::uint32_t magic = header.u32();
    const std::uint32_t length = header.u32();
    if (!header.ok() || magic != kFrameMagic ||
        length > header.remaining() ||
        header.remaining() - length < 4) {
      break;
    }
    const auto payload = header.raw(length);
    const std::uint32_t crc = header.u32();
    if (!header.ok() || util::crc32(payload) != crc) break;

    util::ByteReader body{payload};
    const std::uint8_t kind = body.u8();
    if (!meta_seen) {
      if (kind != kKindMeta || !deserialize_meta(body, recovered.meta)) {
        return R::failure("not a pipeline journal: " + path);
      }
      meta_seen = true;
    } else {
      if (kind != kKindApp) break;
      AppOutcome outcome;
      if (!deserialize_outcome(body, outcome, protos)) break;
      if (body.remaining() != 0) break;  // trailing garbage inside frame
      recovered.outcomes.push_back(std::move(outcome));
    }
    pos += 8 + length + 4;
  }
  if (!meta_seen) return R::failure("not a pipeline journal: " + path);
  recovered.valid_bytes = pos;
  recovered.torn_tail = pos < data.size();
  return recovered;
}

util::Result<Journal::Opened> Journal::open(const std::string& path,
                                            const JournalMeta& meta,
                                            bool resume, CrashPlan plan) {
  using R = util::Result<Opened>;
  Opened opened;
  opened.journal.plan_ = plan;

  if (resume) {
    auto recovered = replay(path);
    if (!recovered.ok()) {
      return R::failure("cannot resume: " + recovered.error());
    }
    if (!(recovered.value().meta == meta)) {
      return R::failure(
          "cannot resume: journal '" + path +
          "' was written by a run with different options (snapshot, "
          "device profile, categories or per-category cap)");
    }
    if (recovered.value().torn_tail) {
      // Atomically rewrite the file as its valid prefix so the next append
      // lands after intact frames, never after a torn fragment.
      auto bytes = util::read_file_bytes(path);
      if (!bytes.ok()) return R::failure(bytes.error());
      util::Bytes prefix{
          bytes.value().begin(),
          bytes.value().begin() +
              static_cast<std::ptrdiff_t>(recovered.value().valid_bytes)};
      if (auto repaired = util::AtomicFile{path}.write(prefix);
          !repaired.ok()) {
        return R::failure("cannot repair torn tail: " + repaired.error());
      }
      opened.torn_tail = true;
    }
    for (const auto& outcome : recovered.value().outcomes) {
      for (const auto& extracted : outcome.extracted) {
        opened.journal.written_keys_.insert(extracted.content_key);
      }
    }
    opened.outcomes = std::move(recovered.value().outcomes);
  } else {
    // Fresh journal: the meta frame goes through AtomicFile so a crash
    // during creation leaves either no journal or a valid one-frame file.
    if (auto created =
            util::AtomicFile{path}.write(make_frame(serialize_meta(meta)));
        !created.ok()) {
      return R::failure(created.error());
    }
  }

  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return R::failure("cannot open journal for append " + path + ": " +
                      std::strerror(errno));
  }
  opened.journal.fd_ = fd;
  return R{std::move(opened)};
}

Journal::Journal(Journal&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)},
      plan_{other.plan_},
      appended_{other.appended_},
      written_keys_{std::move(other.written_keys_)} {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    plan_ = other.plan_;
    appended_ = other.appended_;
    written_keys_ = std::move(other.written_keys_);
  }
  return *this;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Journal::append(const AppOutcome& outcome) {
  if (fd_ < 0) return util::Status::failure("journal is not open");
  const util::Bytes frame =
      make_frame(serialize_outcome(outcome, written_keys_));

  const int record = static_cast<int>(appended_) + 1;
  if (plan_.die_mid_journal_write == record || plan_.torn_tail == record) {
    // Simulate the process dying mid-write: flush a deliberately torn
    // frame, then "crash". Replay must discard the fragment.
    const std::size_t torn_size =
        plan_.torn_tail == record ? frame.size() - 1 : frame.size() / 2;
    write_all(fd_, frame.data(), torn_size);
    ::fsync(fd_);
    throw CrashInjected{plan_.torn_tail == record
                            ? util::format("torn-tail=%d", record)
                            : util::format("die-mid-journal-write=%d", record)};
  }

  if (!write_all(fd_, frame.data(), frame.size())) {
    return util::Status::failure(std::string{"journal append: "} +
                                 std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return util::Status::failure(std::string{"journal fsync: "} +
                                 std::strerror(errno));
  }
  ++appended_;
  if (plan_.die_after_app == static_cast<int>(appended_)) {
    throw CrashInjected{util::format("die-after-app=%d", plan_.die_after_app)};
  }
  return {};
}

}  // namespace gauge::core
