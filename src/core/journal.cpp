#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/outcome_codec.hpp"
#include "net/framing.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// Journals written before the shared frame codec (net/framing.hpp) framed
// records as `u32 "GJL1" | u32 len | payload | crc32` with no version byte.
// Recognised here only so the skew error can name the actual problem
// instead of reporting "not a pipeline journal".
constexpr std::uint32_t kLegacyMagic = 0x314C4A47;  // "GJL1"

util::Bytes make_frame(const util::Bytes& payload) {
  return net::encode_frame(payload);
}

std::string version_skew_error(const std::string& path,
                               std::uint8_t found_version) {
  return "journal '" + path + "' uses frame codec v" +
         std::to_string(found_version) + "; this binary reads v" +
         std::to_string(net::kFrameVersion) +
         " — re-run the crawl without --resume to regenerate it";
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

util::Result<CrashPlan> parse_crash_plan(const std::string& spec) {
  using R = util::Result<CrashPlan>;
  CrashPlan plan;
  for (const auto& raw : util::split(spec, ';')) {
    const std::string directive{util::trim(raw)};
    if (directive.empty()) continue;
    const auto eq = directive.find('=');
    const std::string key = directive.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : directive.substr(eq + 1);
    const auto index = util::parse_int(value);
    if (!index || *index < 1) {
      return R::failure("crash-plan: bad app index '" + value + "'");
    }
    if (key == "die-after-app") {
      plan.die_after_app = static_cast<int>(*index);
    } else if (key == "die-mid-journal-write") {
      plan.die_mid_journal_write = static_cast<int>(*index);
    } else if (key == "torn-tail") {
      plan.torn_tail = static_cast<int>(*index);
    } else {
      return R::failure("crash-plan: unknown directive '" + key + "'");
    }
  }
  return plan;
}

util::Result<Journal::Recovered> Journal::replay(const std::string& path) {
  using R = util::Result<Recovered>;
  auto bytes = util::read_file_bytes(path);
  if (!bytes.ok()) return R::failure(bytes.error());
  const util::Bytes& data = bytes.value();
  const std::span<const std::uint8_t> all{data};

  Recovered recovered;
  ProtoMap protos;
  std::size_t pos = 0;
  bool meta_seen = false;
  while (pos < data.size()) {
    net::FrameView view;
    const net::FrameDecode decode = net::decode_frame(all.subspan(pos), &view);
    if (decode == net::FrameDecode::VersionSkew) {
      // A well-formed frame from a different codec generation is a skew,
      // never a torn tail — refuse the whole file with a clear error.
      return R::failure(version_skew_error(path, view.version));
    }
    if (decode != net::FrameDecode::Ok) {
      // A legacy journal can be shorter than the new 9-byte header, so the
      // magic check must cover Incomplete as well as BadMagic.
      if (pos == 0 && data.size() >= 4) {
        util::ByteReader head{all};
        if (head.u32() == kLegacyMagic) {
          return R::failure(version_skew_error(path, 1));
        }
      }
      break;  // torn or corrupt tail: end of the valid prefix
    }

    util::ByteReader body{view.payload};
    const std::uint8_t kind = body.u8();
    if (!meta_seen) {
      if (kind != kRecordMeta || !decode_meta_record(body, recovered.meta) ||
          body.remaining() != 0) {
        return R::failure("not a pipeline journal: " + path);
      }
      meta_seen = true;
    } else {
      if (kind != kRecordApp) break;
      AppOutcome outcome;
      if (!decode_outcome_record(body, outcome, protos)) break;
      if (body.remaining() != 0) break;  // trailing garbage inside frame
      recovered.outcomes.push_back(std::move(outcome));
    }
    pos += view.frame_bytes;
  }
  if (!meta_seen) return R::failure("not a pipeline journal: " + path);
  recovered.valid_bytes = pos;
  recovered.torn_tail = pos < data.size();
  return recovered;
}

util::Result<Journal::Opened> Journal::open(const std::string& path,
                                            const JournalMeta& meta,
                                            bool resume, CrashPlan plan) {
  using R = util::Result<Opened>;
  Opened opened;
  opened.journal.plan_ = plan;

  if (resume) {
    auto recovered = replay(path);
    if (!recovered.ok()) {
      return R::failure("cannot resume: " + recovered.error());
    }
    if (!(recovered.value().meta == meta)) {
      return R::failure(
          "cannot resume: journal '" + path +
          "' was written by a run with different options (snapshot, "
          "device profile, categories or per-category cap)");
    }
    if (recovered.value().torn_tail) {
      // Atomically rewrite the file as its valid prefix so the next append
      // lands after intact frames, never after a torn fragment.
      auto bytes = util::read_file_bytes(path);
      if (!bytes.ok()) return R::failure(bytes.error());
      util::Bytes prefix{
          bytes.value().begin(),
          bytes.value().begin() +
              static_cast<std::ptrdiff_t>(recovered.value().valid_bytes)};
      if (auto repaired = util::AtomicFile{path}.write(prefix);
          !repaired.ok()) {
        return R::failure("cannot repair torn tail: " + repaired.error());
      }
      opened.torn_tail = true;
    }
    for (const auto& outcome : recovered.value().outcomes) {
      for (const auto& extracted : outcome.extracted) {
        opened.journal.written_keys_.insert(extracted.content_key);
      }
    }
    opened.outcomes = std::move(recovered.value().outcomes);
  } else {
    // Fresh journal: the meta frame goes through AtomicFile so a crash
    // during creation leaves either no journal or a valid one-frame file.
    if (auto created = util::AtomicFile{path}.write(
            make_frame(encode_meta_record(meta)));
        !created.ok()) {
      return R::failure(created.error());
    }
  }

  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return R::failure("cannot open journal for append " + path + ": " +
                      std::strerror(errno));
  }
  opened.journal.fd_ = fd;
  return R{std::move(opened)};
}

Journal::Journal(Journal&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)},
      plan_{other.plan_},
      appended_{other.appended_},
      written_keys_{std::move(other.written_keys_)} {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    plan_ = other.plan_;
    appended_ = other.appended_;
    written_keys_ = std::move(other.written_keys_);
  }
  return *this;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Journal::append(const AppOutcome& outcome) {
  if (fd_ < 0) return util::Status::failure("journal is not open");
  const util::Bytes frame =
      make_frame(encode_outcome_record(outcome, written_keys_));

  const int record = static_cast<int>(appended_) + 1;
  if (plan_.die_mid_journal_write == record || plan_.torn_tail == record) {
    // Simulate the process dying mid-write: flush a deliberately torn
    // frame, then "crash". Replay must discard the fragment.
    const std::size_t torn_size =
        plan_.torn_tail == record ? frame.size() - 1 : frame.size() / 2;
    write_all(fd_, frame.data(), torn_size);
    ::fsync(fd_);
    throw CrashInjected{plan_.torn_tail == record
                            ? util::format("torn-tail=%d", record)
                            : util::format("die-mid-journal-write=%d", record)};
  }

  if (!write_all(fd_, frame.data(), frame.size())) {
    return util::Status::failure(std::string{"journal append: "} +
                                 std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return util::Status::failure(std::string{"journal fsync: "} +
                                 std::strerror(errno));
  }
  ++appended_;
  if (plan_.die_after_app == static_cast<int>(appended_)) {
    throw CrashInjected{util::format("die-after-app=%d", plan_.die_after_app)};
  }
  return {};
}

}  // namespace gauge::core
