// Sharded, mutex-striped, once-only memoisation of model analysis results
// keyed by content hash. Off-the-shelf models ship in many apps; when the
// pipeline fans out across workers, two apps holding the same model bytes
// must not both pay for parse + analyse. The first caller for a key becomes
// the owner and computes; concurrent callers for the same key block on the
// owner's future and adopt its result. Failed computations are not cached
// (every duplicate re-attempts and fails on its own), which keeps the drop
// accounting identical to a serial run.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/records.hpp"

namespace gauge::core {

class AnalysisCache {
 public:
  // Analysis prototype: an instance-agnostic ModelRecord (record_id,
  // app_package, category and file_path are assigned per instance by the
  // pipeline's merge stage). Null = the analysis failed.
  using Proto = std::shared_ptr<const ModelRecord>;

  // Returns the cached prototype for `key`, computing it via `compute` with
  // once-per-key semantics. Increments `gauge.pipeline.cache_misses` for
  // the computing caller and `gauge.pipeline.cache_hits` for adopters.
  // `compute` may return null (analysis failed); the failure is returned to
  // every concurrent waiter but not cached, and each such caller counts its
  // own miss — exactly what a serial pipeline would record.
  Proto find_or_compute(std::uint64_t key,
                        const std::function<Proto()>& compute);

  // Pre-populates `key` with an already-computed prototype (journal resume:
  // the original run paid for the analysis; replaying must not). No-op when
  // the key is already present; increments no counters — the journal
  // replays the original run's hit/miss deltas instead.
  void seed(std::uint64_t key, Proto proto);

  // Completed + in-flight entries across all shards (test introspection).
  std::size_t size() const;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_future<Proto>> entries;
  };

  Shard& shard_for(std::uint64_t key) {
    return shards_[(key ^ (key >> 17)) % kShards];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace gauge::core
