#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/taskclassify.hpp"
#include "formats/plugin.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// Fig. 4 column order = plugin chart ranks (the paper's instance-count
// order for its five frameworks, newer plugins appended after them).
const std::vector<std::string>& framework_order() {
  static const std::vector<std::string> kOrder = [] {
    std::vector<std::string> order;
    const auto& registry = formats::PluginRegistry::instance();
    for (const auto* plugin : registry.plugins_by_chart_rank()) {
      order.push_back(plugin->name());
    }
    return order;
  }();
  return kOrder;
}

std::int64_t lookup(const std::map<std::string, std::int64_t>& m,
                    const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? 0 : it->second;
}

// Shared table assembly so the query-backed builders and the record-scan
// oracles in legacy:: differ only in how the numbers were aggregated.

util::Table make_table2(const SnapshotDataset& dataset, std::size_t ml,
                        std::size_t with_models, std::size_t unique) {
  util::Table table{{"metric", "value"}};
  const auto total = dataset.total_models();
  table.add_row({"Apps crawled", std::to_string(dataset.apps_crawled())});
  table.add_row(
      {"Apps w/ ML libraries",
       util::format("%zu (%s)", ml,
                    util::Table::pct(static_cast<double>(ml) /
                                     static_cast<double>(dataset.apps_crawled()))
                        .c_str())});
  table.add_row(
      {"Apps w/ extracted models",
       util::format("%zu (%s)", with_models,
                    util::Table::pct(static_cast<double>(with_models) /
                                     static_cast<double>(dataset.apps_crawled()))
                        .c_str())});
  table.add_row({"Models extracted & validated", std::to_string(total)});
  table.add_row(
      {"Unique models",
       util::format("%zu (%s)", unique,
                    util::Table::pct(static_cast<double>(unique) /
                                     std::max<double>(1.0, static_cast<double>(total)))
                        .c_str())});
  return table;
}

util::Table make_fig4(
    const std::map<std::string, std::map<std::string, std::int64_t>>& grid,
    const std::map<std::string, std::int64_t>& per_category, int min_models) {
  std::vector<std::pair<std::int64_t, std::string>> ordered;
  for (const auto& [category, count] : per_category) {
    if (count >= min_models) ordered.emplace_back(count, category);
  }
  std::sort(ordered.begin(), ordered.end(), std::greater<>());

  std::vector<std::string> header{"category", "total"};
  for (const auto& fw : framework_order()) header.push_back(fw);
  util::Table table{header};
  for (const auto& [count, category] : ordered) {
    std::vector<std::string> row{category, std::to_string(count)};
    const auto git = grid.find(category);
    for (const auto& fw : framework_order()) {
      row.push_back(std::to_string(
          git == grid.end() ? 0 : lookup(git->second, fw)));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table make_fig4_totals(const std::map<std::string, std::int64_t>& totals,
                             std::size_t total_models) {
  util::Table table{{"framework", "models", "share"}};
  for (const auto& fw : framework_order()) {
    const std::int64_t count = lookup(totals, fw);
    table.add_row({fw, std::to_string(count),
                   util::Table::pct(static_cast<double>(count) /
                                    std::max<double>(
                                        1.0, static_cast<double>(total_models)))});
  }
  return table;
}

util::Table make_table3(
    const std::map<std::string, std::map<std::string, std::int64_t>>& groups,
    const std::map<std::string, std::int64_t>& modality_totals,
    std::int64_t identified, std::size_t total_models) {
  util::Table table{{"modality", "task", "models", "share of modality"}};
  for (const char* modality : {"image", "text", "audio", "sensor"}) {
    auto it = groups.find(modality);
    if (it == groups.end()) continue;
    std::vector<std::pair<std::int64_t, std::string>> ordered;
    for (const auto& [task, count] : it->second) ordered.emplace_back(count, task);
    std::sort(ordered.begin(), ordered.end(), std::greater<>());
    for (const auto& [count, task] : ordered) {
      table.add_row({modality, task, std::to_string(count),
                     util::Table::pct(static_cast<double>(count) /
                                      static_cast<double>(
                                          lookup(modality_totals, modality)))});
    }
  }
  table.add_row({"(identified)", "", std::to_string(identified),
                 util::Table::pct(static_cast<double>(identified) /
                                  std::max<double>(1.0, static_cast<double>(
                                                            total_models)))});
  return table;
}

util::Table make_fig7(
    const std::map<std::string, std::pair<std::vector<double>,
                                          std::vector<double>>>& by_task) {
  util::Table table{{"task", "models", "median MFLOPs", "min", "max",
                     "median Kparams", "min", "max"}};
  std::vector<std::pair<double, std::string>> ordered;
  for (const auto& [task, acc] : by_task) {
    ordered.emplace_back(util::median(acc.first), task);
  }
  std::sort(ordered.begin(), ordered.end(), std::greater<>());
  for (const auto& [_, task] : ordered) {
    const auto& acc = by_task.at(task);
    const auto fl = util::summarize(acc.first);
    const auto pr = util::summarize(acc.second);
    table.add_row({task, std::to_string(acc.first.size()),
                   util::Table::num(fl.median / 1e6), util::Table::num(fl.min / 1e6),
                   util::Table::num(fl.max / 1e6), util::Table::num(pr.median / 1e3),
                   util::Table::num(pr.min / 1e3), util::Table::num(pr.max / 1e3)});
  }
  return table;
}

util::Table make_fig15(
    const std::map<std::string, std::map<std::string, std::int64_t>>& grid,
    const std::map<std::string, std::int64_t>& per_category,
    const std::map<std::string, std::int64_t>& per_provider,
    std::int64_t total, int min_apps) {
  std::vector<std::pair<std::int64_t, std::string>> ordered;
  for (const auto& [category, count] : per_category) {
    if (count >= min_apps) ordered.emplace_back(count, category);
  }
  std::sort(ordered.begin(), ordered.end(), std::greater<>());

  util::Table table{{"category", "apps", "Google", "Amazon"}};
  for (const auto& [count, category] : ordered) {
    const auto git = grid.find(category);
    const auto row_count = [&](const char* provider) {
      return git == grid.end() ? 0 : lookup(git->second, provider);
    };
    const std::int64_t google =
        row_count("Google Firebase ML") + row_count("Google Cloud");
    table.add_row({category, std::to_string(count), std::to_string(google),
                   std::to_string(row_count("Amazon AWS"))});
  }
  const std::int64_t google_total = lookup(per_provider, "Google Firebase ML") +
                                    lookup(per_provider, "Google Cloud");
  table.add_row({"(total)", std::to_string(total),
                 std::to_string(google_total),
                 std::to_string(lookup(per_provider, "Amazon AWS"))});
  return table;
}

util::Table make_sec42(std::int64_t apps_with_side, std::int64_t side_files,
                       std::int64_t side_models) {
  util::Table table{{"metric", "value"}};
  table.add_row({"Apps with OBBs / asset packs", std::to_string(apps_with_side)});
  table.add_row({"Files swept in side containers", std::to_string(side_files)});
  table.add_row({"Model candidates found there", std::to_string(side_models)});
  return table;
}

}  // namespace

// --------------------------------------------------------- query-backed path
//
// Tables aggregate through the DocStore's indexed query layer; the original
// record-scanning implementations live in legacy:: below as the parity
// oracle (report_parity_diff).

util::Table table2_dataset(const SnapshotDataset& dataset) {
  return make_table2(dataset, dataset.ml_apps(), dataset.apps_with_models(),
                     dataset.unique_model_count());
}

util::Table fig4_frameworks(const SnapshotDataset& dataset, int min_models) {
  std::map<std::string, std::map<std::string, std::int64_t>> grid;
  for (const auto& row :
       dataset.model_docs.query().group_by({"category", "framework"})) {
    grid[row.keys[0].as_string()][row.keys[1].as_string()] = row.count;
  }
  std::map<std::string, std::int64_t> per_category;
  for (const auto& row : dataset.model_docs.query().group_by({"category"})) {
    per_category[row.keys[0].as_string()] = row.count;
  }
  return make_fig4(grid, per_category, min_models);
}

util::Table fig4_framework_totals(const SnapshotDataset& dataset) {
  std::map<std::string, std::int64_t> totals;
  for (const auto& row : dataset.model_docs.query().group_by({"framework"})) {
    totals[row.keys[0].as_string()] = row.count;
  }
  return make_fig4_totals(totals, dataset.model_docs.query().count());
}

util::Table table3_tasks(const SnapshotDataset& dataset) {
  // Identified models only, as in the paper: the unidentified bucket is
  // dropped after grouping (the query layer has no !=).
  std::map<std::string, std::map<std::string, std::int64_t>> groups;
  std::map<std::string, std::int64_t> modality_totals;
  std::int64_t identified = 0;
  for (const auto& row :
       dataset.model_docs.query().group_by({"modality", "task"})) {
    const std::string& task = row.keys[1].as_string();
    if (task == kUnidentified) continue;
    const std::string& modality = row.keys[0].as_string();
    groups[modality][task] = row.count;
    modality_totals[modality] += row.count;
    identified += row.count;
  }
  return make_table3(groups, modality_totals, identified,
                     dataset.model_docs.query().count());
}

util::Table fig5_temporal(const SnapshotDataset& earlier,
                          const SnapshotDataset& later) {
  const auto rows = temporal_diff(earlier, later);
  util::Table table{{"category", "added", "removed", "delta"}};
  for (const auto& row : rows) {
    table.add_row({row.category, std::to_string(row.added),
                   std::to_string(row.removed), std::to_string(row.delta())});
  }
  return table;
}

util::Table fig6_layer_composition(const SnapshotDataset& dataset) {
  // modality -> op family -> layer count. Layer compositions live in the
  // analysis sidecar, not the document mirror, so this one stays a record
  // scan.
  std::map<std::string, std::map<std::string, std::int64_t>> counts;
  std::map<std::string, std::int64_t> totals;
  for (const auto& model : dataset.models) {
    const std::string modality = nn::modality_name(model.modality);
    for (const auto& [family, count] : model.op_family_counts()) {
      counts[modality][family] += count;
      totals[modality] += count;
    }
  }
  // Collect all families for a stable column set.
  std::set<std::string> families;
  for (const auto& [_, family_counts] : counts) {
    for (const auto& [family, __] : family_counts) families.insert(family);
  }
  std::vector<std::string> header{"modality"};
  for (const auto& family : families) header.push_back(family);
  util::Table table{header};
  for (const char* modality : {"image", "text", "audio", "sensor"}) {
    if (!totals.count(modality)) continue;
    std::vector<std::string> row{modality};
    for (const auto& family : families) {
      const auto it = counts[modality].find(family);
      const double share =
          it == counts[modality].end()
              ? 0.0
              : static_cast<double>(it->second) /
                    static_cast<double>(totals[modality]);
      row.push_back(util::Table::pct(share));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table fig7_flops_params(const SnapshotDataset& dataset) {
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      by_task;
  for (const auto& row : dataset.model_docs.query().group_by({"task"})) {
    const std::string& task = row.keys[0].as_string();
    if (task == kUnidentified) continue;
    auto per_task =
        dataset.model_docs.query().where("task", store::Value{task});
    by_task[task] = {per_task.numbers("flops"), per_task.numbers("params")};
  }
  return make_fig7(by_task);
}

util::Table fig15_cloud(const SnapshotDataset& dataset, int min_apps) {
  const auto cloud_apps = [&] {
    return dataset.app_docs.query().where("cloud", store::Value{true});
  };
  std::map<std::string, std::map<std::string, std::int64_t>> grid;
  for (const auto& row :
       cloud_apps().group_by({"category", "cloud_provider"})) {
    grid[row.keys[0].as_string()][row.keys[1].as_string()] = row.count;
  }
  std::map<std::string, std::int64_t> per_category;
  for (const auto& row : cloud_apps().group_by({"category"})) {
    per_category[row.keys[0].as_string()] = row.count;
  }
  std::map<std::string, std::int64_t> per_provider;
  for (const auto& row : cloud_apps().group_by({"cloud_provider"})) {
    per_provider[row.keys[0].as_string()] = row.count;
  }
  return make_fig15(grid, per_category, per_provider,
                    static_cast<std::int64_t>(cloud_apps().count()), min_apps);
}

util::Table sec31_no_parser(const SnapshotDataset& dataset) {
  util::Table table{{"framework", "candidate files dropped"}};
  std::size_t total = 0;
  for (const auto& [fw_name, count] : dataset.no_parser_drops) {
    table.add_row({fw_name, std::to_string(count)});
    total += count;
  }
  table.add_row({"(total)", std::to_string(total)});
  return table;
}

util::Table sec42_distribution(const SnapshotDataset& dataset) {
  const auto sum_of = [&](const std::string& field) -> std::int64_t {
    const auto rows = dataset.app_docs.query().group_by({}, field);
    return rows.empty() ? 0 : std::llround(rows.front().sum);
  };
  const std::int64_t apps_with_side =
      static_cast<std::int64_t>(dataset.app_docs.query()
                                    .where_range("side_files", 1.0, std::nullopt)
                                    .count());
  return make_sec42(apps_with_side, sum_of("side_files"), sum_of("side_models"));
}

util::Table sec45_uniqueness(const UniquenessReport& report) {
  util::Table table{{"metric", "value"}};
  table.add_row({"Model instances", std::to_string(report.total_models)});
  table.add_row({"Unique models",
                 util::format("%zu (%s)", report.unique_models,
                              util::Table::pct(report.unique_fraction).c_str())});
  table.add_row({"Instances shared across >=2 apps",
                 util::Table::pct(report.shared_across_apps_fraction)});
  table.add_row({"Unique models sharing >=20% of layers",
                 util::format("%zu (%s)", report.finetuned_models,
                              util::Table::pct(report.finetuned_fraction).c_str())});
  table.add_row({"Unique models differing in <=3 layers",
                 util::format("%zu (%s)", report.small_delta_models,
                              util::Table::pct(report.small_delta_fraction).c_str())});
  return table;
}

util::Table sec61_optimisations(const OptimisationReport& report) {
  util::Table table{{"optimisation", "value"}};
  table.add_row({"Models with cluster_ layers",
                 std::to_string(report.clustering_models)});
  table.add_row({"Models with prune_ layers",
                 std::to_string(report.pruning_models)});
  table.add_row({"Models using dequantize layer",
                 util::Table::pct(report.dequantize_fraction)});
  table.add_row({"Models with int8 weights",
                 util::Table::pct(report.int8_weight_fraction)});
  table.add_row({"Models with int8 activations",
                 util::Table::pct(report.int8_act_fraction)});
  table.add_row({"Near-zero weight share",
                 util::Table::pct(report.near_zero_weight_share)});
  return table;
}

// ------------------------------------------------------ record-scan oracle
//
// The pre-port implementations, kept verbatim in aggregation logic: they
// walk SnapshotDataset::apps/models directly. report_parity_diff holds the
// query-backed tables to these byte for byte.

namespace legacy {
namespace {

util::Table table2_dataset(const SnapshotDataset& dataset) {
  std::size_t ml = 0, with_models = 0;
  for (const auto& app : dataset.apps) {
    if (app.uses_ml) ++ml;
    if (!app.model_record_ids.empty()) ++with_models;
  }
  std::set<std::string> checksums;
  for (const auto& model : dataset.models) checksums.insert(model.checksum);
  return make_table2(dataset, ml, with_models, checksums.size());
}

util::Table fig4_frameworks(const SnapshotDataset& dataset, int min_models) {
  std::map<std::string, std::map<std::string, std::int64_t>> grid;
  std::map<std::string, std::int64_t> per_category;
  for (const auto& model : dataset.models) {
    const std::string fw = formats::framework_name(model.framework);
    grid[model.category][fw]++;
    per_category[model.category]++;
  }
  return make_fig4(grid, per_category, min_models);
}

util::Table fig4_framework_totals(const SnapshotDataset& dataset) {
  std::map<std::string, std::int64_t> totals;
  for (const auto& model : dataset.models) {
    totals[formats::framework_name(model.framework)]++;
  }
  return make_fig4_totals(totals, dataset.models.size());
}

util::Table table3_tasks(const SnapshotDataset& dataset) {
  std::map<std::string, std::map<std::string, std::int64_t>> groups;
  std::map<std::string, std::int64_t> modality_totals;
  std::int64_t identified = 0;
  for (const auto& model : dataset.models) {
    if (model.task == kUnidentified) continue;
    ++identified;
    const std::string modality = nn::modality_name(model.modality);
    groups[modality][model.task]++;
    modality_totals[modality]++;
  }
  return make_table3(groups, modality_totals, identified,
                     dataset.models.size());
}

util::Table fig7_flops_params(const SnapshotDataset& dataset) {
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      by_task;
  for (const auto& model : dataset.models) {
    if (model.task == kUnidentified) continue;
    by_task[model.task].first.push_back(
        static_cast<double>(model.trace().total_flops));
    by_task[model.task].second.push_back(
        static_cast<double>(model.trace().total_params));
  }
  return make_fig7(by_task);
}

util::Table fig15_cloud(const SnapshotDataset& dataset, int min_apps) {
  std::map<std::string, std::map<std::string, std::int64_t>> grid;
  std::map<std::string, std::int64_t> per_category;
  std::map<std::string, std::int64_t> per_provider;
  std::int64_t total = 0;
  for (const auto& app : dataset.apps) {
    if (app.cloud_providers.empty()) continue;
    ++total;
    per_category[app.category]++;
    grid[app.category][app.cloud_providers.front()]++;
    per_provider[app.cloud_providers.front()]++;
  }
  return make_fig15(grid, per_category, per_provider, total, min_apps);
}

util::Table sec42_distribution(const SnapshotDataset& dataset) {
  std::int64_t side_files = 0, side_models = 0, apps_with_side = 0;
  for (const auto& app : dataset.apps) {
    side_files += app.side_container_files;
    side_models += app.side_container_models;
    if (app.side_container_files > 0) ++apps_with_side;
  }
  return make_sec42(apps_with_side, side_files, side_models);
}

}  // namespace
}  // namespace legacy

std::string report_parity_diff(const SnapshotDataset& dataset) {
  std::string diff;
  const auto check = [&diff](const char* name, const util::Table& ported,
                             const util::Table& oracle) {
    if (ported.to_csv() != oracle.to_csv()) {
      diff += name;
      diff += ": query-backed table differs from record scan\n";
    }
  };
  check("table2_dataset", table2_dataset(dataset),
        legacy::table2_dataset(dataset));
  check("fig4_frameworks", fig4_frameworks(dataset),
        legacy::fig4_frameworks(dataset, 20));
  check("fig4_framework_totals", fig4_framework_totals(dataset),
        legacy::fig4_framework_totals(dataset));
  check("table3_tasks", table3_tasks(dataset), legacy::table3_tasks(dataset));
  check("fig7_flops_params", fig7_flops_params(dataset),
        legacy::fig7_flops_params(dataset));
  check("fig15_cloud", fig15_cloud(dataset), legacy::fig15_cloud(dataset, 10));
  check("sec42_distribution", sec42_distribution(dataset),
        legacy::sec42_distribution(dataset));
  return diff;
}

}  // namespace gauge::core
