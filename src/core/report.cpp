#include "core/report.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/taskclassify.hpp"
#include "formats/plugin.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// Fig. 4 column order = plugin chart ranks (the paper's instance-count
// order for its five frameworks, newer plugins appended after them).
const std::vector<std::string>& framework_order() {
  static const std::vector<std::string> kOrder = [] {
    std::vector<std::string> order;
    const auto& registry = formats::PluginRegistry::instance();
    for (const auto* plugin : registry.plugins_by_chart_rank()) {
      order.push_back(plugin->name());
    }
    return order;
  }();
  return kOrder;
}

}  // namespace

util::Table table2_dataset(const SnapshotDataset& dataset) {
  util::Table table{{"metric", "value"}};
  const auto ml = dataset.ml_apps();
  const auto with_models = dataset.apps_with_models();
  const auto total = dataset.total_models();
  const auto unique = dataset.unique_model_count();
  table.add_row({"Apps crawled", std::to_string(dataset.apps_crawled())});
  table.add_row(
      {"Apps w/ ML libraries",
       util::format("%zu (%s)", ml,
                    util::Table::pct(static_cast<double>(ml) /
                                     static_cast<double>(dataset.apps_crawled()))
                        .c_str())});
  table.add_row(
      {"Apps w/ extracted models",
       util::format("%zu (%s)", with_models,
                    util::Table::pct(static_cast<double>(with_models) /
                                     static_cast<double>(dataset.apps_crawled()))
                        .c_str())});
  table.add_row({"Models extracted & validated", std::to_string(total)});
  table.add_row(
      {"Unique models",
       util::format("%zu (%s)", unique,
                    util::Table::pct(static_cast<double>(unique) /
                                     std::max<double>(1.0, static_cast<double>(total)))
                        .c_str())});
  return table;
}

util::Table fig4_frameworks(const SnapshotDataset& dataset, int min_models) {
  // category -> framework -> count
  std::map<std::string, std::map<std::string, int>> grid;
  std::map<std::string, int> per_category;
  for (const auto& model : dataset.models) {
    const std::string fw = formats::framework_name(model.framework);
    grid[model.category][fw]++;
    per_category[model.category]++;
  }

  std::vector<std::pair<int, std::string>> ordered;
  for (const auto& [category, count] : per_category) {
    if (count >= min_models) ordered.emplace_back(count, category);
  }
  std::sort(ordered.begin(), ordered.end(), std::greater<>());

  std::vector<std::string> header{"category", "total"};
  for (const auto& fw : framework_order()) header.push_back(fw);
  util::Table table{header};
  for (const auto& [count, category] : ordered) {
    std::vector<std::string> row{category, std::to_string(count)};
    for (const auto& fw : framework_order()) {
      const auto it = grid[category].find(fw);
      row.push_back(std::to_string(it == grid[category].end() ? 0 : it->second));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table fig4_framework_totals(const SnapshotDataset& dataset) {
  std::map<std::string, int> totals;
  for (const auto& model : dataset.models) {
    totals[formats::framework_name(model.framework)]++;
  }
  util::Table table{{"framework", "models", "share"}};
  for (const auto& fw : framework_order()) {
    const int count = totals.count(fw) ? totals[fw] : 0;
    table.add_row({fw, std::to_string(count),
                   util::Table::pct(static_cast<double>(count) /
                                    std::max<double>(
                                        1.0, static_cast<double>(
                                                 dataset.models.size())))});
  }
  return table;
}

util::Table table3_tasks(const SnapshotDataset& dataset) {
  // modality -> task -> count; identified models only, as in the paper.
  std::map<std::string, std::map<std::string, int>> groups;
  std::map<std::string, int> modality_totals;
  std::size_t identified = 0;
  for (const auto& model : dataset.models) {
    if (model.task == kUnidentified) continue;
    ++identified;
    const std::string modality = nn::modality_name(model.modality);
    groups[modality][model.task]++;
    modality_totals[modality]++;
  }

  util::Table table{{"modality", "task", "models", "share of modality"}};
  for (const char* modality : {"image", "text", "audio", "sensor"}) {
    auto it = groups.find(modality);
    if (it == groups.end()) continue;
    std::vector<std::pair<int, std::string>> ordered;
    for (const auto& [task, count] : it->second) ordered.emplace_back(count, task);
    std::sort(ordered.begin(), ordered.end(), std::greater<>());
    for (const auto& [count, task] : ordered) {
      table.add_row({modality, task, std::to_string(count),
                     util::Table::pct(static_cast<double>(count) /
                                      modality_totals[modality])});
    }
  }
  table.add_row({"(identified)", "",
                 std::to_string(identified),
                 util::Table::pct(static_cast<double>(identified) /
                                  std::max<double>(1.0, static_cast<double>(
                                                            dataset.models.size())))});
  return table;
}

util::Table fig5_temporal(const SnapshotDataset& earlier,
                          const SnapshotDataset& later) {
  const auto rows = temporal_diff(earlier, later);
  util::Table table{{"category", "added", "removed", "delta"}};
  for (const auto& row : rows) {
    table.add_row({row.category, std::to_string(row.added),
                   std::to_string(row.removed), std::to_string(row.delta())});
  }
  return table;
}

util::Table fig6_layer_composition(const SnapshotDataset& dataset) {
  // modality -> op family -> layer count
  std::map<std::string, std::map<std::string, std::int64_t>> counts;
  std::map<std::string, std::int64_t> totals;
  for (const auto& model : dataset.models) {
    const std::string modality = nn::modality_name(model.modality);
    for (const auto& [family, count] : model.op_family_counts()) {
      counts[modality][family] += count;
      totals[modality] += count;
    }
  }
  // Collect all families for a stable column set.
  std::set<std::string> families;
  for (const auto& [_, family_counts] : counts) {
    for (const auto& [family, __] : family_counts) families.insert(family);
  }
  std::vector<std::string> header{"modality"};
  for (const auto& family : families) header.push_back(family);
  util::Table table{header};
  for (const char* modality : {"image", "text", "audio", "sensor"}) {
    if (!totals.count(modality)) continue;
    std::vector<std::string> row{modality};
    for (const auto& family : families) {
      const auto it = counts[modality].find(family);
      const double share =
          it == counts[modality].end()
              ? 0.0
              : static_cast<double>(it->second) /
                    static_cast<double>(totals[modality]);
      row.push_back(util::Table::pct(share));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table fig7_flops_params(const SnapshotDataset& dataset) {
  struct Acc {
    std::vector<double> flops;
    std::vector<double> params;
  };
  std::map<std::string, Acc> by_task;
  for (const auto& model : dataset.models) {
    if (model.task == kUnidentified) continue;
    by_task[model.task].flops.push_back(
        static_cast<double>(model.trace().total_flops));
    by_task[model.task].params.push_back(
        static_cast<double>(model.trace().total_params));
  }
  util::Table table{{"task", "models", "median MFLOPs", "min", "max",
                     "median Kparams", "min", "max"}};
  std::vector<std::pair<double, std::string>> ordered;
  for (auto& [task, acc] : by_task) {
    ordered.emplace_back(util::median(acc.flops), task);
  }
  std::sort(ordered.begin(), ordered.end(), std::greater<>());
  for (const auto& [_, task] : ordered) {
    auto& acc = by_task[task];
    const auto fl = util::summarize(acc.flops);
    const auto pr = util::summarize(acc.params);
    table.add_row({task, std::to_string(acc.flops.size()),
                   util::Table::num(fl.median / 1e6), util::Table::num(fl.min / 1e6),
                   util::Table::num(fl.max / 1e6), util::Table::num(pr.median / 1e3),
                   util::Table::num(pr.min / 1e3), util::Table::num(pr.max / 1e3)});
  }
  return table;
}

util::Table fig15_cloud(const SnapshotDataset& dataset, int min_apps) {
  std::map<std::string, std::map<std::string, int>> grid;  // cat -> provider
  std::map<std::string, int> per_category;
  std::map<std::string, int> per_provider;
  int total = 0;
  for (const auto& app : dataset.apps) {
    if (app.cloud_providers.empty()) continue;
    ++total;
    per_category[app.category]++;
    grid[app.category][app.cloud_providers.front()]++;
    per_provider[app.cloud_providers.front()]++;
  }
  std::vector<std::pair<int, std::string>> ordered;
  for (const auto& [category, count] : per_category) {
    if (count >= min_apps) ordered.emplace_back(count, category);
  }
  std::sort(ordered.begin(), ordered.end(), std::greater<>());

  util::Table table{{"category", "apps", "Google", "Amazon"}};
  for (const auto& [count, category] : ordered) {
    const int google = grid[category]["Google Firebase ML"] +
                       grid[category]["Google Cloud"];
    const int amazon = grid[category]["Amazon AWS"];
    table.add_row({category, std::to_string(count), std::to_string(google),
                   std::to_string(amazon)});
  }
  const int google_total = per_provider["Google Firebase ML"] +
                           per_provider["Google Cloud"];
  table.add_row({"(total)", std::to_string(total),
                 std::to_string(google_total),
                 std::to_string(per_provider["Amazon AWS"])});
  return table;
}

util::Table sec31_no_parser(const SnapshotDataset& dataset) {
  util::Table table{{"framework", "candidate files dropped"}};
  std::size_t total = 0;
  for (const auto& [fw_name, count] : dataset.no_parser_drops) {
    table.add_row({fw_name, std::to_string(count)});
    total += count;
  }
  table.add_row({"(total)", std::to_string(total)});
  return table;
}

util::Table sec42_distribution(const SnapshotDataset& dataset) {
  std::int64_t side_files = 0, side_models = 0, apps_with_side = 0;
  for (const auto& app : dataset.apps) {
    side_files += app.side_container_files;
    side_models += app.side_container_models;
    if (app.side_container_files > 0) ++apps_with_side;
  }
  util::Table table{{"metric", "value"}};
  table.add_row({"Apps with OBBs / asset packs", std::to_string(apps_with_side)});
  table.add_row({"Files swept in side containers", std::to_string(side_files)});
  table.add_row({"Model candidates found there", std::to_string(side_models)});
  return table;
}

util::Table sec45_uniqueness(const UniquenessReport& report) {
  util::Table table{{"metric", "value"}};
  table.add_row({"Model instances", std::to_string(report.total_models)});
  table.add_row({"Unique models",
                 util::format("%zu (%s)", report.unique_models,
                              util::Table::pct(report.unique_fraction).c_str())});
  table.add_row({"Instances shared across >=2 apps",
                 util::Table::pct(report.shared_across_apps_fraction)});
  table.add_row({"Unique models sharing >=20% of layers",
                 util::format("%zu (%s)", report.finetuned_models,
                              util::Table::pct(report.finetuned_fraction).c_str())});
  table.add_row({"Unique models differing in <=3 layers",
                 util::format("%zu (%s)", report.small_delta_models,
                              util::Table::pct(report.small_delta_fraction).c_str())});
  return table;
}

util::Table sec61_optimisations(const OptimisationReport& report) {
  util::Table table{{"optimisation", "value"}};
  table.add_row({"Models with cluster_ layers",
                 std::to_string(report.clustering_models)});
  table.add_row({"Models with prune_ layers",
                 std::to_string(report.pruning_models)});
  table.add_row({"Models using dequantize layer",
                 util::Table::pct(report.dequantize_fraction)});
  table.add_row({"Models with int8 weights",
                 util::Table::pct(report.int8_weight_fraction)});
  table.add_row({"Models with int8 activations",
                 util::Table::pct(report.int8_act_fraction)});
  table.add_row({"Near-zero weight share",
                 util::Table::pct(report.near_zero_weight_share)});
  return table;
}

}  // namespace gauge::core
