#include "core/records.hpp"

namespace gauge::core {

namespace {
const ModelAnalysis kEmptyAnalysis{};
}  // namespace

const nn::ModelTrace& ModelRecord::trace() const {
  return (analysis ? *analysis : kEmptyAnalysis).trace;
}

const std::vector<std::string>& ModelRecord::layer_digests() const {
  return (analysis ? *analysis : kEmptyAnalysis).layer_digests;
}

const std::map<std::string, std::int64_t>& ModelRecord::op_family_counts()
    const {
  return (analysis ? *analysis : kEmptyAnalysis).op_family_counts;
}

ModelAnalysis& ModelRecord::mutable_analysis() {
  if (!analysis || analysis.use_count() > 1) {
    analysis = std::make_shared<ModelAnalysis>(analysis ? *analysis
                                                        : ModelAnalysis{});
  }
  // Safe: the payload was allocated non-const and is uniquely owned here.
  return const_cast<ModelAnalysis&>(*analysis);
}

store::Document to_document(const AppRecord& app) {
  store::Document doc;
  doc["package"] = app.package;
  doc["category"] = app.category;
  doc["installs"] = app.installs;
  doc["uses_ml"] = app.uses_ml;
  doc["cloud"] = !app.cloud_providers.empty();
  if (!app.cloud_providers.empty()) {
    doc["cloud_provider"] = app.cloud_providers.front();
  }
  doc["uses_nnapi"] = app.uses_nnapi;
  doc["uses_xnnpack"] = app.uses_xnnpack;
  doc["uses_snpe"] = app.uses_snpe;
  doc["candidate_files"] = app.candidate_files;
  doc["validated_models"] = app.validated_models;
  doc["side_files"] = app.side_container_files;
  doc["side_models"] = app.side_container_models;
  doc["model_count"] = static_cast<std::int64_t>(app.model_record_ids.size());
  return doc;
}

store::Document to_document(const ModelRecord& model) {
  store::Document doc;
  doc["record_id"] = model.record_id;
  doc["package"] = model.app_package;
  doc["category"] = model.category;
  doc["framework"] = formats::framework_name(model.framework);
  doc["path"] = model.file_path;
  doc["bytes"] = static_cast<std::int64_t>(model.file_bytes);
  doc["checksum"] = model.checksum;
  doc["arch_checksum"] = model.architecture_checksum;
  doc["modality"] = nn::modality_name(model.modality);
  doc["task"] = model.task;
  doc["flops"] = static_cast<double>(model.trace().total_flops);
  doc["params"] = static_cast<double>(model.trace().total_params);
  doc["layers"] = static_cast<std::int64_t>(model.trace().layers.size());
  doc["has_dequantize"] = model.has_dequantize_layer;
  doc["int8_weights"] = model.int8_weights;
  doc["int8_activations"] = model.int8_activations;
  doc["near_zero_fraction"] = model.near_zero_weight_fraction;
  return doc;
}

}  // namespace gauge::core
