// Report bundle: materialises a crawled snapshot's analyses as a directory
// of CSV artifacts plus an index — what gaugeNN's operators would archive
// per snapshot for downstream ETL.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "util/result.hpp"

namespace gauge::core {

// Writes into `directory` (created if needed):
//   index.md            what's inside, with the snapshot's headline counts
//   apps.csv            one row per crawled app
//   models.csv          one row per validated model instance
//   apps.jsonl          the same documents as JSON Lines (bulk-load format)
//   models.jsonl
//   frameworks.csv      Fig. 4 totals
//   tasks.csv           Table 3
//   layer_families.csv  Fig. 6
//   uniqueness.csv      §4.5 summary
//   optimisations.csv   §6.1 census
//   cloud.csv           Fig. 15
// Returns the number of files written.
util::Result<int> write_report_bundle(const SnapshotDataset& dataset,
                                      const std::string& directory);

}  // namespace gauge::core
