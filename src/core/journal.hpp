// Crash-safe run journal for the snapshot pipeline (DESIGN.md §10). The
// paper's crawl is a multi-hour run over ~16k untrusted APKs; a crash at
// hour three must not restart from zero. The pipeline's merge stage — the
// single point where per-app outcomes are folded into the dataset in
// deterministic chart order — append-logs each completed outcome here.
// A resumed run replays the journal, re-applies the journaled telemetry
// deltas, seeds the analysis cache with the journaled prototypes and skips
// straight to the first unprocessed app, producing a SnapshotDataset
// byte-identical to an uninterrupted run at any thread count.
//
// Durability contract: a record is either fully on disk (length + CRC frame,
// fsync'd before the next app is dispatched) or it is not part of the run.
// Torn tails — a crash mid-append — are detected by frame CRC on replay and
// truncated away through util::AtomicFile, so the journal is always a valid
// prefix of the merge order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "android/playstore.hpp"
#include "core/records.hpp"

namespace gauge::core {

// Everything one crawl position produced, as journaled and as handed to the
// merge stage. Deliberately carries no record ids or dataset references:
// the merge stage owns all dataset ordering, so a replayed outcome is
// indistinguishable from a freshly computed one.
struct AppOutcome {
  enum class Status : std::uint8_t { Ok = 0, DownloadFailed = 1, BadApk = 2 };
  Status status = Status::Ok;
  std::string package;  // for failure logs in merge order
  std::string error;
  AppRecord app;
  struct Extracted {
    std::string path;             // per-instance path inside this APK
    std::uint64_t content_key = 0;  // analysis-cache key (content hash)
    std::shared_ptr<const ModelRecord> proto;  // shared analysis prototype
  };
  std::vector<Extracted> extracted;
  std::size_t models_rejected = 0;
  // Candidate files whose every candidate framework lacks a parser, keyed
  // by the framework the drop is attributed to (first candidate, enum
  // order). Merged into SnapshotDataset::no_parser_drops.
  std::map<std::string, std::size_t> no_parser;
  // Telemetry counter deltas this app contributed (drops, crawl/validate
  // tallies, cache hit/miss attribution). Re-applied verbatim on replay so
  // a resumed run's counters match an uninterrupted run's.
  std::map<std::string, std::int64_t> counters;
};

// Identity of the run a journal belongs to. Resuming against different
// options would silently produce a different dataset, so open() refuses a
// meta mismatch. Thread count is deliberately absent: any thread count
// yields the same merge order.
struct JournalMeta {
  android::Snapshot snapshot = android::Snapshot::Apr2021;
  std::string device_profile;
  std::size_t max_apps_per_category = 0;
  std::vector<std::string> categories;  // resolved crawl order

  bool operator==(const JournalMeta&) const = default;
};

// Deterministic crash-injection seam, mirroring harness/fault.cpp: tests
// (and the check.sh smoke) kill the pipeline at exact journal positions and
// assert that resume reproduces the uninterrupted dataset. All counters are
// 1-based indices of *fresh* appends in this process.
struct CrashPlan {
  // Throw CrashInjected after record N is durably appended.
  int die_after_app = 0;
  // Append only the first half of record N's frame (a torn header), fsync,
  // then throw — replay must discard the fragment.
  int die_mid_journal_write = 0;
  // Append record N minus its trailing CRC byte, fsync, then throw — the
  // payload is intact but the frame must still be rejected.
  int torn_tail = 0;

  bool armed() const {
    return die_after_app > 0 || die_mid_journal_write > 0 || torn_tail > 0;
  }
};

// Parses the CLI `--crash-plan` grammar: semicolon-separated directives
//   die-after-app=N           die after app N's record is durable
//   die-mid-journal-write=N   die halfway through writing app N's record
//   torn-tail=N               die one byte short of completing app N's record
util::Result<CrashPlan> parse_crash_plan(const std::string& spec);

// Thrown at a CrashPlan injection point. Stands in for SIGKILL: everything
// not yet journaled is lost, the journal file is exactly what a real crash
// would leave behind.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(const std::string& what)
      : std::runtime_error{"crash injected: " + what} {}
};

class Journal {
 public:
  // The readable state of a journal file: its meta frame and the valid
  // prefix of app records. Prototype payloads are stored once per content
  // key (first occurrence); replay re-links later records to the same
  // shared instance, mirroring the analysis cache.
  struct Recovered {
    JournalMeta meta;
    std::vector<AppOutcome> outcomes;  // valid prefix, in merge order
    std::size_t valid_bytes = 0;       // end of the last intact frame
    bool torn_tail = false;  // trailing bytes discarded as torn/corrupt
  };
  static util::Result<Recovered> replay(const std::string& path);

  struct Opened;  // defined below: needs the complete Journal type
  // resume=false: creates (or truncates) the journal with a fresh meta
  // frame. resume=true: replays the existing file, verifies `meta` matches,
  // atomically truncates any torn tail, and reopens for appending.
  static util::Result<Opened> open(const std::string& path,
                                   const JournalMeta& meta, bool resume,
                                   CrashPlan plan = {});

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  // Appends one outcome frame and fsyncs it. Honours the CrashPlan: may
  // throw CrashInjected (possibly after deliberately tearing the tail).
  util::Status append(const AppOutcome& outcome);

  // Fresh appends in this process (excludes replayed records).
  std::size_t appended() const { return appended_; }

 private:
  Journal() = default;
  void close();

  int fd_ = -1;
  CrashPlan plan_;
  std::size_t appended_ = 0;
  // Content keys whose prototype is already stored in the file (dedup).
  std::set<std::uint64_t> written_keys_;
};

struct Journal::Opened {
  Journal journal;
  std::vector<AppOutcome> outcomes;  // empty for a fresh journal
  bool torn_tail = false;            // a torn tail was repaired
};

}  // namespace gauge::core
