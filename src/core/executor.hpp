// The pipeline's execution seam (DESIGN.md §15). The PipelineDriver owns
// everything that must stay deterministic — chart iteration, the strict
// submission-order merge, journal appends, cancellation — and delegates the
// question of *where* an app's stage chain actually runs to an AppExecutor.
// LocalExecutor is the in-process answer (the thread-pool fan-out the
// pipeline always had); DistributedExecutor (core/dist.hpp) shards the same
// work across worker processes.
#pragma once

#include <deque>
#include <future>
#include <optional>

#include "android/playstore.hpp"
#include "core/analysis_cache.hpp"
#include "core/journal.hpp"
#include "nn/threadpool.hpp"

namespace gauge::core {

struct PipelineOptions;

// The complete per-app stage chain: download → apk-open → detect → extract
// (validate → parse → analyse per candidate). Everything it touches besides
// the once-only cache and the telemetry registry is app-local, so it runs
// unchanged on the caller's thread, on pool workers, in cluster worker
// processes and as the coordinator's quarantine fallback. The AppOutcome it
// fills (core/journal.hpp) is exactly what the journal persists and what
// the cluster protocol ships, including the counter deltas this app
// contributed.
AppOutcome process_app(const android::PlayStore& play,
                       const PipelineOptions& options, AnalysisCache& cache,
                       const android::AppEntry& entry);

// Where apps execute. The driver's contract with every implementation:
//   - submit() hands over one chart entry; the executor may run it on any
//     thread or process at any time.
//   - next() blocks until the *oldest still-unreturned* submission has an
//     outcome and returns it — strict submission order, which is what makes
//     the driver's merge (and therefore record ids, DocStore order and the
//     dataset digest) independent of completion order.
//   - The driver keeps at most window() submissions unreturned, draining
//     via next() before submitting more (bounded memory, bounded
//     downloads-ahead-of-merge).
class AppExecutor {
 public:
  virtual ~AppExecutor() = default;
  virtual std::size_t window() const = 0;
  virtual void submit(const android::AppEntry& entry) = 0;
  virtual std::size_t in_flight() const = 0;
  virtual AppOutcome next() = 0;
};

// In-process execution on a thread pool, sharing the driver's analysis
// cache. threads == 0 degenerates to the serial fallback: the pool runs
// submissions inline on the calling thread and the window is 1.
class LocalExecutor final : public AppExecutor {
 public:
  LocalExecutor(const android::PlayStore& play, const PipelineOptions& options,
                AnalysisCache& cache);

  std::size_t window() const override { return window_; }
  void submit(const android::AppEntry& entry) override;
  std::size_t in_flight() const override { return in_flight_.size(); }
  AppOutcome next() override;

 private:
  const android::PlayStore& play_;
  const PipelineOptions& options_;
  AnalysisCache& cache_;
  nn::ThreadPool pool_;
  std::size_t window_ = 1;
  std::deque<std::future<AppOutcome>> in_flight_;
};

}  // namespace gauge::core
