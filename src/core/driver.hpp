// PipelineDriver (DESIGN.md §15): the deterministic half of the crawl. The
// driver walks category charts in order, deduplicates apps that chart in
// several categories, replays the crash-safe journal's prefix, appends
// every fresh outcome to the journal before folding it into the dataset in
// strict chart order, and honours cooperative cancellation. It never runs
// an app itself — that is the AppExecutor's job (core/executor.hpp) — so
// the exact same driver produces byte-identical datasets over the serial
// path, the in-process thread pool and the worker cluster.
#pragma once

#include <optional>
#include <vector>

#include "core/executor.hpp"
#include "core/pipeline.hpp"

namespace gauge::core {

class PipelineDriver {
 public:
  // Opens (and on resume, replays) the journal, re-applies journaled
  // telemetry deltas and seeds the analysis cache with journaled
  // prototypes — all before any executor exists, so every execution
  // backend starts from the same replayed state. Journal misconfiguration
  // (unreadable file, meta mismatch, version skew) throws: it is an
  // operator error, not a per-app drop.
  PipelineDriver(const android::PlayStore& play,
                 const PipelineOptions& options);

  // The resolved crawl order (options.categories or the full store list).
  const std::vector<std::string>& categories() const { return categories_; }

  // The coordinator-side once-only analysis cache, shared across
  // categories. Executors that run apps in this process (LocalExecutor,
  // the distributed quarantine fallback) borrow it.
  AnalysisCache& cache() { return cache_; }

  // Runs the crawl over `executor`. Call at most once.
  SnapshotDataset run(AppExecutor& executor);

 private:
  const android::PlayStore& play_;
  const PipelineOptions& options_;
  std::vector<std::string> categories_;
  AnalysisCache cache_;
  std::optional<Journal> journal_;
  std::vector<AppOutcome> replayed_;
};

}  // namespace gauge::core
