#include "core/analysis_cache.hpp"

#include "telemetry/metrics.hpp"

namespace gauge::core {

AnalysisCache::Proto AnalysisCache::find_or_compute(
    std::uint64_t key, const std::function<Proto()>& compute) {
  auto& metrics = telemetry::current_registry();
  Shard& shard = shard_for(key);

  std::promise<Proto> promise;
  std::shared_future<Proto> future;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock{shard.mutex};
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      owner = true;
      future = promise.get_future().share();
      shard.entries.emplace(key, future);
    } else {
      future = it->second;
    }
  }

  if (owner) {
    metrics.counter("gauge.pipeline.cache_misses").increment();
    Proto result;
    try {
      result = compute();
    } catch (...) {
      // Release the key and wake waiters before propagating, or concurrent
      // callers would block forever on a promise that is never fulfilled.
      {
        const std::lock_guard<std::mutex> lock{shard.mutex};
        shard.entries.erase(key);
      }
      promise.set_value(nullptr);
      throw;
    }
    if (!result) {
      const std::lock_guard<std::mutex> lock{shard.mutex};
      shard.entries.erase(key);
    }
    promise.set_value(result);
    return result;
  }

  Proto result = future.get();
  if (result) {
    metrics.counter("gauge.pipeline.cache_hits").increment();
    return result;
  }
  // The owner's computation failed and the key was released. Re-attempt
  // locally — a serial run would also parse (and fail) once per duplicate,
  // so this keeps miss/drop counters mode-independent.
  metrics.counter("gauge.pipeline.cache_misses").increment();
  return compute();
}

void AnalysisCache::seed(std::uint64_t key, Proto proto) {
  if (!proto) return;
  Shard& shard = shard_for(key);
  std::promise<Proto> promise;
  promise.set_value(std::move(proto));
  const std::lock_guard<std::mutex> lock{shard.mutex};
  shard.entries.emplace(key, promise.get_future().share());
}

std::size_t AnalysisCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock{shard.mutex};
    total += shard.entries.size();
  }
  return total;
}

}  // namespace gauge::core
