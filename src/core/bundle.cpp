#include "core/bundle.hpp"

#include "core/analysis.hpp"
#include "core/report.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace gauge::core {

util::Result<int> write_report_bundle(const SnapshotDataset& dataset,
                                      const std::string& directory) {
  using R = util::Result<int>;
  if (auto status = util::make_directories(directory); !status.ok()) {
    return R::failure(status.error());
  }
  int files = 0;
  auto emit = [&](const std::string& name,
                  const std::string& contents) -> util::Status {
    auto status = util::write_file(directory + "/" + name, contents);
    if (status.ok()) ++files;
    return status;
  };

  // Raw per-app / per-model rows.
  {
    util::Table apps{{"package", "category", "installs", "uses_ml", "cloud",
                      "candidate_files", "validated_models"}};
    for (const auto& app : dataset.apps) {
      apps.add_row({app.package, app.category, std::to_string(app.installs),
                    app.uses_ml ? "1" : "0",
                    app.cloud_providers.empty() ? "" : app.cloud_providers[0],
                    std::to_string(app.candidate_files),
                    std::to_string(app.validated_models)});
    }
    if (auto s = emit("apps.csv", apps.to_csv()); !s.ok()) return R::failure(s.error());
  }
  {
    util::Table models{{"record_id", "package", "category", "framework",
                        "path", "task", "modality", "flops", "params",
                        "checksum"}};
    for (const auto& model : dataset.models) {
      models.add_row({std::to_string(model.record_id), model.app_package,
                      model.category, formats::framework_name(model.framework),
                      model.file_path, model.task,
                      nn::modality_name(model.modality),
                      std::to_string(model.trace().total_flops),
                      std::to_string(model.trace().total_params),
                      model.checksum});
    }
    if (auto s = emit("models.csv", models.to_csv()); !s.ok()) return R::failure(s.error());
  }

  // Raw documents as JSON Lines for bulk-loading into a real search stack.
  if (auto s = emit("apps.jsonl", dataset.app_docs.query().to_jsonl()); !s.ok()) {
    return R::failure(s.error());
  }
  if (auto s = emit("models.jsonl", dataset.model_docs.query().to_jsonl());
      !s.ok()) {
    return R::failure(s.error());
  }

  // Analysis tables.
  const auto uniqueness = analyze_uniqueness(dataset);
  const auto optimisations = analyze_optimisations(dataset);
  const std::pair<const char*, std::string> tables[] = {
      {"frameworks.csv", fig4_framework_totals(dataset).to_csv()},
      {"tasks.csv", table3_tasks(dataset).to_csv()},
      {"layer_families.csv", fig6_layer_composition(dataset).to_csv()},
      {"uniqueness.csv", sec45_uniqueness(uniqueness).to_csv()},
      {"optimisations.csv", sec61_optimisations(optimisations).to_csv()},
      {"cloud.csv", fig15_cloud(dataset, 1).to_csv()},
  };
  for (const auto& [name, csv] : tables) {
    if (auto s = emit(name, csv); !s.ok()) return R::failure(s.error());
  }

  std::string index = "# gaugeNN snapshot report\n\n";
  index += util::format("- snapshot: %s\n",
                        android::snapshot_name(dataset.snapshot));
  index += util::format("- apps crawled: %zu\n", dataset.apps_crawled());
  index += util::format("- ML apps: %zu\n", dataset.ml_apps());
  index += util::format("- models: %zu (%zu unique)\n", dataset.total_models(),
                        dataset.unique_model_count());
  index +=
      "\nfiles: apps.csv, models.csv, apps.jsonl, models.jsonl, "
      "frameworks.csv, tasks.csv, layer_families.csv, uniqueness.csv, "
      "optimisations.csv, cloud.csv\n";
  if (auto s = emit("index.md", index); !s.ok()) return R::failure(s.error());
  return files;
}

}  // namespace gauge::core
