#include "core/pipeline.hpp"

#include "core/driver.hpp"
#include "util/hash.hpp"

namespace gauge::core {

std::size_t SnapshotDataset::ml_apps() const {
  return app_docs.query().where("uses_ml", store::Value{true}).count();
}

std::size_t SnapshotDataset::apps_with_models() const {
  return app_docs.query()
      .where_range("model_count", 1.0, std::nullopt)
      .count();
}

std::size_t SnapshotDataset::unique_model_count() const {
  const auto rows = model_docs.query().group_by({"checksum"});
  return rows.size();
}

SnapshotDataset run_pipeline(const android::PlayStore& play,
                             const PipelineOptions& options) {
  // The driver opens (and replays) the journal before any executor exists;
  // both executors borrow its analysis cache for in-process work.
  PipelineDriver driver{play, options};
  if (options.workers > 0) {
    DistributedExecutor executor{play, options, driver.cache()};
    return driver.run(executor);
  }
  LocalExecutor executor{play, options, driver.cache()};
  return driver.run(executor);
}

std::uint64_t dataset_digest(const SnapshotDataset& dataset) {
  constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
  std::uint64_t digest = util::fnv1a64(dataset.app_docs.query().to_jsonl());
  digest =
      digest * kFnvPrime + util::fnv1a64(dataset.model_docs.query().to_jsonl());
  digest = digest * kFnvPrime + dataset.apps.size();
  digest = digest * kFnvPrime + dataset.models.size();
  return digest;
}

}  // namespace gauge::core
