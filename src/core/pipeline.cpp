#include "core/pipeline.hpp"

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "android/detect.hpp"
#include "core/analysis_cache.hpp"
#include "core/taskclassify.hpp"
#include "formats/plugin.hpp"
#include "nn/checksum.hpp"
#include "nn/threadpool.hpp"
#include "nn/zoo.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// One anchored model file parsed through its framework's plugin (plus its
// pre-read weights sibling for the two-file formats). Returns nullopt when
// parsing fails.
struct ParsedModel {
  nn::Graph graph;
  formats::Framework framework;
  std::size_t file_bytes = 0;
};

std::optional<ParsedModel> parse_model(const util::Bytes& data,
                                       const util::Bytes* weights,
                                       formats::Framework framework) {
  const formats::FormatPlugin* plugin =
      formats::PluginRegistry::instance().find(framework);
  if (plugin == nullptr) return std::nullopt;
  auto graph = plugin->parse(data, weights);
  if (!graph.ok()) return std::nullopt;
  ParsedModel out;
  out.framework = framework;
  out.file_bytes = data.size() + (weights != nullptr ? weights->size() : 0);
  out.graph = std::move(graph).take();
  return out;
}

// Weights-only companions of two-file formats: counted as candidates but
// never anchor a model record. A central-directory lookup suffices — the
// graph sibling's bytes are not needed to establish companionship. The
// check is path-based (any plugin recognising `path` as its weights side
// with the graph sibling present), matching signature validation which may
// attribute e.g. a TFLite-signed .bin to TfLite while a .param sibling
// still marks it as ncnn weights.
bool is_weights_companion(const std::string& path, const android::Apk& apk) {
  for (const auto* plugin : formats::PluginRegistry::instance().plugins()) {
    const std::string primary = plugin->companion_primary(path);
    if (!primary.empty() && apk.contains(primary)) return true;
  }
  return false;
}

// Builds the instance-agnostic analysis prototype for one parsed model.
// record_id, app_package, category and file_path are per-instance and get
// assigned by the merge stage; the heavy trace/digest payload is shared.
ModelRecord analyse_model(ParsedModel parsed, const std::string& path) {
  ModelRecord record;
  record.framework = parsed.framework;
  record.file_path = path;
  record.file_bytes = parsed.file_bytes;

  const nn::Graph& graph = parsed.graph;
  record.checksum = nn::model_checksum(graph);
  record.architecture_checksum = nn::architecture_checksum(graph);

  auto analysis = std::make_shared<ModelAnalysis>();
  analysis->layer_digests = nn::layer_weight_checksums(graph);

  auto trace = nn::trace_model(graph);
  if (trace.ok()) {
    analysis->trace = std::move(trace).take();
    analysis->op_family_counts = analysis->trace.op_family_counts();
    record.modality = infer_modality(analysis->trace);
    record.task = classify_task(
        std::string{util::basename(graph.name.empty() ? path : graph.name)},
        analysis->trace);
  } else {
    record.task = kUnidentified;
  }

  for (const auto& layer : graph.layers()) {
    if (layer.name.starts_with("cluster_")) record.has_cluster_prefix = true;
    if (layer.name.starts_with("prune_")) record.has_prune_prefix = true;
    if (layer.type == nn::LayerType::Dequantize) {
      record.has_dequantize_layer = true;
    }
    if (layer.has_weights() && layer.weight_bits == 8) {
      record.int8_weights = true;
    }
    if (layer.act_bits == 8) record.int8_activations = true;
  }
  record.near_zero_weight_fraction = nn::near_zero_weight_fraction(graph);
  record.analysis = std::move(analysis);
  return record;
}

// The complete per-app stage chain: download → apk-open → detect → extract
// (validate → parse → analyse per candidate). Runs on the calling thread in
// serial mode and on pool workers in parallel mode; everything it touches
// besides the once-only cache and the telemetry registry is app-local.
// The AppOutcome it fills (core/journal.hpp) is exactly what the journal
// persists, including the counter deltas this app contributed.
AppOutcome process_app(const android::PlayStore& play,
                       const PipelineOptions& options, AnalysisCache& cache,
                       const android::AppEntry& entry) {
  auto& metrics = telemetry::current_registry();

  AppOutcome out;
  out.package = entry.package;

  // Every registry increment this app makes funnels through `bump` so the
  // delta lands in out.counters too — a resumed run re-applies the deltas
  // verbatim instead of re-running the app.
  const auto bump = [&metrics, &out](const std::string& name,
                                     std::int64_t n = 1) {
    metrics.counter(name).increment(n);
    out.counters[name] += n;
  };
  const auto drop = [&bump](const char* reason) {
    bump(std::string{"gauge.pipeline.drop."} + reason);
  };

  // Root of the per-app stage spans. On a pool worker this is a root span
  // on its own thread (span parents never cross threads); the annotations
  // tie it back to the crawl position.
  telemetry::Span app_span{"pipeline.app"};
  app_span.annotate("package", entry.package);
  app_span.annotate("category", entry.category);

  bump("gauge.pipeline.apps_crawled");

  auto pkg = [&] {
    telemetry::Span span{"pipeline.download"};
    return play.download(entry.package, options.snapshot,
                         options.device_profile);
  }();
  if (!pkg.ok()) {
    drop("download_failed");
    out.status = AppOutcome::Status::DownloadFailed;
    out.error = pkg.error();
    return out;
  }
  auto apk = [&] {
    telemetry::Span span{"pipeline.apk_open"};
    return android::Apk::open(std::move(pkg.value().apk), options.zip_limits);
  }();
  if (!apk.ok()) {
    drop("bad_apk");
    out.status = AppOutcome::Status::BadApk;
    out.error = apk.error();
    return out;
  }
  // Hostile entry names (path traversal, absolute paths) were hidden by the
  // zip reader; surface the count without failing the whole APK.
  if (const std::size_t rejected = apk.value().rejected_entry_names();
      rejected > 0) {
    bump("gauge.pipeline.drop.bad_entry_name",
         static_cast<std::int64_t>(rejected));
  }

  AppRecord& app = out.app;
  app.package = entry.package;
  app.title = entry.title;
  app.category = entry.category;
  app.installs = entry.installs;

  {
    // Static detection: ML stacks, delegates, cloud APIs.
    telemetry::Span span{"pipeline.detect"};
    for (const auto& hit : android::detect_ml_stacks(apk.value())) {
      app.ml_stacks.push_back(android::ml_stack_name(hit.stack));
      if (hit.stack == android::MlStack::NnApi) app.uses_nnapi = true;
      if (hit.stack == android::MlStack::Xnnpack) app.uses_xnnpack = true;
      if (hit.stack == android::MlStack::Snpe) app.uses_snpe = true;
    }
    app.uses_ml = android::uses_ml(apk.value());
    for (const auto& hit : android::detect_cloud_apis(apk.value())) {
      app.cloud_providers.push_back(
          android::cloud_provider_name(hit.provider));
    }
  }

  // Read-once memo for this APK's entries: the weights sibling of a
  // two-file model is needed by the content key, the parser and (as a
  // candidate in its own right) the validation loop — inflate it once.
  std::map<std::string, util::Result<util::Bytes>, std::less<>> reads;
  const auto read_entry =
      [&](const std::string& name) -> const util::Result<util::Bytes>& {
    auto it = reads.find(name);
    if (it == reads.end()) {
      it = reads.emplace(name, apk.value().read(name)).first;
    }
    return it->second;
  };

  // Model extraction from the base APK. (Span closed explicitly before the
  // side-container sweep, which it should not cover.)
  std::optional<telemetry::Span> extract_span{std::in_place,
                                              "pipeline.extract"};
  const auto& registry = formats::PluginRegistry::instance();
  for (const auto& name : apk.value().entry_names()) {
    if (!registry.is_candidate(name)) continue;
    app.candidate_files++;
    const auto& data = read_entry(name);
    if (!data.ok()) {
      // Entries tripping the inflation caps are an attack signature, not an
      // I/O hiccup — give them their own drop bucket.
      drop(zipfile::is_zip_bomb_error(data.error()) ? "zip_bomb"
                                                    : "entry_read_failed");
      continue;
    }
    if (!registry.any_candidate_has_plugin(name)) {
      // Every framework claiming this extension lacks a parser (e.g. a
      // .joblib Sklearn pickle): surfaced per framework instead of being
      // folded into bad_signature.
      const auto candidates = registry.candidate_frameworks(name);
      const char* fw_name = registry.framework_name(candidates.front());
      drop("no_parser");
      bump(std::string{"gauge.pipeline.drop.no_parser."} + fw_name);
      ++out.no_parser[fw_name];
      ++out.models_rejected;
      continue;
    }
    const auto framework = [&] {
      telemetry::Span span{"pipeline.validate"};
      return registry.validate_signature(name, data.value());
    }();
    if (!framework) {  // obfuscated/encrypted or not a model
      drop("bad_signature");
      ++out.models_rejected;
      continue;
    }
    if (is_weights_companion(name, apk.value())) {
      drop("weights_companion");
      continue;
    }
    // Two-file formats: read the weights sibling exactly once and thread it
    // through both the content key and the parser.
    const util::Bytes* weights = nullptr;
    if (const std::string weights_path =
            registry.find(*framework)->companion(name);
        !weights_path.empty()) {
      if (const auto& sibling = read_entry(weights_path); sibling.ok()) {
        weights = &sibling.value();
      }
    }
    // Content key covers the graph file; two-file formats append the
    // weights blob so fine-tuned caffe/ncnn variants don't collide.
    std::uint64_t content_key = util::fnv1a64(data.value());
    if (weights != nullptr) {
      content_key = content_key * 1099511628211ULL + util::fnv1a64(*weights);
    }
    // Once-only analysis: duplicates (the common case — off-the-shelf
    // models shipped by many apps) adopt the owner's prototype, even when
    // owner and duplicate race on different workers. The cache increments
    // hit/miss registry counters itself; `computed` attributes the same
    // delta to this outcome for journal replay.
    bool computed = false;
    auto proto =
        cache.find_or_compute(content_key, [&]() -> AnalysisCache::Proto {
          computed = true;
          auto parsed = [&] {
            telemetry::Span span{"pipeline.parse"};
            return parse_model(data.value(), weights, *framework);
          }();
          if (!parsed) {
            drop("parse_failed");
            ++out.models_rejected;
            return nullptr;
          }
          telemetry::Span span{"pipeline.analyse"};
          return std::make_shared<const ModelRecord>(
              analyse_model(std::move(*parsed), name));
        });
    ++out.counters[computed ? "gauge.pipeline.cache_misses"
                            : "gauge.pipeline.cache_hits"];
    if (!proto) continue;
    app.validated_models++;
    out.extracted.push_back({name, content_key, std::move(proto)});
    bump("gauge.pipeline.models_validated");
  }
  extract_span.reset();

  // §4.2: sweep post-install deliverables for models.
  const auto sweep = [&](const android::SideContainer& side) {
    auto entries = android::side_container_entries(side);
    if (!entries.ok()) return;
    for (const auto& name : entries.value()) {
      app.side_container_files++;
      if (formats::is_candidate_model_file(name)) {
        app.side_container_models++;
      }
    }
  };
  for (const auto& side : pkg.value().expansions) sweep(side);
  for (const auto& side : pkg.value().asset_packs) sweep(side);

  return out;
}

}  // namespace

std::size_t SnapshotDataset::ml_apps() const {
  return app_docs.query().where("uses_ml", store::Value{true}).count();
}

std::size_t SnapshotDataset::apps_with_models() const {
  return app_docs.query()
      .where_range("model_count", 1.0, std::nullopt)
      .count();
}

std::size_t SnapshotDataset::unique_model_count() const {
  const auto rows = model_docs.query().group_by({"checksum"});
  return rows.size();
}

SnapshotDataset run_pipeline(const android::PlayStore& play,
                             const PipelineOptions& options) {
  SnapshotDataset dataset;
  dataset.snapshot = options.snapshot;

  auto& metrics = telemetry::current_registry();
  const auto drop = [&metrics](const char* reason) {
    metrics.counter(std::string{"gauge.pipeline.drop."} + reason).increment();
  };
  telemetry::Span run_span{"pipeline.run"};

  const auto& categories = options.categories.empty()
                               ? android::PlayStore::categories()
                               : options.categories;

  std::set<std::string> crawled;  // apps can chart in several categories
  AnalysisCache cache;            // once-only across categories and workers

  // Crash-safe journal (DESIGN.md §10): opened — and on resume, replayed —
  // before any work is dispatched, so journaled prototypes are seeded ahead
  // of the first fresh app. A journal that cannot be opened or that was
  // written under different options is an operator error, not a per-app
  // drop, hence the throw.
  std::optional<Journal> journal;
  std::vector<AppOutcome> replayed;
  if (!options.journal_path.empty()) {
    JournalMeta meta;
    meta.snapshot = options.snapshot;
    meta.device_profile = options.device_profile;
    meta.max_apps_per_category = options.max_apps_per_category;
    meta.categories = categories;
    auto opened = Journal::open(options.journal_path, meta, options.resume,
                                options.crash_plan);
    if (!opened.ok()) throw std::runtime_error{opened.error()};
    journal.emplace(std::move(opened.value().journal));
    replayed = std::move(opened.value().outcomes);
    if (opened.value().torn_tail) {
      metrics.counter("gauge.pipeline.resume.torn_tail").increment();
    }
    if (!replayed.empty()) {
      metrics.counter("gauge.pipeline.resume.skipped")
          .increment(static_cast<std::int64_t>(replayed.size()));
      std::int64_t replayed_models = 0;
      for (const auto& out : replayed) {
        replayed_models += static_cast<std::int64_t>(out.extracted.size());
        // Re-apply the original run's telemetry deltas verbatim, and seed
        // the analysis cache so post-resume duplicates adopt the journaled
        // prototype instead of re-analysing.
        for (const auto& [name, delta] : out.counters) {
          metrics.counter(name).increment(delta);
        }
        for (const auto& extracted : out.extracted) {
          cache.seed(extracted.content_key, extracted.proto);
        }
      }
      metrics.counter("gauge.pipeline.resume.replayed_models")
          .increment(replayed_models);
      util::log_info(util::format("resuming: %zu apps replayed from journal",
                                  replayed.size()));
    }
  }
  std::size_t replay_index = 0;

  const auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  std::optional<nn::ThreadPool> pool;
  if (options.threads > 0) pool.emplace(options.threads);
  // Bounded in-flight window: enough tasks to keep every worker busy while
  // the merge stage drains in submission order, without downloading a whole
  // category ahead of the merge.
  const std::size_t window =
      pool ? std::max<std::size_t>(2 * pool->size(), 4) : 0;

  for (const auto& category : categories) {
    if (dataset.interrupted) break;
    telemetry::Span category_span{"pipeline.category"};
    category_span.annotate("category", category);
    std::size_t apps_ok = 0, apps_failed = 0;
    std::size_t models_validated = 0, models_rejected = 0;
    std::map<std::string, std::size_t> category_no_parser;

    android::PlayStore::ChartRequest request;
    request.category = category;
    request.snapshot = options.snapshot;
    request.device_profile = options.device_profile;
    request.limit = options.max_apps_per_category;
    const auto chart = play.top_chart(request);
    util::log_info(util::format("crawling '%s': %zu apps", category.c_str(),
                                chart.size()));

    // Deterministic merge: outcomes are folded into the dataset strictly in
    // chart order, so record ids, dataset order and DocStore ids match the
    // serial run no matter which worker finishes first.
    const auto merge = [&](AppOutcome out) {
      if (out.status == AppOutcome::Status::DownloadFailed) {
        util::log_warn("download failed: " + out.error);
        ++apps_failed;
        return;
      }
      if (out.status == AppOutcome::Status::BadApk) {
        util::log_warn("bad apk for " + out.package + ": " + out.error);
        ++apps_failed;
        return;
      }
      AppRecord app = std::move(out.app);
      for (auto& extracted : out.extracted) {
        ModelRecord record = *extracted.proto;  // payload stays shared
        record.record_id = static_cast<int>(dataset.models.size());
        record.file_path = std::move(extracted.path);
        record.app_package = app.package;
        record.category = app.category;
        app.model_record_ids.push_back(record.record_id);
        dataset.model_docs.insert(to_document(record));
        dataset.models.push_back(std::move(record));
      }
      models_validated += out.extracted.size();
      models_rejected += out.models_rejected;
      for (const auto& [fw_name, count] : out.no_parser) {
        category_no_parser[fw_name] += count;
        dataset.no_parser_drops[fw_name] += count;
      }
      dataset.app_docs.insert(to_document(app));
      dataset.apps.push_back(std::move(app));
      ++apps_ok;
    };

    // Journal + merge: fresh outcomes are made durable before they are
    // folded into the dataset, so the journal is always a strict prefix of
    // the merge order and a crash between the two loses nothing that the
    // dataset already contains. Append failure (disk full, injected crash)
    // aborts the run — continuing would silently break resumability.
    const auto complete = [&](AppOutcome out) {
      if (journal) {
        const auto appended = journal->append(out);
        if (!appended.ok()) throw std::runtime_error{appended.error()};
      }
      merge(std::move(out));
    };

    std::deque<std::future<AppOutcome>> in_flight;
    for (const android::AppEntry* entry : chart) {
      if (cancelled()) break;
      if (!crawled.insert(entry->package).second) {
        drop("duplicate_app");
        continue;
      }
      // Resume fast path: this crawl position completed in a previous run.
      // Merge order is strictly chart order, so the journal is a prefix of
      // the positions this loop visits — fold the journaled outcome back in
      // without downloading, re-analysing or re-appending.
      if (replay_index < replayed.size()) {
        merge(std::move(replayed[replay_index++]));
        continue;
      }
      if (!pool) {  // serial fallback: same code path, same thread
        complete(process_app(play, options, cache, *entry));
        continue;
      }
      while (in_flight.size() >= window) {
        complete(in_flight.front().get());
        in_flight.pop_front();
      }
      in_flight.push_back(pool->submit([&play, &options, &cache, entry] {
        return process_app(play, options, cache, *entry);
      }));
    }
    // Drain: also the cancellation path — in-flight apps are finished and
    // journaled so the resume point is as far along as possible.
    while (!in_flight.empty()) {
      complete(in_flight.front().get());
      in_flight.pop_front();
    }
    if (cancelled()) dataset.interrupted = true;

    metrics.counter("gauge.pipeline.categories").increment();
    std::string summary = util::format(
        "category '%s': apps %zu ok / %zu failed, models %zu validated / "
        "%zu rejected",
        category.c_str(), apps_ok, apps_failed, models_validated,
        models_rejected);
    if (!category_no_parser.empty()) {
      summary += " (no parser:";
      for (const auto& [fw_name, count] : category_no_parser) {
        summary += util::format(" %s %zu", fw_name.c_str(), count);
      }
      summary += ")";
    }
    util::log_info(summary);
  }
  if (dataset.interrupted) {
    util::log_warn(
        "pipeline interrupted: dataset holds the journaled prefix only");
  }
  return dataset;
}

std::uint64_t dataset_digest(const SnapshotDataset& dataset) {
  constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
  std::uint64_t digest = util::fnv1a64(dataset.app_docs.query().to_jsonl());
  digest =
      digest * kFnvPrime + util::fnv1a64(dataset.model_docs.query().to_jsonl());
  digest = digest * kFnvPrime + dataset.apps.size();
  digest = digest * kFnvPrime + dataset.models.size();
  return digest;
}

}  // namespace gauge::core
