#include "core/pipeline.hpp"

#include <optional>
#include <set>

#include "android/detect.hpp"
#include "core/taskclassify.hpp"
#include "formats/caffe.hpp"
#include "formats/ncnn.hpp"
#include "formats/tfl.hpp"
#include "formats/validate.hpp"
#include "nn/checksum.hpp"
#include "nn/zoo.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// Replaces the (recognised) extension of `path` with `replacement`.
std::string sibling_path(const std::string& path, const std::string& from,
                         const std::string& replacement) {
  const auto pos = util::to_lower(path).rfind(from);
  if (pos == std::string::npos) return {};
  std::string out = path;
  out.replace(pos, from.size(), replacement);
  return out;
}

// Parses one anchored model file (plus its weights sibling for the two-file
// formats). Returns nullopt when parsing fails.
struct ParsedModel {
  nn::Graph graph;
  formats::Framework framework;
  std::size_t file_bytes = 0;
};

std::optional<ParsedModel> parse_model(const android::Apk& apk,
                                       const std::string& path,
                                       const util::Bytes& data,
                                       formats::Framework framework) {
  ParsedModel out;
  out.framework = framework;
  out.file_bytes = data.size();
  switch (framework) {
    case formats::Framework::TfLite: {
      auto graph = formats::read_tfl(data);
      if (!graph.ok()) return std::nullopt;
      out.graph = std::move(graph).take();
      return out;
    }
    case formats::Framework::TensorFlow: {
      auto graph = formats::read_tf_pb(data);
      if (!graph.ok()) return std::nullopt;
      out.graph = std::move(graph).take();
      return out;
    }
    case formats::Framework::Snpe: {
      auto graph = formats::read_dlc(data);
      if (!graph.ok()) return std::nullopt;
      out.graph = std::move(graph).take();
      return out;
    }
    case formats::Framework::Caffe: {
      const std::string weights_path =
          sibling_path(path, ".prototxt", ".caffemodel");
      auto weights = apk.read(weights_path);
      if (!weights.ok()) return std::nullopt;
      auto graph = formats::read_caffe(std::string{util::as_view(data)},
                                       weights.value());
      if (!graph.ok()) return std::nullopt;
      out.graph = std::move(graph).take();
      out.file_bytes += weights.value().size();
      return out;
    }
    case formats::Framework::Ncnn: {
      const std::string weights_path = sibling_path(path, ".param", ".bin");
      auto weights = apk.read(weights_path);
      if (!weights.ok()) return std::nullopt;
      auto graph = formats::read_ncnn(std::string{util::as_view(data)},
                                      weights.value());
      if (!graph.ok()) return std::nullopt;
      out.graph = std::move(graph).take();
      out.file_bytes += weights.value().size();
      return out;
    }
    default:
      return std::nullopt;
  }
}

// Weights-only companions of two-file formats: counted as candidates but
// never anchor a model record.
bool is_weights_companion(const std::string& path, const android::Apk& apk) {
  const std::string ext = util::extension(path);
  if (ext == ".caffemodel") {
    return apk.read(sibling_path(path, ".caffemodel", ".prototxt")).ok();
  }
  if (ext == ".bin") {
    return apk.read(sibling_path(path, ".bin", ".param")).ok();
  }
  return false;
}

ModelRecord analyse_model(ParsedModel parsed, const std::string& path,
                          int record_id) {
  ModelRecord record;
  record.record_id = record_id;
  record.framework = parsed.framework;
  record.file_path = path;
  record.file_bytes = parsed.file_bytes;

  const nn::Graph& graph = parsed.graph;
  record.checksum = nn::model_checksum(graph);
  record.architecture_checksum = nn::architecture_checksum(graph);
  record.layer_digests = nn::layer_weight_checksums(graph);

  auto trace = nn::trace_model(graph);
  if (trace.ok()) {
    record.trace = std::move(trace).take();
    record.op_family_counts = record.trace.op_family_counts();
    record.modality = infer_modality(record.trace);
    record.task = classify_task(
        std::string{util::basename(graph.name.empty() ? path : graph.name)},
        record.trace);
  } else {
    record.task = kUnidentified;
  }

  for (const auto& layer : graph.layers()) {
    if (layer.name.starts_with("cluster_")) record.has_cluster_prefix = true;
    if (layer.name.starts_with("prune_")) record.has_prune_prefix = true;
    if (layer.type == nn::LayerType::Dequantize) {
      record.has_dequantize_layer = true;
    }
    if (layer.has_weights() && layer.weight_bits == 8) {
      record.int8_weights = true;
    }
    if (layer.act_bits == 8) record.int8_activations = true;
  }
  record.near_zero_weight_fraction = nn::near_zero_weight_fraction(graph);
  return record;
}

}  // namespace

std::size_t SnapshotDataset::ml_apps() const {
  std::size_t count = 0;
  for (const auto& app : apps) {
    if (app.uses_ml) ++count;
  }
  return count;
}

std::size_t SnapshotDataset::apps_with_models() const {
  std::size_t count = 0;
  for (const auto& app : apps) {
    if (!app.model_record_ids.empty()) ++count;
  }
  return count;
}

std::size_t SnapshotDataset::unique_model_count() const {
  std::set<std::string> checksums;
  for (const auto& model : models) checksums.insert(model.checksum);
  return checksums.size();
}

SnapshotDataset run_pipeline(const android::PlayStore& play,
                             const PipelineOptions& options) {
  SnapshotDataset dataset;
  dataset.snapshot = options.snapshot;

  auto& metrics = telemetry::current_registry();
  const auto drop = [&metrics](const char* reason) {
    metrics.counter(std::string{"gauge.pipeline.drop."} + reason).increment();
  };
  telemetry::Span run_span{"pipeline.run"};

  const auto& categories = options.categories.empty()
                               ? android::PlayStore::categories()
                               : options.categories;

  std::set<std::string> crawled;  // apps can chart in several categories
  // Duplicate model files (the common case: off-the-shelf models shipped by
  // many apps) are analysed once and the record cloned per instance.
  std::map<std::uint64_t, ModelRecord> analysis_cache;
  for (const auto& category : categories) {
    telemetry::Span category_span{"pipeline.category"};
    category_span.annotate("category", category);
    std::size_t apps_ok = 0, apps_failed = 0;
    std::size_t models_validated = 0, models_rejected = 0;

    android::PlayStore::ChartRequest request;
    request.category = category;
    request.snapshot = options.snapshot;
    request.device_profile = options.device_profile;
    request.limit = options.max_apps_per_category;
    const auto chart = play.top_chart(request);
    util::log_info(util::format("crawling '%s': %zu apps", category.c_str(),
                                chart.size()));

    for (const android::AppEntry* entry : chart) {
      if (!crawled.insert(entry->package).second) {
        drop("duplicate_app");
        continue;
      }
      metrics.counter("gauge.pipeline.apps_crawled").increment();

      auto pkg = [&] {
        telemetry::Span span{"pipeline.download"};
        return play.download(entry->package, options.snapshot,
                             options.device_profile);
      }();
      if (!pkg.ok()) {
        util::log_warn("download failed: " + pkg.error());
        drop("download_failed");
        ++apps_failed;
        continue;
      }
      auto apk = [&] {
        telemetry::Span span{"pipeline.apk_open"};
        return android::Apk::open(std::move(pkg.value().apk));
      }();
      if (!apk.ok()) {
        util::log_warn("bad apk for " + entry->package + ": " + apk.error());
        drop("bad_apk");
        ++apps_failed;
        continue;
      }

      AppRecord app;
      app.package = entry->package;
      app.title = entry->title;
      app.category = entry->category;
      app.installs = entry->installs;

      {
        // Static detection: ML stacks, delegates, cloud APIs.
        telemetry::Span span{"pipeline.detect"};
        for (const auto& hit : android::detect_ml_stacks(apk.value())) {
          app.ml_stacks.push_back(android::ml_stack_name(hit.stack));
          if (hit.stack == android::MlStack::NnApi) app.uses_nnapi = true;
          if (hit.stack == android::MlStack::Xnnpack) app.uses_xnnpack = true;
          if (hit.stack == android::MlStack::Snpe) app.uses_snpe = true;
        }
        app.uses_ml = android::uses_ml(apk.value());
        for (const auto& hit : android::detect_cloud_apis(apk.value())) {
          app.cloud_providers.push_back(
              android::cloud_provider_name(hit.provider));
        }
      }

      // Model extraction from the base APK. (Span closed explicitly before
      // the side-container sweep, which it should not cover.)
      std::optional<telemetry::Span> extract_span{std::in_place,
                                                  "pipeline.extract"};
      for (const auto& name : apk.value().entry_names()) {
        if (!formats::is_candidate_model_file(name)) continue;
        app.candidate_files++;
        auto data = apk.value().read(name);
        if (!data.ok()) {
          drop("entry_read_failed");
          continue;
        }
        const auto framework = [&] {
          telemetry::Span span{"pipeline.validate"};
          return formats::validate_signature(name, data.value());
        }();
        if (!framework) {  // obfuscated/encrypted or not a model
          drop("bad_signature");
          ++models_rejected;
          continue;
        }
        if (is_weights_companion(name, apk.value())) {
          drop("weights_companion");
          continue;
        }
        // Content key covers the graph file; two-file formats append the
        // weights blob so fine-tuned caffe/ncnn variants don't collide.
        std::uint64_t content_key = util::fnv1a64(data.value());
        if (*framework == formats::Framework::Caffe ||
            *framework == formats::Framework::Ncnn) {
          const std::string weights_path =
              *framework == formats::Framework::Caffe
                  ? sibling_path(name, ".prototxt", ".caffemodel")
                  : sibling_path(name, ".param", ".bin");
          if (auto weights = apk.value().read(weights_path); weights.ok()) {
            content_key =
                content_key * 1099511628211ULL + util::fnv1a64(weights.value());
          }
        }
        ModelRecord record;
        const auto cached = analysis_cache.find(content_key);
        if (cached != analysis_cache.end()) {
          metrics.counter("gauge.pipeline.cache_hits").increment();
          record = cached->second;
          record.record_id = static_cast<int>(dataset.models.size());
        } else {
          metrics.counter("gauge.pipeline.cache_misses").increment();
          auto parsed = [&] {
            telemetry::Span span{"pipeline.parse"};
            return parse_model(apk.value(), name, data.value(), *framework);
          }();
          if (!parsed) {
            drop("parse_failed");
            ++models_rejected;
            continue;
          }
          telemetry::Span span{"pipeline.analyse"};
          record = analyse_model(std::move(*parsed), name,
                                 static_cast<int>(dataset.models.size()));
          analysis_cache[content_key] = record;
        }
        record.app_package = app.package;
        record.category = app.category;
        app.validated_models++;
        app.model_record_ids.push_back(record.record_id);
        dataset.model_docs.insert(to_document(record));
        dataset.models.push_back(std::move(record));
        metrics.counter("gauge.pipeline.models_validated").increment();
        ++models_validated;
      }
      extract_span.reset();

      // §4.2: sweep post-install deliverables for models.
      auto sweep = [&](const android::SideContainer& side) {
        auto entries = android::side_container_entries(side);
        if (!entries.ok()) return;
        for (const auto& name : entries.value()) {
          app.side_container_files++;
          if (formats::is_candidate_model_file(name)) {
            app.side_container_models++;
          }
        }
      };
      for (const auto& side : pkg.value().expansions) sweep(side);
      for (const auto& side : pkg.value().asset_packs) sweep(side);

      dataset.app_docs.insert(to_document(app));
      dataset.apps.push_back(std::move(app));
      ++apps_ok;
    }

    metrics.counter("gauge.pipeline.categories").increment();
    util::log_info(util::format(
        "category '%s': apps %zu ok / %zu failed, models %zu validated / "
        "%zu rejected",
        category.c_str(), apps_ok, apps_failed, models_validated,
        models_rejected));
  }
  return dataset;
}

}  // namespace gauge::core
