#include "core/taskclassify.hpp"

#include <array>
#include <map>

#include "util/strings.hpp"

namespace gauge::core {

namespace {

struct Keyword {
  const char* fragment;
  const char* task;
};

// Name hints, checked in order (more specific first).
constexpr std::array kKeywords = {
    Keyword{"object_detection", "object detection"},
    Keyword{"face_detection", "face detection"},
    Keyword{"blazeface", "face detection"},
    Keyword{"contour_detection", "contour detection"},
    Keyword{"contour", "contour detection"},
    Keyword{"text_recognition", "text recognition"},
    Keyword{"ocr", "text recognition"},
    Keyword{"augmented_reality", "augmented reality"},
    Keyword{"semantic_segmentation", "semantic segmentation"},
    Keyword{"segmentation", "semantic segmentation"},
    Keyword{"object_recognition", "object recognition"},
    Keyword{"pose_estimation", "pose estimation"},
    Keyword{"photo_beauty", "photo beauty"},
    Keyword{"beauty", "photo beauty"},
    Keyword{"image_classification", "image classification"},
    Keyword{"nudity_detection", "nudity detection"},
    Keyword{"other_vision", "other vision"},
    Keyword{"auto_complete", "auto-complete"},
    Keyword{"autocomplete", "auto-complete"},
    Keyword{"sentiment_prediction", "sentiment prediction"},
    Keyword{"sentiment", "sentiment prediction"},
    Keyword{"content_filter", "content filter"},
    Keyword{"text_classification", "text classification"},
    Keyword{"translation", "translation"},
    Keyword{"sound_recognition", "sound recognition"},
    Keyword{"speech_recognition", "speech recognition"},
    Keyword{"keyword_detection", "keyword detection"},
    Keyword{"movement_tracking", "movement tracking"},
    Keyword{"crash_detection", "crash detection"},
    Keyword{"fssd", "object detection"},
    Keyword{"ssd", "object detection"},
};

bool has_layer(const nn::ModelTrace& trace, nn::LayerType type) {
  for (const auto& layer : trace.layers) {
    if (layer.type == type) return true;
  }
  return false;
}

const nn::Shape* input_shape(const nn::ModelTrace& trace) {
  for (const auto& layer : trace.layers) {
    if (layer.type == nn::LayerType::Input) return &layer.output_shape;
  }
  return nullptr;
}

// The last layer's output shape (single-output models; good enough for the
// heuristics, exactly as a human eyeballing Netron would use).
const nn::Shape* output_shape(const nn::ModelTrace& trace) {
  if (trace.layers.empty()) return nullptr;
  return &trace.layers.back().output_shape;
}

}  // namespace

nn::Modality infer_modality(const nn::ModelTrace& trace) {
  const nn::Shape* in = input_shape(trace);
  if (in == nullptr) return nn::Modality::Unknown;
  if (in->rank() == 4) {
    // Square spatial input = camera frame. Rectangular inputs are ambiguous
    // between spectrograms and OCR text lines; a recurrent decoder marks
    // the CRNN-style OCR models as vision (what a human label-er does).
    if ((*in)[1] == (*in)[2]) return nn::Modality::Image;
    for (const auto& layer : trace.layers) {
      if (layer.type == nn::LayerType::Lstm) return nn::Modality::Image;
    }
    return nn::Modality::Audio;
  }
  if (in->rank() == 3) return nn::Modality::Audio;  // [N, frames, features]
  if (in->rank() == 2) {
    // Token ids (fed to an embedding) vs flattened sensor windows.
    if (has_layer(trace, nn::LayerType::Embedding)) return nn::Modality::Text;
    return nn::Modality::Sensor;
  }
  return nn::Modality::Unknown;
}

std::string classify_by_name(const std::string& name) {
  const std::string lower = util::to_lower(name);
  for (const auto& kw : kKeywords) {
    if (lower.find(kw.fragment) != std::string::npos) return kw.task;
  }
  return kUnidentified;
}

std::string classify_by_io(const nn::ModelTrace& trace) {
  const nn::Shape* in = input_shape(trace);
  const nn::Shape* out = output_shape(trace);
  if (in == nullptr || out == nullptr) return kUnidentified;

  const nn::Modality modality = infer_modality(trace);
  if (modality == nn::Modality::Image) {
    if (out->rank() == 4) {
      // Dense spatial outputs: channel count tells the head apart.
      const std::int64_t channels = out->dims.back();
      if (channels == 2) return "semantic segmentation";
      if (channels == 17) return "pose estimation";
      if (channels == 4) return "contour detection";
      if (channels == 3) return "photo beauty";
      return kUnidentified;
    }
    if (out->rank() == 2) {
      // Flattened heads: large = detection boxes+scores, small = classes.
      if (out->dims.back() > 500) return "object detection";
      if (out->dims.back() <= 50) return "image classification";
      return kUnidentified;
    }
    if (out->rank() == 3) return "text recognition";  // per-step char probs
    return kUnidentified;
  }
  if (modality == nn::Modality::Text) {
    if (out->dims.back() >= 100) return "auto-complete";  // vocabulary logits
    if (out->dims.back() <= 3) return "sentiment prediction";
    return kUnidentified;
  }
  if (modality == nn::Modality::Audio) {
    if (out->dims.back() == 29) return "speech recognition";  // characters
    if (out->rank() == 2) return "sound recognition";
    return kUnidentified;
  }
  if (modality == nn::Modality::Sensor) {
    return "movement tracking";
  }
  return kUnidentified;
}

std::string classify_by_layers(const nn::ModelTrace& trace) {
  const nn::Modality modality = infer_modality(trace);
  const bool lstm = has_layer(trace, nn::LayerType::Lstm);
  const bool embedding = has_layer(trace, nn::LayerType::Embedding);
  const bool conv = has_layer(trace, nn::LayerType::Conv2D);
  const bool dwconv = has_layer(trace, nn::LayerType::DepthwiseConv2D);
  const bool resize = has_layer(trace, nn::LayerType::ResizeNearest);
  const bool concat = has_layer(trace, nn::LayerType::Concat);
  const bool add = has_layer(trace, nn::LayerType::Add);
  const bool sigmoid = has_layer(trace, nn::LayerType::Sigmoid);

  if (embedding && lstm) return "auto-complete";
  if (embedding && conv) return "sentiment prediction";
  if (lstm && conv) return "text recognition";        // CRNN OCR
  if (lstm && modality == nn::Modality::Audio) return "speech recognition";
  if (modality == nn::Modality::Sensor) return "movement tracking";
  if (modality == nn::Modality::Audio) return "sound recognition";
  if (modality == nn::Modality::Image) {
    if (resize && concat) return "semantic segmentation";
    if (resize && add) return "photo beauty";          // upsampling stylers
    if (concat && dwconv) return "object detection";   // multi-head SSD
    if (add && !concat) return "face detection";       // shallow residual
    if (sigmoid && !resize && !concat) return "contour detection";
    return kUnidentified;  // plain CNN: could be anything
  }
  return kUnidentified;
}

std::string classify_task(const std::string& name,
                          const nn::ModelTrace& trace) {
  const std::array<std::string, 3> votes = {
      classify_by_name(name), classify_by_io(trace), classify_by_layers(trace)};

  std::map<std::string, int> tally;
  for (const auto& vote : votes) {
    if (vote != kUnidentified) tally[vote]++;
  }
  // Majority (>= 2 researchers agreeing).
  for (const auto& [task, count] : tally) {
    if (count >= 2) return task;
  }
  // A confident name hint wins over abstaining colleagues.
  if (votes[0] != kUnidentified) return votes[0];
  // Otherwise a single structural opinion, if exactly one exists.
  if (tally.size() == 1) return tally.begin()->first;
  return kUnidentified;
}

}  // namespace gauge::core
