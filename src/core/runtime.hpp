// On-device runtime analysis (paper §5): sweeps the crawled model population
// across the Table 1 devices via the analytic device model, producing the
// rows behind Figs. 8-14. Deduplicates by checksum first — the paper
// benchmarks the distinct models, not every shipped copy.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "device/latency.hpp"
#include "device/soc.hpp"

namespace gauge::core {

struct RunRow {
  std::string checksum;
  std::string task;
  std::string framework;
  std::string device;
  std::string backend;
  std::string thread_label;
  int batch = 1;
  double flops = 0.0;
  double latency_ms = 0.0;
  double energy_mj = 0.0;       // SoC energy (screen share excluded)
  double power_w = 0.0;
  double throughput_ips = 0.0;
  double efficiency_mflops_sw = 0.0;
  bool cpu_fallback = false;
};

// Distinct models of a dataset (one record per checksum).
std::vector<const ModelRecord*> distinct_models(const SnapshotDataset& dataset);

// Runs every distinct model on every device with the given config.
std::vector<RunRow> sweep_devices(const SnapshotDataset& dataset,
                                  const std::vector<device::Device>& devices,
                                  const device::RunConfig& config = {});

// Runs every distinct model on one device across several configs (used by
// the batch/thread/backend studies). Configs are labelled by backend,
// thread label and batch inside the rows.
std::vector<RunRow> sweep_configs(const SnapshotDataset& dataset,
                                  const device::Device& device,
                                  const std::vector<device::RunConfig>& configs);

}  // namespace gauge::core
