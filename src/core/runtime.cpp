#include "core/runtime.hpp"

#include <set>

namespace gauge::core {

namespace {

RunRow make_row(const ModelRecord& model, const device::Device& dev,
                const device::RunConfig& config) {
  const auto result =
      device::simulate_inference(dev, model.trace(), config, model.checksum);
  RunRow row;
  row.checksum = model.checksum;
  row.task = model.task;
  row.framework = formats::framework_name(model.framework);
  row.device = dev.name;
  row.backend = device::backend_name(config.backend);
  row.thread_label = config.threads.label();
  row.batch = config.batch;
  row.flops = result.flops;
  row.latency_ms = result.latency_s * 1e3;
  row.energy_mj = result.soc_energy_j * 1e3;
  row.power_w = result.avg_power_w;
  row.throughput_ips = result.throughput_ips;
  row.efficiency_mflops_sw = result.efficiency_mflops_sw;
  row.cpu_fallback = result.cpu_fallback;
  return row;
}

}  // namespace

std::vector<const ModelRecord*> distinct_models(
    const SnapshotDataset& dataset) {
  std::set<std::string> seen;
  std::vector<const ModelRecord*> out;
  for (const auto& model : dataset.models) {
    if (seen.insert(model.checksum).second) out.push_back(&model);
  }
  return out;
}

std::vector<RunRow> sweep_devices(const SnapshotDataset& dataset,
                                  const std::vector<device::Device>& devices,
                                  const device::RunConfig& config) {
  std::vector<RunRow> rows;
  const auto models = distinct_models(dataset);
  rows.reserve(models.size() * devices.size());
  for (const auto& dev : devices) {
    for (const ModelRecord* model : models) {
      rows.push_back(make_row(*model, dev, config));
    }
  }
  return rows;
}

std::vector<RunRow> sweep_configs(
    const SnapshotDataset& dataset, const device::Device& device,
    const std::vector<device::RunConfig>& configs) {
  std::vector<RunRow> rows;
  const auto models = distinct_models(dataset);
  rows.reserve(models.size() * configs.size());
  for (const auto& config : configs) {
    for (const ModelRecord* model : models) {
      rows.push_back(make_row(*model, device, config));
    }
  }
  return rows;
}

}  // namespace gauge::core
