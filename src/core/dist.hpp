// Coordinator/worker cluster execution for the crawl (DESIGN.md §15). The
// coordinator (DistributedExecutor) shards the app chart over N worker
// processes on loopback TCP; the wire unit is the same CRC-framed
// AppOutcome record the journal persists (core/outcome_codec.hpp inside a
// net::framing frame), so a worker's result is durably journalable the
// moment it arrives. The PipelineDriver stays the single owner of merge
// order and the journal — workers never see either — which is what keeps
// the final SnapshotDataset digest byte-identical to a serial run and lets
// `--resume` compose with `--workers`.
//
// Failure model: assignments carry a deadline; a late or dead worker's
// assignments are requeued (bounded by RetryPolicy::max_attempts), idle
// workers steal the oldest straggling assignment, and an app that exhausts
// its attempts — or has no live worker left to run on — is quarantined to
// the coordinator, which runs it inline. Completion is therefore
// guaranteed under every WorkerFaultPlan.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.hpp"
#include "net/socket.hpp"
#include "util/retry.hpp"

namespace gauge::core {

struct PipelineOptions;

// Application-level protocol version carried in the Hello frame, on top of
// the frame codec's own version byte. The handshake refuses a mismatch
// with an error naming both versions (the frame codec already catches
// binaries that disagree on the framing itself).
inline constexpr std::uint16_t kDistProtocolVersion = 1;

// First payload byte of every cluster frame.
enum class DistMsg : std::uint8_t {
  Hello = 0,     // worker → coordinator: u16 protocol | u64 token | u32 index
  Welcome = 1,   // coordinator → worker: handshake accepted
  Reject = 2,    // coordinator → worker: str reason, then close
  Assign = 3,    // coordinator → worker: u64 seq | str package
  Outcome = 4,   // worker → coordinator: u64 seq | standalone outcome record
  Shutdown = 5,  // coordinator → worker: finish and exit
};

// Deterministic worker fault injection, mirroring harness::FaultPlan and
// core::CrashPlan: counters, not randomness, so tests and the check.sh
// smoke hit exact protocol positions. All outcome indices are 1-based
// counts of *send attempts* within one worker process.
struct WorkerFaultPlan {
  // worker index → Nth outcome: close the connection without sending it
  // and terminate the worker (a crash mid-result).
  std::map<unsigned, int> kill_after;
  // worker index → Nth outcome: silently discard it but keep serving (a
  // lost result; the coordinator's deadline must recover it).
  std::map<unsigned, int> drop_result;
  // worker index → stall the Nth outcome for `seconds` before sending (a
  // straggler; work-stealing or requeue must cover it).
  struct Stall {
    int outcome = 0;
    int seconds = 0;
  };
  std::map<unsigned, Stall> stall;

  bool armed() const {
    return !kill_after.empty() || !drop_result.empty() || !stall.empty();
  }
};

// Parses the CLI `--worker-fault-plan` grammar: semicolon-separated
//   kill-after=W:N     worker W dies instead of sending its Nth outcome
//   drop-result=W:N    worker W silently drops its Nth outcome
//   stall=W:N:SECONDS  worker W stalls its Nth outcome for SECONDS
util::Result<WorkerFaultPlan> parse_worker_fault_plan(const std::string& spec);

// What a worker needs to join the cluster.
struct WorkerConfig {
  std::uint16_t port = 0;   // coordinator's loopback listener
  std::uint64_t token = 0;  // per-run handshake token
  unsigned index = 0;       // worker identity (fault-plan addressing)
};

struct WorkerHandle {
  std::function<void()> join;  // blocks until the worker has fully exited
};

// How worker processes come into being. The default forks real processes
// (each with its own address space, analysis cache and telemetry
// registry — the production shape). The thread launcher runs workers as
// in-process threads speaking the same real TCP protocol; tests use it so
// the TSan suite can exercise the cluster (TSan cannot follow a
// multi-threaded fork). Caveat: thread workers share the process registry,
// so telemetry counters double-count there — the dataset digest does not.
using WorkerLauncher = std::function<WorkerHandle(
    const android::PlayStore&, const PipelineOptions&, const WorkerConfig&)>;

WorkerLauncher process_worker_launcher();
WorkerLauncher thread_worker_launcher();

// Worker main loop: connect, handshake, then serve Assign frames — resolve
// the package against the (deterministic) store, run process_app with a
// worker-local analysis cache and a threads-sized pool, and send each
// outcome back as a standalone record. Applies this worker's slice of the
// fault plan. Returns when the coordinator shuts the connection or the
// fault plan kills the worker.
void run_worker(const android::PlayStore& play, const PipelineOptions& options,
                const WorkerConfig& config);

// The cluster coordinator as an AppExecutor. Owns the listener, the worker
// handshakes, one receiver thread per worker and the assignment state
// machine (pending queue, per-worker outstanding sets with deadlines, the
// reorder buffer that restores strict submission order for next()).
class DistributedExecutor final : public AppExecutor {
 public:
  DistributedExecutor(const android::PlayStore& play,
                      const PipelineOptions& options, AnalysisCache& cache);
  ~DistributedExecutor() override;

  std::size_t window() const override { return window_; }
  void submit(const android::AppEntry& entry) override;
  std::size_t in_flight() const override;
  AppOutcome next() override;

 private:
  struct Worker {
    unsigned index = 0;
    std::optional<net::TcpStream> stream;
    std::thread receiver;
    bool alive = false;
    // seq → assigned-at, for deadline requeue and steal age.
    std::map<std::uint64_t, std::chrono::steady_clock::time_point> outstanding;
    WorkerHandle handle;
  };

  void receiver_loop(Worker& worker);
  void handle_outcome_locked(std::uint64_t seq, AppOutcome outcome);
  void fail_worker_locked(Worker& worker, const std::string& why);
  // Assigns pending work to live workers with spare capacity, skipping
  // apps that exhausted their attempts (those wait for quarantine).
  void dispatch_locked();
  bool assign_locked(Worker& worker, std::uint64_t seq);
  void check_deadlines_locked();
  void maybe_steal_locked();
  std::size_t live_workers_locked() const;

  const android::PlayStore& play_;
  const PipelineOptions& options_;
  AnalysisCache& cache_;
  int max_attempts_ = 1;
  std::size_t capacity_per_worker_ = 1;
  std::size_t window_ = 4;

  std::optional<net::TcpListener> listener_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t next_seq_ = 0;     // submission order
  std::uint64_t next_return_ = 0;  // next() order
  std::map<std::uint64_t, const android::AppEntry*> entries_;  // unreturned
  std::map<std::uint64_t, int> attempts_;  // assignment attempts per seq
  std::deque<std::uint64_t> pending_;      // awaiting (re)assignment
  std::set<std::uint64_t> stolen_;         // duplicated to a second worker
  std::set<std::uint64_t> done_;           // first outcome already accepted
  std::map<std::uint64_t, AppOutcome> completed_;  // reorder buffer
};

}  // namespace gauge::core
