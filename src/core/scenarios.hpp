// Use-case driven energy analysis (paper §5.2.2 / Table 4): three realistic
// workloads, one per modality, costed over all matching models on the three
// development boards.
//   sound recognition : classify 1 hour of audio; audio-per-inference comes
//                       from the model's input window (10 ms frame hop)
//   typing            : one inference per word, 275 words/day (WhatsApp avg)
//   segmentation      : 1-hour video call at 15 FPS, one frame per inference
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "device/soc.hpp"

namespace gauge::core {

struct ScenarioStats {
  std::size_t models = 0;
  double avg_mah = 0.0;
  double stdev_mah = 0.0;
  double median_mah = 0.0;
  double min_mah = 0.0;
  double max_mah = 0.0;
};

struct ScenarioReport {
  std::string device;
  ScenarioStats sound_recognition;
  ScenarioStats typing;
  ScenarioStats segmentation;
};

struct ScenarioAssumptions {
  double audio_hours = 1.0;
  double frame_hop_s = 0.010;   // audio frames per inference = input window
  int words_typed = 275;
  double video_hours = 1.0;
  double video_fps = 15.0;
};

std::vector<ScenarioReport> run_scenarios(
    const SnapshotDataset& dataset,
    const std::vector<device::Device>& devices,
    const ScenarioAssumptions& assumptions = {});

// Battery-life framing (§5.2.2): fraction of a reference battery one hour
// of the given scenario consumes.
double battery_share(double mah, double battery_mah);

}  // namespace gauge::core
