// Binary record codec for crawl outcomes (DESIGN.md §10/§15). One
// serialisation of AppOutcome and JournalMeta shared by the two places a
// completed crawl position travels: the crash-safe journal on disk and the
// coordinator/worker wire protocol. Frames around these records come from
// net::framing (magic + version byte + length + CRC); this layer is the
// payload schema only.
//
// Prototype sharing: off-the-shelf models ship in many apps, so a stream of
// outcome records stores each analysis prototype once (first occurrence of
// its content key) and later records reference the key alone. The journal
// uses that stream mode. The wire uses the standalone wrappers, which reset
// the dedup state per record so every frame is self-contained — a worker's
// outcomes must decode regardless of which other worker sent the duplicate
// first.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/journal.hpp"
#include "util/bytes.hpp"

namespace gauge::core {

// First payload byte of every record, journal file and wire alike.
inline constexpr std::uint8_t kRecordMeta = 0;
inline constexpr std::uint8_t kRecordApp = 1;

// Prototypes already emitted earlier in a record stream (encode side) and
// their decoded instances (decode side). A fresh pair of these gives
// standalone-record semantics.
using ProtoKeySet = std::set<std::uint64_t>;
using ProtoMap = std::map<std::uint64_t, std::shared_ptr<const ModelRecord>>;

// Record payloads (kind byte included). Decoders consume from the reader and
// return false on malformed input; the reader's own bounds-checking makes
// them safe on hostile bytes.
util::Bytes encode_meta_record(const JournalMeta& meta);
bool decode_meta_record(util::ByteReader& reader, JournalMeta& meta);

util::Bytes encode_outcome_record(const AppOutcome& outcome,
                                  ProtoKeySet& written_keys);
bool decode_outcome_record(util::ByteReader& reader, AppOutcome& outcome,
                           ProtoMap& protos);

// Self-contained record (wire unit): every prototype the outcome references
// is inlined, independent of any stream state.
util::Bytes encode_outcome_standalone(const AppOutcome& outcome);
util::Result<AppOutcome> decode_outcome_standalone(
    std::span<const std::uint8_t> payload);

}  // namespace gauge::core
