#include "core/driver.hpp"

#include <set>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gauge::core {

PipelineDriver::PipelineDriver(const android::PlayStore& play,
                               const PipelineOptions& options)
    : play_{play},
      options_{options},
      categories_{options.categories.empty()
                      ? android::PlayStore::categories()
                      : options.categories} {
  if (options_.journal_path.empty()) return;

  auto& metrics = telemetry::current_registry();
  JournalMeta meta;
  meta.snapshot = options_.snapshot;
  meta.device_profile = options_.device_profile;
  meta.max_apps_per_category = options_.max_apps_per_category;
  meta.categories = categories_;
  auto opened = Journal::open(options_.journal_path, meta, options_.resume,
                              options_.crash_plan);
  if (!opened.ok()) throw std::runtime_error{opened.error()};
  journal_.emplace(std::move(opened.value().journal));
  replayed_ = std::move(opened.value().outcomes);
  if (opened.value().torn_tail) {
    metrics.counter("gauge.pipeline.resume.torn_tail").increment();
  }
  if (!replayed_.empty()) {
    metrics.counter("gauge.pipeline.resume.skipped")
        .increment(static_cast<std::int64_t>(replayed_.size()));
    std::int64_t replayed_models = 0;
    for (const auto& out : replayed_) {
      replayed_models += static_cast<std::int64_t>(out.extracted.size());
      // Re-apply the original run's telemetry deltas verbatim, and seed
      // the analysis cache so post-resume duplicates adopt the journaled
      // prototype instead of re-analysing.
      for (const auto& [name, delta] : out.counters) {
        metrics.counter(name).increment(delta);
      }
      for (const auto& extracted : out.extracted) {
        cache_.seed(extracted.content_key, extracted.proto);
      }
    }
    metrics.counter("gauge.pipeline.resume.replayed_models")
        .increment(replayed_models);
    util::log_info(util::format("resuming: %zu apps replayed from journal",
                                replayed_.size()));
  }
}

SnapshotDataset PipelineDriver::run(AppExecutor& executor) {
  SnapshotDataset dataset;
  dataset.snapshot = options_.snapshot;

  auto& metrics = telemetry::current_registry();
  const auto drop = [&metrics](const char* reason) {
    metrics.counter(std::string{"gauge.pipeline.drop."} + reason).increment();
  };
  telemetry::Span run_span{"pipeline.run"};

  std::set<std::string> crawled;  // apps can chart in several categories
  std::size_t replay_index = 0;

  const auto cancelled = [this] {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };

  for (const auto& category : categories_) {
    if (dataset.interrupted) break;
    telemetry::Span category_span{"pipeline.category"};
    category_span.annotate("category", category);
    std::size_t apps_ok = 0, apps_failed = 0;
    std::size_t models_validated = 0, models_rejected = 0;
    std::map<std::string, std::size_t> category_no_parser;

    android::PlayStore::ChartRequest request;
    request.category = category;
    request.snapshot = options_.snapshot;
    request.device_profile = options_.device_profile;
    request.limit = options_.max_apps_per_category;
    const auto chart = play_.top_chart(request);
    util::log_info(util::format("crawling '%s': %zu apps", category.c_str(),
                                chart.size()));

    // Deterministic merge: outcomes are folded into the dataset strictly in
    // chart order, so record ids, dataset order and DocStore ids match the
    // serial run no matter which worker finishes first.
    const auto merge = [&](AppOutcome out) {
      if (out.status == AppOutcome::Status::DownloadFailed) {
        util::log_warn("download failed: " + out.error);
        ++apps_failed;
        return;
      }
      if (out.status == AppOutcome::Status::BadApk) {
        util::log_warn("bad apk for " + out.package + ": " + out.error);
        ++apps_failed;
        return;
      }
      AppRecord app = std::move(out.app);
      for (auto& extracted : out.extracted) {
        ModelRecord record = *extracted.proto;  // payload stays shared
        record.record_id = static_cast<int>(dataset.models.size());
        record.file_path = std::move(extracted.path);
        record.app_package = app.package;
        record.category = app.category;
        app.model_record_ids.push_back(record.record_id);
        dataset.model_docs.insert(to_document(record));
        dataset.models.push_back(std::move(record));
      }
      models_validated += out.extracted.size();
      models_rejected += out.models_rejected;
      for (const auto& [fw_name, count] : out.no_parser) {
        category_no_parser[fw_name] += count;
        dataset.no_parser_drops[fw_name] += count;
      }
      dataset.app_docs.insert(to_document(app));
      dataset.apps.push_back(std::move(app));
      ++apps_ok;
    };

    // Journal + merge: fresh outcomes are made durable before they are
    // folded into the dataset, so the journal is always a strict prefix of
    // the merge order and a crash between the two loses nothing that the
    // dataset already contains. Append failure (disk full, injected crash)
    // aborts the run — continuing would silently break resumability.
    const auto complete = [&](AppOutcome out) {
      if (journal_) {
        const auto appended = journal_->append(out);
        if (!appended.ok()) throw std::runtime_error{appended.error()};
      }
      merge(std::move(out));
    };

    for (const android::AppEntry* entry : chart) {
      if (cancelled()) break;
      if (!crawled.insert(entry->package).second) {
        drop("duplicate_app");
        continue;
      }
      // Resume fast path: this crawl position completed in a previous run.
      // Merge order is strictly chart order, so the journal is a prefix of
      // the positions this loop visits — fold the journaled outcome back in
      // without downloading, re-analysing or re-appending.
      if (replay_index < replayed_.size()) {
        merge(std::move(replayed_[replay_index++]));
        continue;
      }
      while (executor.in_flight() >= executor.window()) {
        complete(executor.next());
      }
      executor.submit(*entry);
    }
    // Drain: also the cancellation path — in-flight apps are finished and
    // journaled so the resume point is as far along as possible.
    while (executor.in_flight() > 0) {
      complete(executor.next());
    }
    if (cancelled()) dataset.interrupted = true;

    metrics.counter("gauge.pipeline.categories").increment();
    std::string summary = util::format(
        "category '%s': apps %zu ok / %zu failed, models %zu validated / "
        "%zu rejected",
        category.c_str(), apps_ok, apps_failed, models_validated,
        models_rejected);
    if (!category_no_parser.empty()) {
      summary += " (no parser:";
      for (const auto& [fw_name, count] : category_no_parser) {
        summary += util::format(" %s %zu", fw_name.c_str(), count);
      }
      summary += ")";
    }
    util::log_info(summary);
  }
  if (dataset.interrupted) {
    util::log_warn(
        "pipeline interrupted: dataset holds the journaled prefix only");
  }
  return dataset;
}

}  // namespace gauge::core
