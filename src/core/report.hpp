// Report builders: turn a crawled snapshot (and its analyses) into the
// paper's offline tables/figures as printable util::Table objects. Runtime
// figures (8-14) are assembled in bench/ from core/runtime.hpp rows.
#pragma once

#include "core/analysis.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace gauge::core {

// Table 2: dataset snapshot details.
util::Table table2_dataset(const SnapshotDataset& dataset);

// Fig. 4: #models per framework x Play category (categories with fewer than
// `min_models` models are excluded, as in the paper's plot).
util::Table fig4_frameworks(const SnapshotDataset& dataset,
                            int min_models = 20);
// Framework totals helper for the same figure.
util::Table fig4_framework_totals(const SnapshotDataset& dataset);

// Table 3: DNN task classification grouped by modality.
util::Table table3_tasks(const SnapshotDataset& dataset);

// Fig. 5: individual models removed/added between two snapshots.
util::Table fig5_temporal(const SnapshotDataset& earlier,
                          const SnapshotDataset& later);

// Fig. 6: layer composition per input modality (percent per op family).
util::Table fig6_layer_composition(const SnapshotDataset& dataset);

// Fig. 7: FLOPs and parameters per task (count/median/min/max).
util::Table fig7_flops_params(const SnapshotDataset& dataset);

// Fig. 15: #apps invoking cloud ML APIs per category (categories with fewer
// than `min_apps` are excluded, as in the paper's plot).
util::Table fig15_cloud(const SnapshotDataset& dataset, int min_apps = 10);

// §3.1: candidate files dropped because no candidate framework has a
// parser, broken down per framework (SnapshotDataset::no_parser_drops).
util::Table sec31_no_parser(const SnapshotDataset& dataset);

// §4.2: model distribution sweep over post-install deliverables.
util::Table sec42_distribution(const SnapshotDataset& dataset);

// §4.5 uniqueness + §6.1 optimisation summaries.
util::Table sec45_uniqueness(const UniquenessReport& report);
util::Table sec61_optimisations(const OptimisationReport& report);

// Parity oracle for the DocStore port: renders every query-backed table
// alongside its pre-port record-scanning implementation and reports any
// byte-level CSV difference (empty string = all tables identical). Run by
// the store smoke in scripts/check.sh and the report tests.
std::string report_parity_diff(const SnapshotDataset& dataset);

}  // namespace gauge::core
