#include "core/outcome_codec.hpp"

#include <utility>

namespace gauge::core {

namespace {

void put_string_vector(util::ByteWriter& w, const std::vector<std::string>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) w.str(s);
}

bool get_string_vector(util::ByteReader& r, std::vector<std::string>& v) {
  const std::uint32_t n = r.u32();
  if (n > r.remaining()) return false;  // each element needs >= 4 bytes
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.str());
  return r.ok();
}

void put_analysis(util::ByteWriter& w, const ModelAnalysis& analysis) {
  const auto& trace = analysis.trace;
  w.u32(static_cast<std::uint32_t>(trace.layers.size()));
  for (const auto& layer : trace.layers) {
    w.u8(static_cast<std::uint8_t>(layer.type));
    w.str(layer.name);
    w.i64(layer.macs);
    w.i64(layer.flops);
    w.i64(layer.params);
    w.i64(layer.bytes_read);
    w.i64(layer.bytes_written);
    w.u32(static_cast<std::uint32_t>(layer.output_shape.dims.size()));
    for (const std::int64_t d : layer.output_shape.dims) w.i64(d);
  }
  w.i64(trace.total_macs);
  w.i64(trace.total_flops);
  w.i64(trace.total_params);
  w.i64(trace.total_bytes);
  w.i64(trace.peak_activation_bytes);
  put_string_vector(w, analysis.layer_digests);
  w.u32(static_cast<std::uint32_t>(analysis.op_family_counts.size()));
  for (const auto& [family, count] : analysis.op_family_counts) {
    w.str(family);
    w.i64(count);
  }
}

bool get_analysis(util::ByteReader& r, ModelAnalysis& analysis) {
  auto& trace = analysis.trace;
  const std::uint32_t layers = r.u32();
  if (layers > r.remaining()) return false;
  trace.layers.reserve(layers);
  for (std::uint32_t i = 0; i < layers; ++i) {
    nn::LayerCost layer;
    layer.type = static_cast<nn::LayerType>(r.u8());
    layer.name = r.str();
    layer.macs = r.i64();
    layer.flops = r.i64();
    layer.params = r.i64();
    layer.bytes_read = r.i64();
    layer.bytes_written = r.i64();
    const std::uint32_t rank = r.u32();
    if (rank > r.remaining()) return false;
    layer.output_shape.dims.reserve(rank);
    for (std::uint32_t d = 0; d < rank; ++d) {
      layer.output_shape.dims.push_back(r.i64());
    }
    trace.layers.push_back(std::move(layer));
  }
  trace.total_macs = r.i64();
  trace.total_flops = r.i64();
  trace.total_params = r.i64();
  trace.total_bytes = r.i64();
  trace.peak_activation_bytes = r.i64();
  if (!get_string_vector(r, analysis.layer_digests)) return false;
  const std::uint32_t families = r.u32();
  if (families > r.remaining()) return false;
  for (std::uint32_t i = 0; i < families; ++i) {
    std::string family = r.str();
    analysis.op_family_counts[std::move(family)] = r.i64();
  }
  return r.ok();
}

void put_proto(util::ByteWriter& w, const ModelRecord& proto) {
  w.u16(static_cast<std::uint16_t>(proto.framework));
  w.str(proto.file_path);
  w.u64(proto.file_bytes);
  w.str(proto.checksum);
  w.str(proto.architecture_checksum);
  w.u8(static_cast<std::uint8_t>(proto.modality));
  w.str(proto.task);
  std::uint8_t flags = 0;
  if (proto.has_cluster_prefix) flags |= 1u << 0;
  if (proto.has_prune_prefix) flags |= 1u << 1;
  if (proto.has_dequantize_layer) flags |= 1u << 2;
  if (proto.int8_weights) flags |= 1u << 3;
  if (proto.int8_activations) flags |= 1u << 4;
  w.u8(flags);
  w.f64(proto.near_zero_weight_fraction);
  w.u8(proto.analysis ? 1 : 0);
  if (proto.analysis) put_analysis(w, *proto.analysis);
}

bool get_proto(util::ByteReader& r, ModelRecord& proto) {
  proto.framework = static_cast<formats::Framework>(r.u16());
  proto.file_path = r.str();
  proto.file_bytes = r.u64();
  proto.checksum = r.str();
  proto.architecture_checksum = r.str();
  proto.modality = static_cast<nn::Modality>(r.u8());
  proto.task = r.str();
  const std::uint8_t flags = r.u8();
  proto.has_cluster_prefix = (flags & (1u << 0)) != 0;
  proto.has_prune_prefix = (flags & (1u << 1)) != 0;
  proto.has_dequantize_layer = (flags & (1u << 2)) != 0;
  proto.int8_weights = (flags & (1u << 3)) != 0;
  proto.int8_activations = (flags & (1u << 4)) != 0;
  proto.near_zero_weight_fraction = r.f64();
  if (r.u8() != 0) {
    auto analysis = std::make_shared<ModelAnalysis>();
    if (!get_analysis(r, *analysis)) return false;
    proto.analysis = std::move(analysis);
  }
  return r.ok();
}

void put_app_record(util::ByteWriter& w, const AppRecord& app) {
  w.str(app.package);
  w.str(app.title);
  w.str(app.category);
  w.i64(app.installs);
  w.u8(app.uses_ml ? 1 : 0);
  put_string_vector(w, app.ml_stacks);
  put_string_vector(w, app.cloud_providers);
  w.u8(app.uses_nnapi ? 1 : 0);
  w.u8(app.uses_xnnpack ? 1 : 0);
  w.u8(app.uses_snpe ? 1 : 0);
  w.i32(app.candidate_files);
  w.i32(app.validated_models);
  w.i32(app.side_container_files);
  w.i32(app.side_container_models);
}

bool get_app_record(util::ByteReader& r, AppRecord& app) {
  app.package = r.str();
  app.title = r.str();
  app.category = r.str();
  app.installs = r.i64();
  app.uses_ml = r.u8() != 0;
  if (!get_string_vector(r, app.ml_stacks)) return false;
  if (!get_string_vector(r, app.cloud_providers)) return false;
  app.uses_nnapi = r.u8() != 0;
  app.uses_xnnpack = r.u8() != 0;
  app.uses_snpe = r.u8() != 0;
  app.candidate_files = r.i32();
  app.validated_models = r.i32();
  app.side_container_files = r.i32();
  app.side_container_models = r.i32();
  return r.ok();
}

}  // namespace

util::Bytes encode_meta_record(const JournalMeta& meta) {
  util::ByteWriter w;
  w.u8(kRecordMeta);
  w.u8(static_cast<std::uint8_t>(meta.snapshot));
  w.str(meta.device_profile);
  w.u64(meta.max_apps_per_category);
  put_string_vector(w, meta.categories);
  return std::move(w).take();
}

bool decode_meta_record(util::ByteReader& r, JournalMeta& meta) {
  meta.snapshot = static_cast<android::Snapshot>(r.u8());
  meta.device_profile = r.str();
  meta.max_apps_per_category = r.u64();
  if (!get_string_vector(r, meta.categories)) return false;
  return r.ok();
}

util::Bytes encode_outcome_record(const AppOutcome& outcome,
                                  ProtoKeySet& written_keys) {
  util::ByteWriter w;
  w.u8(kRecordApp);
  w.u8(static_cast<std::uint8_t>(outcome.status));
  w.str(outcome.package);
  w.str(outcome.error);
  put_app_record(w, outcome.app);
  w.u32(static_cast<std::uint32_t>(outcome.extracted.size()));
  for (const auto& extracted : outcome.extracted) {
    w.str(extracted.path);
    w.u64(extracted.content_key);
    const bool inline_proto =
        extracted.proto != nullptr &&
        written_keys.insert(extracted.content_key).second;
    w.u8(inline_proto ? 1 : 0);
    if (inline_proto) put_proto(w, *extracted.proto);
  }
  w.u64(outcome.models_rejected);
  w.u32(static_cast<std::uint32_t>(outcome.no_parser.size()));
  for (const auto& [framework, count] : outcome.no_parser) {
    w.str(framework);
    w.u64(count);
  }
  w.u32(static_cast<std::uint32_t>(outcome.counters.size()));
  for (const auto& [name, delta] : outcome.counters) {
    w.str(name);
    w.i64(delta);
  }
  return std::move(w).take();
}

bool decode_outcome_record(util::ByteReader& r, AppOutcome& outcome,
                           ProtoMap& protos) {
  outcome.status = static_cast<AppOutcome::Status>(r.u8());
  outcome.package = r.str();
  outcome.error = r.str();
  if (!get_app_record(r, outcome.app)) return false;
  const std::uint32_t extracted = r.u32();
  if (extracted > r.remaining()) return false;
  outcome.extracted.reserve(extracted);
  for (std::uint32_t i = 0; i < extracted; ++i) {
    AppOutcome::Extracted entry;
    entry.path = r.str();
    entry.content_key = r.u64();
    if (r.u8() != 0) {
      auto proto = std::make_shared<ModelRecord>();
      if (!get_proto(r, *proto)) return false;
      protos[entry.content_key] = std::move(proto);
    }
    const auto it = protos.find(entry.content_key);
    if (it == protos.end()) return false;  // dangling reference: corrupt
    entry.proto = it->second;
    outcome.extracted.push_back(std::move(entry));
  }
  outcome.models_rejected = r.u64();
  const std::uint32_t no_parser = r.u32();
  if (no_parser > r.remaining()) return false;
  for (std::uint32_t i = 0; i < no_parser; ++i) {
    std::string framework = r.str();
    outcome.no_parser[std::move(framework)] = r.u64();
  }
  const std::uint32_t counters = r.u32();
  if (counters > r.remaining()) return false;
  for (std::uint32_t i = 0; i < counters; ++i) {
    std::string name = r.str();
    outcome.counters[std::move(name)] = r.i64();
  }
  return r.ok();
}

util::Bytes encode_outcome_standalone(const AppOutcome& outcome) {
  ProtoKeySet fresh;
  return encode_outcome_record(outcome, fresh);
}

util::Result<AppOutcome> decode_outcome_standalone(
    std::span<const std::uint8_t> payload) {
  using R = util::Result<AppOutcome>;
  util::ByteReader reader{payload};
  if (reader.u8() != kRecordApp) {
    return R::failure("not an app outcome record");
  }
  AppOutcome outcome;
  ProtoMap protos;
  if (!decode_outcome_record(reader, outcome, protos) ||
      reader.remaining() != 0) {
    return R::failure("malformed app outcome record");
  }
  return outcome;
}

}  // namespace gauge::core
