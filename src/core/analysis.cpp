#include "core/analysis.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "nn/checksum.hpp"

namespace gauge::core {

UniquenessReport analyze_uniqueness(const SnapshotDataset& dataset) {
  UniquenessReport report;
  report.total_models = dataset.models.size();
  if (dataset.models.empty()) return report;

  // checksum -> apps shipping it, plus one representative record.
  std::map<std::string, std::set<std::string>> apps_by_checksum;
  std::map<std::string, const ModelRecord*> representative;
  for (const auto& model : dataset.models) {
    apps_by_checksum[model.checksum].insert(model.app_package);
    representative.emplace(model.checksum, &model);
  }
  report.unique_models = apps_by_checksum.size();
  report.unique_fraction = static_cast<double>(report.unique_models) /
                           static_cast<double>(report.total_models);

  report.shared_across_apps_fraction = 1.0 - report.unique_fraction;

  std::map<std::string, std::size_t> copy_counts;
  for (const auto& model : dataset.models) copy_counts[model.checksum]++;
  std::size_t shared_instances = 0;
  for (const auto& model : dataset.models) {
    if (copy_counts[model.checksum] >= 2 ||
        apps_by_checksum[model.checksum].size() >= 2) {
      ++shared_instances;
    }
  }
  report.multi_copy_fraction = static_cast<double>(shared_instances) /
                               static_cast<double>(report.total_models);

  // Fine-tuning: pairwise layer-digest overlap among unique models.
  std::vector<const ModelRecord*> uniques;
  uniques.reserve(representative.size());
  for (const auto& [_, record] : representative) uniques.push_back(record);

  for (std::size_t i = 0; i < uniques.size(); ++i) {
    bool shares = false;
    bool small_delta = false;
    for (std::size_t j = 0; j < uniques.size() && !(shares && small_delta);
         ++j) {
      if (i == j) continue;
      const double frac = nn::shared_layer_fraction(uniques[i]->layer_digests(),
                                                    uniques[j]->layer_digests());
      if (frac >= 0.2 && frac < 1.0) shares = true;
      if (uniques[i]->architecture_checksum ==
          uniques[j]->architecture_checksum) {
        const int diff = nn::differing_layer_count(uniques[i]->layer_digests(),
                                                   uniques[j]->layer_digests());
        if (diff > 0 && diff <= 3) small_delta = true;
      }
    }
    if (shares) ++report.finetuned_models;
    if (small_delta) ++report.small_delta_models;
  }
  report.finetuned_fraction = static_cast<double>(report.finetuned_models) /
                              static_cast<double>(report.unique_models);
  report.small_delta_fraction =
      static_cast<double>(report.small_delta_models) /
      static_cast<double>(report.unique_models);
  return report;
}

OptimisationReport analyze_optimisations(const SnapshotDataset& dataset) {
  OptimisationReport report;
  report.total_models = dataset.models.size();
  if (dataset.models.empty()) return report;

  std::size_t dequant = 0, w8 = 0, a8 = 0;
  double zero_weighted = 0.0;
  double param_total = 0.0;
  for (const auto& model : dataset.models) {
    if (model.has_cluster_prefix) ++report.clustering_models;
    if (model.has_prune_prefix) ++report.pruning_models;
    if (model.has_dequantize_layer) ++dequant;
    if (model.int8_weights) ++w8;
    if (model.int8_activations) ++a8;
    const auto params = static_cast<double>(model.trace().total_params);
    zero_weighted += model.near_zero_weight_fraction * params;
    param_total += params;
  }
  const auto n = static_cast<double>(report.total_models);
  report.dequantize_fraction = static_cast<double>(dequant) / n;
  report.int8_weight_fraction = static_cast<double>(w8) / n;
  report.int8_act_fraction = static_cast<double>(a8) / n;
  report.near_zero_weight_share =
      param_total > 0.0 ? zero_weighted / param_total : 0.0;
  return report;
}

std::vector<TemporalRow> temporal_diff(const SnapshotDataset& earlier,
                                       const SnapshotDataset& later) {
  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<std::string, std::set<Key>> earlier_by_cat, later_by_cat;
  std::set<std::string> categories;
  for (const auto& model : earlier.models) {
    earlier_by_cat[model.category].insert(
        {model.app_package, model.file_path, model.checksum});
    categories.insert(model.category);
  }
  for (const auto& model : later.models) {
    later_by_cat[model.category].insert(
        {model.app_package, model.file_path, model.checksum});
    categories.insert(model.category);
  }

  std::vector<TemporalRow> rows;
  for (const auto& category : categories) {
    const auto& before = earlier_by_cat[category];
    const auto& after = later_by_cat[category];
    TemporalRow row;
    row.category = category;
    for (const auto& key : after) {
      if (!before.count(key)) ++row.added;
    }
    for (const auto& key : before) {
      if (!after.count(key)) ++row.removed;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const TemporalRow& a,
                                         const TemporalRow& b) {
    if (a.delta() != b.delta()) return a.delta() > b.delta();
    return a.category < b.category;
  });
  return rows;
}

}  // namespace gauge::core
