#include "core/dist.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <utility>

#include "core/outcome_codec.hpp"
#include "core/pipeline.hpp"
#include "net/framing.hpp"
#include "telemetry/metrics.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gauge::core {

namespace {

// An outcome record carrying every analysis a worker produced for one app;
// generous cap against a hostile/corrupt length prefix.
constexpr std::size_t kMaxWireRecordBytes = 64u << 20;
constexpr auto kHandshakeDeadline = std::chrono::milliseconds{10'000};
constexpr auto kSendDeadline = std::chrono::milliseconds{5'000};
// Budget for reading one frame once bytes are pending. Generous: the fault
// plan's stall happens *before* the frame is sent, so a frame that started
// arriving finishes promptly on loopback.
constexpr auto kRecvDeadline = std::chrono::milliseconds{30'000};
// Receiver/worker loops tick at this rate to observe stop flags.
constexpr auto kIoTick = std::chrono::milliseconds{200};

telemetry::Counter& dist_counter(const char* name) {
  return telemetry::current_registry().counter(std::string{"gauge.dist."} +
                                               name);
}

util::Status send_message(net::TcpStream& stream, const util::Bytes& payload) {
  return net::send_frame(stream, payload, kSendDeadline);
}

}  // namespace

util::Result<WorkerFaultPlan> parse_worker_fault_plan(const std::string& spec) {
  using R = util::Result<WorkerFaultPlan>;
  WorkerFaultPlan plan;
  for (const auto& raw : util::split(spec, ';')) {
    const std::string directive{util::trim(raw)};
    if (directive.empty()) continue;
    const auto eq = directive.find('=');
    const std::string key = directive.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : directive.substr(eq + 1);
    const auto fields = util::split(value, ':');
    const auto field_int =
        [&fields](std::size_t i) -> std::optional<std::int64_t> {
      if (i >= fields.size()) return std::nullopt;
      return util::parse_int(fields[i]);
    };
    const auto worker = field_int(0);
    const auto outcome = field_int(1);
    if (!worker || *worker < 0 || !outcome || *outcome < 1) {
      return R::failure("worker-fault-plan: bad '" + directive +
                        "' (want WORKER:OUTCOME with OUTCOME >= 1)");
    }
    const auto index = static_cast<unsigned>(*worker);
    if (key == "kill-after" && fields.size() == 2) {
      plan.kill_after[index] = static_cast<int>(*outcome);
    } else if (key == "drop-result" && fields.size() == 2) {
      plan.drop_result[index] = static_cast<int>(*outcome);
    } else if (key == "stall" && fields.size() == 3) {
      const auto seconds = field_int(2);
      if (!seconds || *seconds < 1) {
        return R::failure("worker-fault-plan: bad stall seconds in '" +
                          directive + "'");
      }
      plan.stall[index] = {static_cast<int>(*outcome),
                           static_cast<int>(*seconds)};
    } else {
      return R::failure("worker-fault-plan: unknown directive '" + directive +
                        "'");
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

void run_worker(const android::PlayStore& play, const PipelineOptions& options,
                const WorkerConfig& config) {
  auto connected = net::TcpStream::connect("127.0.0.1", config.port);
  if (!connected.ok()) {
    util::log_warn(util::format("worker %u: connect failed: %s", config.index,
                                connected.error().c_str()));
    return;
  }
  net::TcpStream stream = std::move(connected.value());

  {
    util::ByteWriter hello;
    hello.u8(static_cast<std::uint8_t>(DistMsg::Hello));
    hello.u16(kDistProtocolVersion);
    hello.u64(config.token);
    hello.u32(config.index);
    if (!send_message(stream, std::move(hello).take()).ok()) return;
  }
  auto welcome =
      net::recv_frame_for(stream, kMaxWireRecordBytes, kHandshakeDeadline);
  if (!welcome.ok()) {
    // Includes frame-codec version skew: a coordinator binary with a
    // different framing refuses us before the Hello is even parsed.
    util::log_warn(util::format("worker %u: handshake failed: %s",
                                config.index, welcome.error().c_str()));
    return;
  }
  {
    util::ByteReader reader{std::span<const std::uint8_t>{welcome.value()}};
    const auto kind = static_cast<DistMsg>(reader.u8());
    if (kind == DistMsg::Reject) {
      util::log_warn(util::format("worker %u: rejected: %s", config.index,
                                  reader.str().c_str()));
      return;
    }
    if (kind != DistMsg::Welcome) return;
  }

  // Worker-local analysis cache: analysis is a deterministic function of
  // model content, so independent caches cannot change the dataset — only
  // the cache hit/miss attribution (not part of the digest).
  AnalysisCache cache;
  std::mutex send_mutex;
  int outcomes_sent = 0;  // guarded by send_mutex; fault indices are 1-based
  std::atomic<bool> killed{false};

  const auto kill_it = options.worker_faults.kill_after.find(config.index);
  const auto drop_it = options.worker_faults.drop_result.find(config.index);
  const auto stall_it = options.worker_faults.stall.find(config.index);
  const auto& faults = options.worker_faults;

  // Declared after `stream`/`cache` so its destructor (which finishes any
  // queued assignments) runs while they are still alive.
  nn::ThreadPool pool{options.threads};

  for (;;) {
    if (killed.load(std::memory_order_relaxed)) break;
    if (auto ready = stream.wait_readable_for(kIoTick); !ready.ok()) {
      if (net::is_timeout(ready.error())) continue;
      break;
    }
    auto frame = net::recv_frame_for(stream, kMaxWireRecordBytes,
                                     kRecvDeadline);
    if (!frame.ok()) break;  // coordinator shut down or died
    util::ByteReader reader{std::span<const std::uint8_t>{frame.value()}};
    const auto kind = static_cast<DistMsg>(reader.u8());
    if (kind == DistMsg::Shutdown) break;
    if (kind != DistMsg::Assign) continue;
    const std::uint64_t seq = reader.u64();
    const std::string package = reader.str();
    if (!reader.ok()) break;

    pool.submit([&, seq, package] {
      AppOutcome out;
      // The store is deterministic and shared (workers on one machine), so
      // the package name alone identifies the exact chart entry.
      if (const android::AppEntry* entry = play.find(package);
          entry != nullptr) {
        out = process_app(play, options, cache, *entry);
      } else {
        out.status = AppOutcome::Status::DownloadFailed;
        out.package = package;
        out.error = "unknown package: " + package;
      }
      util::ByteWriter msg;
      msg.u8(static_cast<std::uint8_t>(DistMsg::Outcome));
      msg.u64(seq);
      msg.raw(encode_outcome_standalone(out));

      const std::lock_guard<std::mutex> guard{send_mutex};
      ++outcomes_sent;
      if (kill_it != faults.kill_after.end() &&
          kill_it->second == outcomes_sent) {
        // Crash mid-result: the coordinator sees the connection drop and
        // must requeue everything this worker still holds.
        killed.store(true, std::memory_order_relaxed);
        stream.shutdown();
        return;
      }
      if (drop_it != faults.drop_result.end() &&
          drop_it->second == outcomes_sent) {
        return;  // lost result: recovered by the coordinator's deadline
      }
      if (stall_it != faults.stall.end() &&
          stall_it->second.outcome == outcomes_sent) {
        std::this_thread::sleep_for(
            std::chrono::seconds{stall_it->second.seconds});
      }
      // Send failure means the coordinator is gone or gave up on us; it
      // requeues, so there is nothing useful to do here.
      (void)send_message(stream, std::move(msg).take());
    });
  }
}

WorkerLauncher process_worker_launcher() {
  return [](const android::PlayStore& play, const PipelineOptions& options,
            const WorkerConfig& config) -> WorkerHandle {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Terminal Ctrl-C signals the whole process group; the coordinator
      // owns the drain, so workers ignore SIGINT and exit when their
      // connection closes.
      std::signal(SIGINT, SIG_IGN);
      run_worker(play, options, config);
      std::_Exit(0);
    }
    WorkerHandle handle;
    if (pid < 0) {
      util::log_warn("fork failed for worker " + std::to_string(config.index));
      handle.join = [] {};
      return handle;
    }
    handle.join = [pid] {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    };
    return handle;
  };
}

WorkerLauncher thread_worker_launcher() {
  return [](const android::PlayStore& play, const PipelineOptions& options,
            const WorkerConfig& config) -> WorkerHandle {
    auto thread = std::make_shared<std::thread>(
        [&play, &options, config] { run_worker(play, options, config); });
    WorkerHandle handle;
    handle.join = [thread] {
      if (thread->joinable()) thread->join();
    };
    return handle;
  };
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

DistributedExecutor::DistributedExecutor(const android::PlayStore& play,
                                         const PipelineOptions& options,
                                         AnalysisCache& cache)
    : play_{play}, options_{options}, cache_{cache} {
  max_attempts_ = std::max(1, options.worker_retry.max_attempts);
  capacity_per_worker_ = std::max(1u, options.threads);

  auto listener =
      net::TcpListener::bind(0, static_cast<int>(options.workers));
  if (!listener.ok()) {
    throw std::runtime_error{"coordinator listen: " + listener.error()};
  }
  listener_.emplace(std::move(listener.value()));

  // Per-run token: a stale worker from a previous coordinator on a reused
  // port cannot join this run.
  const std::uint64_t token =
      (static_cast<std::uint64_t>(::getpid()) << 32) ^
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      listener_->port();

  // Launch every worker before any coordinator thread exists: the default
  // launcher forks, and forking a multi-threaded process is where the
  // trouble lives.
  const WorkerLauncher launcher = options.worker_launcher
                                      ? options.worker_launcher
                                      : process_worker_launcher();
  std::vector<WorkerHandle> handles;
  handles.reserve(options.workers);
  for (unsigned i = 0; i < options.workers; ++i) {
    WorkerConfig config;
    config.port = listener_->port();
    config.token = token;
    config.index = i;
    handles.push_back(launcher(play, options, config));
  }

  for (unsigned i = 0; i < options.workers; ++i) {
    auto accepted = listener_->accept_for(kHandshakeDeadline);
    if (!accepted.ok()) {
      util::log_warn("coordinator: worker connection missing: " +
                     accepted.error());
      break;
    }
    net::TcpStream stream = std::move(accepted.value());
    auto hello =
        net::recv_frame_for(stream, kMaxWireRecordBytes, kHandshakeDeadline);
    if (!hello.ok()) {
      util::log_warn("coordinator: bad handshake: " + hello.error());
      dist_counter("handshake_rejects").increment();
      continue;
    }
    util::ByteReader reader{std::span<const std::uint8_t>{hello.value()}};
    const auto kind = static_cast<DistMsg>(reader.u8());
    const std::uint16_t protocol = reader.u16();
    const std::uint64_t worker_token = reader.u64();
    const unsigned index = reader.u32();
    std::string reject;
    if (kind != DistMsg::Hello || !reader.ok()) {
      reject = "malformed hello";
    } else if (protocol != kDistProtocolVersion) {
      reject = util::format(
          "protocol version skew: worker speaks v%u, coordinator speaks v%u",
          protocol, kDistProtocolVersion);
    } else if (worker_token != token) {
      reject = "bad token (stale worker from another run?)";
    }
    if (!reject.empty()) {
      util::log_warn("coordinator: rejecting worker: " + reject);
      dist_counter("handshake_rejects").increment();
      util::ByteWriter msg;
      msg.u8(static_cast<std::uint8_t>(DistMsg::Reject));
      msg.str(reject);
      (void)send_message(stream, std::move(msg).take());
      continue;
    }
    util::ByteWriter msg;
    msg.u8(static_cast<std::uint8_t>(DistMsg::Welcome));
    if (!send_message(stream, std::move(msg).take()).ok()) continue;

    auto worker = std::make_unique<Worker>();
    worker->index = index;
    worker->stream.emplace(std::move(stream));
    worker->alive = true;
    if (index < handles.size()) worker->handle = std::move(handles[index]);
    workers_.push_back(std::move(worker));
    dist_counter("workers").increment();
  }
  // Handles for workers that never completed a handshake still need to be
  // reaped at destruction.
  for (auto& handle : handles) {
    if (handle.join) {
      workers_.push_back(std::make_unique<Worker>());
      workers_.back()->handle = std::move(handle);
    }
  }

  const std::size_t live = live_workers_locked();  // no threads yet: safe
  window_ = std::max<std::size_t>(4, 2 * live * capacity_per_worker_);
  if (live == 0) {
    util::log_warn(
        "coordinator: no live workers — every app will run inline");
  }

  for (auto& worker : workers_) {
    if (!worker->alive) continue;
    Worker* target = worker.get();
    target->receiver = std::thread{[this, target] { receiver_loop(*target); }};
  }
}

DistributedExecutor::~DistributedExecutor() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
    for (auto& worker : workers_) {
      if (worker->alive && worker->stream) {
        util::ByteWriter msg;
        msg.u8(static_cast<std::uint8_t>(DistMsg::Shutdown));
        (void)send_message(*worker->stream, std::move(msg).take());
      }
    }
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->receiver.joinable()) worker->receiver.join();
    if (worker->stream) worker->stream->shutdown();
    if (worker->handle.join) worker->handle.join();
  }
}

std::size_t DistributedExecutor::live_workers_locked() const {
  std::size_t live = 0;
  for (const auto& worker : workers_) {
    if (worker->alive) ++live;
  }
  return live;
}

void DistributedExecutor::submit(const android::AppEntry& entry) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const std::uint64_t seq = next_seq_++;
  entries_[seq] = &entry;
  attempts_[seq] = 0;
  pending_.push_back(seq);
  dispatch_locked();
}

std::size_t DistributedExecutor::in_flight() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return static_cast<std::size_t>(next_seq_ - next_return_);
}

bool DistributedExecutor::assign_locked(Worker& worker, std::uint64_t seq) {
  util::ByteWriter msg;
  msg.u8(static_cast<std::uint8_t>(DistMsg::Assign));
  msg.u64(seq);
  msg.str(entries_.at(seq)->package);
  if (!send_message(*worker.stream, std::move(msg).take()).ok()) {
    fail_worker_locked(worker, "assign send failed");
    return false;
  }
  worker.outstanding[seq] = std::chrono::steady_clock::now();
  ++attempts_[seq];
  dist_counter("assignments").increment();
  return true;
}

void DistributedExecutor::dispatch_locked() {
  if (pending_.empty()) return;
  for (auto& worker : workers_) {
    if (!worker->alive) continue;
    while (worker->outstanding.size() < capacity_per_worker_) {
      // Oldest pending app whose attempt budget is not exhausted; budget
      // runouts stay queued for next()'s quarantine.
      auto it = pending_.begin();
      while (it != pending_.end() && attempts_[*it] >= max_attempts_) ++it;
      if (it == pending_.end()) return;
      const std::uint64_t seq = *it;
      pending_.erase(it);
      if (!assign_locked(*worker, seq)) {
        pending_.push_front(seq);
        break;  // worker just died; try the next one
      }
    }
  }
}

void DistributedExecutor::fail_worker_locked(Worker& worker,
                                             const std::string& why) {
  if (!worker.alive) return;
  worker.alive = false;
  if (worker.stream) worker.stream->shutdown();
  util::log_warn(util::format("coordinator: worker %u lost (%s), %zu "
                              "assignments requeued",
                              worker.index, why.c_str(),
                              worker.outstanding.size()));
  dist_counter("worker_deaths").increment();
  // Requeue at the front: these are the oldest submissions and next() is
  // probably waiting on one of them.
  for (auto it = worker.outstanding.rbegin(); it != worker.outstanding.rend();
       ++it) {
    if (done_.contains(it->first)) continue;
    pending_.push_front(it->first);
    dist_counter("requeues").increment();
  }
  worker.outstanding.clear();
}

void DistributedExecutor::handle_outcome_locked(std::uint64_t seq,
                                                AppOutcome outcome) {
  dist_counter("outcomes").increment();
  for (auto& worker : workers_) {
    worker->outstanding.erase(seq);  // also clears stolen duplicates
  }
  if (!done_.insert(seq).second) {
    // A stolen or requeued duplicate already delivered this app.
    dist_counter("duplicate_outcomes").increment();
    return;
  }
  // Worker processes bump their own (invisible) registry; re-apply the
  // journaled deltas here exactly once so coordinator telemetry matches a
  // local run. (Thread-launcher workers share this registry, so tests
  // using them see double counts — documented caveat, digest unaffected.)
  auto& metrics = telemetry::current_registry();
  for (const auto& [name, delta] : outcome.counters) {
    metrics.counter(name).increment(delta);
  }
  completed_[seq] = std::move(outcome);
}

void DistributedExecutor::receiver_loop(Worker& worker) {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (stopping_ || !worker.alive) return;
    }
    if (auto ready = worker.stream->wait_readable_for(kIoTick); !ready.ok()) {
      if (net::is_timeout(ready.error())) continue;
      const std::lock_guard<std::mutex> lock{mutex_};
      // A close that races the Shutdown frame is an orderly exit, not a
      // death — don't count it or requeue against a finished run.
      if (!stopping_) fail_worker_locked(worker, ready.error());
      cv_.notify_all();
      return;
    }
    auto frame = net::recv_frame_for(*worker.stream, kMaxWireRecordBytes,
                                     kRecvDeadline);
    if (!frame.ok()) {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (!stopping_) {
        fail_worker_locked(worker, frame.error());
        dispatch_locked();
      }
      cv_.notify_all();
      return;
    }
    const std::span<const std::uint8_t> payload{frame.value()};
    util::ByteReader reader{payload};
    if (static_cast<DistMsg>(reader.u8()) != DistMsg::Outcome) continue;
    const std::uint64_t seq = reader.u64();
    if (!reader.ok()) continue;
    auto outcome = decode_outcome_standalone(payload.subspan(1 + 8));
    if (!outcome.ok()) {
      const std::lock_guard<std::mutex> lock{mutex_};
      fail_worker_locked(worker, "corrupt outcome: " + outcome.error());
      dispatch_locked();
      cv_.notify_all();
      return;
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      handle_outcome_locked(seq, std::move(outcome.value()));
      dispatch_locked();
    }
    cv_.notify_all();
  }
}

void DistributedExecutor::check_deadlines_locked() {
  const auto now = std::chrono::steady_clock::now();
  for (auto& worker : workers_) {
    if (!worker->alive) continue;
    for (auto it = worker->outstanding.begin();
         it != worker->outstanding.end();) {
      if (now - it->second < options_.worker_deadline ||
          done_.contains(it->first)) {
        ++it;
        continue;
      }
      // Past deadline: requeue. The worker may still deliver later (a
      // stall, not a death) — done_ dedup keeps the first result.
      pending_.push_front(it->first);
      dist_counter("requeues").increment();
      it = worker->outstanding.erase(it);
    }
  }
}

void DistributedExecutor::maybe_steal_locked() {
  if (!pending_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  // The oldest outstanding assignment old enough to look like a straggler.
  Worker* victim = nullptr;
  std::uint64_t oldest_seq = 0;
  std::chrono::steady_clock::time_point oldest_at;
  for (auto& worker : workers_) {
    if (!worker->alive) continue;
    for (const auto& [seq, at] : worker->outstanding) {
      if (now - at < options_.steal_after) continue;
      if (stolen_.contains(seq) || done_.contains(seq)) continue;
      if (victim == nullptr || seq < oldest_seq) {
        victim = worker.get();
        oldest_seq = seq;
        oldest_at = at;
      }
    }
  }
  if (victim == nullptr) return;
  for (auto& thief : workers_) {
    if (!thief->alive || thief.get() == victim) continue;
    if (thief->outstanding.size() >= capacity_per_worker_) continue;
    if (thief->outstanding.contains(oldest_seq)) continue;
    stolen_.insert(oldest_seq);
    dist_counter("steals").increment();
    // assign_locked bumps attempts_, which is fine: a steal is an attempt.
    assign_locked(*thief, oldest_seq);
    return;
  }
}

AppOutcome DistributedExecutor::next() {
  std::unique_lock<std::mutex> lock{mutex_};
  const std::uint64_t seq = next_return_;
  for (;;) {
    if (auto it = completed_.find(seq); it != completed_.end()) {
      AppOutcome out = std::move(it->second);
      completed_.erase(it);
      entries_.erase(seq);
      attempts_.erase(seq);
      stolen_.erase(seq);
      ++next_return_;
      return out;
    }
    check_deadlines_locked();
    maybe_steal_locked();

    // Quarantine: the app we are waiting for is unassignable — either its
    // attempt budget is gone or there is no live worker to run it. The
    // coordinator runs it inline; completion is guaranteed.
    const auto pending_it =
        std::find(pending_.begin(), pending_.end(), seq);
    if (pending_it != pending_.end() &&
        (attempts_[seq] >= max_attempts_ || live_workers_locked() == 0)) {
      pending_.erase(pending_it);
      done_.insert(seq);  // claim before unlocking: late deliveries dedup
      dist_counter("quarantined").increment();
      const android::AppEntry* entry = entries_.at(seq);
      lock.unlock();
      // process_app bumps the live registry itself — no re-apply here.
      AppOutcome out = process_app(play_, options_, cache_, *entry);
      lock.lock();
      completed_[seq] = std::move(out);
      continue;
    }

    dispatch_locked();
    cv_.wait_for(lock, std::chrono::milliseconds{50});
  }
}

}  // namespace gauge::core
