// Scalar document values for the DocStore: a JSON-ish tagged union plus the
// canonical key forms the index and aggregation layers key on. Two key
// spaces exist deliberately:
//   - index_key(): numerically-equal int/double values collapse, mirroring
//     Value::equals() so indexed term lookups agree with a full scan;
//   - group_key(): type-tagged and value-exact, so group_by never merges
//     Value{1} with Value{1.0} and never collapses distinct large doubles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>

namespace gauge::store {

// Shortest decimal form that round-trips to the same double (tries %.15g,
// %.16g then %.17g). The old `%g` (6 significant digits) collapsed distinct
// values — install counts 1000001 and 1000002 both printed "1e+06".
std::string format_double(double value);

class Value {
 public:
  Value() : v_{std::monostate{}} {}
  Value(bool b) : v_{b} {}                      // NOLINT
  Value(std::int64_t i) : v_{i} {}              // NOLINT
  Value(int i) : v_{static_cast<std::int64_t>(i)} {}  // NOLINT
  Value(double d) : v_{d} {}                    // NOLINT
  Value(std::string s) : v_{std::move(s)} {}    // NOLINT
  Value(const char* s) : v_{std::string{s}} {}  // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_double() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  // Numeric comparison when both sides are numeric; exact otherwise.
  bool equals(const Value& other) const;
  // Orders numerics numerically, strings lexicographically. Mixed types
  // compare by type index.
  bool less(const Value& other) const;

  // Printable form; doubles use round-trip formatting (see format_double).
  std::string str() const;

  // Canonical term key for the inverted index: follows equals() semantics,
  // so int 1000 and double 1000.0 share one posting list.
  std::string index_key() const;
  // Group-by key: type-tagged and exact, so int/double never merge.
  std::string group_key() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string> v_;
};

using Document = std::map<std::string, Value>;

// JSON serialisation of a single document ({"k": v, ...} with proper string
// escaping; ints stay integral, doubles round-trip).
std::string to_json(const Document& doc);

}  // namespace gauge::store
