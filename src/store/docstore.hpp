// In-memory document store standing in for the paper's ElasticSearch
// instance: JSON-like documents, field indexes, term/range queries and
// bucketed aggregations — the ETL layer under the offline analyses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace gauge::store {

class Value {
 public:
  Value() : v_{std::monostate{}} {}
  Value(bool b) : v_{b} {}                      // NOLINT
  Value(std::int64_t i) : v_{i} {}              // NOLINT
  Value(int i) : v_{static_cast<std::int64_t>(i)} {}  // NOLINT
  Value(double d) : v_{d} {}                    // NOLINT
  Value(std::string s) : v_{std::move(s)} {}    // NOLINT
  Value(const char* s) : v_{std::string{s}} {}  // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_double() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  // Numeric comparison when both sides are numeric; exact otherwise.
  bool equals(const Value& other) const;
  // Orders numerics numerically, strings lexicographically. Mixed types
  // compare by type index.
  bool less(const Value& other) const;

  std::string str() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string> v_;
};

using Document = std::map<std::string, Value>;

// JSON serialisation of a single document ({"k": v, ...} with proper string
// escaping; ints stay integral, doubles use shortest-ish %g).
std::string to_json(const Document& doc);

struct AggRow {
  std::vector<Value> keys;  // group-by key values, in group_by order
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double avg() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

class Query;

class DocStore {
 public:
  // Inserts a document; returns its id.
  std::size_t insert(Document doc);
  std::size_t size() const { return docs_.size(); }
  const Document& doc(std::size_t id) const { return docs_[id]; }

  Query query() const;

 private:
  friend class Query;
  std::vector<Document> docs_;
};

class Query {
 public:
  // Field equals value.
  Query& where(std::string field, Value value);
  // Numeric range, inclusive bounds; pass nullopt to leave open.
  Query& where_range(std::string field, std::optional<double> lo,
                     std::optional<double> hi);
  // Field exists (non-null).
  Query& where_exists(std::string field);

  // Matching document ids.
  std::vector<std::size_t> ids() const;
  std::size_t count() const { return ids().size(); }

  // Group by one or more fields, aggregating `metric_field` (may be empty
  // for count-only). Rows are sorted by descending count.
  std::vector<AggRow> group_by(std::vector<std::string> fields,
                               const std::string& metric_field = {}) const;

  // All values of `field` across matches (nulls skipped).
  std::vector<double> numbers(const std::string& field) const;
  std::vector<std::string> strings(const std::string& field) const;

  // Matching documents serialised as JSON Lines (one object per line) —
  // the export format the ElasticSearch-style store would bulk-load.
  std::string to_jsonl() const;

 private:
  friend class DocStore;
  explicit Query(const DocStore& store) : store_{&store} {}

  struct Term {
    std::string field;
    Value value;
  };
  struct Range {
    std::string field;
    std::optional<double> lo, hi;
  };

  bool matches(const Document& doc) const;

  const DocStore* store_;
  std::vector<Term> terms_;
  std::vector<Range> ranges_;
  std::vector<std::string> exists_;
};

}  // namespace gauge::store
