// Sharded, indexed, snapshot-isolated document store standing in for the
// paper's ElasticSearch instance (DESIGN.md §14). Documents are hash-
// sharded by id; each shard accumulates a memtable that seals into
// immutable indexed segments (store/segment.hpp). Readers take a Snapshot —
// shared_ptr copies of every shard's sealed-segment list — so ingest and
// compaction never block or mutate a running report query. Queries execute
// over the inverted index / numeric skip metadata by default, with a
// full-scan mode kept as the parity oracle, and aggregate with correct
// min/max/avg seeding (metric-less documents no longer poison a group).
// Segments persist as CRC32-framed files written through util::AtomicFile;
// compaction merges a shard's segments and the next save() drops the stale
// files, log-structured-style. Telemetry lands under `gauge.store.*`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/segment.hpp"
#include "store/value.hpp"
#include "util/result.hpp"

namespace gauge::store {

struct StoreOptions {
  // Number of hash shards. More shards spread ingest lock contention;
  // queries always see all of them.
  std::size_t shards = 8;
  // Memtable size at which a shard seals it into an immutable segment.
  std::size_t segment_target_docs = 8192;
  // Sealed-segment count at which a shard compacts (merges all its sealed
  // segments into one). 0 disables automatic compaction.
  std::size_t compact_trigger = 8;
};

// How a Query executes. Indexed is the default; FullScan is the reference
// path the tests hold the index to (and the bench baseline).
enum class ExecMode { Indexed, FullScan };

struct AggRow {
  std::vector<Value> keys;  // group-by key values, in group_by order
  std::int64_t count = 0;    // documents in the group
  std::int64_t samples = 0;  // documents that carried the metric field
  double sum = 0.0;
  double min = 0.0;  // over samples only; 0 when samples == 0
  double max = 0.0;
  // Mean over the documents that actually carried the metric.
  double avg() const {
    return samples ? sum / static_cast<double>(samples) : 0.0;
  }
};

class Query;
class DocStore;

// A stable view of the store: shared ownership of every segment sealed at
// snapshot time. Later inserts and compactions are invisible to it.
class Snapshot {
 public:
  std::size_t size() const;
  std::size_t segment_count() const { return segments_.size(); }
  Query query() const;

 private:
  friend class DocStore;
  friend class Query;
  std::vector<std::shared_ptr<const Segment>> segments_;
};

class DocStore {
 public:
  explicit DocStore(StoreOptions options = {});
  DocStore(const DocStore& other);
  DocStore& operator=(const DocStore& other);
  DocStore(DocStore&& other) noexcept;
  DocStore& operator=(DocStore&& other) noexcept;

  // Inserts a document; returns its id (dense, insertion-ordered).
  // Thread-safe against concurrent insert() and snapshot()/query().
  std::size_t insert(Document doc);
  std::size_t size() const {
    return next_id_.load(std::memory_order_relaxed);
  }
  // Seals the owning shard's memtable and returns a reference into the
  // sealed segment. The reference stays valid until that shard compacts;
  // not safe against concurrent compaction.
  const Document& doc(std::size_t id) const;

  // Stable view for isolated readers (seals pending memtables first).
  Snapshot snapshot() const;
  // A query that snapshots the store when it executes.
  Query query() const;

  // Merge every shard's sealed segments down to one (idempotent). Readers
  // holding snapshots keep the pre-compaction segments alive.
  void compact();
  std::size_t segment_count() const;
  // Segments the next full compaction would eliminate.
  std::size_t compaction_debt() const;

  // Persistence: one CRC-framed file per segment plus an atomically-written
  // MANIFEST naming them. Already-persisted segments are skipped; segment
  // files orphaned by compaction are removed after the manifest commits.
  util::Status save(const std::string& dir) const;
  static util::Result<DocStore> load(const std::string& dir);

  const StoreOptions& options() const { return options_; }

 private:
  friend class Query;
  struct Shard {
    mutable std::mutex mu;
    SegmentBuilder mem;
    std::vector<std::shared_ptr<const Segment>> sealed;
  };

  std::size_t shard_of(std::uint64_t id) const;
  // Both require the shard lock.
  void seal_locked(Shard& shard) const;
  void compact_locked(Shard& shard) const;
  void publish_segment_stats() const;

  StoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_id_{0};
};

class Query {
 public:
  // Field equals value (numeric int/double equality, exact otherwise).
  Query& where(std::string field, Value value);
  // Numeric range, inclusive bounds; pass nullopt to leave open.
  Query& where_range(std::string field, std::optional<double> lo,
                     std::optional<double> hi);
  // Field exists (non-null).
  Query& where_exists(std::string field);
  // Execution mode override (Indexed by default).
  Query& mode(ExecMode mode);

  // Matching document ids, ascending.
  std::vector<std::size_t> ids() const;
  std::size_t count() const;

  // Group by one or more fields (empty = one global group), aggregating
  // `metric_field` (may be empty for count-only). Rows are sorted by
  // descending count, then ascending group key.
  std::vector<AggRow> group_by(std::vector<std::string> fields,
                               const std::string& metric_field = {}) const;

  // All values of `field` across matches, in id order (nulls skipped).
  std::vector<double> numbers(const std::string& field) const;
  std::vector<std::string> strings(const std::string& field) const;

  // Matching documents serialised as JSON Lines (one object per line) in id
  // order — the export format the ElasticSearch-style store would bulk-load.
  std::string to_jsonl() const;

 private:
  friend class DocStore;
  friend class Snapshot;
  explicit Query(const DocStore& store) : store_{&store} {}
  explicit Query(Snapshot snapshot) : snapshot_{std::move(snapshot)} {}

  struct Term {
    std::string field;
    Value value;
  };
  struct Range {
    std::string field;
    std::optional<double> lo, hi;
  };
  struct Match {
    std::uint64_t id;
    const Document* doc;
  };

  Snapshot resolve() const;
  bool matches(const Document& doc) const;
  // In-segment match positions, ascending (indexed path).
  std::vector<std::uint32_t> match_segment(const Segment& segment) const;
  // All matches across the snapshot, ascending by id. Keeps the backing
  // segments alive through `snap`.
  std::vector<Match> collect(const Snapshot& snap) const;

  const DocStore* store_ = nullptr;
  Snapshot snapshot_;
  std::vector<Term> terms_;
  std::vector<Range> ranges_;
  std::vector<std::string> exists_;
  ExecMode mode_ = ExecMode::Indexed;
};

}  // namespace gauge::store
