// Immutable indexed segments — the unit of storage, snapshotting and
// compaction in the DocStore (DESIGN.md §14). A segment owns a sorted-by-id
// run of documents plus the structures queries probe instead of scanning:
//   - an inverted index: (field, canonical value key) -> ascending posting
//     list of in-segment doc positions;
//   - per-field numeric entries sorted by value, with min/max skip metadata
//     so range queries can reject whole segments without touching them;
//   - per-field exists postings (docs whose field is present and non-null).
// Segments serialise to CRC32-framed records (the core/journal framing
// idiom) and are written atomically via util::AtomicFile by DocStore::save.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/value.hpp"
#include "util/result.hpp"

namespace gauge::store {

class SegmentBuilder;

class Segment {
 public:
  struct NumericEntry {
    double value = 0.0;
    std::uint32_t idx = 0;  // position within docs()
  };
  struct FieldIndex {
    std::vector<std::uint32_t> exists;   // ascending doc positions, non-null
    std::vector<NumericEntry> numeric;   // sorted by (value, idx)
    double num_min = 0.0;                // skip metadata; valid when
    double num_max = 0.0;                // !numeric.empty()
  };

  std::size_t size() const { return docs_.size(); }
  std::uint64_t min_id() const { return docs_.empty() ? 0 : docs_.front().first; }
  std::uint64_t max_id() const { return docs_.empty() ? 0 : docs_.back().first; }
  const std::vector<std::pair<std::uint64_t, Document>>& docs() const {
    return docs_;
  }

  // Posting list for `field == value` (nullptr when the term is absent —
  // an index hit that proves zero matches without a scan).
  const std::vector<std::uint32_t>* term_postings(const std::string& field,
                                                  const Value& value) const;
  const FieldIndex* field_index(const std::string& field) const;

  // CRC32-framed byte image: header, then one length+payload+crc frame per
  // document. decode() rejects any frame whose CRC does not match.
  std::string encode() const;
  static util::Result<std::shared_ptr<const Segment>> decode(
      std::string_view bytes);

  // Compaction: merge several segments into one (docs re-sorted by id, the
  // index rebuilt over the union).
  static std::shared_ptr<const Segment> merge(
      const std::vector<std::shared_ptr<const Segment>>& parts);

  // File this segment is already durably stored as (set by DocStore::save
  // under the owning shard's lock; empty while memory-only). Metadata only —
  // never part of the segment's logical content.
  mutable std::string persisted_as;

 private:
  friend class SegmentBuilder;
  Segment() = default;
  void build_index();

  std::vector<std::pair<std::uint64_t, Document>> docs_;
  // Key: field + '\x1f' + Value::index_key().
  std::unordered_map<std::string, std::vector<std::uint32_t>> terms_;
  std::unordered_map<std::string, FieldIndex> fields_;
};

// Accumulates the mutable memtable of a shard; seal() sorts by id, builds
// the index and hands back an immutable segment.
class SegmentBuilder {
 public:
  void add(std::uint64_t id, Document doc);
  std::size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  // Returns the sealed segment and leaves the builder empty.
  std::shared_ptr<const Segment> seal();

 private:
  std::vector<std::pair<std::uint64_t, Document>> docs_;
};

}  // namespace gauge::store
