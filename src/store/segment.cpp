#include "store/segment.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace gauge::store {

namespace {

constexpr char kKeySep = '\x1f';
constexpr std::uint32_t kSegmentMagic = 0x31475347;  // "GSG1"

enum class Tag : std::uint8_t {
  Null = 0,
  Bool = 1,
  Int = 2,
  Double = 3,
  String = 4,
};

void encode_doc(util::ByteWriter& w, std::uint64_t id, const Document& doc) {
  w.u64(id);
  w.u32(static_cast<std::uint32_t>(doc.size()));
  for (const auto& [key, value] : doc) {
    w.str(key);
    if (value.is_null()) {
      w.u8(static_cast<std::uint8_t>(Tag::Null));
    } else if (value.is_bool()) {
      w.u8(static_cast<std::uint8_t>(Tag::Bool));
      w.u8(value.as_bool() ? 1 : 0);
    } else if (value.is_int()) {
      w.u8(static_cast<std::uint8_t>(Tag::Int));
      w.i64(value.as_int());
    } else if (value.is_double()) {
      w.u8(static_cast<std::uint8_t>(Tag::Double));
      w.f64(value.as_double());
    } else {
      w.u8(static_cast<std::uint8_t>(Tag::String));
      w.str(value.as_string());
    }
  }
}

bool decode_doc(util::ByteReader& r, std::uint64_t& id, Document& doc) {
  id = r.u64();
  const std::uint32_t fields = r.u32();
  for (std::uint32_t i = 0; i < fields && r.ok(); ++i) {
    std::string key = r.str();
    switch (static_cast<Tag>(r.u8())) {
      case Tag::Null: doc[std::move(key)] = Value{}; break;
      case Tag::Bool: doc[std::move(key)] = Value{r.u8() != 0}; break;
      case Tag::Int: doc[std::move(key)] = Value{r.i64()}; break;
      case Tag::Double: doc[std::move(key)] = Value{r.f64()}; break;
      case Tag::String: doc[std::move(key)] = Value{r.str()}; break;
      default: return false;
    }
  }
  return r.ok();
}

}  // namespace

const std::vector<std::uint32_t>* Segment::term_postings(
    const std::string& field, const Value& value) const {
  const auto it = terms_.find(field + kKeySep + value.index_key());
  return it == terms_.end() ? nullptr : &it->second;
}

const Segment::FieldIndex* Segment::field_index(const std::string& field) const {
  const auto it = fields_.find(field);
  return it == fields_.end() ? nullptr : &it->second;
}

void Segment::build_index() {
  for (std::uint32_t idx = 0; idx < docs_.size(); ++idx) {
    for (const auto& [field, value] : docs_[idx].second) {
      terms_[field + kKeySep + value.index_key()].push_back(idx);
      if (value.is_null()) continue;
      FieldIndex& fi = fields_[field];
      fi.exists.push_back(idx);
      if (value.is_numeric()) {
        fi.numeric.push_back({value.as_double(), idx});
      }
    }
  }
  for (auto& [_, fi] : fields_) {
    std::sort(fi.numeric.begin(), fi.numeric.end(),
              [](const NumericEntry& a, const NumericEntry& b) {
                if (a.value != b.value) return a.value < b.value;
                return a.idx < b.idx;
              });
    if (!fi.numeric.empty()) {
      fi.num_min = fi.numeric.front().value;
      fi.num_max = fi.numeric.back().value;
    }
  }
}

std::string Segment::encode() const {
  util::ByteWriter w;
  w.u32(kSegmentMagic);
  w.u32(1);  // version
  w.u32(static_cast<std::uint32_t>(docs_.size()));
  for (const auto& [id, doc] : docs_) {
    util::ByteWriter payload;
    encode_doc(payload, id, doc);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.raw(std::span<const std::uint8_t>{payload.bytes()});
    w.u32(util::crc32(std::span<const std::uint8_t>{payload.bytes()}));
  }
  const auto& bytes = w.bytes();
  return std::string{reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

util::Result<std::shared_ptr<const Segment>> Segment::decode(
    std::string_view bytes) {
  using R = util::Result<std::shared_ptr<const Segment>>;
  util::ByteReader r{util::as_span(bytes)};
  if (r.u32() != kSegmentMagic) return R::failure("segment: bad magic");
  if (r.u32() != 1) return R::failure("segment: unsupported version");
  const std::uint32_t count = r.u32();
  SegmentBuilder builder;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.u32();
    const auto payload = r.raw(len);
    const std::uint32_t crc = r.u32();
    if (!r.ok()) return R::failure("segment: truncated frame");
    if (util::crc32(payload) != crc) {
      return R::failure(util::format("segment: frame %u CRC mismatch", i));
    }
    util::ByteReader doc_reader{payload};
    std::uint64_t id = 0;
    Document doc;
    if (!decode_doc(doc_reader, id, doc) || doc_reader.remaining() != 0) {
      return R::failure(util::format("segment: frame %u malformed", i));
    }
    builder.add(id, std::move(doc));
  }
  if (r.remaining() != 0) return R::failure("segment: trailing bytes");
  return R{builder.seal()};
}

std::shared_ptr<const Segment> Segment::merge(
    const std::vector<std::shared_ptr<const Segment>>& parts) {
  SegmentBuilder builder;
  for (const auto& part : parts) {
    for (const auto& [id, doc] : part->docs()) builder.add(id, doc);
  }
  return builder.seal();
}

void SegmentBuilder::add(std::uint64_t id, Document doc) {
  docs_.emplace_back(id, std::move(doc));
}

std::shared_ptr<const Segment> SegmentBuilder::seal() {
  auto segment = std::shared_ptr<Segment>{new Segment{}};
  segment->docs_ = std::move(docs_);
  docs_.clear();
  // Concurrent inserts may race shard-local append order; id order is the
  // store's only public ordering, so restore it here.
  std::sort(segment->docs_.begin(), segment->docs_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  segment->build_index();
  return segment;
}

}  // namespace gauge::store
