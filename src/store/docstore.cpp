#include "store/docstore.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace gauge::store {

namespace {

// splitmix64 finaliser: sequential ids spread evenly across shards without
// striping every segment with every id range.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

// ---------------------------------------------------------------- Snapshot

std::size_t Snapshot::size() const {
  std::size_t total = 0;
  for (const auto& segment : segments_) total += segment->size();
  return total;
}

Query Snapshot::query() const { return Query{*this}; }

// ---------------------------------------------------------------- DocStore

DocStore::DocStore(StoreOptions options) : options_{options} {
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

DocStore::DocStore(const DocStore& other) : DocStore{other.options_} {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard lock{other.shards_[i]->mu};
    shards_[i]->mem = other.shards_[i]->mem;
    shards_[i]->sealed = other.shards_[i]->sealed;  // segments are immutable
  }
  next_id_.store(other.next_id_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

DocStore& DocStore::operator=(const DocStore& other) {
  if (this != &other) {
    DocStore copy{other};
    *this = std::move(copy);
  }
  return *this;
}

DocStore::DocStore(DocStore&& other) noexcept
    : options_{other.options_}, shards_{std::move(other.shards_)} {
  next_id_.store(other.next_id_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

DocStore& DocStore::operator=(DocStore&& other) noexcept {
  if (this != &other) {
    options_ = other.options_;
    shards_ = std::move(other.shards_);
    next_id_.store(other.next_id_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  return *this;
}

std::size_t DocStore::shard_of(std::uint64_t id) const {
  return static_cast<std::size_t>(mix64(id) % shards_.size());
}

void DocStore::seal_locked(Shard& shard) const {
  shard.sealed.push_back(shard.mem.seal());
  telemetry::current_registry()
      .counter("gauge.store.segments.sealed")
      .increment();
}

void DocStore::compact_locked(Shard& shard) const {
  if (shard.sealed.size() <= 1) return;
  auto merged = Segment::merge(shard.sealed);
  shard.sealed.clear();
  shard.sealed.push_back(std::move(merged));
  telemetry::current_registry().counter("gauge.store.compactions").increment();
}

void DocStore::publish_segment_stats() const {
  auto& registry = telemetry::current_registry();
  registry.gauge("gauge.store.segments")
      .set(static_cast<double>(segment_count()));
  registry.gauge("gauge.store.compaction_debt")
      .set(static_cast<double>(compaction_debt()));
}

std::size_t DocStore::insert(Document doc) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[shard_of(id)];
  bool sealed = false;
  {
    std::lock_guard lock{shard.mu};
    shard.mem.add(id, std::move(doc));
    if (options_.segment_target_docs != 0 &&
        shard.mem.size() >= options_.segment_target_docs) {
      seal_locked(shard);
      sealed = true;
      if (options_.compact_trigger != 0 &&
          shard.sealed.size() >= options_.compact_trigger) {
        compact_locked(shard);
      }
    }
  }
  telemetry::current_registry().counter("gauge.store.ingested").increment();
  if (sealed) publish_segment_stats();
  return static_cast<std::size_t>(id);
}

const Document& DocStore::doc(std::size_t id) const {
  Shard& shard = *shards_[shard_of(id)];
  std::lock_guard lock{shard.mu};
  if (!shard.mem.empty()) seal_locked(shard);
  for (auto it = shard.sealed.rbegin(); it != shard.sealed.rend(); ++it) {
    const Segment& segment = **it;
    if (segment.size() == 0 || id < segment.min_id() || id > segment.max_id()) {
      continue;
    }
    const auto& docs = segment.docs();
    const auto pos = std::lower_bound(
        docs.begin(), docs.end(), id,
        [](const auto& entry, std::uint64_t want) { return entry.first < want; });
    if (pos != docs.end() && pos->first == id) return pos->second;
  }
  throw std::out_of_range{util::format("docstore: no document %zu", id)};
}

Snapshot DocStore::snapshot() const {
  Snapshot snap;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mu};
    if (!shard->mem.empty()) seal_locked(*shard);
    for (const auto& segment : shard->sealed) snap.segments_.push_back(segment);
  }
  return snap;
}

Query DocStore::query() const { return Query{*this}; }

void DocStore::compact() {
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mu};
    if (!shard->mem.empty()) seal_locked(*shard);
    compact_locked(*shard);
  }
  publish_segment_stats();
}

std::size_t DocStore::segment_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mu};
    total += shard->sealed.size() + (shard->mem.empty() ? 0 : 1);
  }
  return total;
}

std::size_t DocStore::compaction_debt() const {
  std::size_t debt = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mu};
    const std::size_t segments =
        shard->sealed.size() + (shard->mem.empty() ? 0 : 1);
    if (segments > 1) debt += segments - 1;
  }
  return debt;
}

// ------------------------------------------------------------- persistence

util::Status DocStore::save(const std::string& dir) const {
  if (auto status = util::make_directories(dir); !status.ok()) return status;
  const Snapshot snap = snapshot();

  std::string manifest = "gauge-docstore 1\n";
  manifest += util::format("shards %zu\n", shards_.size());
  manifest += util::format("next_id %llu\n",
                           static_cast<unsigned long long>(
                               next_id_.load(std::memory_order_relaxed)));
  std::set<std::string> live;
  for (const auto& segment : snap.segments_) {
    if (segment->size() == 0) continue;
    // (shard, id range, count) is unique per segment content: ids are
    // global and a shard's compactions only ever merge, never drop.
    const std::string name = util::format(
        "seg-%zu-%llu-%llu-%zu.seg", shard_of(segment->min_id()),
        static_cast<unsigned long long>(segment->min_id()),
        static_cast<unsigned long long>(segment->max_id()), segment->size());
    if (!file_exists(dir + "/" + name)) {
      if (auto status = util::AtomicFile{dir + "/" + name}.write(
              segment->encode());
          !status.ok()) {
        return status;
      }
    }
    live.insert(name);
    manifest += util::format("segment %zu %s %zu\n",
                             shard_of(segment->min_id()), name.c_str(),
                             segment->size());
  }
  // The manifest is the commit point: a crash before this write leaves the
  // old manifest naming only the old files.
  if (auto status = util::AtomicFile{dir + "/MANIFEST"}.write(manifest);
      !status.ok()) {
    return status;
  }
  // Drop segment files orphaned by compaction (best-effort; stale files are
  // invisible anyway because the manifest no longer names them).
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.size() > 4 && name.substr(name.size() - 4) == ".seg" &&
          live.count(name) == 0) {
        ::unlink((dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  return util::Status{};
}

util::Result<DocStore> DocStore::load(const std::string& dir) {
  using R = util::Result<DocStore>;
  auto manifest = util::read_text_file(dir + "/MANIFEST");
  if (!manifest.ok()) return R::failure("docstore: " + manifest.error());
  const auto lines = util::split(manifest.value(), '\n');
  if (lines.empty() || util::trim(lines[0]) != "gauge-docstore 1") {
    return R::failure("docstore: bad manifest header");
  }
  StoreOptions options;
  std::uint64_t next_id = 0;
  struct Entry {
    std::size_t shard;
    std::string file;
    std::size_t docs;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = util::split_ws(lines[i]);
    if (fields.empty()) continue;
    if (fields[0] == "shards" && fields.size() == 2) {
      const auto n = util::parse_int(fields[1]);
      if (!n || *n <= 0) return R::failure("docstore: bad shard count");
      options.shards = static_cast<std::size_t>(*n);
    } else if (fields[0] == "next_id" && fields.size() == 2) {
      const auto n = util::parse_int(fields[1]);
      if (!n || *n < 0) return R::failure("docstore: bad next_id");
      next_id = static_cast<std::uint64_t>(*n);
    } else if (fields[0] == "segment" && fields.size() == 4) {
      const auto shard = util::parse_int(fields[1]);
      const auto docs = util::parse_int(fields[3]);
      if (!shard || !docs) return R::failure("docstore: bad segment line");
      entries.push_back({static_cast<std::size_t>(*shard), fields[2],
                         static_cast<std::size_t>(*docs)});
    } else {
      return R::failure("docstore: unrecognised manifest line: " + lines[i]);
    }
  }
  DocStore db{options};
  for (const auto& entry : entries) {
    if (entry.shard >= db.shards_.size()) {
      return R::failure("docstore: segment shard out of range");
    }
    auto bytes = util::read_text_file(dir + "/" + entry.file);
    if (!bytes.ok()) return R::failure("docstore: " + bytes.error());
    auto segment = Segment::decode(bytes.value());
    if (!segment.ok()) {
      return R::failure(entry.file + ": " + segment.error());
    }
    if (segment.value()->size() != entry.docs) {
      return R::failure(entry.file + ": doc count mismatch");
    }
    db.shards_[entry.shard]->sealed.push_back(segment.value());
  }
  db.next_id_.store(next_id, std::memory_order_relaxed);
  return R{std::move(db)};
}

// ------------------------------------------------------------------- Query

Query& Query::where(std::string field, Value value) {
  terms_.push_back({std::move(field), std::move(value)});
  return *this;
}

Query& Query::where_range(std::string field, std::optional<double> lo,
                          std::optional<double> hi) {
  ranges_.push_back({std::move(field), lo, hi});
  return *this;
}

Query& Query::where_exists(std::string field) {
  exists_.push_back(std::move(field));
  return *this;
}

Query& Query::mode(ExecMode mode) {
  mode_ = mode;
  return *this;
}

Snapshot Query::resolve() const {
  return store_ != nullptr ? store_->snapshot() : snapshot_;
}

bool Query::matches(const Document& doc) const {
  for (const auto& term : terms_) {
    const auto it = doc.find(term.field);
    if (it == doc.end() || !it->second.equals(term.value)) return false;
  }
  for (const auto& range : ranges_) {
    const auto it = doc.find(range.field);
    if (it == doc.end() || !it->second.is_numeric()) return false;
    const double v = it->second.as_double();
    if (range.lo && v < *range.lo) return false;
    if (range.hi && v > *range.hi) return false;
  }
  for (const auto& field : exists_) {
    const auto it = doc.find(field);
    if (it == doc.end() || it->second.is_null()) return false;
  }
  return true;
}

std::vector<std::uint32_t> Query::match_segment(const Segment& segment) const {
  auto& registry = telemetry::current_registry();
  std::vector<std::uint32_t> current;
  bool constrained = false;
  const auto intersect = [&](const std::vector<std::uint32_t>& sorted) {
    if (!constrained) {
      current = sorted;
      constrained = true;
      return;
    }
    std::vector<std::uint32_t> next;
    next.reserve(std::min(current.size(), sorted.size()));
    std::set_intersection(current.begin(), current.end(), sorted.begin(),
                          sorted.end(), std::back_inserter(next));
    current = std::move(next);
  };

  for (const auto& term : terms_) {
    const auto* postings = segment.term_postings(term.field, term.value);
    if (postings == nullptr) {
      // The index proves zero matches in this segment without a scan.
      registry.counter("gauge.store.index.term_misses").increment();
      return {};
    }
    registry.counter("gauge.store.index.term_hits").increment();
    intersect(*postings);
    if (current.empty()) return {};
  }
  for (const auto& field : exists_) {
    const auto* fi = segment.field_index(field);
    if (fi == nullptr || fi->exists.empty()) return {};
    intersect(fi->exists);
    if (current.empty()) return {};
  }
  for (const auto& range : ranges_) {
    const auto* fi = segment.field_index(range.field);
    if (fi == nullptr || fi->numeric.empty()) return {};
    if ((range.lo && fi->num_max < *range.lo) ||
        (range.hi && fi->num_min > *range.hi)) {
      registry.counter("gauge.store.index.segment_skips").increment();
      return {};
    }
    const auto& numeric = fi->numeric;
    auto first = numeric.begin();
    auto last = numeric.end();
    if (range.lo) {
      first = std::lower_bound(numeric.begin(), numeric.end(), *range.lo,
                               [](const Segment::NumericEntry& e, double v) {
                                 return e.value < v;
                               });
    }
    if (range.hi) {
      last = std::upper_bound(first, numeric.end(), *range.hi,
                              [](double v, const Segment::NumericEntry& e) {
                                return v < e.value;
                              });
    }
    std::vector<std::uint32_t> in_range;
    in_range.reserve(static_cast<std::size_t>(last - first));
    for (auto it = first; it != last; ++it) in_range.push_back(it->idx);
    std::sort(in_range.begin(), in_range.end());
    intersect(in_range);
    if (current.empty()) return {};
  }

  if (!constrained) {
    current.resize(segment.size());
    std::iota(current.begin(), current.end(), 0);
  }
  return current;
}

std::vector<Query::Match> Query::collect(const Snapshot& snap) const {
  auto& registry = telemetry::current_registry();
  const auto start = std::chrono::steady_clock::now();
  std::vector<Match> out;
  if (mode_ == ExecMode::FullScan) {
    registry.counter("gauge.store.query.full_scan").increment();
    for (const auto& segment : snap.segments_) {
      for (const auto& [id, doc] : segment->docs()) {
        if (matches(doc)) out.push_back({id, &doc});
      }
    }
  } else {
    registry.counter("gauge.store.query.indexed").increment();
    for (const auto& segment : snap.segments_) {
      const auto& docs = segment->docs();
      for (std::uint32_t idx : match_segment(*segment)) {
        out.push_back({docs[idx].first, &docs[idx].second});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Match& a, const Match& b) { return a.id < b.id; });
  registry.histogram("gauge.store.query_ms")
      .observe(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count());
  return out;
}

std::vector<std::size_t> Query::ids() const {
  const Snapshot snap = resolve();
  std::vector<std::size_t> out;
  for (const auto& match : collect(snap)) {
    out.push_back(static_cast<std::size_t>(match.id));
  }
  return out;
}

std::size_t Query::count() const {
  const Snapshot snap = resolve();
  return collect(snap).size();
}

std::vector<AggRow> Query::group_by(std::vector<std::string> fields,
                                    const std::string& metric_field) const {
  const Snapshot snap = resolve();
  // Keyed on type-tagged exact forms (Value::group_key) so int/double and
  // near-equal large doubles never merge.
  std::map<std::vector<std::string>, AggRow> groups;
  for (const auto& match : collect(snap)) {
    const Document& doc = *match.doc;
    std::vector<std::string> key;
    std::vector<Value> keys;
    key.reserve(fields.size());
    keys.reserve(fields.size());
    for (const auto& field : fields) {
      const auto it = doc.find(field);
      const Value v = it == doc.end() ? Value{} : it->second;
      key.push_back(v.group_key());
      keys.push_back(v);
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    AggRow& row = it->second;
    if (inserted) row.keys = std::move(keys);
    row.count++;
    if (!metric_field.empty()) {
      const auto mit = doc.find(metric_field);
      if (mit != doc.end() && mit->second.is_numeric()) {
        const double v = mit->second.as_double();
        // Seed min/max on the first *sample*, not the first doc: a group
        // whose first document lacks the metric must not contribute a
        // default-initialised 0.0 to min/max.
        row.samples++;
        if (row.samples == 1) {
          row.min = row.max = v;
        } else {
          row.min = std::min(row.min, v);
          row.max = std::max(row.max, v);
        }
        row.sum += v;
      }
    }
  }
  std::vector<AggRow> out;
  out.reserve(groups.size());
  for (auto& [_, row] : groups) out.push_back(std::move(row));
  // Map order is ascending group key; stable sort preserves it within equal
  // counts.
  std::stable_sort(out.begin(), out.end(), [](const AggRow& a, const AggRow& b) {
    return a.count > b.count;
  });
  return out;
}

std::vector<double> Query::numbers(const std::string& field) const {
  const Snapshot snap = resolve();
  std::vector<double> out;
  for (const auto& match : collect(snap)) {
    const auto it = match.doc->find(field);
    if (it != match.doc->end() && it->second.is_numeric()) {
      out.push_back(it->second.as_double());
    }
  }
  return out;
}

std::vector<std::string> Query::strings(const std::string& field) const {
  const Snapshot snap = resolve();
  std::vector<std::string> out;
  for (const auto& match : collect(snap)) {
    const auto it = match.doc->find(field);
    if (it != match.doc->end() && it->second.is_string()) {
      out.push_back(it->second.as_string());
    }
  }
  return out;
}

std::string Query::to_jsonl() const {
  const Snapshot snap = resolve();
  std::string out;
  for (const auto& match : collect(snap)) {
    out += to_json(*match.doc);
    out += '\n';
  }
  return out;
}

}  // namespace gauge::store
