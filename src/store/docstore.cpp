#include "store/docstore.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace gauge::store {

bool Value::equals(const Value& other) const {
  if ((is_int() || is_double()) && (other.is_int() || other.is_double())) {
    return as_double() == other.as_double();
  }
  return v_ == other.v_;
}

bool Value::less(const Value& other) const {
  if ((is_int() || is_double()) && (other.is_int() || other.is_double())) {
    return as_double() < other.as_double();
  }
  return v_ < other.v_;
}

std::string Value::str() const {
  if (is_null()) return "null";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return util::format("%g", as_double());
  return as_string();
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const Document& doc) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : doc) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, key);
    out += ": ";
    if (value.is_null()) {
      out += "null";
    } else if (value.is_bool()) {
      out += value.as_bool() ? "true" : "false";
    } else if (value.is_int()) {
      out += std::to_string(value.as_int());
    } else if (value.is_double()) {
      out += util::format("%g", value.as_double());
    } else {
      append_json_string(out, value.as_string());
    }
  }
  out += "}";
  return out;
}

std::size_t DocStore::insert(Document doc) {
  docs_.push_back(std::move(doc));
  return docs_.size() - 1;
}

Query DocStore::query() const { return Query{*this}; }

Query& Query::where(std::string field, Value value) {
  terms_.push_back({std::move(field), std::move(value)});
  return *this;
}

Query& Query::where_range(std::string field, std::optional<double> lo,
                          std::optional<double> hi) {
  ranges_.push_back({std::move(field), lo, hi});
  return *this;
}

Query& Query::where_exists(std::string field) {
  exists_.push_back(std::move(field));
  return *this;
}

bool Query::matches(const Document& doc) const {
  for (const auto& term : terms_) {
    const auto it = doc.find(term.field);
    if (it == doc.end() || !it->second.equals(term.value)) return false;
  }
  for (const auto& range : ranges_) {
    const auto it = doc.find(range.field);
    if (it == doc.end() || it->second.is_null()) return false;
    if (!it->second.is_int() && !it->second.is_double()) return false;
    const double v = it->second.as_double();
    if (range.lo && v < *range.lo) return false;
    if (range.hi && v > *range.hi) return false;
  }
  for (const auto& field : exists_) {
    const auto it = doc.find(field);
    if (it == doc.end() || it->second.is_null()) return false;
  }
  return true;
}

std::vector<std::size_t> Query::ids() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < store_->docs_.size(); ++i) {
    if (matches(store_->docs_[i])) out.push_back(i);
  }
  return out;
}

std::vector<AggRow> Query::group_by(std::vector<std::string> fields,
                                    const std::string& metric_field) const {
  // Key = concatenated printable forms (stable and hashable via map).
  std::map<std::vector<std::string>, AggRow> groups;
  for (std::size_t id : ids()) {
    const Document& doc = store_->docs_[id];
    std::vector<std::string> key_strs;
    std::vector<Value> keys;
    for (const auto& field : fields) {
      const auto it = doc.find(field);
      const Value v = it == doc.end() ? Value{} : it->second;
      key_strs.push_back(v.str());
      keys.push_back(v);
    }
    auto [it, inserted] = groups.try_emplace(key_strs);
    AggRow& row = it->second;
    if (inserted) row.keys = std::move(keys);
    row.count++;
    if (!metric_field.empty()) {
      const auto mit = doc.find(metric_field);
      if (mit != doc.end() && (mit->second.is_int() || mit->second.is_double())) {
        const double v = mit->second.as_double();
        if (row.count == 1) {
          row.min = row.max = v;
        } else {
          row.min = std::min(row.min, v);
          row.max = std::max(row.max, v);
        }
        row.sum += v;
      }
    }
  }
  std::vector<AggRow> out;
  out.reserve(groups.size());
  for (auto& [_, row] : groups) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const AggRow& a, const AggRow& b) {
    if (a.count != b.count) return a.count > b.count;
    // Stable tiebreak on key strings.
    for (std::size_t i = 0; i < std::min(a.keys.size(), b.keys.size()); ++i) {
      const std::string as = a.keys[i].str();
      const std::string bs = b.keys[i].str();
      if (as != bs) return as < bs;
    }
    return false;
  });
  return out;
}

std::vector<double> Query::numbers(const std::string& field) const {
  std::vector<double> out;
  for (std::size_t id : ids()) {
    const auto it = store_->docs_[id].find(field);
    if (it != store_->docs_[id].end() &&
        (it->second.is_int() || it->second.is_double())) {
      out.push_back(it->second.as_double());
    }
  }
  return out;
}

std::string Query::to_jsonl() const {
  std::string out;
  for (std::size_t id : ids()) {
    out += to_json(store_->docs_[id]);
    out += '\n';
  }
  return out;
}

std::vector<std::string> Query::strings(const std::string& field) const {
  std::vector<std::string> out;
  for (std::size_t id : ids()) {
    const auto it = store_->docs_[id].find(field);
    if (it != store_->docs_[id].end() && it->second.is_string()) {
      out.push_back(it->second.as_string());
    }
  }
  return out;
}

}  // namespace gauge::store
