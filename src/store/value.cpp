#include "store/value.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace gauge::store {

std::string format_double(double value) {
  for (int precision : {15, 16, 17}) {
    std::string s = util::format("%.*g", precision, value);
    if (std::strtod(s.c_str(), nullptr) == value) return s;
  }
  return util::format("%.17g", value);
}

bool Value::equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return as_double() == other.as_double();
  }
  return v_ == other.v_;
}

bool Value::less(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return as_double() < other.as_double();
  }
  return v_ < other.v_;
}

std::string Value::str() const {
  if (is_null()) return "null";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return format_double(as_double());
  return as_string();
}

namespace {

std::string tagged(char tag, std::string body) {
  body.insert(body.begin(), tag);
  return body;
}

}  // namespace

std::string Value::index_key() const {
  if (is_null()) return "z";
  if (is_bool()) return as_bool() ? "b1" : "b0";
  // One key per numeric *value*: equals() compares through as_double(), so
  // the index must too or indexed terms would diverge from a full scan.
  if (is_numeric()) return tagged('n', format_double(as_double()));
  return tagged('s', as_string());
}

std::string Value::group_key() const {
  if (is_null()) return "z";
  if (is_bool()) return as_bool() ? "b1" : "b0";
  if (is_int()) return tagged('i', std::to_string(as_int()));
  if (is_double()) return tagged('d', format_double(as_double()));
  return tagged('s', as_string());
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const Document& doc) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : doc) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, key);
    out += ": ";
    if (value.is_null()) {
      out += "null";
    } else if (value.is_bool()) {
      out += value.as_bool() ? "true" : "false";
    } else if (value.is_int()) {
      out += std::to_string(value.as_int());
    } else if (value.is_double()) {
      out += format_double(value.as_double());
    } else {
      append_json_string(out, value.as_string());
    }
  }
  out += "}";
  return out;
}

}  // namespace gauge::store
