// On-device training cost estimation (paper §8, "On-device learning and
// personalisation"): the paper observes developers fine-tune only the last
// layers offline because full training is prohibitive on device. This
// module quantifies that: trace-based FLOPs/memory for a training step of a
// model when only the last `trainable_layers` weighted layers are updated.
//
// Cost model (standard backprop accounting):
//   - forward pass: the inference FLOPs of every layer;
//   - backward-through: every layer *above* the lowest trainable layer must
//     propagate gradients to its inputs (~1x its forward MAC cost);
//   - weight gradients: each trainable layer pays another ~1x forward MACs
//     plus an optimizer update over its parameters.
// Full training of an L-layer net thus costs ~3x inference; freezing all
// but the head drops the multiplier towards ~1x.
#pragma once

#include "nn/trace.hpp"

namespace gauge::nn {

struct TrainingCost {
  std::int64_t forward_flops = 0;
  std::int64_t backward_flops = 0;  // gradient propagation + weight grads
  std::int64_t update_flops = 0;    // optimizer step over trainable params
  std::int64_t trainable_params = 0;
  std::int64_t total_flops() const {
    return forward_flops + backward_flops + update_flops;
  }
  // Memory for stashed activations of layers involved in backprop.
  std::int64_t activation_stash_bytes = 0;
};

// `trainable_layers` counts weighted layers from the output backwards;
// pass a large value (or -1) for full training.
TrainingCost training_step_cost(const ModelTrace& trace, int trainable_layers);

}  // namespace gauge::nn
