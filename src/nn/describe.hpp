// Netron-style textual model summary: per-layer table with shapes, params
// and FLOPs — the manual-inspection view the paper's researchers used when
// labelling models (§4.4).
#pragma once

#include <string>

#include "nn/graph.hpp"

namespace gauge::nn {

// Multi-line human-readable description; empty string on invalid graphs.
std::string describe(const Graph& graph);

}  // namespace gauge::nn
