// Tensors and shapes for the DNN graph IR. Layout convention is NHWC for
// rank-4 activations (what TFLite uses); weights are stored per-layer in the
// layouts the kernels expect (documented on each layer type).
#pragma once

#include <cassert>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace gauge::nn {

enum class DType : std::uint8_t { F32 = 0, I8 = 1, I32 = 2 };

inline std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::F32: return 4;
    case DType::I8: return 1;
    case DType::I32: return 4;
  }
  return 4;
}

inline const char* dtype_name(DType t) {
  switch (t) {
    case DType::F32: return "f32";
    case DType::I8: return "i8";
    case DType::I32: return "i32";
  }
  return "?";
}

struct Shape {
  std::vector<std::int64_t> dims;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> d) : dims{d} {}
  explicit Shape(std::vector<std::int64_t> d) : dims{std::move(d)} {}

  std::size_t rank() const { return dims.size(); }
  std::int64_t operator[](std::size_t i) const { return dims[i]; }
  std::int64_t& operator[](std::size_t i) { return dims[i]; }

  std::int64_t elements() const {
    return std::accumulate(dims.begin(), dims.end(), std::int64_t{1},
                           [](std::int64_t a, std::int64_t b) { return a * b; });
  }

  bool operator==(const Shape& other) const = default;

  std::string str() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (i) out += "x";
      out += std::to_string(dims[i]);
    }
    return out + "]";
  }
};

// Dense tensor. Data lives in the variant-by-dtype vectors; only the vector
// matching `dtype` is populated.
class Tensor {
 public:
  Tensor() = default;
  Tensor(Shape shape, DType dtype) : shape_{std::move(shape)}, dtype_{dtype} {
    resize_storage();
  }

  static Tensor zeros(Shape shape, DType dtype = DType::F32) {
    return Tensor{std::move(shape), dtype};
  }

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  std::int64_t elements() const { return shape_.elements(); }
  std::size_t byte_size() const {
    return static_cast<std::size_t>(elements()) * dtype_size(dtype_);
  }

  std::vector<float>& f32() {
    assert(dtype_ == DType::F32);
    return f32_;
  }
  const std::vector<float>& f32() const {
    assert(dtype_ == DType::F32);
    return f32_;
  }
  std::vector<std::int8_t>& i8() {
    assert(dtype_ == DType::I8);
    return i8_;
  }
  const std::vector<std::int8_t>& i8() const {
    assert(dtype_ == DType::I8);
    return i8_;
  }
  std::vector<std::int32_t>& i32() {
    assert(dtype_ == DType::I32);
    return i32_;
  }
  const std::vector<std::int32_t>& i32() const {
    assert(dtype_ == DType::I32);
    return i32_;
  }

  // Quantisation metadata (meaningful for I8 tensors).
  float quant_scale = 1.0f;
  std::int32_t quant_zero_point = 0;

 private:
  void resize_storage() {
    const auto n = static_cast<std::size_t>(shape_.elements());
    switch (dtype_) {
      case DType::F32: f32_.assign(n, 0.0f); break;
      case DType::I8: i8_.assign(n, 0); break;
      case DType::I32: i32_.assign(n, 0); break;
    }
  }

  Shape shape_;
  DType dtype_ = DType::F32;
  std::vector<float> f32_;
  std::vector<std::int8_t> i8_;
  std::vector<std::int32_t> i32_;
};

}  // namespace gauge::nn
