#include "nn/graph.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

#include "util/strings.hpp"

namespace gauge::nn {

const char* layer_type_name(LayerType type) {
  switch (type) {
    case LayerType::Input: return "input";
    case LayerType::Conv2D: return "conv2d";
    case LayerType::DepthwiseConv2D: return "depthwise_conv2d";
    case LayerType::Dense: return "dense";
    case LayerType::MaxPool2D: return "max_pool2d";
    case LayerType::AvgPool2D: return "avg_pool2d";
    case LayerType::GlobalAvgPool: return "global_avg_pool";
    case LayerType::Relu: return "relu";
    case LayerType::Relu6: return "relu6";
    case LayerType::Sigmoid: return "sigmoid";
    case LayerType::Tanh: return "tanh";
    case LayerType::Softmax: return "softmax";
    case LayerType::Add: return "add";
    case LayerType::Mul: return "mul";
    case LayerType::Concat: return "concat";
    case LayerType::ResizeNearest: return "resize_nearest";
    case LayerType::Slice: return "slice";
    case LayerType::Reshape: return "reshape";
    case LayerType::Pad: return "pad";
    case LayerType::BatchNorm: return "batch_norm";
    case LayerType::Quantize: return "quantize";
    case LayerType::Dequantize: return "dequantize";
    case LayerType::Lstm: return "lstm";
    case LayerType::Embedding: return "embedding";
    case LayerType::Transpose2D: return "transpose2d";
    case LayerType::kCount: break;
  }
  return "?";
}

OpFamily op_family(LayerType type) {
  switch (type) {
    case LayerType::Conv2D: return OpFamily::Conv;
    case LayerType::DepthwiseConv2D: return OpFamily::DepthConv;
    case LayerType::Dense: return OpFamily::Dense;
    case LayerType::MaxPool2D:
    case LayerType::AvgPool2D:
    case LayerType::GlobalAvgPool: return OpFamily::Pool;
    case LayerType::Relu:
    case LayerType::Relu6:
    case LayerType::Sigmoid:
    case LayerType::Tanh: return OpFamily::Activation;
    case LayerType::Softmax:
    case LayerType::Add:
    case LayerType::Mul:
    case LayerType::BatchNorm: return OpFamily::Math;
    case LayerType::Concat:
    case LayerType::Reshape:
    case LayerType::Pad:
    case LayerType::Transpose2D: return OpFamily::Shape;
    case LayerType::ResizeNearest: return OpFamily::Resize;
    case LayerType::Slice: return OpFamily::Slice;
    case LayerType::Quantize:
    case LayerType::Dequantize: return OpFamily::Quant;
    case LayerType::Lstm: return OpFamily::Recurrent;
    case LayerType::Embedding: return OpFamily::Embedding;
    case LayerType::Input: return OpFamily::Input;
    case LayerType::kCount: break;
  }
  return OpFamily::Math;
}

const char* op_family_name(OpFamily family) {
  switch (family) {
    case OpFamily::Conv: return "conv";
    case OpFamily::DepthConv: return "depth_conv";
    case OpFamily::Dense: return "dense";
    case OpFamily::Pool: return "pool";
    case OpFamily::Activation: return "activation";
    case OpFamily::Recurrent: return "recurrent";
    case OpFamily::Embedding: return "embedding";
    case OpFamily::Quant: return "quant";
    case OpFamily::Resize: return "resize";
    case OpFamily::Slice: return "slice";
    case OpFamily::Math: return "math";
    case OpFamily::Shape: return "shape";
    case OpFamily::Input: return "input";
  }
  return "?";
}

const char* modality_name(Modality m) {
  switch (m) {
    case Modality::Image: return "image";
    case Modality::Text: return "text";
    case Modality::Audio: return "audio";
    case Modality::Sensor: return "sensor";
    case Modality::Unknown: return "unknown";
  }
  return "?";
}

int expected_arity(LayerType type) {
  switch (type) {
    case LayerType::Input: return 0;
    case LayerType::Add:
    case LayerType::Mul: return 2;
    case LayerType::Concat: return -1;
    default: return 1;
  }
}

int Graph::add(Layer layer) {
  const int idx = static_cast<int>(layers_.size());
  // Producer-before-consumer is enforced lazily: validate() reports any
  // violation; debug builds assert here for early detection.
  assert(std::all_of(layer.inputs.begin(), layer.inputs.end(),
                     [idx](int in) { return in >= 0 && in < idx; }));
  layers_.push_back(std::move(layer));
  return idx;
}

std::vector<int> Graph::input_indices() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].type == LayerType::Input) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Graph::output_indices() const {
  std::vector<bool> consumed(layers_.size(), false);
  for (const auto& layer : layers_) {
    for (int in : layer.inputs) consumed[static_cast<std::size_t>(in)] = true;
  }
  std::vector<int> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!consumed[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

util::Status Graph::validate() const {
  if (layers_.empty()) return util::Status::failure("empty graph");
  if (input_indices().empty()) return util::Status::failure("graph has no Input layer");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& layer = layers_[i];
    for (const int in : layer.inputs) {
      if (in < 0 || static_cast<std::size_t>(in) >= i) {
        return util::Status::failure(util::format(
            "layer %zu (%s): input index %d not a predecessor", i,
            layer_type_name(layer.type), in));
      }
    }
    const int arity = expected_arity(layer.type);
    if (arity >= 0 && static_cast<int>(layer.inputs.size()) != arity) {
      return util::Status::failure(util::format(
          "layer %zu (%s): expected %d inputs, got %zu", i,
          layer_type_name(layer.type), arity, layer.inputs.size()));
    }
    if (arity < 0 && layer.inputs.empty()) {
      return util::Status::failure(util::format(
          "layer %zu (%s): variadic layer needs >=1 input", i,
          layer_type_name(layer.type)));
    }
  }
  return {};
}

std::vector<int> Graph::topological_order() const {
  std::vector<int> order(layers_.size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::int64_t Graph::total_parameters() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer.parameter_count();
  return total;
}

namespace {

std::int64_t conv_out_dim(std::int64_t in, int kernel, int stride, Padding pad) {
  if (pad == Padding::Same) return (in + stride - 1) / stride;
  return (in - kernel) / stride + 1;
}

}  // namespace

util::Result<std::vector<Shape>> infer_shapes(const Graph& graph) {
  return infer_shapes(graph, {});
}

util::Result<std::vector<Shape>> infer_shapes(
    const Graph& graph, const std::vector<Shape>& input_shapes) {
  using R = util::Result<std::vector<Shape>>;
  if (auto status = graph.validate(); !status.ok()) return R::failure(status.error());

  std::vector<Shape> shapes(graph.size());
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Layer& layer = graph.layer(static_cast<int>(i));
    auto in_shape = [&](std::size_t slot) -> const Shape& {
      return shapes[static_cast<std::size_t>(layer.inputs[slot])];
    };
    auto fail = [&](const std::string& why) {
      return R::failure(util::format("layer %zu (%s '%s'): %s", i,
                                     layer_type_name(layer.type),
                                     layer.name.c_str(), why.c_str()));
    };

    switch (layer.type) {
      case LayerType::Input: {
        Shape shape = layer.input_shape;
        if (next_input < input_shapes.size()) shape = input_shapes[next_input];
        ++next_input;
        if (shape.rank() == 0) return fail("input shape not set");
        shapes[i] = shape;
        break;
      }
      case LayerType::Conv2D: {
        const Shape& in = in_shape(0);
        if (in.rank() != 4) return fail("conv2d expects rank-4 NHWC input");
        if (layer.weights.empty()) return fail("conv2d missing weights");
        const Shape& w = layer.weights[0].shape();
        if (w.rank() != 4 || w[2] != in[3]) {
          return fail(util::format("weight shape %s incompatible with input %s",
                                   w.str().c_str(), in.str().c_str()));
        }
        shapes[i] = Shape{in[0],
                          conv_out_dim(in[1], layer.kernel_h, layer.stride_h, layer.padding),
                          conv_out_dim(in[2], layer.kernel_w, layer.stride_w, layer.padding),
                          w[3]};
        if (shapes[i][1] <= 0 || shapes[i][2] <= 0) return fail("kernel larger than input");
        break;
      }
      case LayerType::DepthwiseConv2D: {
        const Shape& in = in_shape(0);
        if (in.rank() != 4) return fail("dwconv expects rank-4 NHWC input");
        if (layer.weights.empty()) return fail("dwconv missing weights");
        const Shape& w = layer.weights[0].shape();
        if (w.rank() != 4 || w[2] != in[3]) return fail("dwconv weight channel mismatch");
        shapes[i] = Shape{in[0],
                          conv_out_dim(in[1], layer.kernel_h, layer.stride_h, layer.padding),
                          conv_out_dim(in[2], layer.kernel_w, layer.stride_w, layer.padding),
                          in[3]};
        if (shapes[i][1] <= 0 || shapes[i][2] <= 0) return fail("kernel larger than input");
        break;
      }
      case LayerType::Dense: {
        const Shape& in = in_shape(0);
        if (in.rank() < 2) return fail("dense expects rank >= 2");
        if (layer.weights.empty()) return fail("dense missing weights");
        const Shape& w = layer.weights[0].shape();
        if (w.rank() != 2 || w[0] != in.dims.back()) {
          return fail(util::format("dense weight %s vs input %s", w.str().c_str(),
                                   in.str().c_str()));
        }
        Shape out = in;
        out.dims.back() = w[1];
        shapes[i] = out;
        break;
      }
      case LayerType::MaxPool2D:
      case LayerType::AvgPool2D: {
        const Shape& in = in_shape(0);
        if (in.rank() != 4) return fail("pool expects rank-4 input");
        shapes[i] = Shape{in[0],
                          conv_out_dim(in[1], layer.kernel_h, layer.stride_h, layer.padding),
                          conv_out_dim(in[2], layer.kernel_w, layer.stride_w, layer.padding),
                          in[3]};
        if (shapes[i][1] <= 0 || shapes[i][2] <= 0) return fail("pool window too large");
        break;
      }
      case LayerType::GlobalAvgPool: {
        const Shape& in = in_shape(0);
        if (in.rank() != 4) return fail("global pool expects rank-4 input");
        shapes[i] = Shape{in[0], 1, 1, in[3]};
        break;
      }
      case LayerType::Relu:
      case LayerType::Relu6:
      case LayerType::Sigmoid:
      case LayerType::Tanh:
      case LayerType::Softmax:
      case LayerType::Quantize:
      case LayerType::Dequantize: {
        shapes[i] = in_shape(0);
        break;
      }
      case LayerType::BatchNorm: {
        const Shape& in = in_shape(0);
        if (layer.weights.size() < 2) return fail("batch_norm needs scale+shift");
        if (layer.weights[0].elements() != in.dims.back()) {
          return fail("batch_norm parameter size mismatch");
        }
        shapes[i] = in;
        break;
      }
      case LayerType::Add:
      case LayerType::Mul: {
        const Shape& a = in_shape(0);
        const Shape& b = in_shape(1);
        if (!(a == b)) {
          return fail(util::format("elementwise shape mismatch %s vs %s",
                                   a.str().c_str(), b.str().c_str()));
        }
        shapes[i] = a;
        break;
      }
      case LayerType::Concat: {
        const Shape& first = in_shape(0);
        const std::size_t rank = first.rank();
        const std::int64_t signed_axis =
            layer.axis >= 0 ? layer.axis
                            : static_cast<std::int64_t>(rank) + layer.axis;
        if (signed_axis < 0 || signed_axis >= static_cast<std::int64_t>(rank)) {
          return fail("concat axis out of range");
        }
        const auto ax = static_cast<std::size_t>(signed_axis);
        Shape out = first;
        for (std::size_t s = 1; s < layer.inputs.size(); ++s) {
          const Shape& other = in_shape(s);
          if (other.rank() != rank) return fail("concat rank mismatch");
          for (std::size_t d = 0; d < rank; ++d) {
            if (d == ax) continue;
            if (other[d] != first[d]) return fail("concat non-axis dim mismatch");
          }
          out[ax] += other[ax];
        }
        shapes[i] = out;
        break;
      }
      case LayerType::ResizeNearest: {
        const Shape& in = in_shape(0);
        if (in.rank() != 4) return fail("resize expects rank-4 input");
        if (layer.resize_scale < 1) return fail("resize scale must be >= 1");
        shapes[i] = Shape{in[0], in[1] * layer.resize_scale,
                          in[2] * layer.resize_scale, in[3]};
        break;
      }
      case LayerType::Slice: {
        const Shape& in = in_shape(0);
        if (layer.slice_begin.size() != in.rank() ||
            layer.slice_size.size() != in.rank()) {
          return fail("slice begin/size rank mismatch");
        }
        Shape out = in;
        for (std::size_t d = 0; d < in.rank(); ++d) {
          const std::int64_t begin = layer.slice_begin[d];
          std::int64_t size = layer.slice_size[d];
          if (size < 0) size = in[d] - begin;
          if (begin < 0 || begin + size > in[d] || size <= 0) {
            return fail("slice out of bounds");
          }
          out[d] = size;
        }
        shapes[i] = out;
        break;
      }
      case LayerType::Reshape: {
        const Shape& in = in_shape(0);
        Shape out{layer.target_shape};
        // Dim 0 is the batch: a static 1 there follows the runtime batch so
        // batched runs reshape per sample instead of folding the batch into
        // the feature dimension.
        if (out.rank() > 0 && out[0] == 1 && in.rank() > 0) out[0] = in[0];
        std::int64_t known = 1;
        int wildcard = -1;
        for (std::size_t d = 0; d < out.rank(); ++d) {
          if (out[d] == -1) {
            if (wildcard >= 0) return fail("reshape has two wildcards");
            wildcard = static_cast<int>(d);
          } else {
            known *= out[d];
          }
        }
        if (wildcard >= 0) {
          if (known == 0 || in.elements() % known != 0) return fail("reshape mismatch");
          out[static_cast<std::size_t>(wildcard)] = in.elements() / known;
        } else if (out.elements() != in.elements()) {
          return fail(util::format("reshape %s -> %s changes element count",
                                   in.str().c_str(), out.str().c_str()));
        }
        shapes[i] = out;
        break;
      }
      case LayerType::Pad: {
        const Shape& in = in_shape(0);
        if (in.rank() != 4) return fail("pad expects rank-4 input");
        shapes[i] = Shape{in[0], in[1] + layer.pad_top + layer.pad_bottom,
                          in[2] + layer.pad_left + layer.pad_right, in[3]};
        break;
      }
      case LayerType::Lstm: {
        const Shape& in = in_shape(0);
        if (in.rank() != 3) return fail("lstm expects [N,T,F] input");
        if (layer.weights.empty()) return fail("lstm missing weights");
        const std::int64_t hidden = layer.units;
        if (hidden <= 0) return fail("lstm units not set");
        if (layer.weights[0].shape()[0] != in[2] + hidden ||
            layer.weights[0].shape()[1] != 4 * hidden) {
          return fail("lstm weight shape mismatch");
        }
        shapes[i] = Shape{in[0], in[1], hidden};
        break;
      }
      case LayerType::Embedding: {
        const Shape& in = in_shape(0);
        if (in.rank() != 2) return fail("embedding expects [N,T] input");
        if (layer.weights.empty()) return fail("embedding missing table");
        shapes[i] = Shape{in[0], in[1], layer.weights[0].shape()[1]};
        break;
      }
      case LayerType::Transpose2D: {
        const Shape& in = in_shape(0);
        if (in.rank() != 2) return fail("transpose2d expects rank-2 input");
        shapes[i] = Shape{in[1], in[0]};
        break;
      }
      case LayerType::kCount:
        return fail("invalid layer type");
    }
  }
  return shapes;
}

}  // namespace gauge::nn
