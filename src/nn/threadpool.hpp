// Fixed-size thread pool with a parallel_for used by the interpreter kernels.
// Tasks, not threads (CP.4): callers express row-range work items; the pool
// owns the workers for its lifetime (CP.41: no per-call thread creation).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gauge::nn {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Runs fn(begin, end) over [0, total) split into roughly equal chunks and
  // blocks until all chunks complete. With 0 workers, runs inline.
  void parallel_for(std::int64_t total,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace gauge::nn
