// Fixed-size thread pool used as the general executor for the interpreter
// kernels and the snapshot pipeline. Tasks, not threads (CP.4): callers
// express work as submitted closures (with futures) or row-range chunks;
// the pool owns the workers for its lifetime (CP.41: no per-call thread
// creation).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gauge::nn {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Submits a single task and returns a future for its result. Exceptions
  // propagate through the future. With 0 workers, runs inline.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = packaged->get_future();
    if (workers_.empty()) {
      (*packaged)();
      return future;
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      tasks_.push(Task{[packaged] { (*packaged)(); }, nullptr});
    }
    cv_.notify_one();
    return future;
  }

  // Runs fn(begin, end) over [0, total) split into roughly equal chunks and
  // blocks until all chunks complete. The calling thread participates in
  // chunk execution. With 0 or 1 workers, runs inline.
  void parallel_for(std::int64_t total,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  // One parallel_for call: a single shared descriptor instead of a
  // std::function allocation per chunk. Workers (and the caller) claim
  // chunk indices with an atomic increment; the last finished chunk wakes
  // the caller.
  struct ChunkJob {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::int64_t total = 0;
    std::int64_t chunk = 1;
    std::int64_t chunk_count = 0;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };

  // Queue element: either a plain closure or a shared chunk descriptor.
  struct Task {
    std::function<void()> fn;      // set for submitted tasks
    std::shared_ptr<ChunkJob> job; // set for parallel_for entries
  };

  void worker_loop();
  static void run_chunks(ChunkJob& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<Task> tasks_;
  bool stop_ = false;
};

}  // namespace gauge::nn
