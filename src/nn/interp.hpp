// Reference inference interpreter: actually executes a Graph on host, NHWC
// layout, float32 activations with an int8 quantised path (Quantize /
// Dequantize sandwiches run conv/dense/pool kernels in integer arithmetic,
// like a DSP target would). Multithreading goes through ThreadPool.
//
// The interpreter exists to make inference *real* — examples run it,
// correctness tests pin kernels down, and google-benchmark microbenches
// measure it. Device latency/energy numbers come from the analytic device
// model (src/device), not from host wall-clock.
#pragma once

#include <memory>

#include "nn/graph.hpp"
#include "nn/threadpool.hpp"
#include "util/result.hpp"

namespace gauge::nn {

struct RunStats {
  std::int64_t peak_activation_bytes = 0;
  std::int64_t layers_executed = 0;
};

class Interpreter {
 public:
  // `graph` must outlive the interpreter. threads = 0 or 1 runs inline.
  explicit Interpreter(const Graph& graph, unsigned threads = 1);

  // Runs one forward pass. `inputs` are matched positionally with the
  // graph's Input layers; batch size may differ from the declared shape
  // (all other dims must match). Returns the output tensors in
  // output_indices() order.
  util::Result<std::vector<Tensor>> run(const std::vector<Tensor>& inputs);

  const RunStats& stats() const { return stats_; }
  unsigned threads() const { return pool_ ? pool_->size() : 1; }

 private:
  const Graph& graph_;
  std::unique_ptr<ThreadPool> pool_;
  RunStats stats_;
};

// Fills a tensor with deterministic pseudo-random values (for trace-based
// benchmarking with random inputs, as the paper does in §4.7).
void fill_random(Tensor& tensor, std::uint64_t seed);

// Builds positional random inputs for a graph (batch override optional).
util::Result<std::vector<Tensor>> random_inputs(const Graph& graph,
                                                std::uint64_t seed,
                                                std::int64_t batch = 0);

}  // namespace gauge::nn
