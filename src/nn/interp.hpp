// Inference interpreter: actually executes a Graph on host, NHWC layout,
// float32 activations with an int8 quantised path (Quantize / Dequantize
// sandwiches run conv/dense/pool kernels in integer arithmetic, like a DSP
// target would). Multithreading goes through ThreadPool.
//
// Compute-heavy layers dispatch into the kernel engine (nn/kernels,
// DESIGN.md §13) through a per-interpreter ExecBackend:
//
//   reference — the original scalar loops (parity oracle, the default)
//   optimised — register-tiled GEMM/conv over weight panels packed once at
//               construction, with sole-consumer Relu/Relu6 layers fused
//               into the producing kernel's store
//   quantised — optimised plus real integer arithmetic for int8 and
//               hybrid (int8-weight) layers
//
// The interpreter exists to make inference *real* — examples run it,
// correctness tests pin kernels down, and benches measure it. Device
// latency/energy numbers come from the analytic device model (src/device),
// not from host wall-clock.
#pragma once

#include <memory>

#include "nn/graph.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/threadpool.hpp"
#include "util/result.hpp"

namespace gauge::nn {

struct RunStats {
  std::int64_t peak_activation_bytes = 0;
  std::int64_t layers_executed = 0;
  // Relu/Relu6 layers folded into the producing conv/dense kernel's store
  // this run (non-reference backends only).
  std::int64_t fused_activations = 0;
};

class Interpreter {
 public:
  // `graph` must outlive the interpreter. threads = 0 or 1 runs inline.
  // Weight panels for non-reference backends are packed here, once.
  explicit Interpreter(
      const Graph& graph, unsigned threads = 1,
      kernels::ExecBackend backend = kernels::ExecBackend::Reference);

  // Runs one forward pass. `inputs` are matched positionally with the
  // graph's Input layers; batch size may differ from the declared shape
  // (all other dims must match). Returns the output tensors in
  // output_indices() order.
  util::Result<std::vector<Tensor>> run(const std::vector<Tensor>& inputs);

  const RunStats& stats() const { return stats_; }
  unsigned threads() const { return pool_ ? pool_->size() : 1; }
  kernels::ExecBackend backend() const { return backend_; }

 private:
  const Graph& graph_;
  std::unique_ptr<ThreadPool> pool_;
  kernels::ExecBackend backend_;
  RunStats stats_;
  // Index-aligned with graph_ layers (non-reference backends only):
  // pre-packed weight panels, the activation clamp fused into each
  // producing kernel, and which Relu layers collapsed into a tensor move.
  std::vector<kernels::PackedWeights> packed_;
  std::vector<kernels::Activation> fused_act_;
  std::vector<char> fused_move_;
};

// Fills a tensor with deterministic pseudo-random values (for trace-based
// benchmarking with random inputs, as the paper does in §4.7).
void fill_random(Tensor& tensor, std::uint64_t seed);

// Builds positional random inputs for a graph (batch override optional).
util::Result<std::vector<Tensor>> random_inputs(const Graph& graph,
                                                std::uint64_t seed,
                                                std::int64_t batch = 0);

}  // namespace gauge::nn
