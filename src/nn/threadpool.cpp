#include "nn/threadpool.hpp"

#include <algorithm>
#include <exception>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace gauge::nn {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(ChunkJob& job) {
  // Resolved per job, not per worker: a ScopedRegistry installed while this
  // worker slept still receives the pool's instrumentation.
  auto& metrics = telemetry::current_registry();
  auto& tasks = metrics.counter("gauge.nn.threadpool.tasks");
  auto& failures = metrics.counter("gauge.nn.threadpool.task_failures");
  for (;;) {
    const std::int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunk_count) return;
    const std::int64_t begin = c * job.chunk;
    const std::int64_t end = std::min(job.total, begin + job.chunk);
    // A throwing chunk must not take the worker down: the pool keeps
    // draining, the failure is counted, and parallel_for still completes
    // its chunk accounting (the chunk's work is simply lost).
    try {
      (*job.fn)(begin, end);
    } catch (const std::exception& e) {
      failures.increment();
      util::log_warn(std::string{"threadpool task threw: "} + e.what());
    } catch (...) {
      failures.increment();
      util::log_warn("threadpool task threw a non-exception");
    }
    tasks.increment();
    const std::int64_t finished =
        job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (finished == job.chunk_count) {
      // Lock pairs with the caller's predicate check so the final wakeup
      // cannot be lost between its check and its wait.
      const std::lock_guard<std::mutex> lock{job.mutex};
      job.cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    std::size_t queued = 0;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      queued = tasks_.size();
    }
    auto& metrics = telemetry::current_registry();
    metrics.gauge("gauge.nn.threadpool.queue_depth")
        .set(static_cast<double>(queued));
    if (task.job) {
      run_chunks(*task.job);
      continue;
    }
    // Submitted closures wrap packaged_tasks, which capture exceptions into
    // their futures; the belt-and-braces catch keeps a raw closure from
    // killing the worker all the same.
    try {
      task.fn();
    } catch (const std::exception& e) {
      metrics.counter("gauge.nn.threadpool.task_failures").increment();
      util::log_warn(std::string{"threadpool task threw: "} + e.what());
    } catch (...) {
      metrics.counter("gauge.nn.threadpool.task_failures").increment();
      util::log_warn("threadpool task threw a non-exception");
    }
    metrics.counter("gauge.nn.threadpool.tasks").increment();
  }
}

void ThreadPool::parallel_for(
    std::int64_t total,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (total <= 0) return;
  const auto workers = static_cast<std::int64_t>(workers_.size());
  if (workers <= 1 || total == 1) {
    fn(0, total);
    return;
  }
  // The caller claims chunks too, so split across workers + 1 participants.
  const std::int64_t chunks = std::min<std::int64_t>(workers + 1, total);
  const std::int64_t chunk = (total + chunks - 1) / chunks;
  auto job = std::make_shared<ChunkJob>();
  job->fn = &fn;
  job->total = total;
  job->chunk = chunk;
  job->chunk_count = (total + chunk - 1) / chunk;
  {
    // Batch-enqueue under one lock: one queue entry per worker that could
    // usefully participate, all aliasing the same descriptor.
    const std::lock_guard<std::mutex> lock{mutex_};
    const std::int64_t entries = std::min(workers, job->chunk_count);
    for (std::int64_t i = 0; i < entries; ++i) {
      tasks_.push(Task{{}, job});
    }
  }
  cv_.notify_all();
  run_chunks(*job);
  std::unique_lock<std::mutex> lock{job->mutex};
  job->cv.wait(lock, [&job] {
    return job->done.load(std::memory_order_acquire) == job->chunk_count;
  });
}

}  // namespace gauge::nn
