#include "nn/threadpool.hpp"

#include <algorithm>
#include <exception>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace gauge::nn {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t queued = 0;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      queued = tasks_.size();
    }
    // Resolved after dequeue, not per worker: a ScopedRegistry installed
    // while this worker slept still receives the pool's instrumentation.
    auto& metrics = telemetry::current_registry();
    metrics.gauge("gauge.nn.threadpool.queue_depth")
        .set(static_cast<double>(queued));
    // A throwing task must not take the worker down: the pool keeps
    // draining, the failure is counted, and parallel_for still completes
    // its in-flight accounting (the chunk's work is simply lost).
    try {
      task();
    } catch (const std::exception& e) {
      metrics.counter("gauge.nn.threadpool.task_failures").increment();
      util::log_warn(std::string{"threadpool task threw: "} + e.what());
    } catch (...) {
      metrics.counter("gauge.nn.threadpool.task_failures").increment();
      util::log_warn("threadpool task threw a non-exception");
    }
    metrics.counter("gauge.nn.threadpool.tasks").increment();
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      --in_flight_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::int64_t total,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (total <= 0) return;
  const auto workers = static_cast<std::int64_t>(workers_.size());
  if (workers <= 1 || total == 1) {
    fn(0, total);
    return;
  }
  const std::int64_t chunks = std::min<std::int64_t>(workers, total);
  const std::int64_t chunk = (total + chunks - 1) / chunks;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t begin = c * chunk;
      const std::int64_t end = std::min(total, begin + chunk);
      if (begin >= end) break;
      ++in_flight_;
      tasks_.push([fn, begin, end] { fn(begin, end); });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock{mutex_};
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace gauge::nn
