#include "nn/zoo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace gauge::nn {

namespace {

// Kaiming-ish initialisation keeps activations in a sane range so the
// interpreter produces finite outputs on all zoo models.
Tensor random_tensor(Shape shape, util::Rng& rng, double fan_in) {
  Tensor t{shape, DType::F32};
  const double stdev = std::sqrt(2.0 / std::max(fan_in, 1.0));
  for (auto& v : t.f32()) v = static_cast<float>(rng.normal(0.0, stdev));
  return t;
}

int scaled(int channels, double width) {
  return std::max(2, static_cast<int>(std::lround(channels * width)));
}

// Builder helper collecting the pattern "conv + bn-ish bias + activation".
class NetBuilder {
 public:
  NetBuilder(Graph& graph, util::Rng& rng) : graph_{graph}, rng_{rng} {}

  int input(Shape shape, const std::string& name = "input") {
    Layer layer;
    layer.type = LayerType::Input;
    layer.name = name;
    layer.input_shape = std::move(shape);
    last_ = graph_.add(std::move(layer));
    channels_ = static_cast<int>(graph_.layer(last_).input_shape.dims.back());
    return last_;
  }

  int conv(int out_ch, int kernel, int stride, bool relu6 = true,
           Padding padding = Padding::Same) {
    Layer layer;
    layer.type = LayerType::Conv2D;
    layer.name = next_name("conv");
    layer.inputs = {last_};
    layer.kernel_h = layer.kernel_w = kernel;
    layer.stride_h = layer.stride_w = stride;
    layer.padding = padding;
    layer.units = out_ch;
    layer.weights.push_back(random_tensor(
        Shape{kernel, kernel, channels_, out_ch}, rng_,
        static_cast<double>(kernel) * kernel * channels_));
    layer.weights.push_back(random_tensor(Shape{out_ch}, rng_, out_ch));
    last_ = graph_.add(std::move(layer));
    channels_ = out_ch;
    if (relu6) activation(LayerType::Relu6);
    return last_;
  }

  int dwconv(int kernel, int stride, bool relu6 = true) {
    Layer layer;
    layer.type = LayerType::DepthwiseConv2D;
    layer.name = next_name("dwconv");
    layer.inputs = {last_};
    layer.kernel_h = layer.kernel_w = kernel;
    layer.stride_h = layer.stride_w = stride;
    layer.weights.push_back(
        random_tensor(Shape{kernel, kernel, channels_, 1}, rng_,
                      static_cast<double>(kernel) * kernel));
    layer.weights.push_back(random_tensor(Shape{channels_}, rng_, channels_));
    last_ = graph_.add(std::move(layer));
    if (relu6) activation(LayerType::Relu6);
    return last_;
  }

  int dense(int units, bool relu = false) {
    // Flatten first if the activation is rank > 2.
    Layer layer;
    layer.type = LayerType::Dense;
    layer.name = next_name("dense");
    layer.inputs = {last_};
    layer.units = units;
    const int in_dim = channels_;
    layer.weights.push_back(
        random_tensor(Shape{in_dim, units}, rng_, in_dim));
    layer.weights.push_back(random_tensor(Shape{units}, rng_, units));
    last_ = graph_.add(std::move(layer));
    channels_ = units;
    if (relu) activation(LayerType::Relu);
    return last_;
  }

  int activation(LayerType type) {
    Layer layer;
    layer.type = type;
    layer.name = next_name("act");
    layer.inputs = {last_};
    last_ = graph_.add(std::move(layer));
    return last_;
  }

  int maxpool(int kernel, int stride) {
    Layer layer;
    layer.type = LayerType::MaxPool2D;
    layer.name = next_name("pool");
    layer.inputs = {last_};
    layer.kernel_h = layer.kernel_w = kernel;
    layer.stride_h = layer.stride_w = stride;
    last_ = graph_.add(std::move(layer));
    return last_;
  }

  int global_pool() {
    Layer layer;
    layer.type = LayerType::GlobalAvgPool;
    layer.name = next_name("gap");
    layer.inputs = {last_};
    last_ = graph_.add(std::move(layer));
    return last_;
  }

  int reshape(std::vector<std::int64_t> target) {
    Layer layer;
    layer.type = LayerType::Reshape;
    layer.name = next_name("reshape");
    layer.inputs = {last_};
    layer.target_shape = std::move(target);
    last_ = graph_.add(std::move(layer));
    return last_;
  }

  int softmax() {
    Layer layer;
    layer.type = LayerType::Softmax;
    layer.name = next_name("softmax");
    layer.inputs = {last_};
    last_ = graph_.add(std::move(layer));
    return last_;
  }

  int resize(int scale) {
    Layer layer;
    layer.type = LayerType::ResizeNearest;
    layer.name = next_name("resize");
    layer.inputs = {last_};
    layer.resize_scale = scale;
    last_ = graph_.add(std::move(layer));
    return last_;
  }

  int add_with(int other) {
    Layer layer;
    layer.type = LayerType::Add;
    layer.name = next_name("add");
    layer.inputs = {last_, other};
    last_ = graph_.add(std::move(layer));
    return last_;
  }

  // `other_channels` must be the size of `other` along the concat axis when
  // downstream layers consume the result channel-wise.
  int concat_with(int other, int axis, int other_channels = 0) {
    Layer layer;
    layer.type = LayerType::Concat;
    layer.name = next_name("concat");
    layer.inputs = {last_, other};
    layer.axis = axis;
    last_ = graph_.add(std::move(layer));
    channels_ += other_channels;
    return last_;
  }

  int lstm(int hidden) {
    Layer layer;
    layer.type = LayerType::Lstm;
    layer.name = next_name("lstm");
    layer.inputs = {last_};
    layer.units = hidden;
    const int in_dim = channels_;
    layer.weights.push_back(random_tensor(
        Shape{in_dim + hidden, 4 * hidden}, rng_, in_dim + hidden));
    layer.weights.push_back(random_tensor(Shape{4 * hidden}, rng_, hidden));
    last_ = graph_.add(std::move(layer));
    channels_ = hidden;
    return last_;
  }

  int embedding(int vocab, int dim) {
    Layer layer;
    layer.type = LayerType::Embedding;
    layer.name = next_name("embed");
    layer.inputs = {last_};
    layer.units = dim;
    layer.weights.push_back(random_tensor(Shape{vocab, dim}, rng_, dim));
    last_ = graph_.add(std::move(layer));
    channels_ = dim;
    return last_;
  }

  int last() const { return last_; }
  int channels() const { return channels_; }
  void set_last(int idx, int channels) {
    last_ = idx;
    channels_ = channels;
  }

 private:
  std::string next_name(const std::string& prefix) {
    return prefix + "_" + std::to_string(counter_++);
  }

  Graph& graph_;
  util::Rng& rng_;
  int last_ = -1;
  int channels_ = 0;
  int counter_ = 0;
};

Graph build_mobilenet(const ZooSpec& spec, util::Rng& rng) {
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 3});
  b.conv(scaled(8, spec.width), 3, 2);
  const int blocks[][2] = {{16, 1}, {32, 2}, {32, 1}, {64, 2}, {64, 1}, {128, 2}};
  for (const auto& blk : blocks) {
    b.dwconv(3, blk[1]);
    b.conv(scaled(blk[0], spec.width), 1, 1);
  }
  b.global_pool();
  b.reshape({1, -1});
  b.dense(std::max(10, scaled(100, spec.width)));
  b.softmax();
  return g;
}

Graph build_fssd(const ZooSpec& spec, util::Rng& rng) {
  // MobileNet-style backbone with two detection heads concatenated
  // (class scores + box regressions), like FSSD.
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 3});
  b.conv(scaled(8, spec.width), 3, 2);
  b.dwconv(3, 1);
  b.conv(scaled(16, spec.width), 1, 1);
  b.dwconv(3, 2);
  b.conv(scaled(32, spec.width), 1, 1);
  const int feat1 = b.last();
  const int feat1_ch = b.channels();
  b.dwconv(3, 2);
  b.conv(scaled(64, spec.width), 1, 1);
  const int feat2 = b.last();
  const int feat2_ch = b.channels();

  // Head on feat2 (deep features).
  b.set_last(feat2, feat2_ch);
  b.conv(scaled(24, spec.width), 3, 1, /*relu6=*/false);
  b.reshape({1, -1});
  const int head2 = b.last();
  const int head2_ch = b.channels();

  // Head on feat1 (shallow features).
  b.set_last(feat1, feat1_ch);
  b.conv(scaled(24, spec.width), 3, 1, /*relu6=*/false);
  b.reshape({1, -1});
  (void)head2_ch;
  b.concat_with(head2, /*axis=*/1);
  return g;
}

Graph build_blazeface(const ZooSpec& spec, util::Rng& rng) {
  // Shallow, stride-heavy detector with residual adds (BlazeFace-like).
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 3});
  b.conv(scaled(12, spec.width), 5, 2);
  const int c = b.channels();
  const int skip = b.last();
  b.dwconv(3, 1);
  b.conv(c, 1, 1, /*relu6=*/false);
  b.add_with(skip);
  b.activation(LayerType::Relu);
  b.dwconv(3, 2);
  b.conv(scaled(24, spec.width), 1, 1);
  b.conv(scaled(12, spec.width), 3, 1, /*relu6=*/false);
  b.reshape({1, -1});
  return g;
}

Graph build_unet(const ZooSpec& spec, util::Rng& rng) {
  // Encoder-decoder with skip concat (segmentation).
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 3});
  b.conv(scaled(8, spec.width), 3, 1);
  const int enc1 = b.last();
  const int enc1_ch = b.channels();
  b.maxpool(2, 2);
  b.conv(scaled(16, spec.width), 3, 1);
  const int enc2 = b.last();
  const int enc2_ch = b.channels();
  b.maxpool(2, 2);
  b.conv(scaled(32, spec.width), 3, 1);
  b.resize(2);
  b.concat_with(enc2, /*axis=*/3, enc2_ch);
  b.conv(scaled(16, spec.width), 3, 1);
  b.resize(2);
  b.concat_with(enc1, /*axis=*/3, enc1_ch);
  b.conv(scaled(8, spec.width), 3, 1);
  b.conv(2, 1, 1, /*relu6=*/false);  // background/foreground mask
  b.activation(LayerType::Sigmoid);
  return g;
}

Graph build_contournet(const ZooSpec& spec, util::Rng& rng) {
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 1});
  b.conv(scaled(8, spec.width), 3, 2);
  b.conv(scaled(16, spec.width), 3, 2);
  b.conv(scaled(16, spec.width), 3, 1);
  b.conv(4, 1, 1, /*relu6=*/false);  // contour heatmaps
  b.activation(LayerType::Sigmoid);
  return g;
}

Graph build_ocrnet(const ZooSpec& spec, util::Rng& rng) {
  // Conv feature extractor + LSTM decoder over width (CRNN-style OCR).
  Graph g;
  NetBuilder b{g, rng};
  const int height = 16;
  b.input(Shape{1, height, spec.resolution, 1});
  b.conv(scaled(8, spec.width), 3, 1);
  b.maxpool(2, 2);
  b.conv(scaled(16, spec.width), 3, 1);
  b.maxpool(2, 2);
  // [1, H/4, W/4, C] -> sequence [1, W/4, H/4*C]
  const int seq_feat = (height / 4) * b.channels();
  b.reshape({1, spec.resolution / 4, seq_feat});
  b.set_last(b.last(), seq_feat);
  b.lstm(scaled(24, spec.width));
  b.dense(40);  // character classes
  b.softmax();
  return g;
}

Graph build_posenet(const ZooSpec& spec, util::Rng& rng) {
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 3});
  b.conv(scaled(8, spec.width), 3, 2);
  b.dwconv(3, 1);
  b.conv(scaled(16, spec.width), 1, 1);
  b.dwconv(3, 2);
  b.conv(scaled(32, spec.width), 1, 1);
  b.conv(17, 1, 1, /*relu6=*/false);  // 17 keypoint heatmaps
  b.activation(LayerType::Sigmoid);
  return g;
}

Graph build_stylenet(const ZooSpec& spec, util::Rng& rng) {
  // Photo beauty / filter network: conv -> residual -> upsample.
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 3});
  b.conv(scaled(8, spec.width), 3, 2);
  const int c = b.channels();
  const int skip = b.last();
  b.conv(c, 3, 1, /*relu6=*/false);
  b.add_with(skip);
  b.activation(LayerType::Relu);
  b.resize(2);
  b.conv(3, 3, 1, /*relu6=*/false);
  b.activation(LayerType::Sigmoid);
  return g;
}

Graph build_vggnet(const ZooSpec& spec, util::Rng& rng) {
  // Plain conv/pool stack (no depthwise, no resize): the shape of the
  // caffe-era classifiers still shipping in the wild.
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, spec.resolution, 3});
  b.conv(scaled(8, spec.width), 3, 1, /*relu6=*/false);
  b.activation(LayerType::Relu);
  b.maxpool(2, 2);
  b.conv(scaled(16, spec.width), 3, 1, /*relu6=*/false);
  b.activation(LayerType::Relu);
  b.maxpool(2, 2);
  b.conv(scaled(24, spec.width), 3, 1, /*relu6=*/false);
  b.activation(LayerType::Relu);
  b.global_pool();
  b.reshape({1, -1});
  b.dense(std::max(10, scaled(50, spec.width)));
  b.softmax();
  return g;
}

Graph build_wordrnn(const ZooSpec& spec, util::Rng& rng) {
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution});  // token ids
  b.embedding(scaled(500, spec.width), scaled(16, spec.width));
  b.lstm(scaled(32, spec.width));
  // Take the final hidden state: slice last timestep.
  Layer slice;
  slice.type = LayerType::Slice;
  slice.name = "last_step";
  slice.inputs = {b.last()};
  slice.slice_begin = {0, spec.resolution - 1, 0};
  slice.slice_size = {1, 1, -1};
  const int sliced = g.add(std::move(slice));
  b.set_last(sliced, b.channels());
  b.reshape({1, -1});
  b.dense(scaled(500, spec.width));  // vocabulary logits
  b.softmax();
  return g;
}

Graph build_textcnn(const ZooSpec& spec, util::Rng& rng) {
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution});
  b.embedding(scaled(300, spec.width), scaled(16, spec.width));
  // Treat as [1, T, 1, E] image for 1D conv via reshape.
  b.reshape({1, spec.resolution, 1, scaled(16, spec.width)});
  b.set_last(b.last(), scaled(16, spec.width));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.name = "conv1d";
  conv.inputs = {b.last()};
  conv.kernel_h = 3;
  conv.kernel_w = 1;
  conv.stride_h = conv.stride_w = 1;
  conv.units = scaled(24, spec.width);
  conv.weights.push_back(random_tensor(
      Shape{3, 1, scaled(16, spec.width), scaled(24, spec.width)}, rng,
      3.0 * scaled(16, spec.width)));
  conv.weights.push_back(
      random_tensor(Shape{scaled(24, spec.width)}, rng, 24));
  const int conv_idx = g.add(std::move(conv));
  b.set_last(conv_idx, scaled(24, spec.width));
  b.activation(LayerType::Relu);
  b.global_pool();
  b.reshape({1, -1});
  b.dense(2);  // binary sentiment / filter decision
  b.softmax();
  return g;
}

Graph build_audiocnn(const ZooSpec& spec, util::Rng& rng) {
  // Spectrogram classifier (sound recognition).
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, 32, 1});  // time x mel bins
  b.conv(scaled(8, spec.width), 3, 2);
  b.conv(scaled(16, spec.width), 3, 2);
  b.conv(scaled(32, spec.width), 3, 2);
  b.global_pool();
  b.reshape({1, -1});
  b.dense(scaled(32, spec.width), /*relu=*/true);
  b.dense(20);  // sound classes
  b.softmax();
  return g;
}

Graph build_speechrnn(const ZooSpec& spec, util::Rng& rng) {
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution, 40});  // frames x MFCC features
  b.lstm(scaled(48, spec.width));
  b.dense(29);  // characters
  b.softmax();
  return g;
}

Graph build_sensormlp(const ZooSpec& spec, util::Rng& rng) {
  Graph g;
  NetBuilder b{g, rng};
  b.input(Shape{1, spec.resolution * 6});  // accel+gyro window, flattened
  b.dense(scaled(32, spec.width), /*relu=*/true);
  b.dense(scaled(16, spec.width), /*relu=*/true);
  b.dense(5);  // activity classes
  b.softmax();
  return g;
}

}  // namespace

const std::vector<std::string>& zoo_archetypes() {
  static const std::vector<std::string> kArchetypes = {
      "mobilenet", "fssd",      "blazeface", "unet",      "contournet",
      "ocrnet",    "posenet",   "stylenet",  "vggnet",    "wordrnn",
      "textcnn",   "audiocnn",  "speechrnn", "sensormlp"};
  return kArchetypes;
}

Modality archetype_modality(const std::string& archetype) {
  if (archetype == "wordrnn" || archetype == "textcnn") return Modality::Text;
  if (archetype == "audiocnn" || archetype == "speechrnn") return Modality::Audio;
  if (archetype == "sensormlp") return Modality::Sensor;
  return Modality::Image;
}

Graph build_model(const ZooSpec& spec) {
  util::Rng rng{spec.seed};
  Graph g;
  if (spec.archetype == "mobilenet") g = build_mobilenet(spec, rng);
  else if (spec.archetype == "fssd") g = build_fssd(spec, rng);
  else if (spec.archetype == "blazeface") g = build_blazeface(spec, rng);
  else if (spec.archetype == "unet") g = build_unet(spec, rng);
  else if (spec.archetype == "contournet") g = build_contournet(spec, rng);
  else if (spec.archetype == "ocrnet") g = build_ocrnet(spec, rng);
  else if (spec.archetype == "posenet") g = build_posenet(spec, rng);
  else if (spec.archetype == "stylenet") g = build_stylenet(spec, rng);
  else if (spec.archetype == "vggnet") g = build_vggnet(spec, rng);
  else if (spec.archetype == "wordrnn") g = build_wordrnn(spec, rng);
  else if (spec.archetype == "textcnn") g = build_textcnn(spec, rng);
  else if (spec.archetype == "audiocnn") g = build_audiocnn(spec, rng);
  else if (spec.archetype == "speechrnn") g = build_speechrnn(spec, rng);
  else if (spec.archetype == "sensormlp") g = build_sensormlp(spec, rng);
  else assert(false && "unknown archetype");

  g.name = spec.name.empty() ? spec.archetype : spec.name;

  // Trained networks carry a small share of exactly-zero weights (dead
  // units, padded filters); the paper measures 3.15% near-zero overall
  // (§6.1). Each model gets a deterministic 0-6% zero share.
  {
    util::Rng zrng{spec.seed ^ 0x5eed5eedULL};
    const double zero_frac = zrng.uniform(0.015, 0.05);
    for (auto& layer : g.layers()) {
      for (auto& w : layer.weights) {
        if (w.dtype() != DType::F32 || w.shape().rank() <= 1) continue;
        for (auto& v : w.f32()) {
          if (zrng.bernoulli(zero_frac)) v = 0.0f;
        }
      }
    }
  }

  if (spec.int8_weights) quantize_weights(g);
  // Note: int8_activations wrapping is applied by the backend layer when
  // simulating DSP deployment; the flag is recorded on the layers here.
  if (spec.int8_activations) {
    for (auto& layer : g.layers()) layer.act_bits = 8;
  }
  return g;
}

Graph make_finetuned(const Graph& base, int retrained_layers,
                     std::uint64_t seed) {
  Graph out = base;
  util::Rng rng{seed};
  int remaining = retrained_layers;
  for (std::size_t i = out.size(); i-- > 0 && remaining > 0;) {
    Layer& layer = out.layer(static_cast<int>(i));
    if (!layer.has_weights()) continue;
    for (auto& w : layer.weights) {
      if (w.dtype() == DType::F32) {
        const double fan = std::sqrt(static_cast<double>(w.elements()));
        for (auto& v : w.f32()) {
          v = static_cast<float>(rng.normal(0.0, 1.0 / std::max(fan, 1.0)));
        }
      } else if (w.dtype() == DType::I8) {
        for (auto& v : w.i8()) {
          v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
        }
      }
    }
    --remaining;
  }
  return out;
}

void quantize_weights(Graph& graph) {
  for (auto& layer : graph.layers()) {
    if (!layer.has_weights()) continue;
    for (auto& w : layer.weights) {
      if (w.dtype() != DType::F32) continue;
      // Keep biases in float (standard practice).
      if (w.shape().rank() <= 1) continue;
      float max_abs = 0.0f;
      for (float v : w.f32()) max_abs = std::max(max_abs, std::abs(v));
      const float scale = max_abs > 0 ? max_abs / 127.0f : 1.0f;
      Tensor q{w.shape(), DType::I8};
      q.quant_scale = scale;
      q.quant_zero_point = 0;
      for (std::size_t k = 0; k < w.f32().size(); ++k) {
        const float v = std::round(w.f32()[k] / scale);
        q.i8()[k] = static_cast<std::int8_t>(std::clamp(v, -127.0f, 127.0f));
      }
      w = std::move(q);
    }
    layer.weight_bits = 8;
  }
}

Graph with_quantized_stem(const Graph& base) {
  // Locate the first Conv2D.
  int conv_idx = -1;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base.layer(static_cast<int>(i)).type == LayerType::Conv2D) {
      conv_idx = static_cast<int>(i);
      break;
    }
  }
  if (conv_idx < 0) return base;

  Graph out;
  out.name = base.name;
  // Index map old -> new (two layers get inserted).
  std::vector<int> remap(base.size(), -1);
  for (std::size_t i = 0; i < base.size(); ++i) {
    const Layer& src = base.layer(static_cast<int>(i));
    if (static_cast<int>(i) == conv_idx) {
      // Quantize the conv's input.
      Layer q;
      q.type = LayerType::Quantize;
      q.name = src.name + "_quant_in";
      q.inputs = {remap[static_cast<std::size_t>(src.inputs[0])]};
      q.quant_scale = 0.05f;  // inputs are ~N(0,1)
      q.quant_zero_point = 0;
      const int qi = out.add(std::move(q));

      Layer conv = src;
      conv.inputs = {qi};
      conv.act_bits = 8;
      conv.quant_scale = 0.2f;  // conv output range under unit inputs
      conv.quant_zero_point = 0;
      // Conv in int8 needs int8 weights.
      for (auto& w : conv.weights) {
        if (w.dtype() != DType::F32 || w.shape().rank() <= 1) continue;
        float max_abs = 0.0f;
        for (float v : w.f32()) max_abs = std::max(max_abs, std::abs(v));
        const float scale = max_abs > 0 ? max_abs / 127.0f : 1.0f;
        Tensor q8{w.shape(), DType::I8};
        q8.quant_scale = scale;
        for (std::size_t k = 0; k < w.f32().size(); ++k) {
          q8.i8()[k] = static_cast<std::int8_t>(
              std::clamp(std::round(w.f32()[k] / scale), -127.0f, 127.0f));
        }
        w = std::move(q8);
      }
      conv.weight_bits = 8;
      const int ci = out.add(std::move(conv));

      Layer dq;
      dq.type = LayerType::Dequantize;
      dq.name = src.name + "_dequant_out";
      dq.inputs = {ci};
      remap[i] = out.add(std::move(dq));
    } else {
      Layer copy = src;
      for (auto& in : copy.inputs) in = remap[static_cast<std::size_t>(in)];
      remap[i] = out.add(std::move(copy));
    }
  }
  return out;
}

double near_zero_weight_fraction(const Graph& graph, double threshold) {
  std::int64_t total = 0;
  std::int64_t near_zero = 0;
  for (const auto& layer : graph.layers()) {
    for (const auto& w : layer.weights) {
      if (w.dtype() == DType::F32) {
        for (float v : w.f32()) {
          ++total;
          if (std::abs(static_cast<double>(v)) <= threshold) ++near_zero;
        }
      } else if (w.dtype() == DType::I8) {
        for (std::int8_t v : w.i8()) {
          ++total;
          if (v == 0) ++near_zero;
        }
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(near_zero) / static_cast<double>(total);
}

}  // namespace gauge::nn
