// Model and per-layer weight checksums, mirroring the paper's §4.5
// methodology: md5 over graph + weights identifies duplicate (off-the-shelf)
// models; per-layer weight digests expose fine-tuning (models sharing a
// prefix of identical layers).
#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace gauge::nn {

// Digest of the full model: architecture (types/attrs/topology) + weights.
std::string model_checksum(const Graph& graph);

// Digest of the architecture only (no weights): two fine-tuned variants of
// the same backbone share this.
std::string architecture_checksum(const Graph& graph);

// One digest per weighted layer (layers without weights are skipped),
// in topological order.
std::vector<std::string> layer_weight_checksums(const Graph& graph);

// Fraction of `a`'s weighted layers whose digest also appears in `b`
// (order-insensitive multiset intersection over a's layers).
double shared_layer_fraction(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

// Number of weighted layers that differ between two equal-architecture
// models (compared positionally). Returns -1 when layer counts differ.
int differing_layer_count(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

}  // namespace gauge::nn
