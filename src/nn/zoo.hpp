// Model zoo: generators for the population of architectures the paper
// encountered in the wild (Table 3 tasks). Each builder produces a real
// Graph with deterministic random weights; parameters are scaled-down
// relatives of the production models so the whole corpus fits in memory
// while preserving the relative FLOPs/params spread (4 orders of magnitude,
// Fig. 7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace gauge::nn {

struct ZooSpec {
  // Architecture family; see kArchetypes below.
  std::string archetype = "mobilenet";
  // Width multiplier (channels scale roughly linearly).
  double width = 1.0;
  // Input resolution (vision) / sequence length (text, audio frames).
  int resolution = 64;
  // Quantise weights to int8 (hybrid quantisation, weight_bits = 8).
  bool int8_weights = false;
  // Wrap the body in Quantize/Dequantize so activations run in int8 too.
  bool int8_activations = false;
  // Seed controlling all weight values.
  std::uint64_t seed = 1;
  // Optional model name (e.g. the filename it ships under).
  std::string name;
};

// Archetype identifiers accepted by build_model.
// vision: mobilenet, fssd, blazeface, unet, contournet, ocrnet, posenet,
//         stylenet
// text:   wordrnn, textcnn
// audio:  audiocnn, speechrnn
// sensor: sensormlp
const std::vector<std::string>& zoo_archetypes();

// Modality of an archetype.
Modality archetype_modality(const std::string& archetype);

// Builds the model; asserts on unknown archetype.
Graph build_model(const ZooSpec& spec);

// Returns a fine-tuned variant: same architecture, the last
// `retrained_layers` weighted layers get fresh random weights (transfer
// learning, §4.5). retrained_layers is clamped to the model's layer count.
Graph make_finetuned(const Graph& base, int retrained_layers,
                     std::uint64_t seed);

// In-place hybrid quantisation: converts all layer weights to int8 with
// per-tensor scales and marks weight_bits = 8.
void quantize_weights(Graph& graph);

// Partial activation quantisation: quantises all weights, then wraps the
// first Conv2D in a Quantize -> conv(int8) -> Dequantize sandwich (the
// partially-quantised deployment pattern behind the paper's "10.3% of
// models use the dequantize layer" finding). No-op if there is no Conv2D.
Graph with_quantized_stem(const Graph& base);

// Fraction of weights with |w| <= threshold across the model (the §6.1
// near-zero sparsity census).
double near_zero_weight_fraction(const Graph& graph, double threshold = 1e-9);

}  // namespace gauge::nn
