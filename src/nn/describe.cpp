#include "nn/describe.hpp"

#include "nn/trace.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace gauge::nn {

std::string describe(const Graph& graph) {
  auto trace = trace_model(graph);
  if (!trace.ok()) return {};

  util::Table table{{"#", "layer", "type", "output", "params", "MFLOPs",
                     "bits (w/a)"}};
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Layer& layer = graph.layer(static_cast<int>(i));
    const LayerCost& cost = trace.value().layers[i];
    table.add_row({std::to_string(i),
                   layer.name.empty() ? "-" : layer.name,
                   layer_type_name(layer.type), cost.output_shape.str(),
                   std::to_string(cost.params),
                   util::Table::num(static_cast<double>(cost.flops) / 1e6, 3),
                   util::format("%d/%d", layer.weight_bits, layer.act_bits)});
  }

  std::string out = util::format(
      "model '%s': %zu layers, %s params, %s FLOPs, peak activations %s\n",
      graph.name.c_str(), graph.size(),
      util::human_count(static_cast<double>(trace.value().total_params)).c_str(),
      util::human_count(static_cast<double>(trace.value().total_flops)).c_str(),
      util::human_bytes(static_cast<std::uint64_t>(
                            trace.value().peak_activation_bytes))
          .c_str());
  out += table.render();
  return out;
}

}  // namespace gauge::nn
