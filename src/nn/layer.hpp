// Layer definitions for the graph IR. Each Layer is a node in the model DAG;
// `inputs` hold indices of producer layers within the owning Graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace gauge::nn {

enum class LayerType : std::uint8_t {
  Input = 0,
  Conv2D,
  DepthwiseConv2D,
  Dense,
  MaxPool2D,
  AvgPool2D,
  GlobalAvgPool,
  Relu,
  Relu6,
  Sigmoid,
  Tanh,
  Softmax,
  Add,
  Mul,
  Concat,
  ResizeNearest,
  Slice,
  Reshape,
  Pad,
  BatchNorm,
  Quantize,
  Dequantize,
  Lstm,
  Embedding,
  Transpose2D,
  kCount,
};

const char* layer_type_name(LayerType type);

// Coarse operation family used by the layer-composition analysis (Fig. 6).
enum class OpFamily {
  Conv,
  DepthConv,
  Dense,
  Pool,
  Activation,
  Recurrent,
  Embedding,
  Quant,
  Resize,
  Slice,
  Math,   // add/mul/batchnorm/softmax
  Shape,  // reshape/pad/transpose/concat
  Input,
};

OpFamily op_family(LayerType type);
const char* op_family_name(OpFamily family);

enum class Padding : std::uint8_t { Same = 0, Valid = 1 };

struct Layer {
  LayerType type = LayerType::Input;
  std::string name;
  std::vector<int> inputs;  // producer layer indices

  // --- attributes (interpreted per type; unused fields stay default) ---
  int kernel_h = 1, kernel_w = 1;
  int stride_h = 1, stride_w = 1;
  Padding padding = Padding::Same;
  // Conv2D/Dense/Embedding output channels / units / embedding dim.
  int units = 0;
  // Concat/Softmax axis (negative = from the back).
  int axis = -1;
  // ResizeNearest integer scale factor.
  int resize_scale = 2;
  // Slice parameters (per-dim begin/size; size -1 = to end).
  std::vector<std::int64_t> slice_begin;
  std::vector<std::int64_t> slice_size;
  // Reshape target (one dim may be -1).
  std::vector<std::int64_t> target_shape;
  // Pad amounts per spatial side (rank-4 H/W only).
  int pad_top = 0, pad_bottom = 0, pad_left = 0, pad_right = 0;
  // Input layer shape.
  Shape input_shape;
  // Quantize target scale/zero-point.
  float quant_scale = 1.0f;
  std::int32_t quant_zero_point = 0;

  // --- weights ---
  // Conv2D:           weights[0] = [Kh,Kw,Cin,Cout], weights[1] = bias [Cout]
  // DepthwiseConv2D:  weights[0] = [Kh,Kw,C,1],       weights[1] = bias [C]
  // Dense:            weights[0] = [In,Out],          weights[1] = bias [Out]
  // BatchNorm:        weights[0] = scale [C], weights[1] = shift [C]
  // Lstm:             weights[0] = [In+Hidden, 4*Hidden], weights[1] = bias [4*Hidden]
  // Embedding:        weights[0] = [Vocab, Dim]
  std::vector<Tensor> weights;

  // Declared precision of weights/activations (32 = float, 8 = int8).
  int weight_bits = 32;
  int act_bits = 32;

  bool has_weights() const { return !weights.empty(); }
  std::int64_t parameter_count() const {
    std::int64_t total = 0;
    for (const auto& w : weights) total += w.elements();
    return total;
  }
};

}  // namespace gauge::nn
