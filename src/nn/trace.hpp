// Trace-based model cost analysis (paper §4.7): walks the graph with inferred
// shapes and accounts MACs/FLOPs, parameters and memory traffic per layer.
// FLOPs are estimated as 2x MACs for MAC-dominated layers, matching the
// paper's "FLOPs as a function of cumulative MAC operations" convention.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "util/result.hpp"

namespace gauge::nn {

struct LayerCost {
  LayerType type = LayerType::Input;
  std::string name;
  std::int64_t macs = 0;
  std::int64_t flops = 0;
  std::int64_t params = 0;
  // Memory traffic for the roofline device model: activation reads + weight
  // reads and activation writes, in bytes (at the layer's declared precision).
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  Shape output_shape;
};

struct ModelTrace {
  std::vector<LayerCost> layers;
  std::int64_t total_macs = 0;
  std::int64_t total_flops = 0;
  std::int64_t total_params = 0;
  std::int64_t total_bytes = 0;  // read + written
  // Peak concurrent activation footprint in bytes (simple liveness over the
  // topological schedule).
  std::int64_t peak_activation_bytes = 0;

  // Layer-type histogram for the Fig. 6 composition analysis.
  std::map<std::string, std::int64_t> op_family_counts() const;
};

util::Result<ModelTrace> trace_model(const Graph& graph);

}  // namespace gauge::nn
