// The `reference` execution backend: the interpreter's original scalar
// loops, moved here verbatim. These stay deliberately naive — they are the
// oracle the optimised and quantised kernels are parity-checked against,
// and the baseline bench_kernels measures speedups from.
#include <algorithm>
#include <cmath>

#include "nn/kernels/impl.hpp"

namespace gauge::nn::kernels::detail {

namespace {

std::int8_t requantize(float value, std::int32_t zp) {
  const float q = std::round(value) + static_cast<float>(zp);
  return static_cast<std::int8_t>(std::clamp(q, -128.0f, 127.0f));
}

}  // namespace

util::Status conv2d_reference(const ConvShape& s, const Layer& layer,
                              const Tensor& x, Tensor* out,
                              const ParallelFor& parallel) {
  const Tensor& w = layer.weights[0];
  const Tensor* bias = layer.weights.size() > 1 ? &layer.weights[1] : nullptr;
  const std::int64_t kh = s.kh, kw = s.kw, cin = s.cin, cout = s.cout;
  const std::int64_t oh = s.out_h, ow = s.out_w;
  if (x.dtype() == DType::F32) {
    parallel(s.batch * oh, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t noy = begin; noy < end; ++noy) {
        const std::int64_t n = noy / oh;
        const std::int64_t oy = noy % oh;
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          for (std::int64_t oc = 0; oc < cout; ++oc) {
            float acc = bias && bias->dtype() == DType::F32
                            ? bias->f32()[static_cast<std::size_t>(oc)]
                            : 0.0f;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * s.sh + ky - s.pad_top;
              if (iy < 0 || iy >= s.in_h) continue;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * s.sw + kx - s.pad_left;
                if (ix < 0 || ix >= s.in_w) continue;
                const std::size_t x_base = static_cast<std::size_t>(
                    ((n * s.in_h + iy) * s.in_w + ix) * cin);
                const std::size_t w_base =
                    static_cast<std::size_t>(((ky * kw + kx) * cin) * cout + oc);
                for (std::int64_t ic = 0; ic < cin; ++ic) {
                  acc += x.f32()[x_base + static_cast<std::size_t>(ic)] *
                         weight_value(w, w_base + static_cast<std::size_t>(ic) *
                                             static_cast<std::size_t>(cout));
                }
              }
            }
            out->f32()[static_cast<std::size_t>(
                ((n * oh + oy) * ow + ox) * cout + oc)] = acc;
          }
        }
      }
    });
    return {};
  }
  if (x.dtype() == DType::I8) {
    if (w.dtype() != DType::I8) {
      return util::Status::failure("int8 conv needs int8 weights");
    }
    const float rescale = x.quant_scale * w.quant_scale / out->quant_scale;
    parallel(s.batch * oh, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t noy = begin; noy < end; ++noy) {
        const std::int64_t n = noy / oh;
        const std::int64_t oy = noy % oh;
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          for (std::int64_t oc = 0; oc < cout; ++oc) {
            std::int32_t acc = 0;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * s.sh + ky - s.pad_top;
              if (iy < 0 || iy >= s.in_h) continue;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * s.sw + kx - s.pad_left;
                if (ix < 0 || ix >= s.in_w) continue;
                const std::size_t x_base = static_cast<std::size_t>(
                    ((n * s.in_h + iy) * s.in_w + ix) * cin);
                const std::size_t w_base =
                    static_cast<std::size_t>(((ky * kw + kx) * cin) * cout + oc);
                for (std::int64_t ic = 0; ic < cin; ++ic) {
                  const std::int32_t xv =
                      x.i8()[x_base + static_cast<std::size_t>(ic)] -
                      x.quant_zero_point;
                  const std::int32_t wv =
                      w.i8()[w_base + static_cast<std::size_t>(ic) *
                                          static_cast<std::size_t>(cout)] -
                      w.quant_zero_point;
                  acc += xv * wv;
                }
              }
            }
            float result = static_cast<float>(acc) * rescale;
            if (bias && bias->dtype() == DType::F32) {
              result +=
                  bias->f32()[static_cast<std::size_t>(oc)] / out->quant_scale;
            }
            out->i8()[static_cast<std::size_t>(
                ((n * oh + oy) * ow + ox) * cout + oc)] =
                requantize(result, out->quant_zero_point);
          }
        }
      }
    });
    return {};
  }
  return util::Status::failure("unsupported input dtype");
}

util::Status depthwise_reference(const ConvShape& s, const Layer& layer,
                                 const Tensor& x, Tensor* out,
                                 const ParallelFor& parallel) {
  const Tensor& w = layer.weights[0];
  const Tensor* bias = layer.weights.size() > 1 ? &layer.weights[1] : nullptr;
  const std::int64_t kh = s.kh, kw = s.kw, c = s.cin;
  const std::int64_t oh = s.out_h, ow = s.out_w;
  if (x.dtype() == DType::F32) {
    parallel(s.batch * oh, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t noy = begin; noy < end; ++noy) {
        const std::int64_t n = noy / oh;
        const std::int64_t oy = noy % oh;
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          for (std::int64_t ch = 0; ch < c; ++ch) {
            float acc = bias ? bias->f32()[static_cast<std::size_t>(ch)] : 0.0f;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * s.sh + ky - s.pad_top;
              if (iy < 0 || iy >= s.in_h) continue;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * s.sw + kx - s.pad_left;
                if (ix < 0 || ix >= s.in_w) continue;
                acc += x.f32()[static_cast<std::size_t>(
                           ((n * s.in_h + iy) * s.in_w + ix) * c + ch)] *
                       weight_value(
                           w, static_cast<std::size_t>((ky * kw + kx) * c + ch));
              }
            }
            out->f32()[static_cast<std::size_t>(
                ((n * oh + oy) * ow + ox) * c + ch)] = acc;
          }
        }
      }
    });
    return {};
  }
  if (x.dtype() == DType::I8) {
    if (w.dtype() != DType::I8) {
      return util::Status::failure("int8 dwconv needs int8 weights");
    }
    const float rescale = x.quant_scale * w.quant_scale / out->quant_scale;
    parallel(s.batch * oh, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t noy = begin; noy < end; ++noy) {
        const std::int64_t n = noy / oh;
        const std::int64_t oy = noy % oh;
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          for (std::int64_t ch = 0; ch < c; ++ch) {
            std::int32_t acc = 0;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * s.sh + ky - s.pad_top;
              if (iy < 0 || iy >= s.in_h) continue;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * s.sw + kx - s.pad_left;
                if (ix < 0 || ix >= s.in_w) continue;
                acc += (x.i8()[static_cast<std::size_t>(
                            ((n * s.in_h + iy) * s.in_w + ix) * c + ch)] -
                        x.quant_zero_point) *
                       (w.i8()[static_cast<std::size_t>((ky * kw + kx) * c +
                                                        ch)] -
                        w.quant_zero_point);
              }
            }
            float result = static_cast<float>(acc) * rescale;
            if (bias && bias->dtype() == DType::F32) {
              result +=
                  bias->f32()[static_cast<std::size_t>(ch)] / out->quant_scale;
            }
            out->i8()[static_cast<std::size_t>(
                ((n * oh + oy) * ow + ox) * c + ch)] =
                requantize(result, out->quant_zero_point);
          }
        }
      }
    });
    return {};
  }
  return util::Status::failure("unsupported dwconv dtype");
}

util::Status dense_reference(const Layer& layer, const Tensor& x,
                             std::int64_t rows, Tensor* out,
                             const ParallelFor& parallel) {
  const Tensor& w = layer.weights[0];
  const Tensor* bias = layer.weights.size() > 1 ? &layer.weights[1] : nullptr;
  const std::int64_t in_dim = w.shape()[0];
  const std::int64_t out_dim = w.shape()[1];
  if (x.dtype() == DType::F32) {
    parallel(rows, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t r = begin; r < end; ++r) {
        for (std::int64_t o = 0; o < out_dim; ++o) {
          float acc = bias ? bias->f32()[static_cast<std::size_t>(o)] : 0.0f;
          for (std::int64_t k = 0; k < in_dim; ++k) {
            acc += x.f32()[static_cast<std::size_t>(r * in_dim + k)] *
                   weight_value(w, static_cast<std::size_t>(k * out_dim + o));
          }
          out->f32()[static_cast<std::size_t>(r * out_dim + o)] = acc;
        }
      }
    });
    return {};
  }
  if (x.dtype() == DType::I8) {
    if (w.dtype() != DType::I8) {
      return util::Status::failure("int8 dense needs int8 weights");
    }
    const float rescale = x.quant_scale * w.quant_scale / out->quant_scale;
    parallel(rows, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t r = begin; r < end; ++r) {
        for (std::int64_t o = 0; o < out_dim; ++o) {
          std::int32_t acc = 0;
          for (std::int64_t k = 0; k < in_dim; ++k) {
            acc += (x.i8()[static_cast<std::size_t>(r * in_dim + k)] -
                    x.quant_zero_point) *
                   (w.i8()[static_cast<std::size_t>(k * out_dim + o)] -
                    w.quant_zero_point);
          }
          float result = static_cast<float>(acc) * rescale;
          if (bias && bias->dtype() == DType::F32) {
            result +=
                bias->f32()[static_cast<std::size_t>(o)] / out->quant_scale;
          }
          out->i8()[static_cast<std::size_t>(r * out_dim + o)] =
              requantize(result, out->quant_zero_point);
        }
      }
    });
    return {};
  }
  return util::Status::failure("unsupported input dtype");
}

util::Status lstm_reference(const Layer& layer, const Tensor& x, Tensor* out) {
  if (x.dtype() != DType::F32) return util::Status::failure("lstm supports f32");
  const Shape& xs = x.shape();
  const std::int64_t batch = xs[0], steps = xs[1], feat = xs[2];
  const std::int64_t hidden = layer.units;
  const Tensor& w = layer.weights[0];
  const Tensor* bias = layer.weights.size() > 1 ? &layer.weights[1] : nullptr;
  std::vector<float> h(static_cast<std::size_t>(batch * hidden), 0.0f);
  std::vector<float> cstate(static_cast<std::size_t>(batch * hidden), 0.0f);
  std::vector<float> gates(static_cast<std::size_t>(4 * hidden), 0.0f);
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t g = 0; g < 4 * hidden; ++g) {
        float acc = bias ? bias->f32()[static_cast<std::size_t>(g)] : 0.0f;
        for (std::int64_t k = 0; k < feat; ++k) {
          acc += x.f32()[static_cast<std::size_t>((b * steps + t) * feat + k)] *
                 weight_value(w, static_cast<std::size_t>(k * 4 * hidden + g));
        }
        for (std::int64_t k = 0; k < hidden; ++k) {
          acc += h[static_cast<std::size_t>(b * hidden + k)] *
                 weight_value(
                     w, static_cast<std::size_t>((feat + k) * 4 * hidden + g));
        }
        gates[static_cast<std::size_t>(g)] = acc;
      }
      for (std::int64_t k = 0; k < hidden; ++k) {
        const float ig =
            1.0f / (1.0f + std::exp(-gates[static_cast<std::size_t>(k)]));
        const float fg = 1.0f / (1.0f + std::exp(-gates[static_cast<std::size_t>(
                                            hidden + k)]));
        const float cg = std::tanh(gates[static_cast<std::size_t>(2 * hidden + k)]);
        const float og = 1.0f / (1.0f + std::exp(-gates[static_cast<std::size_t>(
                                            3 * hidden + k)]));
        const std::size_t hi = static_cast<std::size_t>(b * hidden + k);
        cstate[hi] = fg * cstate[hi] + ig * cg;
        h[hi] = og * std::tanh(cstate[hi]);
        out->f32()[static_cast<std::size_t>((b * steps + t) * hidden + k)] =
            h[hi];
      }
    }
  }
  return {};
}

}  // namespace gauge::nn::kernels::detail
