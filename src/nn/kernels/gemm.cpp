// Tiled fp32 GEMM over packed weight panels (the `optimised` backend's
// dense / LSTM-gate workhorse).
//
// Register tile: 4 rows of A × one 8-lane output-channel panel. The inner
// loop streams one contiguous panel row per K step — a single weight load
// feeds four FMAs — so the K-major traversal that is cache-hostile in the
// reference kernel (W strided by out_dim) becomes unit-stride.
#include <algorithm>

#include "nn/kernels/impl.hpp"
#include "nn/kernels/simd.hpp"

namespace gauge::nn::kernels::detail {

namespace {

constexpr std::int64_t kRowTile = 4;

// Loads a bias panel (zero-padded tail) or zeros when bias == nullptr.
VecF bias_panel(const float* bias, std::int64_t col0, std::int64_t cols) {
  if (!bias) return vec_splat(0.0f);
  const auto lanes = static_cast<int>(
      std::min<std::int64_t>(kPanelWidth, cols - col0));
  if (lanes == kPanelWidth) return vec_load(bias + col0);
  return vec_load_partial(bias + col0, lanes);
}

void store_panel(float* out, VecF v, int lanes) {
  if (lanes == kPanelWidth) {
    vec_store(out, v);
  } else {
    for (int i = 0; i < lanes; ++i) out[i] = vec_lane(v, i);
  }
}

}  // namespace

void gemm_f32(std::int64_t m, std::int64_t k, const float* a, std::int64_t lda,
              const PackedWeights& w, const float* bias, Activation act,
              float* out, const ParallelFor& parallel) {
  const std::int64_t blocks = (m + kRowTile - 1) / kRowTile;
  const VecF lo = vec_splat(act.lo), hi = vec_splat(act.hi);
  parallel(blocks, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t block = begin; block < end; ++block) {
      const std::int64_t r0 = block * kRowTile;
      const auto rows = static_cast<int>(std::min(kRowTile, m - r0));
      for (std::int64_t p = 0; p < w.panels; ++p) {
        const float* panel = w.f32.data() +
                             static_cast<std::size_t>(p * w.rows * kPanelWidth);
        const std::int64_t col0 = p * kPanelWidth;
        const auto lanes = static_cast<int>(
            std::min<std::int64_t>(kPanelWidth, w.cols - col0));
        const VecF vb = bias_panel(bias, col0, w.cols);
        VecF acc0 = vb, acc1 = vb, acc2 = vb, acc3 = vb;
        const float* a0 = a + r0 * lda;
        if (rows == kRowTile) {
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const VecF wv = vec_load(panel + kk * kPanelWidth);
            acc0 += vec_splat(a0[kk]) * wv;
            acc1 += vec_splat(a0[lda + kk]) * wv;
            acc2 += vec_splat(a0[2 * lda + kk]) * wv;
            acc3 += vec_splat(a0[3 * lda + kk]) * wv;
          }
        } else {
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const VecF wv = vec_load(panel + kk * kPanelWidth);
            acc0 += vec_splat(a0[kk]) * wv;
            if (rows > 1) acc1 += vec_splat(a0[lda + kk]) * wv;
            if (rows > 2) acc2 += vec_splat(a0[2 * lda + kk]) * wv;
          }
        }
        VecF accs[kRowTile] = {acc0, acc1, acc2, acc3};
        for (int r = 0; r < rows; ++r) {
          const VecF v = vec_max(vec_min(accs[r], hi), lo);
          store_panel(out + (r0 + r) * w.cols + col0, v, lanes);
        }
      }
    }
  });
}

}  // namespace gauge::nn::kernels::detail
