// The `quantised` backend's integer kernels.
//
// Two families share the same i16-panel weight layout (zero-point already
// subtracted at pack time, per-tensor scale on PackedWeights):
//
//   *_i8      — int8 activations in, int8 out. i8×i16→i32 accumulation is
//               exact, so the only rounding happens in the final requantise,
//               which uses the identical formula as the reference kernels:
//                 result = acc * (x_scale*w_scale/out_scale) + bias/out_scale
//                 q      = clamp(round(result) + out_zp, -128, 127)
//   *_hybrid  — f32 activations in, f32 out (dynamic-range quantisation):
//               quantise the activation tensor per call (symmetric,
//               scale = max|x|/127), integer-accumulate, dequantise by
//               x_scale*w_scale on the way out with the fused clamp.
#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/kernels/impl.hpp"
#include "nn/kernels/simd.hpp"

namespace gauge::nn::kernels::detail {

namespace {

constexpr std::int64_t kRowTile = 4;

std::int8_t requantize_lane(float value, std::int32_t zp) {
  const float q = std::round(value) + static_cast<float>(zp);
  return static_cast<std::int8_t>(std::clamp(q, -128.0f, 127.0f));
}

float bias_lane(const float* bias, std::int64_t col0, int lane,
                std::int64_t cols) {
  if (!bias) return 0.0f;
  const std::int64_t c = col0 + lane;
  return c < cols ? bias[c] : 0.0f;
}

}  // namespace

float dynamic_quantize(const float* x, std::int64_t n, std::int8_t* out) {
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(x[i]));
  }
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::int8_t>(
        std::clamp(std::round(x[i] * inv), -127.0f, 127.0f));
  }
  return scale;
}

void gemm_i8(std::int64_t m, std::int64_t k, const std::int8_t* a,
             std::int64_t lda, const QuantIo& q, const PackedWeights& w,
             const float* bias, Activation act, std::int8_t* out,
             const ParallelFor& parallel) {
  (void)act;  // int8 outputs carry activation in their quant range
  const float rescale = q.x_scale * w.scale / q.out_scale;
  const float inv_out = 1.0f / q.out_scale;
  parallel(m, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t r = begin; r < end; ++r) {
      const std::int8_t* ar = a + r * lda;
      for (std::int64_t p = 0; p < w.panels; ++p) {
        const std::int16_t* panel =
            w.i16.data() + static_cast<std::size_t>(p * w.rows * kPanelWidth);
        const std::int64_t col0 = p * kPanelWidth;
        const auto lanes =
            static_cast<int>(std::min<std::int64_t>(kPanelWidth, w.cols - col0));
        VecI acc = vec_splat_i(0);
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const std::int32_t xv = static_cast<std::int32_t>(ar[kk]) - q.x_zp;
          acc += vec_splat_i(xv) * vec_load_i16(panel + kk * kPanelWidth);
        }
        std::int8_t* op = out + r * w.cols + col0;
        for (int i = 0; i < lanes; ++i) {
          float result = static_cast<float>(vec_lane_i(acc, i)) * rescale +
                         bias_lane(bias, col0, i, w.cols) * inv_out;
          op[i] = requantize_lane(result, q.out_zp);
        }
      }
    }
  });
}

void conv2d_i8(const ConvShape& s, const std::int8_t* x, const QuantIo& q,
               const PackedWeights& w, const float* bias, Activation act,
               std::int8_t* out, const ParallelFor& parallel) {
  (void)act;
  const float rescale = q.x_scale * w.scale / q.out_scale;
  const float inv_out = 1.0f / q.out_scale;
  parallel(s.batch * s.out_h, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t n = row / s.out_h;
      const std::int64_t oy = row % s.out_h;
      for (std::int64_t p = 0; p < w.panels; ++p) {
        const std::int16_t* panel =
            w.i16.data() + static_cast<std::size_t>(p * w.rows * kPanelWidth);
        const std::int64_t col0 = p * kPanelWidth;
        const auto lanes =
            static_cast<int>(std::min<std::int64_t>(kPanelWidth, s.cout - col0));
        for (std::int64_t ox = 0; ox < s.out_w; ++ox) {
          VecI acc = vec_splat_i(0);
          for (int ky = 0; ky < s.kh; ++ky) {
            const std::int64_t iy = oy * s.sh + ky - s.pad_top;
            if (iy < 0 || iy >= s.in_h) continue;
            for (int kx = 0; kx < s.kw; ++kx) {
              const std::int64_t ix = ox * s.sw + kx - s.pad_left;
              if (ix < 0 || ix >= s.in_w) continue;
              const std::int8_t* xp =
                  x + ((n * s.in_h + iy) * s.in_w + ix) * s.cin;
              const std::int16_t* wk =
                  panel +
                  ((static_cast<std::int64_t>(ky) * s.kw + kx) * s.cin) *
                      kPanelWidth;
              for (std::int64_t ic = 0; ic < s.cin; ++ic) {
                const std::int32_t xv =
                    static_cast<std::int32_t>(xp[ic]) - q.x_zp;
                acc += vec_splat_i(xv) * vec_load_i16(wk + ic * kPanelWidth);
              }
            }
          }
          std::int8_t* op = out + (row * s.out_w + ox) * s.cout + col0;
          for (int i = 0; i < lanes; ++i) {
            float result = static_cast<float>(vec_lane_i(acc, i)) * rescale +
                           bias_lane(bias, col0, i, s.cout) * inv_out;
            op[i] = requantize_lane(result, q.out_zp);
          }
        }
      }
    }
  });
}

void depthwise_i8(const ConvShape& s, const std::int8_t* x, const QuantIo& q,
                  const PackedWeights& w, const float* bias, Activation act,
                  std::int8_t* out, const ParallelFor& parallel) {
  (void)act;
  const std::int64_t c = s.cin;
  const float rescale = q.x_scale * w.scale / q.out_scale;
  const float inv_out = 1.0f / q.out_scale;
  parallel(s.batch * s.out_h, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t n = row / s.out_h;
      const std::int64_t oy = row % s.out_h;
      for (std::int64_t ox = 0; ox < s.out_w; ++ox) {
        std::int8_t* op = out + (row * s.out_w + ox) * c;
        for (std::int64_t ch = 0; ch < c; ++ch) {
          std::int32_t acc = 0;
          for (int ky = 0; ky < s.kh; ++ky) {
            const std::int64_t iy = oy * s.sh + ky - s.pad_top;
            if (iy < 0 || iy >= s.in_h) continue;
            for (int kx = 0; kx < s.kw; ++kx) {
              const std::int64_t ix = ox * s.sw + kx - s.pad_left;
              if (ix < 0 || ix >= s.in_w) continue;
              const std::int32_t xv =
                  static_cast<std::int32_t>(
                      x[((n * s.in_h + iy) * s.in_w + ix) * c + ch]) -
                  q.x_zp;
              acc += xv * w.i16[static_cast<std::size_t>(
                         (static_cast<std::int64_t>(ky) * s.kw + kx) * c + ch)];
            }
          }
          float result = static_cast<float>(acc) * rescale +
                         (bias ? bias[ch] * inv_out : 0.0f);
          op[ch] = requantize_lane(result, q.out_zp);
        }
      }
    }
  });
}

void gemm_hybrid(std::int64_t m, std::int64_t k, const float* a,
                 std::int64_t lda, const PackedWeights& w, const float* bias,
                 Activation act, float* out, const ParallelFor& parallel) {
  // Per-row dynamic quantisation: each activation row gets its own scale,
  // which keeps the hybrid error well under the reference tolerance even
  // when row magnitudes differ wildly (e.g. LSTM gate inputs).
  std::vector<std::int8_t> xq(static_cast<std::size_t>(m * k));
  std::vector<float> row_scale(static_cast<std::size_t>(m));
  parallel(m, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t r = begin; r < end; ++r) {
      row_scale[static_cast<std::size_t>(r)] =
          dynamic_quantize(a + r * lda, k, xq.data() + r * k);
    }
  });
  parallel(m, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t r = begin; r < end; ++r) {
      const std::int8_t* ar = xq.data() + r * k;
      const float dequant = row_scale[static_cast<std::size_t>(r)] * w.scale;
      for (std::int64_t p = 0; p < w.panels; ++p) {
        const std::int16_t* panel =
            w.i16.data() + static_cast<std::size_t>(p * w.rows * kPanelWidth);
        const std::int64_t col0 = p * kPanelWidth;
        const auto lanes =
            static_cast<int>(std::min<std::int64_t>(kPanelWidth, w.cols - col0));
        VecI acc = vec_splat_i(0);
        for (std::int64_t kk = 0; kk < k; ++kk) {
          acc += vec_splat_i(ar[kk]) * vec_load_i16(panel + kk * kPanelWidth);
        }
        float* op = out + r * w.cols + col0;
        for (int i = 0; i < lanes; ++i) {
          float v = static_cast<float>(vec_lane_i(acc, i)) * dequant +
                    bias_lane(bias, col0, i, w.cols);
          op[i] = std::min(std::max(v, act.lo), act.hi);
        }
      }
    }
  });
}

void conv2d_hybrid(const ConvShape& s, const float* x, const PackedWeights& w,
                   const float* bias, Activation act, float* out,
                   const ParallelFor& parallel) {
  const std::int64_t total = s.batch * s.in_h * s.in_w * s.cin;
  std::vector<std::int8_t> xq(static_cast<std::size_t>(total));
  const float x_scale = dynamic_quantize(x, total, xq.data());
  const float dequant = x_scale * w.scale;
  const std::int8_t* xd = xq.data();
  parallel(s.batch * s.out_h, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t n = row / s.out_h;
      const std::int64_t oy = row % s.out_h;
      for (std::int64_t p = 0; p < w.panels; ++p) {
        const std::int16_t* panel =
            w.i16.data() + static_cast<std::size_t>(p * w.rows * kPanelWidth);
        const std::int64_t col0 = p * kPanelWidth;
        const auto lanes =
            static_cast<int>(std::min<std::int64_t>(kPanelWidth, s.cout - col0));
        for (std::int64_t ox = 0; ox < s.out_w; ++ox) {
          VecI acc = vec_splat_i(0);
          for (int ky = 0; ky < s.kh; ++ky) {
            const std::int64_t iy = oy * s.sh + ky - s.pad_top;
            if (iy < 0 || iy >= s.in_h) continue;
            for (int kx = 0; kx < s.kw; ++kx) {
              const std::int64_t ix = ox * s.sw + kx - s.pad_left;
              if (ix < 0 || ix >= s.in_w) continue;
              const std::int8_t* xp =
                  xd + ((n * s.in_h + iy) * s.in_w + ix) * s.cin;
              const std::int16_t* wk =
                  panel +
                  ((static_cast<std::int64_t>(ky) * s.kw + kx) * s.cin) *
                      kPanelWidth;
              for (std::int64_t ic = 0; ic < s.cin; ++ic) {
                acc += vec_splat_i(xp[ic]) * vec_load_i16(wk + ic * kPanelWidth);
              }
            }
          }
          float* op = out + (row * s.out_w + ox) * s.cout + col0;
          for (int i = 0; i < lanes; ++i) {
            float v = static_cast<float>(vec_lane_i(acc, i)) * dequant +
                      bias_lane(bias, col0, i, s.cout);
            op[i] = std::min(std::max(v, act.lo), act.hi);
          }
        }
      }
    }
  });
}

void depthwise_hybrid(const ConvShape& s, const float* x,
                      const PackedWeights& w, const float* bias, Activation act,
                      float* out, const ParallelFor& parallel) {
  const std::int64_t c = s.cin;
  const std::int64_t total = s.batch * s.in_h * s.in_w * c;
  std::vector<std::int8_t> xq(static_cast<std::size_t>(total));
  const float x_scale = dynamic_quantize(x, total, xq.data());
  const float dequant = x_scale * w.scale;
  const std::int8_t* xd = xq.data();
  parallel(s.batch * s.out_h, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t n = row / s.out_h;
      const std::int64_t oy = row % s.out_h;
      for (std::int64_t ox = 0; ox < s.out_w; ++ox) {
        float* op = out + (row * s.out_w + ox) * c;
        for (std::int64_t ch = 0; ch < c; ++ch) {
          std::int32_t acc = 0;
          for (int ky = 0; ky < s.kh; ++ky) {
            const std::int64_t iy = oy * s.sh + ky - s.pad_top;
            if (iy < 0 || iy >= s.in_h) continue;
            for (int kx = 0; kx < s.kw; ++kx) {
              const std::int64_t ix = ox * s.sw + kx - s.pad_left;
              if (ix < 0 || ix >= s.in_w) continue;
              acc += static_cast<std::int32_t>(
                         xd[((n * s.in_h + iy) * s.in_w + ix) * c + ch]) *
                     w.i16[static_cast<std::size_t>(
                         (static_cast<std::int64_t>(ky) * s.kw + kx) * c + ch)];
            }
          }
          const float v = static_cast<float>(acc) * dequant +
                          (bias ? bias[ch] : 0.0f);
          op[ch] = std::min(std::max(v, act.lo), act.hi);
        }
      }
    }
  });
}

}  // namespace gauge::nn::kernels::detail
