// Portable SIMD for the kernel layer (DESIGN.md §13). Uses GCC/Clang vector
// extensions when available; otherwise (or when GAUGE_KERNELS_FORCE_SCALAR is
// defined) a same-shape scalar struct keeps every kernel compiling unchanged,
// so the optimised code paths have a guarded fallback rather than an #ifdef
// forest at each call site.
//
// Lane count is fixed at 8: 8 x f32 / 8 x i32 = one 256-bit register on AVX2
// class hardware, two 128-bit registers on NEON/SSE — both layouts the
// compiler handles well from a generic 32-byte vector type.
#pragma once

#include <cstdint>
#include <cstring>

#if (defined(__GNUC__) || defined(__clang__)) && !defined(GAUGE_KERNELS_FORCE_SCALAR)
#define GAUGE_KERNELS_VECTOR_EXT 1
#endif

namespace gauge::nn::kernels {

inline constexpr int kVecLanes = 8;

#ifdef GAUGE_KERNELS_VECTOR_EXT

// Without AVX the compiler lowers 32-byte vectors to two 16-byte registers
// and warns that returning them by value is ABI-affecting. Every helper here
// is inline (no cross-TU calls take vector types), so the warning is noise.
#pragma GCC diagnostic ignored "-Wpsabi"

using VecF = float __attribute__((vector_size(32)));
using VecI = std::int32_t __attribute__((vector_size(32)));
using VecI16 = std::int16_t __attribute__((vector_size(16)));

inline VecF vec_splat(float v) { return VecF{v, v, v, v, v, v, v, v}; }
inline VecI vec_splat_i(std::int32_t v) { return VecI{v, v, v, v, v, v, v, v}; }

inline VecF vec_load(const float* p) {
  VecF v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline void vec_store(float* p, VecF v) { std::memcpy(p, &v, sizeof v); }

inline VecI vec_load_i16(const std::int16_t* p) {
  VecI16 s;
  std::memcpy(&s, p, sizeof s);
  return __builtin_convertvector(s, VecI);
}

inline VecF vec_min(VecF a, VecF b) { return a < b ? a : b; }
inline VecF vec_max(VecF a, VecF b) { return a > b ? a : b; }

inline float vec_lane(VecF v, int i) { return v[i]; }
inline std::int32_t vec_lane_i(VecI v, int i) { return v[i]; }
inline void vec_set_lane(VecF& v, int i, float x) { v[i] = x; }

#else  // scalar fallback

struct VecF {
  float l[kVecLanes];
  friend VecF operator+(VecF a, VecF b) {
    for (int i = 0; i < kVecLanes; ++i) a.l[i] += b.l[i];
    return a;
  }
  friend VecF operator-(VecF a, VecF b) {
    for (int i = 0; i < kVecLanes; ++i) a.l[i] -= b.l[i];
    return a;
  }
  friend VecF operator*(VecF a, VecF b) {
    for (int i = 0; i < kVecLanes; ++i) a.l[i] *= b.l[i];
    return a;
  }
  VecF& operator+=(VecF b) { return *this = *this + b; }
};

struct VecI {
  std::int32_t l[kVecLanes];
  friend VecI operator+(VecI a, VecI b) {
    for (int i = 0; i < kVecLanes; ++i) a.l[i] += b.l[i];
    return a;
  }
  friend VecI operator*(VecI a, VecI b) {
    for (int i = 0; i < kVecLanes; ++i) a.l[i] *= b.l[i];
    return a;
  }
  VecI& operator+=(VecI b) { return *this = *this + b; }
};

inline VecF vec_splat(float v) {
  VecF out;
  for (int i = 0; i < kVecLanes; ++i) out.l[i] = v;
  return out;
}
inline VecI vec_splat_i(std::int32_t v) {
  VecI out;
  for (int i = 0; i < kVecLanes; ++i) out.l[i] = v;
  return out;
}

inline VecF vec_load(const float* p) {
  VecF v;
  std::memcpy(v.l, p, sizeof v.l);
  return v;
}
inline void vec_store(float* p, VecF v) { std::memcpy(p, v.l, sizeof v.l); }

inline VecI vec_load_i16(const std::int16_t* p) {
  VecI v;
  for (int i = 0; i < kVecLanes; ++i) v.l[i] = p[i];
  return v;
}

inline VecF vec_min(VecF a, VecF b) {
  for (int i = 0; i < kVecLanes; ++i) a.l[i] = a.l[i] < b.l[i] ? a.l[i] : b.l[i];
  return a;
}
inline VecF vec_max(VecF a, VecF b) {
  for (int i = 0; i < kVecLanes; ++i) a.l[i] = a.l[i] > b.l[i] ? a.l[i] : b.l[i];
  return a;
}

inline float vec_lane(VecF v, int i) { return v.l[i]; }
inline std::int32_t vec_lane_i(VecI v, int i) { return v.l[i]; }
inline void vec_set_lane(VecF& v, int i, float x) { v.l[i] = x; }

#endif

// Loads n (< kVecLanes) floats, zero-filling the tail lanes.
inline VecF vec_load_partial(const float* p, int n) {
  VecF v = vec_splat(0.0f);
  for (int i = 0; i < n; ++i) vec_set_lane(v, i, p[i]);
  return v;
}

}  // namespace gauge::nn::kernels
