// Execution-backend kernel layer for the inference interpreter
// (DESIGN.md §13). Three selectable backends mirror the device::Backend
// families the paper benchmarks:
//
//   reference — the original scalar loops (reference.cpp), kept verbatim as
//               the parity oracle every optimised kernel is checked against
//   optimised — register-tiled fp32 GEMM/conv over packed weight panels,
//               fused bias + activation stores, portable-SIMD eltwise
//               (simd.hpp); hybrid int8 weights are dequantised once at
//               pack time instead of per-MAC
//   quantised — optimised fp32 plus real integer arithmetic: int8
//               activations run i8×i8→i32 panel kernels with requantise,
//               and hybrid (int8-weight, f32-activation) layers run
//               dynamic-range quantisation (quantise the activation
//               tensor, integer-accumulate, dequantise the result)
//
// The interpreter owns backend selection and weight packing; kernels are
// stateless functions over raw buffers plus a ParallelFor hook so the same
// code runs inline or on the nn::ThreadPool.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "util/result.hpp"

namespace gauge::nn::kernels {

enum class ExecBackend : std::uint8_t {
  Reference = 0,
  Optimised,
  Quantised,
  kCount,
};

const char* exec_backend_name(ExecBackend backend);
std::optional<ExecBackend> parse_exec_backend(std::string_view name);
const std::vector<ExecBackend>& exec_backends();

// fn(begin, end) over [0, total): the interpreter passes ThreadPool's
// parallel_for (or an inline runner when single-threaded).
using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;
using ParallelFor = std::function<void(std::int64_t, const ChunkFn&)>;

// Inline ParallelFor for callers without a pool (tests, benches).
void serial_for(std::int64_t total, const ChunkFn& fn);

// Dequantising weight accessor: hybrid int8 weights read back as float.
// The reference kernels (and the interpreter's embedding gather) use it
// per element; the optimised backends only at pack time.
inline float weight_value(const Tensor& w, std::size_t idx) {
  if (w.dtype() == DType::F32) return w.f32()[idx];
  return (static_cast<float>(w.i8()[idx]) -
          static_cast<float>(w.quant_zero_point)) *
         w.quant_scale;
}

// Output-channel panel width of the packed weight layout (== kVecLanes).
inline constexpr std::int64_t kPanelWidth = 8;

// Weights repacked for the register-tiled kernels: the N (output channel)
// dimension is split into panels of kPanelWidth lanes, zero-padded, and laid
// out panel-major so the micro-kernel streams one contiguous panel row per
// K step:  f32[panel][k][lane] with lane = n % kPanelWidth.
//
// The quantised layout stores (w - zero_point) widened to int16 in the same
// panel order (the i8×i8 product needs the zero-point-corrected value; doing
// the subtraction at pack time keeps it out of the inner loop), plus the
// per-tensor scale for requantisation. Depthwise weights are packed flat
// (channel-contiguous already matches the NHWC kernel).
struct PackedWeights {
  std::int64_t rows = 0;    // K: kh*kw*cin (conv), in_dim (dense/lstm)
  std::int64_t cols = 0;    // N: cout / out_dim
  std::int64_t panels = 0;  // ceil(cols / kPanelWidth); 0 = flat layout
  std::vector<float> f32;
  std::vector<std::int16_t> i16;
  float scale = 1.0f;                // i16 dequant scale (weight quant_scale)
  bool quantised() const { return !i16.empty(); }
  bool empty() const { return f32.empty() && i16.empty(); }
};

// Packs a [rows x cols] row-major weight tensor (f32 or hybrid i8) into
// panels. `quantised` selects the int16 integer-arithmetic layout (requires
// i8 weights); otherwise i8 weights are dequantised into the f32 panels.
PackedWeights pack_weights(const Tensor& w, std::int64_t rows,
                           std::int64_t cols, bool quantised);

// Flat (unpaneled) packing for depthwise weights: dequantised f32 or
// zero-point-corrected i16.
PackedWeights pack_depthwise(const Tensor& w, bool quantised);

// Activation clamp fused into the kernel's store (identity by default).
struct Activation {
  float lo = -std::numeric_limits<float>::infinity();
  float hi = std::numeric_limits<float>::infinity();
  bool identity() const {
    return lo == -std::numeric_limits<float>::infinity() &&
           hi == std::numeric_limits<float>::infinity();
  }
};

// ---- per-layer entry points -----------------------------------------------
// `x` is the layer input, `out` the destination (constructed by the call
// with dtype and quant metadata); `packed` may be null for Reference.
// Failures carry the reason only — the interpreter wraps layer context.

util::Status run_conv2d(ExecBackend backend, const Layer& layer,
                        const Tensor& x, const Shape& out_shape,
                        const PackedWeights* packed, Activation act,
                        Tensor* out, const ParallelFor& parallel);

util::Status run_depthwise(ExecBackend backend, const Layer& layer,
                           const Tensor& x, const Shape& out_shape,
                           const PackedWeights* packed, Activation act,
                           Tensor* out, const ParallelFor& parallel);

util::Status run_dense(ExecBackend backend, const Layer& layer,
                       const Tensor& x, const Shape& out_shape,
                       const PackedWeights* packed, Activation act,
                       Tensor* out, const ParallelFor& parallel);

util::Status run_lstm(ExecBackend backend, const Layer& layer, const Tensor& x,
                      const Shape& out_shape, const PackedWeights* packed,
                      Tensor* out, const ParallelFor& parallel);

// ---- eltwise / activation kernels (portable SIMD, scalar tail) ------------

void clamp_f32(const float* x, float lo, float hi, float* out, std::int64_t n);
void add_f32(const float* a, const float* b, float* out, std::int64_t n);
void mul_f32(const float* a, const float* b, float* out, std::int64_t n);
// Per-channel affine (batch-norm folded form): out[k] = x[k]*scale[c]+shift[c]
// with c = k % channels.
void scale_shift_f32(const float* x, const float* scale, const float* shift,
                     std::int64_t channels, float* out, std::int64_t n);
void quantize_f32(const float* x, float scale, std::int32_t zero_point,
                  std::int8_t* out, std::int64_t n);
void dequantize_i8(const std::int8_t* x, float scale, std::int32_t zero_point,
                   float* out, std::int64_t n);

// SAME-padding offsets shared by conv/pool kernels (TFLite semantics).
struct PadOffsets {
  std::int64_t top = 0;
  std::int64_t left = 0;
};
PadOffsets same_padding(std::int64_t in_h, std::int64_t in_w,
                        std::int64_t out_h, std::int64_t out_w, int kh, int kw,
                        int sh, int sw, Padding padding);

}  // namespace gauge::nn::kernels
