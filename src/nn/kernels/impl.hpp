// Internal kernel declarations shared between the dispatch layer
// (kernels.cpp) and the per-backend implementation files. Not part of the
// public API — include kernels.hpp instead.
#pragma once

#include "nn/kernels/kernels.hpp"

namespace gauge::nn::kernels::detail {

// Resolved conv geometry (shapes + padding already computed by dispatch).
struct ConvShape {
  std::int64_t batch = 1;
  std::int64_t in_h = 1, in_w = 1, cin = 1;
  std::int64_t out_h = 1, out_w = 1, cout = 1;
  int kh = 1, kw = 1, sh = 1, sw = 1;
  std::int64_t pad_top = 0, pad_left = 0;
};

// Quantisation parameters of an i8-in/i8-out kernel; the weight scale rides
// on PackedWeights.
struct QuantIo {
  float x_scale = 1.0f;
  std::int32_t x_zp = 0;
  float out_scale = 1.0f;
  std::int32_t out_zp = 0;
};

// ---- reference.cpp: the original scalar loops (parity oracle) -------------
util::Status conv2d_reference(const ConvShape& s, const Layer& layer,
                              const Tensor& x, Tensor* out,
                              const ParallelFor& parallel);
util::Status depthwise_reference(const ConvShape& s, const Layer& layer,
                                 const Tensor& x, Tensor* out,
                                 const ParallelFor& parallel);
util::Status dense_reference(const Layer& layer, const Tensor& x,
                             std::int64_t rows, Tensor* out,
                             const ParallelFor& parallel);
util::Status lstm_reference(const Layer& layer, const Tensor& x, Tensor* out);

// ---- gemm.cpp: tiled fp32 GEMM over packed panels -------------------------
// out[M x w.cols] = a[M x K] (row stride lda) times panels, + bias, clamped.
void gemm_f32(std::int64_t m, std::int64_t k, const float* a, std::int64_t lda,
              const PackedWeights& w, const float* bias, Activation act,
              float* out, const ParallelFor& parallel);

// ---- conv.cpp: im2col-free fused fp32 conv / depthwise --------------------
void conv2d_f32(const ConvShape& s, const float* x, const PackedWeights& w,
                const float* bias, Activation act, float* out,
                const ParallelFor& parallel);
void depthwise_f32(const ConvShape& s, const float* x, const float* w,
                   const float* bias, Activation act, float* out,
                   const ParallelFor& parallel);

// ---- quantised.cpp: real int8 arithmetic ----------------------------------
void gemm_i8(std::int64_t m, std::int64_t k, const std::int8_t* a,
             std::int64_t lda, const QuantIo& q, const PackedWeights& w,
             const float* bias, Activation act, std::int8_t* out,
             const ParallelFor& parallel);
void conv2d_i8(const ConvShape& s, const std::int8_t* x, const QuantIo& q,
               const PackedWeights& w, const float* bias, Activation act,
               std::int8_t* out, const ParallelFor& parallel);
void depthwise_i8(const ConvShape& s, const std::int8_t* x, const QuantIo& q,
                  const PackedWeights& w, const float* bias, Activation act,
                  std::int8_t* out, const ParallelFor& parallel);
// Hybrid dynamic-range paths: f32 activations quantised per call (symmetric,
// per-tensor), integer accumulate against the i16 panels, f32 result.
void gemm_hybrid(std::int64_t m, std::int64_t k, const float* a,
                 std::int64_t lda, const PackedWeights& w, const float* bias,
                 Activation act, float* out, const ParallelFor& parallel);
void conv2d_hybrid(const ConvShape& s, const float* x, const PackedWeights& w,
                   const float* bias, Activation act, float* out,
                   const ParallelFor& parallel);
void depthwise_hybrid(const ConvShape& s, const float* x,
                      const PackedWeights& w, const float* bias,
                      Activation act, float* out, const ParallelFor& parallel);

// Symmetric per-tensor dynamic quantisation used by the hybrid paths:
// scale = max|x| / 127, zero point 0. Returns the scale.
float dynamic_quantize(const float* x, std::int64_t n, std::int8_t* out);

}  // namespace gauge::nn::kernels::detail
