// Im2col-free fused fp32 convolution kernels (the `optimised` backend).
//
// Conv2D register tile: 4 output pixels × one 8-lane output-channel panel.
// For each (ky, kx) tap the kernel accumulates straight from the NHWC input
// row — no im2col scratch tensor, no separate bias/activation passes (both
// are fused into the store). The interior fast path (all four pixels in
// bounds) loads each packed weight row once and feeds four FMAs; edges fall
// back to a per-pixel loop with the same arithmetic.
//
// DepthwiseConv2D vectorises over the channel dimension instead (channels
// are contiguous in NHWC), 8 channels per step.
#include <algorithm>

#include "nn/kernels/impl.hpp"
#include "nn/kernels/simd.hpp"

namespace gauge::nn::kernels::detail {

namespace {

constexpr std::int64_t kPixelTile = 4;

VecF conv_bias_panel(const float* bias, std::int64_t col0, std::int64_t cols) {
  if (!bias) return vec_splat(0.0f);
  const auto lanes =
      static_cast<int>(std::min<std::int64_t>(kPanelWidth, cols - col0));
  if (lanes == kPanelWidth) return vec_load(bias + col0);
  return vec_load_partial(bias + col0, lanes);
}

void store_clamped(float* out, VecF v, VecF lo, VecF hi, int lanes) {
  v = vec_max(vec_min(v, hi), lo);
  if (lanes == kPanelWidth) {
    vec_store(out, v);
  } else {
    for (int i = 0; i < lanes; ++i) out[i] = vec_lane(v, i);
  }
}

}  // namespace

void conv2d_f32(const ConvShape& s, const float* x, const PackedWeights& w,
                const float* bias, Activation act, float* out,
                const ParallelFor& parallel) {
  const VecF lo = vec_splat(act.lo), hi = vec_splat(act.hi);
  parallel(s.batch * s.out_h, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t n = row / s.out_h;
      const std::int64_t oy = row % s.out_h;
      for (std::int64_t p = 0; p < w.panels; ++p) {
        const float* panel =
            w.f32.data() + static_cast<std::size_t>(p * w.rows * kPanelWidth);
        const std::int64_t col0 = p * kPanelWidth;
        const auto lanes =
            static_cast<int>(std::min<std::int64_t>(kPanelWidth, s.cout - col0));
        const VecF vb = conv_bias_panel(bias, col0, s.cout);
        for (std::int64_t ox0 = 0; ox0 < s.out_w; ox0 += kPixelTile) {
          const auto pixels =
              static_cast<int>(std::min(kPixelTile, s.out_w - ox0));
          VecF acc[kPixelTile] = {vb, vb, vb, vb};
          for (int ky = 0; ky < s.kh; ++ky) {
            const std::int64_t iy = oy * s.sh + ky - s.pad_top;
            if (iy < 0 || iy >= s.in_h) continue;
            const float* xrow = x + ((n * s.in_h + iy) * s.in_w) * s.cin;
            for (int kx = 0; kx < s.kw; ++kx) {
              const float* wk =
                  panel + ((static_cast<std::int64_t>(ky) * s.kw + kx) * s.cin) *
                              kPanelWidth;
              const std::int64_t ix0 = ox0 * s.sw + kx - s.pad_left;
              const std::int64_t step = static_cast<std::int64_t>(s.sw) * s.cin;
              if (pixels == kPixelTile && ix0 >= 0 &&
                  ix0 + 3 * s.sw < s.in_w) {
                // Interior fast path: one weight load feeds four pixels.
                const float* x0 = xrow + ix0 * s.cin;
                for (std::int64_t ic = 0; ic < s.cin; ++ic) {
                  const VecF wv = vec_load(wk + ic * kPanelWidth);
                  acc[0] += vec_splat(x0[ic]) * wv;
                  acc[1] += vec_splat(x0[step + ic]) * wv;
                  acc[2] += vec_splat(x0[2 * step + ic]) * wv;
                  acc[3] += vec_splat(x0[3 * step + ic]) * wv;
                }
              } else {
                for (int px = 0; px < pixels; ++px) {
                  const std::int64_t ix = ix0 + px * s.sw;
                  if (ix < 0 || ix >= s.in_w) continue;
                  const float* xp = xrow + ix * s.cin;
                  for (std::int64_t ic = 0; ic < s.cin; ++ic) {
                    acc[px] += vec_splat(xp[ic]) * vec_load(wk + ic * kPanelWidth);
                  }
                }
              }
            }
          }
          for (int px = 0; px < pixels; ++px) {
            float* op = out + ((row * s.out_w) + ox0 + px) * s.cout + col0;
            store_clamped(op, acc[px], lo, hi, lanes);
          }
        }
      }
    }
  });
}

void depthwise_f32(const ConvShape& s, const float* x, const float* w,
                   const float* bias, Activation act, float* out,
                   const ParallelFor& parallel) {
  const std::int64_t c = s.cin;
  const VecF lo = vec_splat(act.lo), hi = vec_splat(act.hi);
  const std::int64_t full = c - c % kPanelWidth;
  parallel(s.batch * s.out_h, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t n = row / s.out_h;
      const std::int64_t oy = row % s.out_h;
      for (std::int64_t ox = 0; ox < s.out_w; ++ox) {
        float* op = out + (row * s.out_w + ox) * c;
        for (std::int64_t ch = 0; ch < full; ch += kPanelWidth) {
          VecF acc = bias ? vec_load(bias + ch) : vec_splat(0.0f);
          for (int ky = 0; ky < s.kh; ++ky) {
            const std::int64_t iy = oy * s.sh + ky - s.pad_top;
            if (iy < 0 || iy >= s.in_h) continue;
            for (int kx = 0; kx < s.kw; ++kx) {
              const std::int64_t ix = ox * s.sw + kx - s.pad_left;
              if (ix < 0 || ix >= s.in_w) continue;
              const float* xp =
                  x + ((n * s.in_h + iy) * s.in_w + ix) * c + ch;
              const float* wp = w + (static_cast<std::int64_t>(ky) * s.kw + kx) * c + ch;
              acc += vec_load(xp) * vec_load(wp);
            }
          }
          store_clamped(op + ch, acc, lo, hi, kPanelWidth);
        }
        for (std::int64_t ch = full; ch < c; ++ch) {
          float a = bias ? bias[ch] : 0.0f;
          for (int ky = 0; ky < s.kh; ++ky) {
            const std::int64_t iy = oy * s.sh + ky - s.pad_top;
            if (iy < 0 || iy >= s.in_h) continue;
            for (int kx = 0; kx < s.kw; ++kx) {
              const std::int64_t ix = ox * s.sw + kx - s.pad_left;
              if (ix < 0 || ix >= s.in_w) continue;
              a += x[((n * s.in_h + iy) * s.in_w + ix) * c + ch] *
                   w[(static_cast<std::int64_t>(ky) * s.kw + kx) * c + ch];
            }
          }
          op[ch] = std::min(std::max(a, act.lo), act.hi);
        }
      }
    }
  });
}

}  // namespace gauge::nn::kernels::detail
