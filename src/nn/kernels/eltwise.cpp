// Portable-SIMD elementwise / activation kernels: 8-lane main loop with a
// scalar tail. These back Relu/Relu6, Add, Mul, folded BatchNorm, and the
// Quantize/Dequantize layers for every non-reference backend.
#include <algorithm>
#include <cmath>

#include "nn/kernels/kernels.hpp"
#include "nn/kernels/simd.hpp"

namespace gauge::nn::kernels {

void clamp_f32(const float* x, float lo, float hi, float* out, std::int64_t n) {
  const VecF vlo = vec_splat(lo), vhi = vec_splat(hi);
  std::int64_t i = 0;
  for (; i + kVecLanes <= n; i += kVecLanes) {
    vec_store(out + i, vec_max(vec_min(vec_load(x + i), vhi), vlo));
  }
  for (; i < n; ++i) out[i] = std::min(std::max(x[i], lo), hi);
}

void add_f32(const float* a, const float* b, float* out, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + kVecLanes <= n; i += kVecLanes) {
    vec_store(out + i, vec_load(a + i) + vec_load(b + i));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void mul_f32(const float* a, const float* b, float* out, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + kVecLanes <= n; i += kVecLanes) {
    vec_store(out + i, vec_load(a + i) * vec_load(b + i));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void scale_shift_f32(const float* x, const float* scale, const float* shift,
                     std::int64_t channels, float* out, std::int64_t n) {
  // Vectorise along the channel axis when it is wide enough and n is a
  // whole number of channel rows (always true for NHWC activations).
  if (channels >= kVecLanes && n % channels == 0) {
    const std::int64_t cfull = channels - channels % kVecLanes;
    for (std::int64_t base = 0; base < n; base += channels) {
      std::int64_t c = 0;
      for (; c < cfull; c += kVecLanes) {
        vec_store(out + base + c, vec_load(x + base + c) * vec_load(scale + c) +
                                      vec_load(shift + c));
      }
      for (; c < channels; ++c) {
        out[base + c] = x[base + c] * scale[c] + shift[c];
      }
    }
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t c = i % channels;
    out[i] = x[i] * scale[c] + shift[c];
  }
}

void quantize_f32(const float* x, float scale, std::int32_t zero_point,
                  std::int8_t* out, std::int64_t n) {
  const float inv = scale != 0.0f ? 1.0f / scale : 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float q = std::round(x[i] * inv) + static_cast<float>(zero_point);
    out[i] = static_cast<std::int8_t>(std::clamp(q, -128.0f, 127.0f));
  }
}

void dequantize_i8(const std::int8_t* x, float scale, std::int32_t zero_point,
                   float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = (static_cast<float>(x[i]) - static_cast<float>(zero_point)) *
             scale;
  }
}

}  // namespace gauge::nn::kernels
