// Dispatch layer of the kernel engine: backend names, weight packing, and
// the per-layer entry points that pick an implementation from (backend,
// input dtype, packed layout) and construct the output tensor exactly the
// way the original interpreter did (dtype + quant metadata), so every
// backend is a drop-in replacement.
#include "nn/kernels/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/kernels/impl.hpp"

namespace gauge::nn::kernels {

using detail::ConvShape;
using detail::QuantIo;

const char* exec_backend_name(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::Reference:
      return "reference";
    case ExecBackend::Optimised:
      return "optimised";
    case ExecBackend::Quantised:
      return "quantised";
    case ExecBackend::kCount:
      break;
  }
  return "unknown";
}

std::optional<ExecBackend> parse_exec_backend(std::string_view name) {
  if (name == "reference" || name == "ref") return ExecBackend::Reference;
  if (name == "optimised" || name == "optimized") return ExecBackend::Optimised;
  if (name == "quantised" || name == "quantized") return ExecBackend::Quantised;
  return std::nullopt;
}

const std::vector<ExecBackend>& exec_backends() {
  static const std::vector<ExecBackend> all = {
      ExecBackend::Reference, ExecBackend::Optimised, ExecBackend::Quantised};
  return all;
}

void serial_for(std::int64_t total, const ChunkFn& fn) {
  if (total > 0) fn(0, total);
}

PadOffsets same_padding(std::int64_t in_h, std::int64_t in_w,
                        std::int64_t out_h, std::int64_t out_w, int kh, int kw,
                        int sh, int sw, Padding padding) {
  if (padding == Padding::Valid) return {};
  const std::int64_t pad_h =
      std::max<std::int64_t>(0, (out_h - 1) * sh + kh - in_h);
  const std::int64_t pad_w =
      std::max<std::int64_t>(0, (out_w - 1) * sw + kw - in_w);
  return {pad_h / 2, pad_w / 2};
}

PackedWeights pack_weights(const Tensor& w, std::int64_t rows,
                           std::int64_t cols, bool quantised) {
  PackedWeights packed;
  packed.rows = rows;
  packed.cols = cols;
  packed.panels = (cols + kPanelWidth - 1) / kPanelWidth;
  const auto size =
      static_cast<std::size_t>(packed.panels * rows * kPanelWidth);
  if (quantised && w.dtype() == DType::I8) {
    packed.i16.assign(size, 0);
    packed.scale = w.quant_scale;
    for (std::int64_t k = 0; k < rows; ++k) {
      for (std::int64_t n = 0; n < cols; ++n) {
        const std::int64_t p = n / kPanelWidth;
        const std::int64_t lane = n % kPanelWidth;
        packed.i16[static_cast<std::size_t>(
            (p * rows + k) * kPanelWidth + lane)] =
            static_cast<std::int16_t>(
                static_cast<std::int32_t>(
                    w.i8()[static_cast<std::size_t>(k * cols + n)]) -
                w.quant_zero_point);
      }
    }
    return packed;
  }
  packed.f32.assign(size, 0.0f);
  for (std::int64_t k = 0; k < rows; ++k) {
    for (std::int64_t n = 0; n < cols; ++n) {
      const std::int64_t p = n / kPanelWidth;
      const std::int64_t lane = n % kPanelWidth;
      packed.f32[static_cast<std::size_t>((p * rows + k) * kPanelWidth +
                                          lane)] =
          weight_value(w, static_cast<std::size_t>(k * cols + n));
    }
  }
  return packed;
}

PackedWeights pack_depthwise(const Tensor& w, bool quantised) {
  PackedWeights packed;
  const auto n = static_cast<std::int64_t>(
      w.dtype() == DType::I8 ? w.i8().size() : w.f32().size());
  packed.rows = n;
  packed.cols = 1;
  packed.panels = 0;  // flat layout
  if (quantised && w.dtype() == DType::I8) {
    packed.i16.resize(static_cast<std::size_t>(n));
    packed.scale = w.quant_scale;
    for (std::int64_t i = 0; i < n; ++i) {
      packed.i16[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
          static_cast<std::int32_t>(w.i8()[static_cast<std::size_t>(i)]) -
          w.quant_zero_point);
    }
    return packed;
  }
  packed.f32.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    packed.f32[static_cast<std::size_t>(i)] =
        weight_value(w, static_cast<std::size_t>(i));
  }
  return packed;
}

namespace {

ConvShape conv_shape(const Layer& layer, const Shape& xs,
                     const Shape& out_shape, std::int64_t cout) {
  ConvShape s;
  s.batch = xs[0];
  s.in_h = xs[1];
  s.in_w = xs[2];
  s.cin = xs[3];
  s.out_h = out_shape[1];
  s.out_w = out_shape[2];
  s.cout = cout;
  s.kh = layer.kernel_h;
  s.kw = layer.kernel_w;
  s.sh = layer.stride_h;
  s.sw = layer.stride_w;
  const PadOffsets pad =
      same_padding(s.in_h, s.in_w, s.out_h, s.out_w, s.kh, s.kw, s.sh, s.sw,
                   layer.padding);
  s.pad_top = pad.top;
  s.pad_left = pad.left;
  return s;
}

// Constructs the layer output tensor the way the original interpreter did:
// f32 stays f32; i8 takes the layer's output quantisation parameters.
Tensor make_output(const Layer& layer, const Shape& out_shape, DType dtype) {
  Tensor out{out_shape, dtype};
  if (dtype == DType::I8) {
    out.quant_scale = layer.quant_scale;
    out.quant_zero_point = layer.quant_zero_point;
  }
  return out;
}

const float* bias_ptr(const Layer& layer) {
  if (layer.weights.size() > 1 && layer.weights[1].dtype() == DType::F32) {
    return layer.weights[1].f32().data();
  }
  return nullptr;
}

QuantIo quant_io(const Tensor& x, const Tensor& out) {
  return QuantIo{x.quant_scale, x.quant_zero_point, out.quant_scale,
                 out.quant_zero_point};
}

// Reference fallback keeps non-reference backends total: any (dtype, layout)
// combination an optimised kernel doesn't cover still executes, with the
// fused activation applied as a separate clamp pass.
util::Status finish_reference(util::Status status, Activation act,
                              Tensor* out) {
  if (!status.ok() || act.identity() || out->dtype() != DType::F32) {
    return status;
  }
  clamp_f32(out->f32().data(), act.lo, act.hi, out->f32().data(),
            static_cast<std::int64_t>(out->f32().size()));
  return status;
}

bool has_panels(const PackedWeights* packed) {
  return packed && !packed->empty() && packed->panels > 0;
}

bool has_flat(const PackedWeights* packed) {
  return packed && !packed->empty();
}

}  // namespace

util::Status run_conv2d(ExecBackend backend, const Layer& layer,
                        const Tensor& x, const Shape& out_shape,
                        const PackedWeights* packed, Activation act,
                        Tensor* out, const ParallelFor& parallel) {
  const Shape& ws = layer.weights[0].shape();
  const ConvShape s = conv_shape(layer, x.shape(), out_shape, ws[3]);
  if (x.dtype() == DType::F32) {
    *out = make_output(layer, out_shape, DType::F32);
    if (backend == ExecBackend::Reference || !has_panels(packed)) {
      return finish_reference(
          detail::conv2d_reference(s, layer, x, out, parallel), act, out);
    }
    if (packed->quantised()) {
      detail::conv2d_hybrid(s, x.f32().data(), *packed, bias_ptr(layer), act,
                            out->f32().data(), parallel);
    } else {
      detail::conv2d_f32(s, x.f32().data(), *packed, bias_ptr(layer), act,
                         out->f32().data(), parallel);
    }
    return {};
  }
  if (x.dtype() == DType::I8) {
    if (layer.weights[0].dtype() != DType::I8) {
      return util::Status::failure("int8 conv needs int8 weights");
    }
    *out = make_output(layer, out_shape, DType::I8);
    if (backend != ExecBackend::Reference && has_panels(packed) &&
        packed->quantised()) {
      detail::conv2d_i8(s, x.i8().data(), quant_io(x, *out), *packed,
                        bias_ptr(layer), act, out->i8().data(), parallel);
      return {};
    }
    return detail::conv2d_reference(s, layer, x, out, parallel);
  }
  return util::Status::failure("unsupported input dtype");
}

util::Status run_depthwise(ExecBackend backend, const Layer& layer,
                           const Tensor& x, const Shape& out_shape,
                           const PackedWeights* packed, Activation act,
                           Tensor* out, const ParallelFor& parallel) {
  const Shape& ws = layer.weights[0].shape();
  const ConvShape s = conv_shape(layer, x.shape(), out_shape, ws[2]);
  if (x.dtype() == DType::F32) {
    *out = make_output(layer, out_shape, DType::F32);
    if (backend == ExecBackend::Reference || !has_flat(packed)) {
      return finish_reference(
          detail::depthwise_reference(s, layer, x, out, parallel), act, out);
    }
    if (packed->quantised()) {
      detail::depthwise_hybrid(s, x.f32().data(), *packed, bias_ptr(layer),
                               act, out->f32().data(), parallel);
    } else {
      detail::depthwise_f32(s, x.f32().data(), packed->f32.data(),
                            bias_ptr(layer), act, out->f32().data(), parallel);
    }
    return {};
  }
  if (x.dtype() == DType::I8) {
    if (layer.weights[0].dtype() != DType::I8) {
      return util::Status::failure("int8 dwconv needs int8 weights");
    }
    *out = make_output(layer, out_shape, DType::I8);
    if (backend != ExecBackend::Reference && has_flat(packed) &&
        packed->quantised()) {
      detail::depthwise_i8(s, x.i8().data(), quant_io(x, *out), *packed,
                           bias_ptr(layer), act, out->i8().data(), parallel);
      return {};
    }
    return detail::depthwise_reference(s, layer, x, out, parallel);
  }
  return util::Status::failure("unsupported dwconv dtype");
}

util::Status run_dense(ExecBackend backend, const Layer& layer,
                       const Tensor& x, const Shape& out_shape,
                       const PackedWeights* packed, Activation act,
                       Tensor* out, const ParallelFor& parallel) {
  const std::int64_t in_dim = layer.weights[0].shape()[0];
  const std::int64_t rows = x.elements() / in_dim;
  if (x.dtype() == DType::F32) {
    *out = make_output(layer, out_shape, DType::F32);
    if (backend == ExecBackend::Reference || !has_panels(packed)) {
      return finish_reference(
          detail::dense_reference(layer, x, rows, out, parallel), act, out);
    }
    if (packed->quantised()) {
      detail::gemm_hybrid(rows, in_dim, x.f32().data(), in_dim, *packed,
                          bias_ptr(layer), act, out->f32().data(), parallel);
    } else {
      detail::gemm_f32(rows, in_dim, x.f32().data(), in_dim, *packed,
                       bias_ptr(layer), act, out->f32().data(), parallel);
    }
    return {};
  }
  if (x.dtype() == DType::I8) {
    if (layer.weights[0].dtype() != DType::I8) {
      return util::Status::failure("int8 dense needs int8 weights");
    }
    *out = make_output(layer, out_shape, DType::I8);
    if (backend != ExecBackend::Reference && has_panels(packed) &&
        packed->quantised()) {
      detail::gemm_i8(rows, in_dim, x.i8().data(), in_dim, quant_io(x, *out),
                      *packed, bias_ptr(layer), act, out->i8().data(),
                      parallel);
      return {};
    }
    return detail::dense_reference(layer, x, rows, out, parallel);
  }
  return util::Status::failure("unsupported input dtype");
}

util::Status run_lstm(ExecBackend backend, const Layer& layer, const Tensor& x,
                      const Shape& out_shape, const PackedWeights* packed,
                      Tensor* out, const ParallelFor& parallel) {
  if (x.dtype() != DType::F32) return util::Status::failure("lstm supports f32");
  *out = Tensor{out_shape, DType::F32};
  if (backend == ExecBackend::Reference || !has_panels(packed)) {
    return detail::lstm_reference(layer, x, out);
  }
  // Optimised recurrence: gather [x_t | h] into a contiguous [batch, feat +
  // hidden] block each step and run one packed GEMM for all four gates.
  const Shape& xs = x.shape();
  const std::int64_t batch = xs[0], steps = xs[1], feat = xs[2];
  const std::int64_t hidden = layer.units;
  const float* bias = bias_ptr(layer);
  const std::int64_t in_dim = feat + hidden;
  std::vector<float> h(static_cast<std::size_t>(batch * hidden), 0.0f);
  std::vector<float> cstate(static_cast<std::size_t>(batch * hidden), 0.0f);
  std::vector<float> xin(static_cast<std::size_t>(batch * in_dim), 0.0f);
  std::vector<float> gates(static_cast<std::size_t>(batch * 4 * hidden), 0.0f);
  const Activation act{};  // gate nonlinearity handled below, no clamp
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t b = 0; b < batch; ++b) {
      float* row = xin.data() + b * in_dim;
      std::copy_n(x.f32().data() + (b * steps + t) * feat,
                  static_cast<std::size_t>(feat), row);
      std::copy_n(h.data() + b * hidden, static_cast<std::size_t>(hidden),
                  row + feat);
    }
    if (packed->quantised()) {
      detail::gemm_hybrid(batch, in_dim, xin.data(), in_dim, *packed, bias,
                          act, gates.data(), parallel);
    } else {
      detail::gemm_f32(batch, in_dim, xin.data(), in_dim, *packed, bias, act,
                       gates.data(), parallel);
    }
    for (std::int64_t b = 0; b < batch; ++b) {
      const float* g = gates.data() + b * 4 * hidden;
      for (std::int64_t k = 0; k < hidden; ++k) {
        const float ig = 1.0f / (1.0f + std::exp(-g[k]));
        const float fg = 1.0f / (1.0f + std::exp(-g[hidden + k]));
        const float cg = std::tanh(g[2 * hidden + k]);
        const float og = 1.0f / (1.0f + std::exp(-g[3 * hidden + k]));
        const auto hi = static_cast<std::size_t>(b * hidden + k);
        cstate[hi] = fg * cstate[hi] + ig * cg;
        h[hi] = og * std::tanh(cstate[hi]);
        out->f32()[static_cast<std::size_t>((b * steps + t) * hidden + k)] =
            h[hi];
      }
    }
  }
  return {};
}

}  // namespace gauge::nn::kernels
