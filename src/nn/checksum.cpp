#include "nn/checksum.hpp"

#include <algorithm>
#include <map>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace gauge::nn {

namespace {

void hash_tensor(util::Md5& md5, const Tensor& tensor) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(tensor.dtype()));
  w.u32(static_cast<std::uint32_t>(tensor.shape().rank()));
  for (std::int64_t d : tensor.shape().dims) w.i64(d);
  switch (tensor.dtype()) {
    case DType::F32:
      for (float v : tensor.f32()) w.f32(v);
      break;
    case DType::I8:
      for (std::int8_t v : tensor.i8()) w.u8(static_cast<std::uint8_t>(v));
      w.f32(tensor.quant_scale);
      w.i32(tensor.quant_zero_point);
      break;
    case DType::I32:
      for (std::int32_t v : tensor.i32()) w.i32(v);
      break;
  }
  md5.update(w.bytes());
}

void hash_architecture(util::Md5& md5, const Layer& layer) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(layer.type));
  w.u32(static_cast<std::uint32_t>(layer.inputs.size()));
  for (int in : layer.inputs) w.i32(in);
  w.i32(layer.kernel_h);
  w.i32(layer.kernel_w);
  w.i32(layer.stride_h);
  w.i32(layer.stride_w);
  w.u8(static_cast<std::uint8_t>(layer.padding));
  w.i32(layer.units);
  w.i32(layer.axis);
  w.i32(layer.resize_scale);
  for (std::int64_t v : layer.slice_begin) w.i64(v);
  for (std::int64_t v : layer.slice_size) w.i64(v);
  for (std::int64_t v : layer.target_shape) w.i64(v);
  for (std::int64_t v : layer.input_shape.dims) w.i64(v);
  w.i32(layer.weight_bits);
  w.i32(layer.act_bits);
  md5.update(w.bytes());
}

}  // namespace

std::string model_checksum(const Graph& graph) {
  util::Md5 md5;
  for (const auto& layer : graph.layers()) {
    hash_architecture(md5, layer);
    for (const auto& w : layer.weights) hash_tensor(md5, w);
  }
  return md5.hex_digest();
}

std::string architecture_checksum(const Graph& graph) {
  util::Md5 md5;
  for (const auto& layer : graph.layers()) hash_architecture(md5, layer);
  return md5.hex_digest();
}

std::vector<std::string> layer_weight_checksums(const Graph& graph) {
  std::vector<std::string> out;
  for (const auto& layer : graph.layers()) {
    if (!layer.has_weights()) continue;
    util::Md5 md5;
    for (const auto& w : layer.weights) hash_tensor(md5, w);
    out.push_back(md5.hex_digest());
  }
  return out;
}

double shared_layer_fraction(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  if (a.empty()) return 0.0;
  std::map<std::string, int> available;
  for (const auto& digest : b) available[digest]++;
  std::size_t shared = 0;
  for (const auto& digest : a) {
    auto it = available.find(digest);
    if (it != available.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  return static_cast<double>(shared) / static_cast<double>(a.size());
}

int differing_layer_count(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.size() != b.size()) return -1;
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++diff;
  }
  return diff;
}

}  // namespace gauge::nn
