#include "nn/training.hpp"

#include <algorithm>
#include <limits>

namespace gauge::nn {

TrainingCost training_step_cost(const ModelTrace& trace,
                                int trainable_layers) {
  TrainingCost cost;
  cost.forward_flops = trace.total_flops;

  // Index of the lowest (earliest) trainable weighted layer.
  int remaining = trainable_layers < 0
                      ? std::numeric_limits<int>::max()
                      : trainable_layers;
  std::size_t lowest_trainable = trace.layers.size();
  for (std::size_t i = trace.layers.size(); i-- > 0 && remaining > 0;) {
    if (trace.layers[i].params > 0) {
      lowest_trainable = i;
      --remaining;
    }
  }
  if (lowest_trainable == trace.layers.size()) {
    // Nothing trainable: inference only.
    return cost;
  }

  for (std::size_t i = 0; i < trace.layers.size(); ++i) {
    const LayerCost& layer = trace.layers[i];
    if (i < lowest_trainable) continue;  // frozen prefix: forward only
    // Gradient propagation through this layer (~forward cost).
    cost.backward_flops += layer.flops;
    // Activations of layers in the backprop region must be stashed.
    cost.activation_stash_bytes +=
        layer.output_shape.elements() * 4;  // fp32 stash
    if (layer.params > 0) {
      // Every weighted layer at or after lowest_trainable is trainable.
      // Weight-gradient computation (~forward MACs again).
      cost.backward_flops += 2 * layer.macs;
      // SGD-style update: a few flops per parameter.
      cost.update_flops += 4 * layer.params;
      cost.trainable_params += layer.params;
    }
  }
  return cost;
}

}  // namespace gauge::nn
