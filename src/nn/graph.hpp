// Model graph: a DAG of layers with exactly one Input node per model input.
// Provides validation, topological order and shape inference.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "util/result.hpp"

namespace gauge::nn {

// Input modality, used by the analysis layer to bucket models (Fig. 6/7).
enum class Modality { Image, Text, Audio, Sensor, Unknown };
const char* modality_name(Modality m);

class Graph {
 public:
  // Adds a layer; returns its index. Inputs must already exist.
  int add(Layer layer);

  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& layers() { return layers_; }
  const Layer& layer(int idx) const { return layers_[static_cast<std::size_t>(idx)]; }
  Layer& layer(int idx) { return layers_[static_cast<std::size_t>(idx)]; }
  std::size_t size() const { return layers_.size(); }

  std::string name;

  // Indices of Input layers, in add order.
  std::vector<int> input_indices() const;
  // Indices of layers no other layer consumes (the model outputs).
  std::vector<int> output_indices() const;

  // Checks DAG-ness (inputs strictly precede consumers), index validity and
  // per-layer arity.
  util::Status validate() const;

  // Layers are stored in topological order by construction (add() enforces
  // producer-before-consumer), so this is the identity permutation; exposed
  // for readability at call sites.
  std::vector<int> topological_order() const;

  std::int64_t total_parameters() const;

 private:
  std::vector<Layer> layers_;
};

// Shape inference: returns one output shape per layer (index-aligned).
// Fails on rank/arity mismatches.
util::Result<std::vector<Shape>> infer_shapes(const Graph& graph);

// Same, with the Input layers' declared shapes overridden positionally
// (input_indices() order). Lets a caller infer batched shapes without
// copying and mutating the graph.
util::Result<std::vector<Shape>> infer_shapes(
    const Graph& graph, const std::vector<Shape>& input_shapes);

// Expected number of inputs for a layer type (-1 = variadic >= 1).
int expected_arity(LayerType type);

}  // namespace gauge::nn
