#include "nn/interp.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/span.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace gauge::nn {

namespace {

bool fusable_producer(LayerType type) {
  return type == LayerType::Conv2D || type == LayerType::DepthwiseConv2D ||
         type == LayerType::Dense;
}

using Fail = util::Result<std::vector<Tensor>>;

}  // namespace

Interpreter::Interpreter(const Graph& graph, unsigned threads,
                         kernels::ExecBackend backend)
    : graph_{graph}, backend_{backend} {
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  fused_act_.assign(graph.size(), kernels::Activation{});
  fused_move_.assign(graph.size(), 0);
  if (backend_ == kernels::ExecBackend::Reference) return;

  // Pack conv/dense/lstm weights once; the quantised backend keeps int8
  // weights in integer panels, everything else is dequantised to f32 panels.
  const bool want_int = backend_ == kernels::ExecBackend::Quantised;
  packed_.resize(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Layer& layer = graph.layer(static_cast<int>(i));
    if (layer.weights.empty()) continue;
    const Tensor& w = layer.weights[0];
    const bool quantised = want_int && w.dtype() == DType::I8;
    switch (layer.type) {
      case LayerType::Conv2D: {
        const Shape& ws = w.shape();
        packed_[i] = kernels::pack_weights(w, ws[0] * ws[1] * ws[2], ws[3],
                                           quantised);
        break;
      }
      case LayerType::DepthwiseConv2D:
        packed_[i] = kernels::pack_depthwise(w, quantised);
        break;
      case LayerType::Dense:
      case LayerType::Lstm: {
        const Shape& ws = w.shape();
        packed_[i] = kernels::pack_weights(w, ws[0], ws[1], quantised);
        break;
      }
      default:
        break;
    }
  }

  // Fuse each Relu/Relu6 whose sole producer is a conv/dense layer with no
  // other consumer: the clamp folds into that kernel's store and the
  // activation layer itself degenerates to a tensor move at run time.
  std::vector<int> consumers(graph.size(), 0);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (int input : graph.layer(static_cast<int>(i)).inputs) {
      ++consumers[static_cast<std::size_t>(input)];
    }
  }
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Layer& layer = graph.layer(static_cast<int>(i));
    if (layer.type != LayerType::Relu && layer.type != LayerType::Relu6) {
      continue;
    }
    const auto p = static_cast<std::size_t>(layer.inputs[0]);
    if (!fusable_producer(graph.layer(static_cast<int>(p)).type)) continue;
    if (consumers[p] != 1) continue;
    fused_act_[p] = kernels::Activation{
        0.0f, layer.type == LayerType::Relu6
                  ? 6.0f
                  : std::numeric_limits<float>::infinity()};
    fused_move_[i] = 1;
  }
}

util::Result<std::vector<Tensor>> Interpreter::run(
    const std::vector<Tensor>& inputs) {
  telemetry::Span span{"nn.interp.run"};
  if (!graph_.name.empty()) span.annotate("graph", graph_.name);
  telemetry::current_registry().counter("gauge.nn.interp.runs").increment();
  // Bind inputs: the actual shapes override the declared input shapes (so a
  // caller can batch) without copying the graph.
  const auto input_idx = graph_.input_indices();
  if (inputs.size() != input_idx.size()) {
    return Fail::failure(util::format("expected %zu inputs, got %zu",
                                      input_idx.size(), inputs.size()));
  }
  std::vector<Shape> input_shapes;
  input_shapes.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Shape& declared = graph_.layer(input_idx[i]).input_shape;
    const Shape& actual = inputs[i].shape();
    if (declared.rank() != actual.rank()) {
      return Fail::failure("input rank mismatch");
    }
    for (std::size_t d = 1; d < declared.rank(); ++d) {
      if (declared[d] != actual[d]) {
        return Fail::failure(util::format(
            "input %zu dim %zu mismatch: declared %s, got %s", i, d,
            declared.str().c_str(), actual.str().c_str()));
      }
    }
    input_shapes.push_back(actual);
  }

  auto shapes = infer_shapes(graph_, input_shapes);
  if (!shapes.ok()) return Fail::failure(shapes.error());

  std::vector<Tensor> values(graph_.size());

  // Liveness for peak-memory accounting.
  std::vector<int> last_use(graph_.size(), -1);
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    for (int in : graph_.layer(static_cast<int>(i)).inputs) {
      last_use[static_cast<std::size_t>(in)] =
          std::max(last_use[static_cast<std::size_t>(in)], static_cast<int>(i));
    }
  }
  for (int out : graph_.output_indices()) {
    last_use[static_cast<std::size_t>(out)] = static_cast<int>(graph_.size());
  }

  std::int64_t live_bytes = 0;
  std::int64_t peak = 0;
  stats_ = RunStats{};

  kernels::ParallelFor parallel =
      [&](std::int64_t total, const kernels::ChunkFn& fn) {
        if (pool_) {
          pool_->parallel_for(total, fn);
        } else {
          fn(0, total);
        }
      };

  auto packed_for = [&](std::size_t i) -> const kernels::PackedWeights* {
    if (i < packed_.size() && !packed_[i].empty()) return &packed_[i];
    return nullptr;
  };

  std::size_t next_input = 0;
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    const Layer& layer = graph_.layer(static_cast<int>(i));
    const Shape& out_shape = shapes.value()[i];
    auto in = [&](std::size_t slot) -> const Tensor& {
      return values[static_cast<std::size_t>(layer.inputs[slot])];
    };
    auto fail = [&](const std::string& why) {
      return Fail::failure(util::format("layer %zu (%s '%s'): %s", i,
                                        layer_type_name(layer.type),
                                        layer.name.c_str(), why.c_str()));
    };

    Tensor out;
    switch (layer.type) {
      case LayerType::Input: {
        out = inputs[next_input++];
        break;
      }
      case LayerType::Conv2D: {
        auto status = kernels::run_conv2d(backend_, layer, in(0), out_shape,
                                          packed_for(i), fused_act_[i], &out,
                                          parallel);
        if (!status.ok()) return fail(status.error());
        break;
      }
      case LayerType::DepthwiseConv2D: {
        auto status = kernels::run_depthwise(backend_, layer, in(0), out_shape,
                                             packed_for(i), fused_act_[i],
                                             &out, parallel);
        if (!status.ok()) return fail(status.error());
        break;
      }
      case LayerType::Dense: {
        auto status = kernels::run_dense(backend_, layer, in(0), out_shape,
                                         packed_for(i), fused_act_[i], &out,
                                         parallel);
        if (!status.ok()) return fail(status.error());
        break;
      }
      case LayerType::MaxPool2D:
      case LayerType::AvgPool2D: {
        const Tensor& x = in(0);
        const Shape& xs = x.shape();
        const std::int64_t oh = out_shape[1], ow = out_shape[2], c = xs[3];
        const auto pad = kernels::same_padding(
            xs[1], xs[2], oh, ow, layer.kernel_h, layer.kernel_w,
            layer.stride_h, layer.stride_w, layer.padding);
        const bool is_max = layer.type == LayerType::MaxPool2D;
        if (x.dtype() == DType::F32) {
          out = Tensor{out_shape, DType::F32};
          for (std::int64_t n = 0; n < out_shape[0]; ++n) {
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                for (std::int64_t ch = 0; ch < c; ++ch) {
                  float best = -3.4e38f;
                  float sum = 0.0f;
                  int count = 0;
                  for (int ky = 0; ky < layer.kernel_h; ++ky) {
                    const std::int64_t iy = oy * layer.stride_h + ky - pad.top;
                    if (iy < 0 || iy >= xs[1]) continue;
                    for (int kx = 0; kx < layer.kernel_w; ++kx) {
                      const std::int64_t ix = ox * layer.stride_w + kx - pad.left;
                      if (ix < 0 || ix >= xs[2]) continue;
                      const float v = x.f32()[static_cast<std::size_t>(
                          ((n * xs[1] + iy) * xs[2] + ix) * c + ch)];
                      best = std::max(best, v);
                      sum += v;
                      ++count;
                    }
                  }
                  out.f32()[static_cast<std::size_t>(
                      ((n * oh + oy) * ow + ox) * c + ch)] =
                      is_max ? best : (count ? sum / static_cast<float>(count) : 0.0f);
                }
              }
            }
          }
        } else if (x.dtype() == DType::I8) {
          out = Tensor{out_shape, DType::I8};
          out.quant_scale = x.quant_scale;
          out.quant_zero_point = x.quant_zero_point;
          for (std::int64_t n = 0; n < out_shape[0]; ++n) {
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                for (std::int64_t ch = 0; ch < c; ++ch) {
                  std::int8_t best = -128;
                  std::int32_t sum = 0;
                  int count = 0;
                  for (int ky = 0; ky < layer.kernel_h; ++ky) {
                    const std::int64_t iy = oy * layer.stride_h + ky - pad.top;
                    if (iy < 0 || iy >= xs[1]) continue;
                    for (int kx = 0; kx < layer.kernel_w; ++kx) {
                      const std::int64_t ix = ox * layer.stride_w + kx - pad.left;
                      if (ix < 0 || ix >= xs[2]) continue;
                      const std::int8_t v = x.i8()[static_cast<std::size_t>(
                          ((n * xs[1] + iy) * xs[2] + ix) * c + ch)];
                      best = std::max(best, v);
                      sum += v;
                      ++count;
                    }
                  }
                  const std::int8_t avg =
                      count > 0
                          ? static_cast<std::int8_t>(std::clamp<std::int32_t>(
                                (sum + (sum >= 0 ? count / 2 : -count / 2)) /
                                    count,
                                -128, 127))
                          : static_cast<std::int8_t>(0);
                  out.i8()[static_cast<std::size_t>(
                      ((n * oh + oy) * ow + ox) * c + ch)] = is_max ? best : avg;
                }
              }
            }
          }
        } else {
          return fail("unsupported pool dtype");
        }
        break;
      }
      case LayerType::GlobalAvgPool: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("global pool supports f32");
        const Shape& xs = x.shape();
        out = Tensor{out_shape, DType::F32};
        const std::int64_t hw = xs[1] * xs[2];
        for (std::int64_t n = 0; n < xs[0]; ++n) {
          for (std::int64_t ch = 0; ch < xs[3]; ++ch) {
            float sum = 0.0f;
            for (std::int64_t p = 0; p < hw; ++p) {
              sum += x.f32()[static_cast<std::size_t>((n * hw + p) * xs[3] + ch)];
            }
            out.f32()[static_cast<std::size_t>(n * xs[3] + ch)] =
                sum / static_cast<float>(hw);
          }
        }
        break;
      }
      case LayerType::Relu:
      case LayerType::Relu6: {
        const auto p = static_cast<std::size_t>(layer.inputs[0]);
        if (fused_move_[i] && values[p].dtype() == DType::F32) {
          // The producing kernel already applied the clamp; this layer is a
          // tensor move. live_bytes compensation: ownership transfers, the
          // post-switch accounting re-adds the same bytes.
          const auto moved = static_cast<std::int64_t>(values[p].byte_size());
          out = std::move(values[p]);
          live_bytes -= moved;
          ++stats_.fused_activations;
          break;
        }
        const Tensor& x = in(0);
        const float hi = layer.type == LayerType::Relu6 ? 6.0f : 3.4e38f;
        if (x.dtype() == DType::F32) {
          out = Tensor{out_shape, DType::F32};
          kernels::clamp_f32(x.f32().data(), 0.0f, hi, out.f32().data(),
                             static_cast<std::int64_t>(x.f32().size()));
        } else if (x.dtype() == DType::I8) {
          out = Tensor{out_shape, DType::I8};
          out.quant_scale = x.quant_scale;
          out.quant_zero_point = x.quant_zero_point;
          const auto zp = static_cast<std::int8_t>(
              std::clamp<std::int32_t>(x.quant_zero_point, -128, 127));
          const float hi_q_f =
              layer.type == LayerType::Relu6
                  ? std::round(6.0f / x.quant_scale) +
                        static_cast<float>(x.quant_zero_point)
                  : 127.0f;
          const auto hi_q = static_cast<std::int8_t>(
              std::clamp(hi_q_f, -128.0f, 127.0f));
          for (std::size_t k = 0; k < x.i8().size(); ++k) {
            out.i8()[k] = std::clamp(x.i8()[k], zp, hi_q);
          }
        } else {
          return fail("unsupported relu dtype");
        }
        break;
      }
      case LayerType::Sigmoid:
      case LayerType::Tanh: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("activation supports f32");
        out = Tensor{out_shape, DType::F32};
        for (std::size_t k = 0; k < x.f32().size(); ++k) {
          out.f32()[k] = layer.type == LayerType::Sigmoid
                             ? 1.0f / (1.0f + std::exp(-x.f32()[k]))
                             : std::tanh(x.f32()[k]);
        }
        break;
      }
      case LayerType::Softmax: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("softmax supports f32");
        out = Tensor{out_shape, DType::F32};
        const std::int64_t last = out_shape.dims.back();
        const std::int64_t rows = x.elements() / last;
        for (std::int64_t r = 0; r < rows; ++r) {
          const std::size_t base = static_cast<std::size_t>(r * last);
          float max_v = -3.4e38f;
          for (std::int64_t k = 0; k < last; ++k) {
            max_v = std::max(max_v, x.f32()[base + static_cast<std::size_t>(k)]);
          }
          float sum = 0.0f;
          for (std::int64_t k = 0; k < last; ++k) {
            const float e = std::exp(x.f32()[base + static_cast<std::size_t>(k)] - max_v);
            out.f32()[base + static_cast<std::size_t>(k)] = e;
            sum += e;
          }
          for (std::int64_t k = 0; k < last; ++k) {
            out.f32()[base + static_cast<std::size_t>(k)] /= sum;
          }
        }
        break;
      }
      case LayerType::Add:
      case LayerType::Mul: {
        const Tensor& a = in(0);
        const Tensor& b = in(1);
        if (a.dtype() != DType::F32 || b.dtype() != DType::F32) {
          return fail("elementwise supports f32");
        }
        out = Tensor{out_shape, DType::F32};
        if (layer.type == LayerType::Add) {
          kernels::add_f32(a.f32().data(), b.f32().data(), out.f32().data(),
                           static_cast<std::int64_t>(a.f32().size()));
        } else {
          kernels::mul_f32(a.f32().data(), b.f32().data(), out.f32().data(),
                           static_cast<std::int64_t>(a.f32().size()));
        }
        break;
      }
      case LayerType::BatchNorm: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("batch_norm supports f32");
        const auto& scale = layer.weights[0].f32();
        const auto& shift = layer.weights[1].f32();
        out = Tensor{out_shape, DType::F32};
        kernels::scale_shift_f32(x.f32().data(), scale.data(), shift.data(),
                                 static_cast<std::int64_t>(scale.size()),
                                 out.f32().data(),
                                 static_cast<std::int64_t>(x.f32().size()));
        break;
      }
      case LayerType::Concat: {
        const std::size_t rank = out_shape.rank();
        const auto ax = static_cast<std::size_t>(
            layer.axis >= 0 ? layer.axis
                            : static_cast<std::int64_t>(rank) + layer.axis);
        if (in(0).dtype() != DType::F32) return fail("concat supports f32");
        out = Tensor{out_shape, DType::F32};
        // Outer = product of dims before axis; inner = product after.
        std::int64_t outer = 1;
        for (std::size_t d = 0; d < ax; ++d) outer *= out_shape[d];
        std::int64_t inner = 1;
        for (std::size_t d = ax + 1; d < rank; ++d) inner *= out_shape[d];
        std::int64_t axis_offset = 0;
        for (std::size_t s = 0; s < layer.inputs.size(); ++s) {
          const Tensor& src = in(s);
          const std::int64_t src_axis = src.shape()[ax];
          for (std::int64_t o = 0; o < outer; ++o) {
            const std::size_t dst_base = static_cast<std::size_t>(
                (o * out_shape[ax] + axis_offset) * inner);
            const std::size_t src_base =
                static_cast<std::size_t>(o * src_axis * inner);
            std::copy_n(src.f32().begin() + static_cast<std::ptrdiff_t>(src_base),
                        static_cast<std::size_t>(src_axis * inner),
                        out.f32().begin() + static_cast<std::ptrdiff_t>(dst_base));
          }
          axis_offset += src_axis;
        }
        break;
      }
      case LayerType::ResizeNearest: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("resize supports f32");
        const Shape& xs = x.shape();
        out = Tensor{out_shape, DType::F32};
        const int s = layer.resize_scale;
        for (std::int64_t n = 0; n < out_shape[0]; ++n) {
          for (std::int64_t oy = 0; oy < out_shape[1]; ++oy) {
            for (std::int64_t ox = 0; ox < out_shape[2]; ++ox) {
              const std::int64_t iy = oy / s;
              const std::int64_t ix = ox / s;
              const std::size_t src = static_cast<std::size_t>(
                  ((n * xs[1] + iy) * xs[2] + ix) * xs[3]);
              const std::size_t dst = static_cast<std::size_t>(
                  ((n * out_shape[1] + oy) * out_shape[2] + ox) * xs[3]);
              std::copy_n(x.f32().begin() + static_cast<std::ptrdiff_t>(src),
                          static_cast<std::size_t>(xs[3]),
                          out.f32().begin() + static_cast<std::ptrdiff_t>(dst));
            }
          }
        }
        break;
      }
      case LayerType::Slice: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("slice supports f32");
        const Shape& xs = x.shape();
        out = Tensor{out_shape, DType::F32};
        // Generic strided copy via mixed-radix index walk.
        const std::size_t rank = xs.rank();
        std::vector<std::int64_t> idx(rank, 0);
        const std::int64_t total = out_shape.elements();
        for (std::int64_t flat = 0; flat < total; ++flat) {
          std::int64_t src_flat = 0;
          for (std::size_t d = 0; d < rank; ++d) {
            src_flat = src_flat * xs[d] + (idx[d] + layer.slice_begin[d]);
          }
          out.f32()[static_cast<std::size_t>(flat)] =
              x.f32()[static_cast<std::size_t>(src_flat)];
          for (std::size_t d = rank; d-- > 0;) {
            if (++idx[d] < out_shape[d]) break;
            idx[d] = 0;
          }
        }
        break;
      }
      case LayerType::Reshape: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("reshape supports f32");
        out = Tensor{out_shape, DType::F32};
        out.f32() = x.f32();
        break;
      }
      case LayerType::Pad: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("pad supports f32");
        const Shape& xs = x.shape();
        out = Tensor{out_shape, DType::F32};  // zero-filled
        for (std::int64_t n = 0; n < xs[0]; ++n) {
          for (std::int64_t y = 0; y < xs[1]; ++y) {
            for (std::int64_t xcol = 0; xcol < xs[2]; ++xcol) {
              const std::size_t src = static_cast<std::size_t>(
                  ((n * xs[1] + y) * xs[2] + xcol) * xs[3]);
              const std::size_t dst = static_cast<std::size_t>(
                  ((n * out_shape[1] + y + layer.pad_top) * out_shape[2] + xcol +
                   layer.pad_left) *
                  xs[3]);
              std::copy_n(x.f32().begin() + static_cast<std::ptrdiff_t>(src),
                          static_cast<std::size_t>(xs[3]),
                          out.f32().begin() + static_cast<std::ptrdiff_t>(dst));
            }
          }
        }
        break;
      }
      case LayerType::Quantize: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("quantize expects f32 input");
        out = Tensor{out_shape, DType::I8};
        out.quant_scale = layer.quant_scale;
        out.quant_zero_point = layer.quant_zero_point;
        kernels::quantize_f32(x.f32().data(), out.quant_scale,
                              out.quant_zero_point, out.i8().data(),
                              static_cast<std::int64_t>(x.f32().size()));
        break;
      }
      case LayerType::Dequantize: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::I8) return fail("dequantize expects i8 input");
        out = Tensor{out_shape, DType::F32};
        kernels::dequantize_i8(x.i8().data(), x.quant_scale,
                               x.quant_zero_point, out.f32().data(),
                               static_cast<std::int64_t>(x.i8().size()));
        break;
      }
      case LayerType::Lstm: {
        auto status = kernels::run_lstm(backend_, layer, in(0), out_shape,
                                        packed_for(i), &out, parallel);
        if (!status.ok()) return fail(status.error());
        break;
      }
      case LayerType::Embedding: {
        const Tensor& x = in(0);
        const Tensor& table = layer.weights[0];
        const std::int64_t vocab = table.shape()[0];
        const std::int64_t dim = table.shape()[1];
        out = Tensor{out_shape, DType::F32};
        const std::int64_t tokens = x.elements();
        for (std::int64_t tkn = 0; tkn < tokens; ++tkn) {
          std::int64_t id;
          if (x.dtype() == DType::I32) {
            id = x.i32()[static_cast<std::size_t>(tkn)];
          } else if (x.dtype() == DType::F32) {
            id = static_cast<std::int64_t>(x.f32()[static_cast<std::size_t>(tkn)]);
          } else {
            return fail("embedding expects i32/f32 ids");
          }
          id = std::clamp<std::int64_t>(id, 0, vocab - 1);
          for (std::int64_t d = 0; d < dim; ++d) {
            out.f32()[static_cast<std::size_t>(tkn * dim + d)] =
                kernels::weight_value(table,
                                      static_cast<std::size_t>(id * dim + d));
          }
        }
        break;
      }
      case LayerType::Transpose2D: {
        const Tensor& x = in(0);
        if (x.dtype() != DType::F32) return fail("transpose supports f32");
        const Shape& xs = x.shape();
        out = Tensor{out_shape, DType::F32};
        for (std::int64_t r = 0; r < xs[0]; ++r) {
          for (std::int64_t cidx = 0; cidx < xs[1]; ++cidx) {
            out.f32()[static_cast<std::size_t>(cidx * xs[0] + r)] =
                x.f32()[static_cast<std::size_t>(r * xs[1] + cidx)];
          }
        }
        break;
      }
      case LayerType::kCount:
        return fail("invalid layer type");
    }

    live_bytes += static_cast<std::int64_t>(out.byte_size());
    peak = std::max(peak, live_bytes);
    values[i] = std::move(out);
    ++stats_.layers_executed;
    for (int input : layer.inputs) {
      const auto idx = static_cast<std::size_t>(input);
      if (last_use[idx] == static_cast<int>(i)) {
        live_bytes -= static_cast<std::int64_t>(values[idx].byte_size());
        values[idx] = Tensor{};
      }
    }
  }

  stats_.peak_activation_bytes = peak;

  std::vector<Tensor> outputs;
  for (int idx : graph_.output_indices()) {
    outputs.push_back(std::move(values[static_cast<std::size_t>(idx)]));
  }
  return outputs;
}

void fill_random(Tensor& tensor, std::uint64_t seed) {
  util::Rng rng{seed};
  switch (tensor.dtype()) {
    case DType::F32:
      for (auto& v : tensor.f32()) v = static_cast<float>(rng.normal(0.0, 1.0));
      break;
    case DType::I8:
      for (auto& v : tensor.i8()) {
        v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      }
      break;
    case DType::I32:
      for (auto& v : tensor.i32()) {
        v = static_cast<std::int32_t>(rng.uniform_int(0, 1000));
      }
      break;
  }
}

util::Result<std::vector<Tensor>> random_inputs(const Graph& graph,
                                                std::uint64_t seed,
                                                std::int64_t batch) {
  using R = util::Result<std::vector<Tensor>>;
  std::vector<Tensor> inputs;
  for (int idx : graph.input_indices()) {
    Shape shape = graph.layer(idx).input_shape;
    if (shape.rank() == 0) return R::failure("input without shape");
    if (batch > 0) shape[0] = batch;
    Tensor t{shape, DType::F32};
    fill_random(t, seed + static_cast<std::uint64_t>(idx) * 7919);
    inputs.push_back(std::move(t));
  }
  return inputs;
}

}  // namespace gauge::nn
