#include "nn/trace.hpp"

#include <algorithm>

namespace gauge::nn {

namespace {

std::int64_t activation_bytes(const Shape& shape, int bits) {
  return shape.elements() * (bits == 8 ? 1 : bits == 16 ? 2 : 4);
}

}  // namespace

std::map<std::string, std::int64_t> ModelTrace::op_family_counts() const {
  std::map<std::string, std::int64_t> counts;
  for (const auto& layer : layers) {
    if (layer.type == LayerType::Input) continue;
    counts[op_family_name(op_family(layer.type))]++;
  }
  return counts;
}

util::Result<ModelTrace> trace_model(const Graph& graph) {
  using R = util::Result<ModelTrace>;
  auto shapes = infer_shapes(graph);
  if (!shapes.ok()) return R::failure(shapes.error());

  ModelTrace trace;
  trace.layers.reserve(graph.size());

  // Liveness: last consumer index per layer for peak-memory accounting.
  std::vector<int> last_use(graph.size(), -1);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (int in : graph.layer(static_cast<int>(i)).inputs) {
      last_use[static_cast<std::size_t>(in)] =
          std::max(last_use[static_cast<std::size_t>(in)], static_cast<int>(i));
    }
  }
  // Model outputs stay live to the end.
  for (int out : graph.output_indices()) {
    last_use[static_cast<std::size_t>(out)] = static_cast<int>(graph.size());
  }

  std::int64_t live_bytes = 0;
  std::vector<std::int64_t> layer_bytes(graph.size(), 0);

  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Layer& layer = graph.layer(static_cast<int>(i));
    const Shape& out = shapes.value()[i];

    LayerCost cost;
    cost.type = layer.type;
    cost.name = layer.name;
    cost.params = layer.parameter_count();
    cost.output_shape = out;

    const std::int64_t out_elems = out.elements();
    std::int64_t in_elems = 0;
    for (int in : layer.inputs) {
      in_elems += shapes.value()[static_cast<std::size_t>(in)].elements();
    }

    switch (layer.type) {
      case LayerType::Input:
        break;
      case LayerType::Conv2D: {
        const Shape& w = layer.weights[0].shape();
        // MACs = out_elems * Kh * Kw * Cin
        cost.macs = out_elems * w[0] * w[1] * w[2];
        break;
      }
      case LayerType::DepthwiseConv2D: {
        const Shape& w = layer.weights[0].shape();
        cost.macs = out_elems * w[0] * w[1];
        break;
      }
      case LayerType::Dense: {
        const Shape& w = layer.weights[0].shape();
        // Rows of the input times the weight matrix.
        cost.macs = (out_elems / w[1]) * w[0] * w[1];
        break;
      }
      case LayerType::Lstm: {
        // Per timestep: (In+H) x 4H matmul + gate math.
        const Shape& w = layer.weights[0].shape();
        const Shape& in = shapes.value()[static_cast<std::size_t>(layer.inputs[0])];
        cost.macs = in[0] * in[1] * w[0] * w[1];
        break;
      }
      case LayerType::Embedding:
        // Lookup only: no MACs, just reads.
        break;
      case LayerType::MaxPool2D:
      case LayerType::AvgPool2D:
        cost.flops = out_elems * layer.kernel_h * layer.kernel_w;
        break;
      case LayerType::GlobalAvgPool:
        cost.flops = in_elems;
        break;
      case LayerType::Relu:
      case LayerType::Relu6:
        cost.flops = out_elems;
        break;
      case LayerType::Sigmoid:
      case LayerType::Tanh:
        cost.flops = out_elems * 4;  // exp-based, count a few flops per element
        break;
      case LayerType::Softmax:
        cost.flops = out_elems * 5;
        break;
      case LayerType::Add:
      case LayerType::Mul:
        cost.flops = out_elems;
        break;
      case LayerType::BatchNorm:
        cost.flops = out_elems * 2;
        break;
      case LayerType::Quantize:
      case LayerType::Dequantize:
        cost.flops = out_elems * 2;
        break;
      case LayerType::Concat:
      case LayerType::ResizeNearest:
      case LayerType::Slice:
      case LayerType::Reshape:
      case LayerType::Pad:
      case LayerType::Transpose2D:
        break;  // pure data movement
      case LayerType::kCount:
        break;
    }

    if (cost.macs > 0) cost.flops += 2 * cost.macs;

    const int act_bits = layer.act_bits;
    const int weight_bits = layer.weight_bits;
    cost.bytes_read =
        in_elems * (act_bits == 8 ? 1 : act_bits == 16 ? 2 : 4) +
        cost.params * (weight_bits == 8 ? 1 : weight_bits == 16 ? 2 : 4);
    cost.bytes_written = activation_bytes(out, act_bits);
    if (layer.type == LayerType::Input) {
      cost.bytes_read = 0;  // input tensor arrives from outside the model
    }

    trace.total_macs += cost.macs;
    trace.total_flops += cost.flops;
    trace.total_params += cost.params;
    trace.total_bytes += cost.bytes_read + cost.bytes_written;

    // Peak activation accounting.
    layer_bytes[i] = activation_bytes(out, act_bits);
    live_bytes += layer_bytes[i];
    trace.peak_activation_bytes = std::max(trace.peak_activation_bytes, live_bytes);
    for (int in : layer.inputs) {
      const auto idx = static_cast<std::size_t>(in);
      if (last_use[idx] == static_cast<int>(i)) {
        live_bytes -= layer_bytes[idx];
      }
    }

    trace.layers.push_back(std::move(cost));
  }
  return trace;
}

}  // namespace gauge::nn
