// Inference backends (paper §6.3): the TFLite CPU baseline, the XNNPACK and
// NNAPI delegates, the TFLite GPU delegate, and the three SNPE runtimes.
// Each backend carries an operator-support matrix (unsupported layers fall
// back to CPU with a partition-transition cost) and speed/power factors
// calibrated to the paper's measured averages:
//   XNNPACK  1.03x faster, 1.13x more efficient than CPU
//   NNAPI    0.49x the speed, 1.66x less efficient (immature NN drivers)
//   SNPE DSP 5.72x faster / 20.3x more efficient than CPU (int8)
//   SNPE GPU 2.28x faster / 8.39x more efficient than CPU
//   SNPE CPU slightly slower than the TFLite CPU baseline
#pragma once

#include <string>

#include "device/soc.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/layer.hpp"

namespace gauge::device {

enum class Backend {
  CpuFp32 = 0,   // TFLite CPU (reference kernels), the baseline
  CpuXnnpack,    // TFLite + XNNPACK delegate
  Nnapi,         // TFLite + NNAPI delegate
  GpuFp32,       // TFLite GPU delegate
  SnpeCpu,
  SnpeGpu,
  SnpeDsp,       // int8
  // Hypothetical A16W8 NPU path (paper §6.1: Hexagon 698 / Arm Ethos class
  // hardware supports 16-bit activations with 8-bit weights, but "existing
  // deployment methodologies fail to exploit them"). Implemented here as
  // the ablation showing what the ecosystem leaves on the table: near-DSP
  // speed with fp16-class representational headroom.
  NpuA16W8,
  kCount,
};

const char* backend_name(Backend backend);

struct BackendProfile {
  // Mean speed multiplier over the CPU baseline for supported layers.
  double speed_factor = 1.0;
  // Mean power multiplier relative to the CPU baseline's active power.
  double power_factor = 1.0;
  // Lognormal sigma of per-model variation around the mean factors.
  double variation_sigma = 0.2;
  // Seconds lost per CPU<->backend partition transition on fallback.
  double transition_cost_s = 150e-6;
  // Runs int8 internally (precision note of §6.3).
  bool int8_precision = false;
  // Requires a Qualcomm DSP to exist on the SoC.
  bool needs_dsp = false;
};

const BackendProfile& backend_profile(Backend backend);

// Whether the backend's kernel library implements this layer type; anything
// unsupported is partitioned back onto the CPU baseline.
bool backend_supports(Backend backend, nn::LayerType type);

// A backend is available on a device when its hardware exists (e.g. SNPE
// DSP needs a Hexagon; SNPE itself needs a Qualcomm SoC).
bool backend_available(Backend backend, const Device& device);

// Which interpreter execution backend (nn/kernels) mirrors this device
// backend when the server runs real inference: the CPU baseline maps to the
// scalar reference kernels, the int8 targets (SNPE DSP, the A16W8 NPU) to
// the quantised kernels, and every accelerated fp32 path to the optimised
// tiled kernels.
nn::kernels::ExecBackend exec_backend_for(Backend backend);

}  // namespace gauge::device
