// SoC and device models for the six targets of Table 1. Per-cluster core
// capabilities drive the scheduler model (sched.hpp); bandwidth, dispatch
// overhead and power constants drive the roofline latency/energy model
// (latency.hpp). Constants are calibrated so the *relative* results of
// Figs. 8-12 and Table 4 reproduce (tier gaps, generation gains, thread
// behaviour); absolute milliseconds are simulator units.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace gauge::device {

struct CoreCluster {
  std::string name;       // e.g. "Cortex-A76"
  int count = 0;
  double freq_ghz = 1.0;
  double flops_per_cycle = 8.0;  // fp32 SIMD throughput per core
  double watts_per_core = 0.5;   // active power at max frequency

  double core_gflops() const { return freq_ghz * flops_per_cycle; }
};

struct Accelerator {
  std::string name;
  double gflops = 0.0;      // effective fp32 throughput
  double watts = 0.0;       // active power
  double int8_speedup = 1.0;  // extra factor when running int8
};

struct Soc {
  std::string name;
  std::vector<CoreCluster> clusters;  // ordered big -> LITTLE
  double mem_bandwidth_gbs = 10.0;
  Accelerator gpu;
  std::optional<Accelerator> dsp;   // Hexagon-style, int8-oriented
  double idle_watts = 0.25;

  int total_cores() const {
    int n = 0;
    for (const auto& c : clusters) n += c.count;
    return n;
  }
};

enum class DeviceTier { Low, Mid, High, DevBoard };
const char* tier_name(DeviceTier tier);

struct Device {
  std::string name;   // "A20", "Q845", ...
  Soc soc;
  int ram_gb = 4;
  double battery_mah = 0.0;   // 0 = open-deck board without battery
  double battery_volts = 3.85;
  DeviceTier tier = DeviceTier::Mid;
  bool open_deck = false;     // HDK: better heat dissipation, vanilla OS
  double screen_watts = 0.4;  // black screen kept on during benchmarks
  // Per-layer kernel dispatch overhead (seconds) - dominated by the OS,
  // drivers and framework, not by FLOPs; the main tier separator for the
  // small models that dominate the corpus.
  double dispatch_overhead_s = 40e-6;
  // Vendor/software efficiency multiplier (driver quality, OS config).
  double sw_efficiency = 1.0;
  // Thermal throttling: sustained-load multiplier floor and how fast the
  // device approaches it (per second of continuous inference).
  double throttle_floor = 0.7;
  double throttle_rate = 0.01;
};

// The six benchmark targets of Table 1. Valid names:
//   "A20"  - Samsung A20, Exynos 7884, low tier
//   "A70"  - Samsung A70, Snapdragon 675, mid tier
//   "S21"  - Samsung S21, Snapdragon 888, high tier
//   "Q845" - Qualcomm SD845 HDK (open deck)
//   "Q855" - Qualcomm SD855 HDK (open deck)
//   "Q888" - Qualcomm SD888 HDK (open deck)
Device make_device(const std::string& name);

// All six, in Table 1 order.
std::vector<Device> all_devices();
// The three phones (tier study) / three boards (generation+energy study).
std::vector<Device> phones();
std::vector<Device> boards();

}  // namespace gauge::device
