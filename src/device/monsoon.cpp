#include "device/monsoon.hpp"

#include "util/rng.hpp"

namespace gauge::device {

Monsoon::Monsoon(double sample_hz, double volts, std::uint64_t noise_seed)
    : sample_hz_{sample_hz}, volts_{volts}, noise_seed_{noise_seed} {}

std::vector<PowerSample> Monsoon::record(
    const std::vector<PowerPhase>& phases) const {
  util::Rng rng{noise_seed_};
  std::vector<PowerSample> samples;
  double t = 0.0;
  const double dt = 1.0 / sample_hz_;
  for (const auto& phase : phases) {
    const double end = t + phase.duration_s;
    while (t < end) {
      PowerSample s;
      s.t_s = t;
      s.volts = volts_;
      const double noisy_watts =
          phase.watts * (1.0 + rng.normal(0.0, 0.01));
      s.amps = std::max(0.0, noisy_watts / volts_);
      samples.push_back(s);
      t += dt;
    }
  }
  return samples;
}

double Monsoon::integrate_energy_j(const std::vector<PowerSample>& samples) {
  double energy = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].t_s - samples[i - 1].t_s;
    energy += 0.5 * (samples[i].watts() + samples[i - 1].watts()) * dt;
  }
  return energy;
}

double Monsoon::mean_power_w(const std::vector<PowerSample>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples) sum += s.watts();
  return sum / static_cast<double>(samples.size());
}

}  // namespace gauge::device
