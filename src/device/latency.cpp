#include "device/latency.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace gauge::device {

namespace {

// Compute-utilisation per op family: how much of peak fp32 throughput the
// kernel achieves. Depthwise convs and recurrent cells are notoriously
// memory/latency-bound — the main source of the FLOPs<->latency
// non-linearity.
double compute_utilisation(nn::LayerType type) {
  switch (nn::op_family(type)) {
    case nn::OpFamily::Conv: return 0.55;
    case nn::OpFamily::DepthConv: return 0.18;
    case nn::OpFamily::Dense: return 0.38;
    case nn::OpFamily::Recurrent: return 0.12;
    case nn::OpFamily::Pool: return 0.22;
    case nn::OpFamily::Activation: return 0.20;
    case nn::OpFamily::Math: return 0.22;
    case nn::OpFamily::Quant: return 0.25;
    case nn::OpFamily::Embedding: return 0.10;
    case nn::OpFamily::Resize:
    case nn::OpFamily::Slice:
    case nn::OpFamily::Shape: return 0.15;
    case nn::OpFamily::Input: return 1.0;
  }
  return 0.3;
}

constexpr double kStreamEfficiency = 0.6;  // achievable share of peak DRAM bw

}  // namespace

double thermal_factor(const Device& device, double sustained_seconds) {
  const double decayed = 1.0 - device.throttle_rate * sustained_seconds;
  return std::clamp(decayed, device.throttle_floor, 1.0);
}

double battery_drain_fraction(const Device& device, double energy_j) {
  if (device.battery_mah <= 0.0) return 0.0;
  const double capacity_j =
      device.battery_mah / 1000.0 * 3600.0 * device.battery_volts;
  return energy_j / capacity_j;
}

double battery_drain_mah(const Device& device, double energy_j) {
  return energy_j / device.battery_volts / 3.6;
}

RunResult simulate_inference(const Device& device, const nn::ModelTrace& trace,
                             const RunConfig& config,
                             std::string_view model_key) {
  RunResult result;
  const BackendProfile& profile = backend_profile(config.backend);

  // Deterministic per-(device, model, backend) variation.
  util::Rng vrng{util::fnv1a64(device.name) * 31 + util::fnv1a64(model_key) +
                 static_cast<std::uint64_t>(config.backend) * 7919};
  const double model_noise = std::exp(vrng.normal(0.0, 0.12));
  const double backend_factor =
      profile.variation_sigma > 0.0
          ? profile.speed_factor * std::exp(vrng.normal(0.0, profile.variation_sigma))
          : profile.speed_factor;

  const SchedResult cpu = schedule(device, config.threads);
  const double thermal = thermal_factor(device, config.sustained_seconds);
  const double cpu_gflops = cpu.effective_gflops * thermal;
  const double bw_gbs = device.soc.mem_bandwidth_gbs * kStreamEfficiency;

  double cpu_time = 0.0;       // time spent on CPU-executed layers
  double backend_time = 0.0;   // time spent on the accelerated layers
  double supported_flops = 0.0;
  int transitions = 0;
  bool prev_supported = true;

  for (const auto& layer : trace.layers) {
    if (layer.type == nn::LayerType::Input) continue;
    const double batch = static_cast<double>(config.batch);
    const double flops = static_cast<double>(layer.flops) * batch;
    // Weight bytes are batch-independent; activation traffic scales.
    const double weight_bytes =
        static_cast<double>(layer.params) * (4.0);  // dominated by fp32 reads
    const double act_bytes =
        (static_cast<double>(layer.bytes_read + layer.bytes_written) -
         static_cast<double>(layer.params) * 4.0) *
        batch;
    const double bytes = weight_bytes + std::max(0.0, act_bytes);

    const double t_compute =
        flops > 0.0
            ? flops / (cpu_gflops * 1e9 * compute_utilisation(layer.type))
            : 0.0;
    const double t_mem = bytes / (bw_gbs * 1e9);
    const double t_layer =
        std::max(t_compute, t_mem) + device.dispatch_overhead_s;

    const bool supported = backend_supports(config.backend, layer.type);
    if (supported) {
      backend_time += t_layer / backend_factor;
      supported_flops += flops;
    } else {
      cpu_time += t_layer;
      result.cpu_fallback = true;
    }
    if (supported != prev_supported) ++transitions;
    prev_supported = supported;
  }

  const double total_flops =
      static_cast<double>(trace.total_flops) * config.batch;
  result.flops = total_flops;
  result.supported_flop_share =
      total_flops > 0.0 ? supported_flops / total_flops : 1.0;

  double latency = (cpu_time + backend_time) * model_noise +
                   transitions * profile.transition_cost_s;
  latency = std::max(latency, device.dispatch_overhead_s);
  result.latency_s = latency;
  result.throughput_ips = static_cast<double>(config.batch) / latency;

  // ---- power ----
  // CPU-side active power scales with how compute-bound the run is.
  const double cpu_active = cpu.active_watts;
  double backend_active = cpu_active * profile.power_factor;
  if (config.backend == Backend::GpuFp32 || config.backend == Backend::SnpeGpu) {
    backend_active = std::min(backend_active, device.soc.gpu.watts);
    backend_active = std::max(backend_active, 0.3 * device.soc.gpu.watts);
  } else if (config.backend == Backend::SnpeDsp && device.soc.dsp) {
    backend_active = std::min(backend_active, device.soc.dsp->watts);
    backend_active = std::max(backend_active, 0.3 * device.soc.dsp->watts);
  }
  const double time_total = cpu_time + backend_time;
  const double active_watts =
      time_total > 0.0
          ? (cpu_active * cpu_time + backend_active * backend_time) / time_total
          : cpu_active;

  // Memory footprint: weights resident once, activations scale with batch.
  double weight_total = 0.0;
  for (const auto& layer : trace.layers) {
    weight_total += static_cast<double>(layer.params) * 4.0;
  }
  result.peak_memory_bytes =
      weight_total + static_cast<double>(trace.peak_activation_bytes) *
                         static_cast<double>(config.batch);

  // CPU utilisation: cores the scheduler occupies, scaled by the share of
  // wall time spent on the CPU (backend runs leave the CPU mostly idle).
  const double total_cores = static_cast<double>(device.soc.total_cores());
  const double cpu_share = time_total > 0.0 ? cpu_time / time_total : 1.0;
  const double backend_is_cpu =
      (config.backend == Backend::CpuFp32 ||
       config.backend == Backend::CpuXnnpack ||
       config.backend == Backend::SnpeCpu)
          ? 1.0
          : cpu_share;
  result.cpu_utilisation =
      std::clamp(static_cast<double>(cpu.cores_used) / total_cores *
                     backend_is_cpu,
                 0.0, 1.0);

  const double soc_watts = device.soc.idle_watts + active_watts;
  const double total_watts = soc_watts + device.screen_watts;
  result.avg_power_w = total_watts;
  result.energy_j = total_watts * latency;
  result.soc_energy_j = soc_watts * latency;
  result.efficiency_mflops_sw =
      result.energy_j > 0.0 ? total_flops / result.soc_energy_j / 1e6 : 0.0;

  // Histogram + counter rather than a Span: simulated inference sits in
  // benchmark hot loops, so per-call span records would flood the trace.
  auto& metrics = telemetry::current_registry();
  metrics.counter("gauge.device.inferences").increment();
  metrics.histogram("gauge.device.latency_ms").observe(result.latency_s * 1e3);
  metrics.histogram("gauge.device.energy_mj").observe(result.energy_j * 1e3);
  return result;
}

std::vector<LayerTiming> layer_breakdown(const Device& device,
                                         const nn::ModelTrace& trace,
                                         const RunConfig& config) {
  const SchedResult cpu = schedule(device, config.threads);
  const double thermal = thermal_factor(device, config.sustained_seconds);
  const double cpu_gflops = cpu.effective_gflops * thermal;
  const double bw_gbs = device.soc.mem_bandwidth_gbs * kStreamEfficiency;

  std::vector<LayerTiming> out;
  for (const auto& layer : trace.layers) {
    if (layer.type == nn::LayerType::Input) continue;
    LayerTiming timing;
    timing.name = layer.name;
    timing.type = layer.type;
    const double batch = static_cast<double>(config.batch);
    timing.flops = static_cast<double>(layer.flops) * batch;
    const double weight_bytes = static_cast<double>(layer.params) * 4.0;
    const double act_bytes =
        (static_cast<double>(layer.bytes_read + layer.bytes_written) -
         weight_bytes) *
        batch;
    const double bytes = weight_bytes + std::max(0.0, act_bytes);
    timing.compute_seconds =
        timing.flops > 0.0
            ? timing.flops /
                  (cpu_gflops * 1e9 * compute_utilisation(layer.type))
            : 0.0;
    timing.memory_seconds = bytes / (bw_gbs * 1e9);
    timing.memory_bound = timing.memory_seconds > timing.compute_seconds;
    timing.seconds = std::max(timing.compute_seconds, timing.memory_seconds) +
                     device.dispatch_overhead_s;
    out.push_back(std::move(timing));
  }
  return out;
}

std::vector<RunResult> simulate_cohabitation(
    const Device& device, const std::vector<const nn::ModelTrace*>& traces,
    const RunConfig& config, const std::vector<std::string>& model_keys) {
  std::vector<RunResult> results;
  const auto n = traces.size();
  if (n == 0) return results;
  // Fair-share slowdown: each model sees 1/n of the machine, plus a
  // superlinear contention term for cache/scheduler interference.
  const double contention =
      1.0 + 0.12 * static_cast<double>(n - 1) +
      0.03 * static_cast<double>((n - 1) * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    RunResult r = simulate_inference(device, *traces[i], config,
                                     model_keys[i]);
    const double slowdown = static_cast<double>(n) * contention;
    r.latency_s *= slowdown;
    r.throughput_ips /= slowdown;
    // Energy attribution: the model's own work costs the same joules, but
    // the stretched wall time accrues extra idle/static energy.
    const double static_watts = device.soc.idle_watts + device.screen_watts;
    const double extra_j = static_watts * r.latency_s * (1.0 - 1.0 / slowdown);
    r.energy_j += extra_j / static_cast<double>(n);
    r.soc_energy_j += device.soc.idle_watts * r.latency_s *
                      (1.0 - 1.0 / slowdown) / static_cast<double>(n);
    r.efficiency_mflops_sw =
        r.soc_energy_j > 0.0 ? r.flops / r.soc_energy_j / 1e6 : 0.0;
    results.push_back(r);
  }
  return results;
}

}  // namespace gauge::device
