#include "device/backends.hpp"

namespace gauge::device {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::CpuFp32: return "CPU";
    case Backend::CpuXnnpack: return "XNNPACK";
    case Backend::Nnapi: return "NNAPI";
    case Backend::GpuFp32: return "GPU";
    case Backend::SnpeCpu: return "SNPE-CPU";
    case Backend::SnpeGpu: return "SNPE-GPU";
    case Backend::SnpeDsp: return "SNPE-DSP";
    case Backend::NpuA16W8: return "NPU-A16W8";
    case Backend::kCount: break;
  }
  return "?";
}

nn::kernels::ExecBackend exec_backend_for(Backend backend) {
  switch (backend) {
    case Backend::CpuFp32:
      return nn::kernels::ExecBackend::Reference;
    case Backend::SnpeDsp:
    case Backend::NpuA16W8:
      return nn::kernels::ExecBackend::Quantised;
    case Backend::CpuXnnpack:
    case Backend::Nnapi:
    case Backend::GpuFp32:
    case Backend::SnpeCpu:
    case Backend::SnpeGpu:
    case Backend::kCount:
      break;
  }
  return nn::kernels::ExecBackend::Optimised;
}

const BackendProfile& backend_profile(Backend backend) {
  static const BackendProfile kCpu{1.0, 1.0, 0.0, 0.0, false, false};
  // Supported-layer factor is above the paper's 1.03x average because the
  // corpus-wide mean also absorbs CPU-fallback models (quantised graphs,
  // RNNs); the blended average lands at ~1.03x.
  static const BackendProfile kXnnpack{1.12, 0.84, 0.10, 120e-6, false, false};
  static const BackendProfile kNnapi{0.49, 0.82, 0.35, 400e-6, false, false};
  static const BackendProfile kGpu{1.93, 0.26, 0.30, 250e-6, false, false};
  static const BackendProfile kSnpeCpu{0.88, 1.05, 0.15, 100e-6, false, false};
  static const BackendProfile kSnpeGpu{2.28, 0.27, 0.30, 250e-6, false, false};
  static const BackendProfile kSnpeDsp{5.72, 0.28, 0.35, 350e-6, true, true};
  // A16W8: 8-bit weight bandwidth with 16-bit accumulat-able activations —
  // between the fp32 GPU and the int8 DSP in speed, close to the DSP in
  // power, without int8's accuracy risk.
  static const BackendProfile kNpuA16W8{4.4, 0.30, 0.30, 300e-6, false, true};
  switch (backend) {
    case Backend::CpuFp32: return kCpu;
    case Backend::CpuXnnpack: return kXnnpack;
    case Backend::Nnapi: return kNnapi;
    case Backend::GpuFp32: return kGpu;
    case Backend::SnpeCpu: return kSnpeCpu;
    case Backend::SnpeGpu: return kSnpeGpu;
    case Backend::SnpeDsp: return kSnpeDsp;
    case Backend::NpuA16W8: return kNpuA16W8;
    case Backend::kCount: break;
  }
  return kCpu;
}

bool backend_supports(Backend backend, nn::LayerType type) {
  using LT = nn::LayerType;
  switch (backend) {
    case Backend::CpuFp32:
    case Backend::SnpeCpu:
      return true;  // CPU paths implement everything
    case Backend::CpuXnnpack:
      // XNNPACK: highly optimised conv/dense/eltwise kernels; no recurrent
      // cells, no embedding lookups, no quantize graph ops.
      switch (type) {
        case LT::Lstm:
        case LT::Embedding:
        case LT::Quantize:
        case LT::Dequantize:
        case LT::Transpose2D:
          return false;
        default:
          return true;
      }
    case Backend::Nnapi:
      // NNAPI op coverage is rudimentary (the paper's "succinct
      // characteristic of such optimisations").
      switch (type) {
        case LT::Lstm:
        case LT::Embedding:
        case LT::Transpose2D:
        case LT::Slice:
        case LT::Pad:
        case LT::BatchNorm:
          return false;
        default:
          return true;
      }
    case Backend::GpuFp32:
    case Backend::SnpeGpu:
      switch (type) {
        case LT::Lstm:
        case LT::Embedding:
        case LT::Quantize:
        case LT::Dequantize:
          return false;
        default:
          return true;
      }
    case Backend::SnpeDsp:
      // Hexagon: vision-oriented fixed-point ops only.
      switch (type) {
        case LT::Lstm:
        case LT::Embedding:
        case LT::Transpose2D:
        case LT::Sigmoid:
        case LT::Tanh:
          return false;
        default:
          return true;
      }
    case Backend::NpuA16W8:
      // The 16-bit activation path keeps enough headroom for the smooth
      // nonlinearities the int8 DSP has to reject; recurrent cells remain
      // out of scope on this accelerator class.
      switch (type) {
        case LT::Lstm:
        case LT::Embedding:
        case LT::Transpose2D:
          return false;
        default:
          return true;
      }
    case Backend::kCount:
      break;
  }
  return false;
}

bool backend_available(Backend backend, const Device& device) {
  switch (backend) {
    case Backend::SnpeCpu:
    case Backend::SnpeGpu:
      // SNPE only targets Qualcomm SoCs.
      return device.soc.name.find("Snapdragon") != std::string::npos;
    case Backend::SnpeDsp:
      return device.soc.name.find("Snapdragon") != std::string::npos &&
             device.soc.dsp.has_value();
    case Backend::NpuA16W8:
      // Only the newest generation carries a multi-precision NPU
      // (Hexagon-780 class).
      return device.soc.name == "Snapdragon 888" && device.soc.dsp.has_value();
    default:
      return true;
  }
}

}  // namespace gauge::device
