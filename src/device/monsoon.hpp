// Monsoon AAA10F power-monitor simulator. The benchmark harness attaches it
// to an open-deck board, runs the workload, and integrates the sampled
// current to energy — the measurement path of paper §3.3 ("Energy
// measurements"), including the screen's contribution which is sampled and
// subtracted exactly as the paper describes ("this is measured and
// accounted").
#pragma once

#include <cstdint>
#include <vector>

#include "device/soc.hpp"

namespace gauge::device {

struct PowerSample {
  double t_s = 0.0;       // sample timestamp
  double volts = 0.0;     // main channel voltage
  double amps = 0.0;      // main channel current
  double watts() const { return volts * amps; }
};

// A piecewise-constant power phase emitted by the device under test.
struct PowerPhase {
  double duration_s = 0.0;
  double watts = 0.0;
};

class Monsoon {
 public:
  // AAA10F main channel samples at 5 kHz.
  explicit Monsoon(double sample_hz = 5000.0, double volts = 4.2,
                   std::uint64_t noise_seed = 1);

  // Records a trace for a sequence of phases. Gaussian shot noise (~1% of
  // the signal) models the ADC.
  std::vector<PowerSample> record(const std::vector<PowerPhase>& phases) const;

  // Trapezoidal integration of a trace to joules.
  static double integrate_energy_j(const std::vector<PowerSample>& samples);
  // Mean power over the trace.
  static double mean_power_w(const std::vector<PowerSample>& samples);

  double sample_hz() const { return sample_hz_; }

 private:
  double sample_hz_;
  double volts_;
  std::uint64_t noise_seed_;
};

}  // namespace gauge::device
