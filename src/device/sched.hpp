// CPU scheduler model: maps a (thread count, core affinity) configuration
// onto a heterogeneous multi-processor and returns the effective sustained
// throughput, reproducing the Fig. 12 behaviours:
//   - the optimal thread count differs per SoC topology,
//   - 8 threads collapse (LITTLE-core stragglers + sync overhead),
//   - oversubscription (4 threads on 2 cores, "4a2") loses to time-sharing,
//   - pinning to the same number of top cores ("4a4") is not a win.
//
// Model: threads are placed big-core-first. Data-parallel kernels are
// statically partitioned, so wall time is gated by the slowest thread
// (n x min-core throughput); real runtimes rebalance a little, so we take
// the geometric mean of the gated and the work-stealing (sum) bounds, then
// apply a superlinear synchronisation penalty in the thread count and a
// time-sharing penalty for threads stacked on one core.
#pragma once

#include "device/soc.hpp"

namespace gauge::device {

struct ThreadConfig {
  int threads = 4;
  // 0 = no pinning (scheduler may use all cores); k > 0 = pin to the k
  // fastest cores ("4a2" in the paper = {4, 2}).
  int affinity_cores = 0;

  // Fig. 12 setup label ("4", "4a2", ...).
  std::string label() const;
};

struct SchedResult {
  double effective_gflops = 0.0;  // fp32 sustained, before per-layer util
  double active_watts = 0.0;      // CPU power while running at this config
  int cores_used = 0;
};

SchedResult schedule(const Device& device, const ThreadConfig& config);

// The per-core throughput list, big first (helper shared with tests).
std::vector<double> core_gflops_sorted(const Soc& soc);

}  // namespace gauge::device
