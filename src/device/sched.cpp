#include "device/sched.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.hpp"

namespace gauge::device {

std::string ThreadConfig::label() const {
  if (affinity_cores <= 0) return std::to_string(threads);
  return util::format("%da%d", threads, affinity_cores);
}

std::vector<double> core_gflops_sorted(const Soc& soc) {
  std::vector<double> cores;
  for (const auto& cluster : soc.clusters) {
    for (int i = 0; i < cluster.count; ++i) cores.push_back(cluster.core_gflops());
  }
  std::sort(cores.begin(), cores.end(), std::greater<>());
  return cores;
}

namespace {

std::vector<double> core_watts_sorted(const Soc& soc) {
  // Watts aligned with the throughput-sorted core order: sort clusters by
  // core_gflops and expand.
  std::vector<std::pair<double, double>> perf_watts;
  for (const auto& cluster : soc.clusters) {
    for (int i = 0; i < cluster.count; ++i) {
      perf_watts.emplace_back(cluster.core_gflops(), cluster.watts_per_core);
    }
  }
  std::sort(perf_watts.begin(), perf_watts.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<double> watts;
  watts.reserve(perf_watts.size());
  for (const auto& [_, w] : perf_watts) watts.push_back(w);
  return watts;
}

// Superlinear synchronisation overhead in the thread count.
double sync_penalty(int threads) {
  const double t = static_cast<double>(threads);
  const double over4 = std::max(0.0, t - 4.0);
  return 1.0 / (1.0 + 0.03 * (t - 1.0) + 0.25 * over4 * over4);
}

constexpr double kTimesharePenalty = 0.5;  // >1 thread per core
constexpr double kPinOverhead = 0.98;       // explicit affinity masks

}  // namespace

SchedResult schedule(const Device& device, const ThreadConfig& config) {
  assert(config.threads >= 1);
  const auto cores = core_gflops_sorted(device.soc);
  const auto watts = core_watts_sorted(device.soc);

  const int allowed = config.affinity_cores > 0
                          ? std::min<int>(config.affinity_cores,
                                          static_cast<int>(cores.size()))
                          : static_cast<int>(cores.size());
  const int used = std::min(config.threads, allowed);
  const int threads_per_core_base = config.threads / used;
  const int extra = config.threads % used;

  SchedResult result;
  result.cores_used = used;

  // Effective throughput per used core, including time-sharing when more
  // than one thread lands on it.
  double sum = 0.0;
  double min_core = 1e300;
  for (int c = 0; c < used; ++c) {
    const int threads_here = threads_per_core_base + (c < extra ? 1 : 0);
    double eff = cores[static_cast<std::size_t>(c)];
    if (threads_here > 1) eff *= kTimesharePenalty;
    sum += eff;
    min_core = std::min(min_core, eff);
    result.active_watts += watts[static_cast<std::size_t>(c)];
  }

  // Static-partition bound (slowest thread gates) vs work-stealing bound.
  // Real runtimes rebalance but imperfectly; the geometric blend leans
  // towards work stealing (exponent tuned against the Fig. 9/11 ratios).
  const double gated = static_cast<double>(used) * min_core;
  double effective = std::pow(gated, 0.3) * std::pow(sum, 0.7) *
                     sync_penalty(config.threads);
  if (config.affinity_cores > 0) effective *= kPinOverhead;
  effective *= device.sw_efficiency;

  result.effective_gflops = effective;
  return result;
}

}  // namespace gauge::device
