// Roofline latency + energy simulation for one inference on one device.
//
// Per layer: time = max(FLOPs / (effective GFLOPS x per-op utilisation),
//                       bytes / (bandwidth x streaming efficiency))
//            + kernel dispatch overhead,
// summed over the model, scaled by the backend factor (with CPU fallback
// partitioning for unsupported operators), thermal state, and a
// deterministic per-(device, model, backend) variation term standing in for
// all the micro-architectural effects a closed-form model cannot carry.
// This is what makes FLOPs a *bad* latency predictor here, exactly as the
// paper measures (Fig. 8).
#pragma once

#include <string_view>

#include "device/backends.hpp"
#include "device/sched.hpp"
#include "device/soc.hpp"
#include "nn/trace.hpp"

namespace gauge::device {

struct RunConfig {
  ThreadConfig threads{4, 0};
  Backend backend = Backend::CpuFp32;
  int batch = 1;
  // How long the device has already been under continuous inference load
  // (drives thermal throttling).
  double sustained_seconds = 0.0;
};

struct RunResult {
  double latency_s = 0.0;       // one forward pass (whole batch)
  double energy_j = 0.0;        // energy consumed by the pass (incl. screen)
  double soc_energy_j = 0.0;    // energy minus the screen's share
  double avg_power_w = 0.0;     // mean draw while running
  double flops = 0.0;           // model FLOPs x batch
  double throughput_ips = 0.0;  // inferences per second (batch / latency)
  double efficiency_mflops_sw = 0.0;  // MFLOP per second per Watt (§5.2.1)
  bool cpu_fallback = false;    // backend partially fell back to CPU
  double supported_flop_share = 1.0;
  // The paper's remaining measured dimensions (§3.3): runtime memory
  // footprint (weights + peak live activations, batch-scaled) and mean CPU
  // utilisation over the run (0-1 across all cores).
  double peak_memory_bytes = 0.0;
  double cpu_utilisation = 0.0;
};

// `model_key` seeds the deterministic variation term; pass the model's
// checksum or name so the same model always behaves the same on a device.
RunResult simulate_inference(const Device& device, const nn::ModelTrace& trace,
                             const RunConfig& config,
                             std::string_view model_key);

// Thermal multiplier after `sustained_seconds` of continuous load.
double thermal_factor(const Device& device, double sustained_seconds);

// Per-layer latency breakdown on the CPU baseline: which layers bound the
// model, and by what (compute vs memory vs dispatch). Powers bottleneck
// analysis in the advisor tooling; backend factors and per-model noise are
// intentionally excluded so the breakdown is the clean cost model.
struct LayerTiming {
  std::string name;
  nn::LayerType type = nn::LayerType::Input;
  double seconds = 0.0;
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  bool memory_bound = false;
  double flops = 0.0;
};

std::vector<LayerTiming> layer_breakdown(const Device& device,
                                         const nn::ModelTrace& trace,
                                         const RunConfig& config = {});

// DNN co-habitation (paper §8 "DNN co-habitation"): several models running
// concurrently on one device. Compute and memory bandwidth are shared, and
// context switching adds a contention overhead that grows with the number
// of co-resident models. Returns one result per model, in input order; each
// model's latency is what it experiences while all others run too.
std::vector<RunResult> simulate_cohabitation(
    const Device& device,
    const std::vector<const nn::ModelTrace*>& traces,
    const RunConfig& config, const std::vector<std::string>& model_keys);

// Battery percentage drained by `energy_j` joules on this device
// (0 when the device has no battery).
double battery_drain_fraction(const Device& device, double energy_j);
// Battery discharge in mAh for `energy_j` joules at nominal voltage.
double battery_drain_mah(const Device& device, double energy_j);

}  // namespace gauge::device
