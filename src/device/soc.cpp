#include "device/soc.hpp"

#include <cassert>

namespace gauge::device {

const char* tier_name(DeviceTier tier) {
  switch (tier) {
    case DeviceTier::Low: return "low";
    case DeviceTier::Mid: return "mid";
    case DeviceTier::High: return "high";
    case DeviceTier::DevBoard: return "devboard";
  }
  return "?";
}

namespace {

Soc exynos7884() {
  Soc soc;
  soc.name = "Exynos 7884";
  soc.clusters = {
      {"Cortex-A73", 2, 1.56, 8.0, 0.75},
      {"Cortex-A53", 6, 1.35, 4.0, 0.25},
  };
  soc.mem_bandwidth_gbs = 11.0;
  soc.gpu = {"Mali-G71 MP2", 35.0, 1.2, 1.0};
  soc.idle_watts = 0.22;
  return soc;
}

Soc snapdragon675() {
  Soc soc;
  soc.name = "Snapdragon 675";
  soc.clusters = {
      {"Kryo-460-Gold (A76)", 2, 2.0, 16.0, 1.0},
      {"Kryo-460-Silver (A55)", 6, 1.78, 4.0, 0.3},
  };
  soc.mem_bandwidth_gbs = 14.9;
  soc.gpu = {"Adreno 612", 60.0, 1.5, 1.3};
  soc.idle_watts = 0.2;
  return soc;
}

Soc snapdragon845() {
  Soc soc;
  soc.name = "Snapdragon 845";
  soc.clusters = {
      {"Kryo-385-Gold (A75)", 4, 2.8, 16.0, 1.15},
      {"Kryo-385-Silver (A55)", 4, 1.77, 4.0, 0.3},
  };
  soc.mem_bandwidth_gbs = 29.8;
  soc.gpu = {"Adreno 630", 110.0, 2.2, 1.4};
  soc.dsp = Accelerator{"Hexagon 685", 160.0, 1.1, 2.4};
  soc.idle_watts = 0.25;
  return soc;
}

Soc snapdragon855() {
  Soc soc;
  soc.name = "Snapdragon 855";
  soc.clusters = {
      {"Kryo-485-Prime (A76)", 1, 2.84, 16.0, 1.8},
      {"Kryo-485-Gold (A76)", 3, 2.42, 16.0, 1.5},
      {"Kryo-485-Silver (A55)", 4, 1.78, 4.0, 0.32},
  };
  soc.mem_bandwidth_gbs = 34.1;
  soc.gpu = {"Adreno 640", 140.0, 2.6, 1.5};
  soc.dsp = Accelerator{"Hexagon 690", 220.0, 1.2, 2.8};
  soc.idle_watts = 0.27;
  return soc;
}

Soc snapdragon888() {
  Soc soc;
  soc.name = "Snapdragon 888";
  soc.clusters = {
      {"Cortex-X1", 1, 2.84, 24.0, 3.3},
      {"Cortex-A78", 3, 2.42, 16.0, 2.2},
      {"Cortex-A55", 4, 1.80, 4.0, 0.4},
  };
  soc.mem_bandwidth_gbs = 51.2;
  soc.gpu = {"Adreno 660", 210.0, 3.2, 1.6};
  soc.dsp = Accelerator{"Hexagon 780", 340.0, 1.4, 3.2};
  soc.idle_watts = 0.3;
  return soc;
}

}  // namespace

Device make_device(const std::string& name) {
  Device d;
  d.name = name;
  if (name == "A20") {
    d.soc = exynos7884();
    d.ram_gb = 4;
    d.battery_mah = 4000;
    d.tier = DeviceTier::Low;
    d.dispatch_overhead_s = 44e-6;
    d.sw_efficiency = 0.85;
    d.throttle_floor = 0.6;
    d.throttle_rate = 0.0015;
  } else if (name == "A70") {
    d.soc = snapdragon675();
    d.ram_gb = 6;
    d.battery_mah = 4500;
    d.tier = DeviceTier::Mid;
    d.dispatch_overhead_s = 23e-6;
    // 2019-era mid-tier shipped with notably mature vendor kernels; > 1
    // relative to the open-deck reference builds.
    d.sw_efficiency = 1.18;
    d.throttle_floor = 0.68;
    d.throttle_rate = 0.0011;
  } else if (name == "S21") {
    d.soc = snapdragon888();
    d.ram_gb = 8;
    d.battery_mah = 4000;
    d.tier = DeviceTier::High;
    d.dispatch_overhead_s = 25e-6;
    d.sw_efficiency = 0.95;
    d.throttle_floor = 0.72;
    d.throttle_rate = 0.0009;
  } else if (name == "Q845") {
    d.soc = snapdragon845();
    d.ram_gb = 8;
    d.battery_mah = 2850;
    d.tier = DeviceTier::DevBoard;
    d.open_deck = true;
    d.dispatch_overhead_s = 70e-6;
    d.sw_efficiency = 1.0;
    d.throttle_floor = 0.85;
    d.throttle_rate = 0.0002;
  } else if (name == "Q855") {
    d.soc = snapdragon855();
    d.ram_gb = 8;
    d.battery_mah = 0;  // N/A in Table 1
    d.tier = DeviceTier::DevBoard;
    d.open_deck = true;
    d.dispatch_overhead_s = 42e-6;
    d.sw_efficiency = 1.0;
    d.throttle_floor = 0.87;
    d.throttle_rate = 0.0002;
  } else if (name == "Q888") {
    d.soc = snapdragon888();
    d.ram_gb = 8;
    d.battery_mah = 0;  // N/A in Table 1
    d.tier = DeviceTier::DevBoard;
    d.open_deck = true;
    // Same SoC as the S21 but open deck + vanilla OS: incrementally faster.
    d.dispatch_overhead_s = 23e-6;
    d.sw_efficiency = 1.0;
    d.throttle_floor = 0.9;
    d.throttle_rate = 0.00015;
  } else {
    assert(false && "unknown device");
  }
  return d;
}

std::vector<Device> all_devices() {
  return {make_device("A20"),  make_device("A70"),  make_device("S21"),
          make_device("Q845"), make_device("Q855"), make_device("Q888")};
}

std::vector<Device> phones() {
  return {make_device("A20"), make_device("A70"), make_device("S21")};
}

std::vector<Device> boards() {
  return {make_device("Q845"), make_device("Q855"), make_device("Q888")};
}

}  // namespace gauge::device
