#include "formats/registry.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace gauge::formats {

const char* framework_name(Framework fw) {
  switch (fw) {
    case Framework::Onnx: return "ONNX";
    case Framework::MxNet: return "MXNet";
    case Framework::Keras: return "Keras";
    case Framework::Caffe: return "caffe";
    case Framework::Caffe2: return "Caffe2";
    case Framework::PyTorch: return "PyTorch";
    case Framework::Torch: return "Torch";
    case Framework::Snpe: return "SNPE";
    case Framework::FeatherCnn: return "FeatherCNN";
    case Framework::TfLite: return "TFLite";
    case Framework::TensorFlow: return "TF";
    case Framework::Sklearn: return "Sklearn";
    case Framework::ArmNn: return "armNN";
    case Framework::Mnn: return "Mnn";
    case Framework::Ncnn: return "ncnn";
    case Framework::Tengine: return "Tengine";
    case Framework::Flux: return "Flux";
    case Framework::Chainer: return "Chainer";
    case Framework::kCount: break;
  }
  return "?";
}

const std::vector<FrameworkFormats>& format_table() {
  // Appendix Table 5, verbatim.
  static const std::vector<FrameworkFormats> kTable = {
      {Framework::Onnx, {".onnx", ".pb", ".pbtxt", ".prototxt"}},
      {Framework::MxNet, {".mar", ".model", ".json", ".params"}},
      {Framework::Keras,
       {".h5", ".hd5", ".hdf5", ".keras", ".json", ".model", ".pb", ".pth"}},
      {Framework::Caffe, {".caffemodel", ".pbtxt", ".prototxt", ".pt"}},
      {Framework::Caffe2, {".pb", ".pbtxt", ".prototxt"}},
      {Framework::PyTorch,
       {".pt", ".pth", ".pt1", ".pkl", ".h5", ".t7", ".model", ".dms",
        ".pth.tar", ".ckpt", ".bin", ".pb", ".tar"}},
      {Framework::Torch, {".t7", ".dat"}},
      {Framework::Snpe, {".dlc"}},
      {Framework::FeatherCnn, {".feathermodel"}},
      {Framework::TfLite, {".tflite", ".lite", ".tfl", ".bin", ".pb"}},
      {Framework::TensorFlow,
       {".pb", ".meta", ".pbtxt", ".prototxt", ".json", ".index", ".ckpt"}},
      {Framework::Sklearn, {".pkl", ".joblib", ".model"}},
      {Framework::ArmNn, {".armnn"}},
      {Framework::Mnn, {".mnn"}},
      {Framework::Ncnn, {".param", ".bin", ".cfg.ncnn", ".weights.ncnn", ".ncnn"}},
      {Framework::Tengine, {".tmfile"}},
      {Framework::Flux, {".bson"}},
      {Framework::Chainer, {".npz", ".h5", ".hd5", ".hdf5", ".chainermodel"}},
  };
  return kTable;
}

std::vector<Framework> candidate_frameworks(std::string_view path) {
  const std::string ext = util::extension(path);
  std::vector<Framework> out;
  if (ext.empty()) return out;
  for (const auto& entry : format_table()) {
    if (std::find(entry.extensions.begin(), entry.extensions.end(), ext) !=
        entry.extensions.end()) {
      out.push_back(entry.framework);
    }
  }
  return out;
}

bool is_candidate_model_file(std::string_view path) {
  return !candidate_frameworks(path).empty();
}

}  // namespace gauge::formats
