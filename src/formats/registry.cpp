// Thin free-function facade over the plugin registry (plugin.hpp). Kept so
// call sites and examples can speak in terms of the paper's vocabulary
// (candidate files, Appendix Table 5) without naming the registry singleton.
#include "formats/registry.hpp"

#include "formats/plugin.hpp"

namespace gauge::formats {

const char* framework_name(Framework fw) {
  return PluginRegistry::instance().framework_name(fw);
}

const std::vector<FrameworkFormats>& format_table() {
  static const std::vector<FrameworkFormats> kTable =
      PluginRegistry::instance().format_table();
  return kTable;
}

std::vector<Framework> candidate_frameworks(std::string_view path) {
  return PluginRegistry::instance().candidate_frameworks(path);
}

bool is_candidate_model_file(std::string_view path) {
  return PluginRegistry::instance().is_candidate(path);
}

}  // namespace gauge::formats
