#include "formats/tensorio.hpp"

namespace gauge::formats {

void write_tensor(util::ByteWriter& w, const nn::Tensor& t) {
  w.u8(static_cast<std::uint8_t>(t.dtype()));
  w.u32(static_cast<std::uint32_t>(t.shape().rank()));
  for (std::int64_t d : t.shape().dims) w.i64(d);
  w.f32(t.quant_scale);
  w.i32(t.quant_zero_point);
  switch (t.dtype()) {
    case nn::DType::F32:
      for (float v : t.f32()) w.f32(v);
      break;
    case nn::DType::I8:
      for (std::int8_t v : t.i8()) w.u8(static_cast<std::uint8_t>(v));
      break;
    case nn::DType::I32:
      for (std::int32_t v : t.i32()) w.i32(v);
      break;
  }
}

bool read_tensor(util::ByteReader& r, nn::Tensor& out) {
  const auto dtype = static_cast<nn::DType>(r.u8());
  const std::uint32_t rank = r.u32();
  if (!r.ok() || rank > 8) return false;
  nn::Shape shape;
  for (std::uint32_t d = 0; d < rank; ++d) shape.dims.push_back(r.i64());
  if (!r.ok()) return false;
  const std::int64_t elems = shape.elements();
  if (elems < 0 || static_cast<std::uint64_t>(elems) > (1ull << 28)) return false;
  nn::Tensor t{shape, dtype};
  t.quant_scale = r.f32();
  t.quant_zero_point = r.i32();
  switch (dtype) {
    case nn::DType::F32:
      for (auto& v : t.f32()) v = r.f32();
      break;
    case nn::DType::I8:
      for (auto& v : t.i8()) v = static_cast<std::int8_t>(r.u8());
      break;
    case nn::DType::I32:
      for (auto& v : t.i32()) v = r.i32();
      break;
  }
  if (!r.ok()) return false;
  out = std::move(t);
  return true;
}

}  // namespace gauge::formats
