#include "formats/convert.hpp"

#include "formats/caffe.hpp"
#include "formats/ncnn.hpp"
#include "formats/tfl.hpp"

namespace gauge::formats {

bool convertible_to(const nn::Graph& graph, Framework target) {
  switch (target) {
    case Framework::TfLite:
    case Framework::TensorFlow:
    case Framework::Snpe:
      return true;  // the container formats carry the full IR
    case Framework::Caffe:
      return caffe_supports(graph);
    case Framework::Ncnn:
      return ncnn_supports(graph);
    default:
      return false;
  }
}

util::Result<ConvertedModel> convert_to(const nn::Graph& graph,
                                        Framework target) {
  using R = util::Result<ConvertedModel>;
  ConvertedModel out;
  switch (target) {
    case Framework::TfLite:
      out.primary = write_tfl(graph);
      return out;
    case Framework::TensorFlow:
      out.primary = write_tf_pb(graph);
      return out;
    case Framework::Snpe:
      out.primary = write_dlc(graph);
      return out;
    case Framework::Caffe: {
      auto model = write_caffe(graph);
      if (!model.ok()) return R::failure(model.error());
      out.primary = util::to_bytes(model.value().prototxt);
      out.weights = model.value().caffemodel;
      out.has_weights_file = true;
      return out;
    }
    case Framework::Ncnn: {
      auto model = write_ncnn(graph);
      if (!model.ok()) return R::failure(model.error());
      out.primary = util::to_bytes(model.value().param);
      out.weights = model.value().bin;
      out.has_weights_file = true;
      return out;
    }
    default:
      return R::failure(std::string{"no serialiser for "} +
                        framework_name(target));
  }
}

}  // namespace gauge::formats
