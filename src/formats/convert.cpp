#include "formats/convert.hpp"

namespace gauge::formats {

bool convertible_to(const nn::Graph& graph, Framework target) {
  const FormatPlugin* plugin = PluginRegistry::instance().find(target);
  return plugin != nullptr && plugin->supports(graph);
}

util::Result<ConvertedModel> convert_to(const nn::Graph& graph,
                                        Framework target) {
  using R = util::Result<ConvertedModel>;
  const FormatPlugin* plugin = PluginRegistry::instance().find(target);
  if (plugin == nullptr) {
    return R::failure(std::string{"no serialiser for "} +
                      PluginRegistry::instance().framework_name(target));
  }
  if (!plugin->supports(graph)) {
    return R::failure(std::string{plugin->name()} +
                      " dialect cannot express this graph");
  }
  return plugin->serialize(graph);
}

}  // namespace gauge::formats
