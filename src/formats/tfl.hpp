// TFL-like model container: a binary FlatBuffer-style format whose file
// identifier "TFL3" sits at byte offset 4, exactly where real TFLite files
// carry theirs — so the paper's signature-validation rule ("check for the
// string TFL3 there") applies verbatim.
//
// Layout (all little-endian):
//   u32   root offset/version word (we store the format version)
//   u8[4] "TFL3"
//   u32   layer count
//   per layer: type, name, inputs, attributes, weight tensors
#pragma once

#include "nn/graph.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::formats {

inline constexpr char kTflMagic[4] = {'T', 'F', 'L', '3'};
inline constexpr std::uint32_t kTflVersion = 3;

util::Bytes write_tfl(const nn::Graph& graph);
util::Result<nn::Graph> read_tfl(std::span<const std::uint8_t> data);

// Signature check only (no full parse): "TFL3" at offset 4.
bool looks_like_tfl(std::span<const std::uint8_t> data);

// Sibling containers sharing the TFL payload encoding but carrying their own
// 4-byte identifiers, standing in for formats the paper found in small
// numbers: SNPE .dlc ("DLC1") and TensorFlow frozen graphs ("TFGF").
inline constexpr char kDlcMagic[4] = {'D', 'L', 'C', '1'};
inline constexpr char kTfPbMagic[4] = {'T', 'F', 'G', 'F'};

util::Bytes write_dlc(const nn::Graph& graph);
util::Result<nn::Graph> read_dlc(std::span<const std::uint8_t> data);
bool looks_like_dlc(std::span<const std::uint8_t> data);

util::Bytes write_tf_pb(const nn::Graph& graph);
util::Result<nn::Graph> read_tf_pb(std::span<const std::uint8_t> data);
bool looks_like_tf_pb(std::span<const std::uint8_t> data);

}  // namespace gauge::formats
