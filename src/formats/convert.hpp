// Cross-framework model conversion — what SNPE's converter does for caffe
// and TFLite inputs (paper Appendix B) and what the SNPE-using apps in the
// corpus ran offline to produce their .dlc twins. Conversion goes through
// the shared graph IR: parse source format -> serialise target format,
// failing when the target dialect cannot express the graph. The per-target
// serialisers are the registered FormatPlugins, so the conversion matrix is
// exactly the set of plugin-backed frameworks.
#pragma once

#include "formats/plugin.hpp"
#include "nn/graph.hpp"
#include "util/result.hpp"

namespace gauge::formats {

// Serialises `graph` in `target`'s on-disk format.
util::Result<ConvertedModel> convert_to(const nn::Graph& graph,
                                        Framework target);

// True when the target dialect can express every layer of the graph.
bool convertible_to(const nn::Graph& graph, Framework target);

}  // namespace gauge::formats
