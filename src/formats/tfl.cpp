#include "formats/tfl.hpp"

#include <cstring>

#include "formats/tensorio.hpp"

namespace gauge::formats {

namespace {
util::Bytes write_container(const nn::Graph& graph, const char magic[4]);
util::Result<nn::Graph> read_container(std::span<const std::uint8_t> data,
                                       const char magic[4],
                                       const char* magic_name);
}  // namespace

util::Bytes write_tfl(const nn::Graph& graph) {
  return write_container(graph, kTflMagic);
}

namespace {
util::Bytes write_container(const nn::Graph& graph, const char magic[4]) {
  util::ByteWriter w;
  w.u32(kTflVersion);
  w.raw(std::string_view{magic, 4});
  w.str(graph.name);
  w.u32(static_cast<std::uint32_t>(graph.size()));
  for (const auto& layer : graph.layers()) {
    w.u8(static_cast<std::uint8_t>(layer.type));
    w.str(layer.name);
    w.u32(static_cast<std::uint32_t>(layer.inputs.size()));
    for (int in : layer.inputs) w.i32(in);
    w.i32(layer.kernel_h);
    w.i32(layer.kernel_w);
    w.i32(layer.stride_h);
    w.i32(layer.stride_w);
    w.u8(static_cast<std::uint8_t>(layer.padding));
    w.i32(layer.units);
    w.i32(layer.axis);
    w.i32(layer.resize_scale);
    w.u32(static_cast<std::uint32_t>(layer.slice_begin.size()));
    for (std::int64_t v : layer.slice_begin) w.i64(v);
    w.u32(static_cast<std::uint32_t>(layer.slice_size.size()));
    for (std::int64_t v : layer.slice_size) w.i64(v);
    w.u32(static_cast<std::uint32_t>(layer.target_shape.size()));
    for (std::int64_t v : layer.target_shape) w.i64(v);
    w.i32(layer.pad_top);
    w.i32(layer.pad_bottom);
    w.i32(layer.pad_left);
    w.i32(layer.pad_right);
    w.u32(static_cast<std::uint32_t>(layer.input_shape.rank()));
    for (std::int64_t v : layer.input_shape.dims) w.i64(v);
    w.f32(layer.quant_scale);
    w.i32(layer.quant_zero_point);
    w.i32(layer.weight_bits);
    w.i32(layer.act_bits);
    w.u32(static_cast<std::uint32_t>(layer.weights.size()));
    for (const auto& t : layer.weights) write_tensor(w, t);
  }
  return std::move(w).take();
}
}  // namespace

bool looks_like_tfl(std::span<const std::uint8_t> data) {
  return data.size() >= 8 && std::memcmp(data.data() + 4, kTflMagic, 4) == 0;
}

util::Result<nn::Graph> read_tfl(std::span<const std::uint8_t> data) {
  return read_container(data, kTflMagic, "TFL3");
}

util::Bytes write_dlc(const nn::Graph& graph) {
  return write_container(graph, kDlcMagic);
}
util::Result<nn::Graph> read_dlc(std::span<const std::uint8_t> data) {
  return read_container(data, kDlcMagic, "DLC1");
}
bool looks_like_dlc(std::span<const std::uint8_t> data) {
  return data.size() >= 8 && std::memcmp(data.data() + 4, kDlcMagic, 4) == 0;
}

util::Bytes write_tf_pb(const nn::Graph& graph) {
  return write_container(graph, kTfPbMagic);
}
util::Result<nn::Graph> read_tf_pb(std::span<const std::uint8_t> data) {
  return read_container(data, kTfPbMagic, "TFGF");
}
bool looks_like_tf_pb(std::span<const std::uint8_t> data) {
  return data.size() >= 8 && std::memcmp(data.data() + 4, kTfPbMagic, 4) == 0;
}

namespace {
util::Result<nn::Graph> read_container(std::span<const std::uint8_t> data,
                                       const char magic[4],
                                       const char* magic_name) {
  using R = util::Result<nn::Graph>;
  if (data.size() < 8 || std::memcmp(data.data() + 4, magic, 4) != 0) {
    return R::failure(std::string{"missing "} + magic_name + " identifier");
  }
  util::ByteReader r{data};
  const std::uint32_t version = r.u32();
  if (version != kTflVersion) return R::failure("unsupported TFL version");
  r.raw(4);  // magic
  nn::Graph graph;
  graph.name = r.str();
  const std::uint32_t layer_count = r.u32();
  if (!r.ok() || layer_count > 100000) return R::failure("corrupt header");
  for (std::uint32_t i = 0; i < layer_count; ++i) {
    nn::Layer layer;
    const std::uint8_t type = r.u8();
    if (type >= static_cast<std::uint8_t>(nn::LayerType::kCount)) {
      return R::failure("unknown layer type");
    }
    layer.type = static_cast<nn::LayerType>(type);
    layer.name = r.str();
    const std::uint32_t n_inputs = r.u32();
    if (!r.ok() || n_inputs > layer_count) return R::failure("corrupt inputs");
    for (std::uint32_t k = 0; k < n_inputs; ++k) {
      const std::int32_t in = r.i32();
      if (in < 0 || static_cast<std::uint32_t>(in) >= i) {
        return R::failure("layer input out of range");
      }
      layer.inputs.push_back(in);
    }
    layer.kernel_h = r.i32();
    layer.kernel_w = r.i32();
    layer.stride_h = r.i32();
    layer.stride_w = r.i32();
    layer.padding = static_cast<nn::Padding>(r.u8());
    layer.units = r.i32();
    layer.axis = r.i32();
    layer.resize_scale = r.i32();
    const std::uint32_t nb = r.u32();
    if (!r.ok() || nb > 16) return R::failure("corrupt slice_begin");
    for (std::uint32_t k = 0; k < nb; ++k) layer.slice_begin.push_back(r.i64());
    const std::uint32_t ns = r.u32();
    if (!r.ok() || ns > 16) return R::failure("corrupt slice_size");
    for (std::uint32_t k = 0; k < ns; ++k) layer.slice_size.push_back(r.i64());
    const std::uint32_t nt = r.u32();
    if (!r.ok() || nt > 16) return R::failure("corrupt target_shape");
    for (std::uint32_t k = 0; k < nt; ++k) layer.target_shape.push_back(r.i64());
    layer.pad_top = r.i32();
    layer.pad_bottom = r.i32();
    layer.pad_left = r.i32();
    layer.pad_right = r.i32();
    const std::uint32_t nr = r.u32();
    if (!r.ok() || nr > 8) return R::failure("corrupt input shape");
    for (std::uint32_t k = 0; k < nr; ++k) layer.input_shape.dims.push_back(r.i64());
    layer.quant_scale = r.f32();
    layer.quant_zero_point = r.i32();
    layer.weight_bits = r.i32();
    layer.act_bits = r.i32();
    const std::uint32_t n_weights = r.u32();
    if (!r.ok() || n_weights > 8) return R::failure("corrupt weight count");
    for (std::uint32_t k = 0; k < n_weights; ++k) {
      nn::Tensor t;
      if (!read_tensor(r, t)) return R::failure("corrupt weight tensor");
      layer.weights.push_back(std::move(t));
    }
    graph.add(std::move(layer));
  }
  if (!r.ok()) return R::failure("truncated model");
  if (auto status = graph.validate(); !status.ok()) {
    return R::failure("invalid graph: " + status.error());
  }
  return graph;
}
}  // namespace

}  // namespace gauge::formats
