// Caffe-like model format: a human-readable prototxt graph definition plus a
// separate binary weight blob (.caffemodel), the two-file split the paper's
// checksum analysis calls out ("in separate files (e.g. caffe)").
//
// The prototxt dialect is a faithful subset of protobuf text format:
//   name: "net"
//   layer {
//     name: "conv1"
//     type: "Convolution"
//     bottom: "data"
//     top: "conv1"
//     convolution_param { num_output: 8 kernel_size: 3 stride: 2 }
//   }
//
// Only the layer types caffe-era models actually shipped are supported:
// Input, Convolution, Pooling, InnerProduct, ReLU, Sigmoid, TanH, Softmax,
// Eltwise (sum/prod), Concat, BatchNorm(Scale folded).
#pragma once

#include <string>

#include "nn/graph.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::formats {

inline constexpr char kCaffeWeightsMagic[4] = {'C', 'A', 'F', 'W'};

struct CaffeModel {
  std::string prototxt;     // graph definition
  util::Bytes caffemodel;   // binary weights
};

// Fails when the graph uses a layer type the caffe dialect cannot express.
util::Result<CaffeModel> write_caffe(const nn::Graph& graph);

util::Result<nn::Graph> read_caffe(const std::string& prototxt,
                                   std::span<const std::uint8_t> caffemodel);

bool looks_like_prototxt(std::string_view text);
bool looks_like_caffemodel(std::span<const std::uint8_t> data);

// True when all layers of `graph` are expressible in the caffe dialect.
bool caffe_supports(const nn::Graph& graph);

}  // namespace gauge::formats
