// Caffe plugin: the two-file prototxt + .caffemodel split. The graph file
// anchors the model record; the weights sibling is resolved via companion()
// and never anchors a record of its own. Weights are stored as float, so
// round-trips preserve architecture_checksum (not bit-exact int8 weights) —
// hence quantizable() stays false.
#include "formats/caffe.hpp"

#include "formats/plugin.hpp"

namespace gauge::formats {
namespace {

class CaffePlugin final : public FormatPlugin {
 public:
  Framework framework() const override { return Framework::Caffe; }
  const char* name() const override { return "caffe"; }
  int chart_rank() const override { return 1; }

  const std::vector<std::string>& extensions() const override {
    static const std::vector<std::string> kExtensions = {
        ".caffemodel", ".pbtxt", ".prototxt", ".pt"};
    return kExtensions;
  }
  std::string primary_extension() const override { return ".prototxt"; }

  bool validate(std::string_view path,
                std::span<const std::uint8_t> data) const override {
    if (path_has_suffix(path, ".prototxt") || path_has_suffix(path, ".pbtxt")) {
      return looks_like_prototxt(util::as_view(data));
    }
    if (path_has_suffix(path, ".caffemodel")) {
      return looks_like_caffemodel(data);
    }
    return false;
  }

  std::string companion(std::string_view path) const override {
    for (const char* graph_ext : {".prototxt", ".pbtxt"}) {
      if (auto sibling = replace_path_suffix(path, graph_ext, ".caffemodel");
          !sibling.empty()) {
        return sibling;
      }
    }
    return {};
  }
  std::string companion_primary(std::string_view path) const override {
    return replace_path_suffix(path, ".caffemodel", ".prototxt");
  }

  util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                const util::Bytes* weights) const override {
    if (weights == nullptr) {
      return util::Result<nn::Graph>::failure("missing .caffemodel sibling");
    }
    return read_caffe(std::string{util::as_view(primary)}, *weights);
  }

  bool supports(const nn::Graph& graph) const override {
    return caffe_supports(graph);
  }

  util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const override {
    auto model = write_caffe(graph);
    if (!model.ok()) {
      return util::Result<ConvertedModel>::failure(model.error());
    }
    ConvertedModel out;
    out.primary = util::to_bytes(model.value().prototxt);
    out.weights = std::move(model.value().caffemodel);
    out.has_weights_file = true;
    return out;
  }

  const std::vector<std::string>& native_libs() const override {
    static const std::vector<std::string> kLibs = {"libcaffe.so"};
    return kLibs;
  }
};

}  // namespace

GAUGE_REGISTER_FORMAT_PLUGIN(caffe, CaffePlugin);

}  // namespace gauge::formats
