// TFLite plugin: the dominant framework of the corpus (Fig. 4: 1436 of 1666
// instances). Single-file binary container, "TFL3" at byte offset 4.
#include "formats/plugin.hpp"
#include "formats/tfl.hpp"

namespace gauge::formats {
namespace {

class TflitePlugin final : public FormatPlugin {
 public:
  Framework framework() const override { return Framework::TfLite; }
  const char* name() const override { return "TFLite"; }
  int chart_rank() const override { return 0; }

  const std::vector<std::string>& extensions() const override {
    static const std::vector<std::string> kExtensions = {
        ".tflite", ".lite", ".tfl", ".bin", ".pb"};
    return kExtensions;
  }

  bool validate(std::string_view,
                std::span<const std::uint8_t> data) const override {
    return looks_like_tfl(data);
  }

  util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                const util::Bytes*) const override {
    return read_tfl(primary);
  }

  bool supports(const nn::Graph&) const override {
    return true;  // the container carries the full IR
  }

  util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const override {
    ConvertedModel out;
    out.primary = write_tfl(graph);
    return out;
  }

  bool quantizable() const override { return true; }

  const std::vector<std::string>& dex_markers() const override {
    static const std::vector<std::string> kMarkers = {
        "Lorg/tensorflow/lite/Interpreter;"};
    return kMarkers;
  }
  const std::vector<std::string>& native_libs() const override {
    static const std::vector<std::string> kLibs = {
        "libtensorflowlite_jni.so"};
    return kLibs;
  }
};

}  // namespace

GAUGE_REGISTER_FORMAT_PLUGIN(tflite, TflitePlugin);

}  // namespace gauge::formats
