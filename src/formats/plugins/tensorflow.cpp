// TensorFlow plugin: frozen-graph .pb variants ("TFGF" at byte offset 4).
// Carries the ".pb.txt" alias — seen in the wild as a spelling of ".pbtxt"
// — as a candidate-matching alias outside the published Table-5 entries.
#include "formats/plugin.hpp"
#include "formats/tfl.hpp"

namespace gauge::formats {
namespace {

class TensorFlowPlugin final : public FormatPlugin {
 public:
  Framework framework() const override { return Framework::TensorFlow; }
  const char* name() const override { return "TF"; }
  int chart_rank() const override { return 3; }

  const std::vector<std::string>& extensions() const override {
    static const std::vector<std::string> kExtensions = {
        ".pb", ".meta", ".pbtxt", ".prototxt", ".json", ".index", ".ckpt"};
    return kExtensions;
  }
  const std::vector<std::string>& extension_aliases() const override {
    static const std::vector<std::string> kAliases = {".pb.txt"};
    return kAliases;
  }

  bool validate(std::string_view,
                std::span<const std::uint8_t> data) const override {
    return looks_like_tf_pb(data);
  }

  util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                const util::Bytes*) const override {
    return read_tf_pb(primary);
  }

  bool supports(const nn::Graph&) const override {
    return true;  // the container carries the full IR
  }

  util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const override {
    ConvertedModel out;
    out.primary = write_tf_pb(graph);
    return out;
  }

  bool quantizable() const override { return true; }

  const std::vector<std::string>& dex_markers() const override {
    static const std::vector<std::string> kMarkers = {
        "Lorg/tensorflow/contrib/android/TensorFlowInferenceInterface;"};
    return kMarkers;
  }
};

}  // namespace

GAUGE_REGISTER_FORMAT_PLUGIN(tensorflow, TensorFlowPlugin);

}  // namespace gauge::formats
