// ONNX plugin: a protobuf-flavoured single-file container with the magic
// "ONNX" at byte offset 0. Nodes carry a descriptive ONNX-style op_type
// string next to the authoritative LayerType code, and attributes travel as
// a named TLV block — only non-default values are written, like protobuf
// field presence. Built on the shared tensor codec, so round-trips preserve
// nn::model_checksum (including int8 weights + quantisation metadata).
//
// Layout (little-endian):
//   u8[4] "ONNX"
//   u32   ir_version (7)
//   str   graph name
//   u32   node count
//   per node:
//     str  op_type ("Conv", "Gemm", ...; must agree with the code below)
//     u8   LayerType code
//     str  node name
//     u32  input count, i32 producer indices
//     u32  attribute count; per attribute: str key, u8 kind
//          (0 = i64 scalar, 1 = f32 scalar, 2 = i64 list), payload
//     u32  weight count, tensorio tensors
#include <cstring>

#include "formats/plugin.hpp"
#include "formats/tensorio.hpp"

namespace gauge::formats {
namespace {

constexpr char kOnnxMagic[4] = {'O', 'N', 'N', 'X'};
constexpr std::uint32_t kOnnxIrVersion = 7;

const char* onnx_op_type(nn::LayerType type) {
  using nn::LayerType;
  switch (type) {
    case LayerType::Input: return "Input";
    case LayerType::Conv2D: return "Conv";
    case LayerType::DepthwiseConv2D: return "DepthwiseConv";
    case LayerType::Dense: return "Gemm";
    case LayerType::MaxPool2D: return "MaxPool";
    case LayerType::AvgPool2D: return "AveragePool";
    case LayerType::GlobalAvgPool: return "GlobalAveragePool";
    case LayerType::Relu: return "Relu";
    case LayerType::Relu6: return "Clip";
    case LayerType::Sigmoid: return "Sigmoid";
    case LayerType::Tanh: return "Tanh";
    case LayerType::Softmax: return "Softmax";
    case LayerType::Add: return "Add";
    case LayerType::Mul: return "Mul";
    case LayerType::Concat: return "Concat";
    case LayerType::ResizeNearest: return "Resize";
    case LayerType::Slice: return "Slice";
    case LayerType::Reshape: return "Reshape";
    case LayerType::Pad: return "Pad";
    case LayerType::BatchNorm: return "BatchNormalization";
    case LayerType::Quantize: return "QuantizeLinear";
    case LayerType::Dequantize: return "DequantizeLinear";
    case LayerType::Lstm: return "LSTM";
    case LayerType::Embedding: return "Gather";
    case LayerType::Transpose2D: return "Transpose";
    case LayerType::kCount: break;
  }
  return "?";
}

bool looks_like_onnx(std::span<const std::uint8_t> data) {
  return data.size() >= 8 &&
         std::memcmp(data.data(), kOnnxMagic, sizeof(kOnnxMagic)) == 0;
}

// Attribute block writer: collects key/value pairs into a side buffer so the
// count can be written first; only non-default values are emitted.
class AttrWriter {
 public:
  void i64(std::string_view key, std::int64_t v, std::int64_t dflt) {
    if (v == dflt) return;
    begin(key, 0);
    buf_.i64(v);
  }
  void f32(std::string_view key, float v, float dflt) {
    if (v == dflt) return;
    begin(key, 1);
    buf_.f32(v);
  }
  void list(std::string_view key, const std::vector<std::int64_t>& v) {
    if (v.empty()) return;
    begin(key, 2);
    buf_.u32(static_cast<std::uint32_t>(v.size()));
    for (const auto d : v) buf_.i64(d);
  }
  void flush(util::ByteWriter& w) && {
    w.u32(count_);
    w.raw(std::move(buf_).take());
  }

 private:
  void begin(std::string_view key, std::uint8_t kind) {
    ++count_;
    buf_.str(key);
    buf_.u8(kind);
  }
  util::ByteWriter buf_;
  std::uint32_t count_ = 0;
};

util::Bytes write_onnx(const nn::Graph& graph) {
  util::ByteWriter w;
  w.raw(std::string_view{kOnnxMagic, sizeof(kOnnxMagic)});
  w.u32(kOnnxIrVersion);
  w.str(graph.name);
  w.u32(static_cast<std::uint32_t>(graph.size()));
  const nn::Layer defaults;
  for (const auto& layer : graph.layers()) {
    w.str(onnx_op_type(layer.type));
    w.u8(static_cast<std::uint8_t>(layer.type));
    w.str(layer.name);
    w.u32(static_cast<std::uint32_t>(layer.inputs.size()));
    for (const int in : layer.inputs) w.i32(in);

    AttrWriter attrs;
    attrs.i64("kernel_h", layer.kernel_h, defaults.kernel_h);
    attrs.i64("kernel_w", layer.kernel_w, defaults.kernel_w);
    attrs.i64("stride_h", layer.stride_h, defaults.stride_h);
    attrs.i64("stride_w", layer.stride_w, defaults.stride_w);
    attrs.i64("auto_pad", static_cast<std::int64_t>(layer.padding),
              static_cast<std::int64_t>(defaults.padding));
    attrs.i64("units", layer.units, defaults.units);
    attrs.i64("axis", layer.axis, defaults.axis);
    attrs.i64("resize_scale", layer.resize_scale, defaults.resize_scale);
    attrs.list("slice_begin", layer.slice_begin);
    attrs.list("slice_size", layer.slice_size);
    attrs.list("target_shape", layer.target_shape);
    attrs.i64("pad_top", layer.pad_top, defaults.pad_top);
    attrs.i64("pad_bottom", layer.pad_bottom, defaults.pad_bottom);
    attrs.i64("pad_left", layer.pad_left, defaults.pad_left);
    attrs.i64("pad_right", layer.pad_right, defaults.pad_right);
    attrs.list("input_shape", layer.input_shape.dims);
    attrs.f32("quant_scale", layer.quant_scale, defaults.quant_scale);
    attrs.i64("quant_zero_point", layer.quant_zero_point,
              defaults.quant_zero_point);
    attrs.i64("weight_bits", layer.weight_bits, defaults.weight_bits);
    attrs.i64("act_bits", layer.act_bits, defaults.act_bits);
    std::move(attrs).flush(w);

    w.u32(static_cast<std::uint32_t>(layer.weights.size()));
    for (const auto& t : layer.weights) write_tensor(w, t);
  }
  return std::move(w).take();
}

util::Result<nn::Graph> read_onnx(std::span<const std::uint8_t> data) {
  using R = util::Result<nn::Graph>;
  if (!looks_like_onnx(data)) return R::failure("bad ONNX magic");
  util::ByteReader r{data};
  r.seek(sizeof(kOnnxMagic));
  if (r.u32() != kOnnxIrVersion) return R::failure("unsupported ir_version");

  nn::Graph graph;
  graph.name = r.str();
  const std::uint32_t node_count = r.u32();
  if (!r.ok() || node_count > 100000) return R::failure("bad node count");

  for (std::uint32_t i = 0; i < node_count; ++i) {
    const std::string op_type = r.str();
    const std::uint8_t code = r.u8();
    if (code >= static_cast<std::uint8_t>(nn::LayerType::kCount)) {
      return R::failure("bad layer type");
    }
    nn::Layer layer;
    layer.type = static_cast<nn::LayerType>(code);
    if (op_type != onnx_op_type(layer.type)) {
      return R::failure("op_type does not match layer code");
    }
    layer.name = r.str();
    const std::uint32_t n_inputs = r.u32();
    if (!r.ok() || n_inputs > node_count) return R::failure("bad input count");
    for (std::uint32_t k = 0; k < n_inputs; ++k) {
      const std::int32_t in = r.i32();
      if (in < 0 || static_cast<std::uint32_t>(in) >= i) {
        return R::failure("bad input index");
      }
      layer.inputs.push_back(in);
    }

    const std::uint32_t attr_count = r.u32();
    if (!r.ok() || attr_count > 32) return R::failure("bad attribute count");
    for (std::uint32_t k = 0; k < attr_count; ++k) {
      const std::string key = r.str();
      const std::uint8_t kind = r.u8();
      std::int64_t iv = 0;
      float fv = 0.0f;
      std::vector<std::int64_t> lv;
      if (kind == 0) {
        iv = r.i64();
      } else if (kind == 1) {
        fv = r.f32();
      } else if (kind == 2) {
        const std::uint32_t n = r.u32();
        if (!r.ok() || n > 16) return R::failure("bad attribute list");
        for (std::uint32_t d = 0; d < n; ++d) lv.push_back(r.i64());
      } else {
        return R::failure("bad attribute kind");
      }
      if (!r.ok()) return R::failure("truncated attribute");
      const auto as_int = [&](int& field) { field = static_cast<int>(iv); };
      if (key == "kernel_h") as_int(layer.kernel_h);
      else if (key == "kernel_w") as_int(layer.kernel_w);
      else if (key == "stride_h") as_int(layer.stride_h);
      else if (key == "stride_w") as_int(layer.stride_w);
      else if (key == "auto_pad") layer.padding = static_cast<nn::Padding>(iv);
      else if (key == "units") as_int(layer.units);
      else if (key == "axis") as_int(layer.axis);
      else if (key == "resize_scale") as_int(layer.resize_scale);
      else if (key == "slice_begin") layer.slice_begin = std::move(lv);
      else if (key == "slice_size") layer.slice_size = std::move(lv);
      else if (key == "target_shape") layer.target_shape = std::move(lv);
      else if (key == "pad_top") as_int(layer.pad_top);
      else if (key == "pad_bottom") as_int(layer.pad_bottom);
      else if (key == "pad_left") as_int(layer.pad_left);
      else if (key == "pad_right") as_int(layer.pad_right);
      else if (key == "input_shape") layer.input_shape.dims = std::move(lv);
      else if (key == "quant_scale") layer.quant_scale = fv;
      else if (key == "quant_zero_point") layer.quant_zero_point = static_cast<std::int32_t>(iv);
      else if (key == "weight_bits") as_int(layer.weight_bits);
      else if (key == "act_bits") as_int(layer.act_bits);
      // Unknown keys are skipped (the TLV encoding is self-describing).
    }

    const std::uint32_t n_weights = r.u32();
    if (!r.ok() || n_weights > 8) return R::failure("bad weight count");
    for (std::uint32_t k = 0; k < n_weights; ++k) {
      nn::Tensor t;
      if (!read_tensor(r, t)) return R::failure("bad weight tensor");
      layer.weights.push_back(std::move(t));
    }
    graph.add(std::move(layer));
  }
  if (!r.ok()) return R::failure("truncated ONNX file");
  if (auto status = graph.validate(); !status.ok()) {
    return R::failure("invalid graph: " + status.error());
  }
  return graph;
}

class OnnxPlugin final : public FormatPlugin {
 public:
  Framework framework() const override { return Framework::Onnx; }
  const char* name() const override { return "ONNX"; }
  int chart_rank() const override { return 5; }

  const std::vector<std::string>& extensions() const override {
    static const std::vector<std::string> kExtensions = {
        ".onnx", ".pb", ".pbtxt", ".prototxt"};
    return kExtensions;
  }
  std::string primary_extension() const override { return ".onnx"; }

  bool validate(std::string_view,
                std::span<const std::uint8_t> data) const override {
    return looks_like_onnx(data);
  }

  util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                const util::Bytes*) const override {
    return read_onnx(primary);
  }

  bool supports(const nn::Graph&) const override {
    return true;  // every IR layer has an op_type mapping
  }

  util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const override {
    ConvertedModel out;
    out.primary = write_onnx(graph);
    return out;
  }

  bool quantizable() const override { return true; }

  const std::vector<std::string>& dex_markers() const override {
    static const std::vector<std::string> kMarkers = {
        "Lai/onnxruntime/OrtSession;"};
    return kMarkers;
  }
  const std::vector<std::string>& native_libs() const override {
    static const std::vector<std::string> kLibs = {"libonnxruntime.so"};
    return kLibs;
  }
};

}  // namespace

GAUGE_REGISTER_FORMAT_PLUGIN(onnx, OnnxPlugin);

}  // namespace gauge::formats
