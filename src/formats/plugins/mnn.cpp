// MNN plugin: a sectioned single-file container with the magic "MNN0" at
// byte offset 0. The body is a sequence of tagged sections — "META" (graph
// name), "OPLS" (the op list with a fixed scalar block per op) and "WGHT"
// (per-op weight tensors via the shared tensor codec). Unknown tags are
// skipped by length, so the format can grow without breaking old readers.
//
// Layout (little-endian):
//   u8[4] "MNN0"
//   u32   version (2)
//   u32   section count
//   per section: u8[4] tag, u32 payload length, payload
#include <cstring>

#include "formats/plugin.hpp"
#include "formats/tensorio.hpp"

namespace gauge::formats {
namespace {

constexpr char kMnnMagic[4] = {'M', 'N', 'N', '0'};
constexpr std::uint32_t kMnnVersion = 2;

bool looks_like_mnn(std::span<const std::uint8_t> data) {
  return data.size() >= 8 &&
         std::memcmp(data.data(), kMnnMagic, sizeof(kMnnMagic)) == 0;
}

void write_i64_list(util::ByteWriter& w, const std::vector<std::int64_t>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto d : v) w.i64(d);
}

bool read_i64_list(util::ByteReader& r, std::vector<std::int64_t>& out,
                   std::uint32_t max_len) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > max_len) return false;
  out.clear();
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.i64());
  return r.ok();
}

util::Bytes write_mnn(const nn::Graph& graph) {
  util::ByteWriter meta;
  meta.str(graph.name);

  util::ByteWriter opls;
  opls.u32(static_cast<std::uint32_t>(graph.size()));
  for (const auto& layer : graph.layers()) {
    opls.u8(static_cast<std::uint8_t>(layer.type));
    opls.str(layer.name);
    opls.u32(static_cast<std::uint32_t>(layer.inputs.size()));
    for (const int in : layer.inputs) opls.i32(in);
    opls.i32(layer.kernel_h);
    opls.i32(layer.kernel_w);
    opls.i32(layer.stride_h);
    opls.i32(layer.stride_w);
    opls.u8(static_cast<std::uint8_t>(layer.padding));
    opls.i32(layer.units);
    opls.i32(layer.axis);
    opls.i32(layer.resize_scale);
    opls.i32(layer.pad_top);
    opls.i32(layer.pad_bottom);
    opls.i32(layer.pad_left);
    opls.i32(layer.pad_right);
    opls.f32(layer.quant_scale);
    opls.i32(layer.quant_zero_point);
    opls.u8(static_cast<std::uint8_t>(layer.weight_bits));
    opls.u8(static_cast<std::uint8_t>(layer.act_bits));
    write_i64_list(opls, layer.slice_begin);
    write_i64_list(opls, layer.slice_size);
    write_i64_list(opls, layer.target_shape);
    write_i64_list(opls, layer.input_shape.dims);
  }

  util::ByteWriter wght;
  for (const auto& layer : graph.layers()) {
    wght.u32(static_cast<std::uint32_t>(layer.weights.size()));
    for (const auto& t : layer.weights) write_tensor(wght, t);
  }

  util::ByteWriter w;
  w.raw(std::string_view{kMnnMagic, sizeof(kMnnMagic)});
  w.u32(kMnnVersion);
  w.u32(3);  // section count
  const auto section = [&](const char tag[4], util::ByteWriter&& payload) {
    w.raw(std::string_view{tag, 4});
    const util::Bytes bytes = std::move(payload).take();
    w.u32(static_cast<std::uint32_t>(bytes.size()));
    w.raw(bytes);
  };
  section("META", std::move(meta));
  section("OPLS", std::move(opls));
  section("WGHT", std::move(wght));
  return std::move(w).take();
}

util::Result<nn::Graph> read_mnn(std::span<const std::uint8_t> data) {
  using R = util::Result<nn::Graph>;
  if (!looks_like_mnn(data)) return R::failure("bad MNN magic");
  util::ByteReader r{data};
  r.seek(sizeof(kMnnMagic));
  if (r.u32() != kMnnVersion) return R::failure("unsupported MNN version");
  const std::uint32_t section_count = r.u32();
  if (!r.ok() || section_count > 64) return R::failure("bad section count");

  nn::Graph graph;
  bool have_ops = false;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const auto tag = r.raw(4);
    const std::uint32_t len = r.u32();
    const auto payload = r.raw(len);
    if (!r.ok()) return R::failure("truncated section");
    util::ByteReader p{payload};

    if (util::as_view(tag) == "META") {
      graph.name = p.str();
      if (!p.ok()) return R::failure("bad META section");
    } else if (util::as_view(tag) == "OPLS") {
      const std::uint32_t op_count = p.u32();
      if (!p.ok() || op_count > 100000) return R::failure("bad op count");
      for (std::uint32_t i = 0; i < op_count; ++i) {
        const std::uint8_t code = p.u8();
        if (code >= static_cast<std::uint8_t>(nn::LayerType::kCount)) {
          return R::failure("bad layer type");
        }
        nn::Layer layer;
        layer.type = static_cast<nn::LayerType>(code);
        layer.name = p.str();
        const std::uint32_t n_inputs = p.u32();
        if (!p.ok() || n_inputs > op_count) {
          return R::failure("bad input count");
        }
        for (std::uint32_t k = 0; k < n_inputs; ++k) {
          const std::int32_t in = p.i32();
          if (in < 0 || static_cast<std::uint32_t>(in) >= i) {
            return R::failure("bad input index");
          }
          layer.inputs.push_back(in);
        }
        layer.kernel_h = p.i32();
        layer.kernel_w = p.i32();
        layer.stride_h = p.i32();
        layer.stride_w = p.i32();
        layer.padding = static_cast<nn::Padding>(p.u8());
        layer.units = p.i32();
        layer.axis = p.i32();
        layer.resize_scale = p.i32();
        layer.pad_top = p.i32();
        layer.pad_bottom = p.i32();
        layer.pad_left = p.i32();
        layer.pad_right = p.i32();
        layer.quant_scale = p.f32();
        layer.quant_zero_point = p.i32();
        layer.weight_bits = p.u8();
        layer.act_bits = p.u8();
        if (!read_i64_list(p, layer.slice_begin, 16) ||
            !read_i64_list(p, layer.slice_size, 16) ||
            !read_i64_list(p, layer.target_shape, 16) ||
            !read_i64_list(p, layer.input_shape.dims, 8)) {
          return R::failure("bad op attribute list");
        }
        graph.add(std::move(layer));
      }
      have_ops = true;
    } else if (util::as_view(tag) == "WGHT") {
      if (!have_ops) return R::failure("WGHT before OPLS");
      for (std::size_t i = 0; i < graph.size(); ++i) {
        const std::uint32_t n_weights = p.u32();
        if (!p.ok() || n_weights > 8) return R::failure("bad weight count");
        for (std::uint32_t k = 0; k < n_weights; ++k) {
          nn::Tensor t;
          if (!read_tensor(p, t)) return R::failure("bad weight tensor");
          graph.layer(static_cast<int>(i)).weights.push_back(std::move(t));
        }
      }
    }
    // Unknown tags: skipped by length.
  }
  if (!have_ops) return R::failure("missing OPLS section");
  if (auto status = graph.validate(); !status.ok()) {
    return R::failure("invalid graph: " + status.error());
  }
  return graph;
}

class MnnPlugin final : public FormatPlugin {
 public:
  Framework framework() const override { return Framework::Mnn; }
  const char* name() const override { return "MNN"; }
  int chart_rank() const override { return 6; }

  const std::vector<std::string>& extensions() const override {
    static const std::vector<std::string> kExtensions = {".mnn"};
    return kExtensions;
  }

  bool validate(std::string_view,
                std::span<const std::uint8_t> data) const override {
    return looks_like_mnn(data);
  }

  util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                const util::Bytes*) const override {
    return read_mnn(primary);
  }

  bool supports(const nn::Graph&) const override {
    return true;  // the op list covers the full IR
  }

  util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const override {
    ConvertedModel out;
    out.primary = write_mnn(graph);
    return out;
  }

  bool quantizable() const override { return true; }

  const std::vector<std::string>& dex_markers() const override {
    static const std::vector<std::string> kMarkers = {
        "Lcom/alibaba/android/mnn/MNNNetInstance;"};
    return kMarkers;
  }
  const std::vector<std::string>& native_libs() const override {
    static const std::vector<std::string> kLibs = {"libMNN.so"};
    return kLibs;
  }
};

}  // namespace

GAUGE_REGISTER_FORMAT_PLUGIN(mnn, MnnPlugin);

}  // namespace gauge::formats
