// ncnn plugin: the second two-file format — a text .param graph (first line
// 7767517) plus a raw .bin weight blob. Also owns the multi-dot spellings
// ".cfg.ncnn" / ".weights.ncnn" from Table 5, which exercise the registry's
// longest-suffix-first matching.
#include "formats/ncnn.hpp"

#include "formats/plugin.hpp"

namespace gauge::formats {
namespace {

class NcnnPlugin final : public FormatPlugin {
 public:
  Framework framework() const override { return Framework::Ncnn; }
  const char* name() const override { return "ncnn"; }
  int chart_rank() const override { return 2; }

  const std::vector<std::string>& extensions() const override {
    static const std::vector<std::string> kExtensions = {
        ".param", ".bin", ".cfg.ncnn", ".weights.ncnn", ".ncnn"};
    return kExtensions;
  }
  std::string primary_extension() const override { return ".param"; }

  bool validate(std::string_view path,
                std::span<const std::uint8_t> data) const override {
    // Weights blobs (.bin / .weights.ncnn) carry no magic of their own and
    // never validate; only graph files are checked for the 7767517 line.
    if (path_has_suffix(path, ".param") ||
        path_has_suffix(path, ".cfg.ncnn") ||
        (path_has_suffix(path, ".ncnn") &&
         !path_has_suffix(path, ".weights.ncnn"))) {
      return looks_like_ncnn_param(util::as_view(data));
    }
    return false;
  }

  std::string companion(std::string_view path) const override {
    if (auto sibling = replace_path_suffix(path, ".param", ".bin");
        !sibling.empty()) {
      return sibling;
    }
    return replace_path_suffix(path, ".cfg.ncnn", ".weights.ncnn");
  }
  std::string companion_primary(std::string_view path) const override {
    if (path_has_suffix(path, ".weights.ncnn")) {
      return replace_path_suffix(path, ".weights.ncnn", ".cfg.ncnn");
    }
    return replace_path_suffix(path, ".bin", ".param");
  }

  util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                const util::Bytes* weights) const override {
    if (weights == nullptr) {
      return util::Result<nn::Graph>::failure("missing .bin sibling");
    }
    return read_ncnn(std::string{util::as_view(primary)}, *weights);
  }

  bool supports(const nn::Graph& graph) const override {
    return ncnn_supports(graph);
  }

  util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const override {
    auto model = write_ncnn(graph);
    if (!model.ok()) {
      return util::Result<ConvertedModel>::failure(model.error());
    }
    ConvertedModel out;
    out.primary = util::to_bytes(model.value().param);
    out.weights = std::move(model.value().bin);
    out.has_weights_file = true;
    return out;
  }

  const std::vector<std::string>& native_libs() const override {
    static const std::vector<std::string> kLibs = {"libncnn.so"};
    return kLibs;
  }
};

}  // namespace

GAUGE_REGISTER_FORMAT_PLUGIN(ncnn, NcnnPlugin);

}  // namespace gauge::formats
