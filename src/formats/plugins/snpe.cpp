// SNPE plugin: Qualcomm .dlc containers ("DLC1" at byte offset 4), the
// format the paper's three SNPE apps shipped next to their TFLite twins.
#include "formats/plugin.hpp"
#include "formats/tfl.hpp"

namespace gauge::formats {
namespace {

class SnpePlugin final : public FormatPlugin {
 public:
  Framework framework() const override { return Framework::Snpe; }
  const char* name() const override { return "SNPE"; }
  int chart_rank() const override { return 4; }

  const std::vector<std::string>& extensions() const override {
    static const std::vector<std::string> kExtensions = {".dlc"};
    return kExtensions;
  }

  bool validate(std::string_view,
                std::span<const std::uint8_t> data) const override {
    return looks_like_dlc(data);
  }

  util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                const util::Bytes*) const override {
    return read_dlc(primary);
  }

  bool supports(const nn::Graph&) const override {
    return true;  // the container carries the full IR
  }

  util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const override {
    ConvertedModel out;
    out.primary = write_dlc(graph);
    return out;
  }

  bool quantizable() const override { return true; }

  const std::vector<std::string>& native_libs() const override {
    static const std::vector<std::string> kLibs = {"libSNPE.so"};
    return kLibs;
  }
};

}  // namespace

GAUGE_REGISTER_FORMAT_PLUGIN(snpe, SnpePlugin);

}  // namespace gauge::formats
