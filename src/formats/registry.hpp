// Framework enum + free-function facade over the plugin registry. The table
// itself lives with the plugins (plugin.hpp / src/formats/plugins/): each
// FormatPlugin contributes its Appendix-Table-5 extension rows, and the
// frameworks without a parser are listed in PluginRegistry::unsupported().
// Candidate matching is the first stage of model extraction — any file whose
// extension appears in the combined table is a *candidate* model and
// proceeds to signature validation (validate.hpp). Matching is
// longest-suffix-first, so multi-dot extensions (".cfg.ncnn", ".pth.tar")
// beat their shorter tails.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gauge::formats {

enum class Framework {
  Onnx,
  MxNet,
  Keras,
  Caffe,
  Caffe2,
  PyTorch,
  Torch,
  Snpe,
  FeatherCnn,
  TfLite,
  TensorFlow,
  Sklearn,
  ArmNn,
  Mnn,
  Ncnn,
  Tengine,
  Flux,
  Chainer,
  kCount,
};

const char* framework_name(Framework fw);

struct FrameworkFormats {
  Framework framework;
  std::vector<std::string> extensions;  // lowercased, leading dot
};

// The full table (18 frameworks, 69 extension entries).
const std::vector<FrameworkFormats>& format_table();

// Frameworks whose extension table contains the file's extension.
std::vector<Framework> candidate_frameworks(std::string_view path);

// True when the extension appears in any framework's list.
bool is_candidate_model_file(std::string_view path);

}  // namespace gauge::formats
