// Shared tensor wire codec used by every binary container in this directory
// (the TFL-family containers plus the ONNX- and MNN-like formats): dtype,
// shape, quantisation metadata and raw element data, little-endian.
//
// Exact-byte round-trip is guaranteed for all dtypes — f32 elements are
// written bit-for-bit — so containers built on this codec preserve
// nn::model_checksum across serialise/parse.
#pragma once

#include "nn/tensor.hpp"
#include "util/bytes.hpp"

namespace gauge::formats {

void write_tensor(util::ByteWriter& w, const nn::Tensor& t);

// Returns false (leaving `out` untouched) on truncation, oversized shapes or
// an unknown dtype; the reader's error flag is also left set in that case.
bool read_tensor(util::ByteReader& r, nn::Tensor& out);

}  // namespace gauge::formats
