#include "formats/caffe.hpp"

#include <cstring>
#include <map>
#include <optional>

#include "util/strings.hpp"

namespace gauge::formats {

namespace {

// ------------------------------------------------------------ text writer

const char* caffe_type_name(nn::LayerType type) {
  switch (type) {
    case nn::LayerType::Input: return "Input";
    case nn::LayerType::Conv2D: return "Convolution";
    case nn::LayerType::MaxPool2D:
    case nn::LayerType::AvgPool2D:
    case nn::LayerType::GlobalAvgPool: return "Pooling";
    case nn::LayerType::Dense: return "InnerProduct";
    case nn::LayerType::Relu:
    case nn::LayerType::Relu6: return "ReLU";
    case nn::LayerType::Sigmoid: return "Sigmoid";
    case nn::LayerType::Tanh: return "TanH";
    case nn::LayerType::Softmax: return "Softmax";
    case nn::LayerType::Add:
    case nn::LayerType::Mul: return "Eltwise";
    case nn::LayerType::Concat: return "Concat";
    case nn::LayerType::BatchNorm: return "BatchNorm";
    case nn::LayerType::Reshape: return "Reshape";
    default: return nullptr;
  }
}

// --------------------------------------------------------- prototxt parser

// Minimal protobuf text format: a message is a sequence of `key: value`
// scalars and `key { ... }` sub-messages. Values: quoted strings, numbers,
// bare identifiers.
struct PbNode {
  // Repeated fields preserved in order.
  std::vector<std::pair<std::string, std::string>> scalars;
  std::vector<std::pair<std::string, PbNode>> children;

  std::optional<std::string> scalar(const std::string& key) const {
    for (const auto& [k, v] : scalars) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  std::vector<std::string> all_scalars(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : scalars) {
      if (k == key) out.push_back(v);
    }
    return out;
  }
  const PbNode* child(const std::string& key) const {
    for (const auto& [k, v] : children) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class PbParser {
 public:
  explicit PbParser(std::string_view text) : text_{text} {}

  util::Result<PbNode> parse() {
    PbNode root;
    if (!parse_body(root, /*top_level=*/true)) {
      return util::Result<PbNode>::failure(
          util::format("prototxt parse error near offset %zu", pos_));
    }
    return root;
  }

 private:
  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  bool parse_identifier(std::string& out) {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out = std::string{text_.substr(start, pos_ - start)};
    return true;
  }

  bool parse_value(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == '"') {
      ++pos_;
      const std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) return false;
      out = std::string{text_.substr(start, pos_ - start)};
      ++pos_;
      return true;
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '}' && text_[pos_] != '{') {
      ++pos_;
    }
    if (pos_ == start) return false;
    out = std::string{text_.substr(start, pos_ - start)};
    return true;
  }

  bool parse_body(PbNode& node, bool top_level) {
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size()) return top_level;
      if (text_[pos_] == '}') {
        if (top_level) return false;
        ++pos_;
        return true;
      }
      std::string key;
      if (!parse_identifier(key)) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '{') {
        ++pos_;
        PbNode child;
        if (!parse_body(child, /*top_level=*/false)) return false;
        node.children.emplace_back(std::move(key), std::move(child));
      } else if (pos_ < text_.size() && text_[pos_] == ':') {
        ++pos_;
        std::string value;
        if (!parse_value(value)) return false;
        node.scalars.emplace_back(std::move(key), std::move(value));
      } else {
        return false;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// -------------------------------------------------------- weight blob I/O

void write_weight_blob(util::ByteWriter& w, const nn::Graph& graph) {
  w.raw(std::string_view{kCaffeWeightsMagic, 4});
  std::uint32_t weighted = 0;
  for (const auto& layer : graph.layers()) {
    if (layer.has_weights()) ++weighted;
  }
  w.u32(weighted);
  for (const auto& layer : graph.layers()) {
    if (!layer.has_weights()) continue;
    w.str(layer.name);
    w.u32(static_cast<std::uint32_t>(layer.weights.size()));
    for (const auto& t : layer.weights) {
      // caffe blobs are float-only.
      w.u32(static_cast<std::uint32_t>(t.shape().rank()));
      for (std::int64_t d : t.shape().dims) w.i64(d);
      for (std::int64_t k = 0; k < t.elements(); ++k) {
        const float v = t.dtype() == nn::DType::F32
                            ? t.f32()[static_cast<std::size_t>(k)]
                            : static_cast<float>(t.i8()[static_cast<std::size_t>(k)]) *
                                  t.quant_scale;
        w.f32(v);
      }
    }
  }
}

util::Result<std::map<std::string, std::vector<nn::Tensor>>> read_weight_blob(
    std::span<const std::uint8_t> data) {
  using R = util::Result<std::map<std::string, std::vector<nn::Tensor>>>;
  if (!looks_like_caffemodel(data)) return R::failure("missing CAFW magic");
  util::ByteReader r{data};
  r.raw(4);
  const std::uint32_t layer_count = r.u32();
  if (!r.ok() || layer_count > 100000) return R::failure("corrupt blob header");
  std::map<std::string, std::vector<nn::Tensor>> out;
  for (std::uint32_t i = 0; i < layer_count; ++i) {
    const std::string name = r.str();
    const std::uint32_t n_tensors = r.u32();
    if (!r.ok() || n_tensors > 8) return R::failure("corrupt blob entry");
    std::vector<nn::Tensor> tensors;
    for (std::uint32_t t = 0; t < n_tensors; ++t) {
      const std::uint32_t rank = r.u32();
      if (!r.ok() || rank > 8) return R::failure("corrupt tensor rank");
      nn::Shape shape;
      for (std::uint32_t d = 0; d < rank; ++d) shape.dims.push_back(r.i64());
      const std::int64_t elems = shape.elements();
      if (!r.ok() || elems < 0 || elems > (1 << 28)) {
        return R::failure("corrupt tensor shape");
      }
      nn::Tensor tensor{shape, nn::DType::F32};
      for (auto& v : tensor.f32()) v = r.f32();
      if (!r.ok()) return R::failure("truncated weights");
      tensors.push_back(std::move(tensor));
    }
    out[name] = std::move(tensors);
  }
  return out;
}

}  // namespace

bool caffe_supports(const nn::Graph& graph) {
  for (const auto& layer : graph.layers()) {
    if (caffe_type_name(layer.type) == nullptr) return false;
  }
  return true;
}

util::Result<CaffeModel> write_caffe(const nn::Graph& graph) {
  using R = util::Result<CaffeModel>;
  if (!caffe_supports(graph)) {
    return R::failure("graph uses layers outside the caffe dialect");
  }

  std::string proto = util::format("name: \"%s\"\n", graph.name.c_str());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const nn::Layer& layer = graph.layer(static_cast<int>(i));
    proto += "layer {\n";
    proto += util::format("  name: \"%s\"\n",
                          layer.name.empty()
                              ? util::format("layer_%zu", i).c_str()
                              : layer.name.c_str());
    proto += util::format("  type: \"%s\"\n", caffe_type_name(layer.type));
    for (int in : layer.inputs) {
      proto += util::format("  bottom: \"l%d\"\n", in);
    }
    proto += util::format("  top: \"l%zu\"\n", i);
    switch (layer.type) {
      case nn::LayerType::Input: {
        proto += "  input_param {\n    shape {\n";
        for (std::int64_t d : layer.input_shape.dims) {
          proto += util::format("      dim: %lld\n", static_cast<long long>(d));
        }
        proto += "    }\n  }\n";
        break;
      }
      case nn::LayerType::Conv2D: {
        proto += util::format(
            "  convolution_param { num_output: %d kernel_size: %d stride: %d "
            "pad_mode: %s }\n",
            layer.units, layer.kernel_h, layer.stride_h,
            layer.padding == nn::Padding::Same ? "same" : "valid");
        break;
      }
      case nn::LayerType::MaxPool2D:
      case nn::LayerType::AvgPool2D:
      case nn::LayerType::GlobalAvgPool: {
        const char* pool = layer.type == nn::LayerType::MaxPool2D ? "MAX" : "AVE";
        proto += util::format(
            "  pooling_param { pool: %s kernel_size: %d stride: %d "
            "global_pooling: %s }\n",
            pool, layer.kernel_h, layer.stride_h,
            layer.type == nn::LayerType::GlobalAvgPool ? "true" : "false");
        break;
      }
      case nn::LayerType::Dense: {
        proto += util::format("  inner_product_param { num_output: %d }\n",
                              layer.units);
        break;
      }
      case nn::LayerType::Relu6: {
        proto += "  relu_param { negative_slope: 0 clip: 6 }\n";
        break;
      }
      case nn::LayerType::Add: {
        proto += "  eltwise_param { operation: SUM }\n";
        break;
      }
      case nn::LayerType::Mul: {
        proto += "  eltwise_param { operation: PROD }\n";
        break;
      }
      case nn::LayerType::Concat: {
        proto += util::format("  concat_param { axis: %d }\n", layer.axis);
        break;
      }
      case nn::LayerType::Reshape: {
        proto += "  reshape_param { shape {\n";
        for (std::int64_t d : layer.target_shape) {
          proto += util::format("    dim: %lld\n", static_cast<long long>(d));
        }
        proto += "  } }\n";
        break;
      }
      default:
        break;
    }
    proto += "}\n";
  }

  util::ByteWriter weights;
  write_weight_blob(weights, graph);
  return CaffeModel{std::move(proto), std::move(weights).take()};
}

bool looks_like_prototxt(std::string_view text) {
  // The paper's validation checks for framework-specific identifiers; for
  // prototxt we require a layer block plus type declaration.
  return text.find("layer {") != std::string_view::npos &&
         text.find("type:") != std::string_view::npos;
}

bool looks_like_caffemodel(std::span<const std::uint8_t> data) {
  return data.size() >= 8 &&
         std::memcmp(data.data(), kCaffeWeightsMagic, 4) == 0;
}

util::Result<nn::Graph> read_caffe(const std::string& prototxt,
                                   std::span<const std::uint8_t> caffemodel) {
  using R = util::Result<nn::Graph>;
  if (!looks_like_prototxt(prototxt)) return R::failure("not a prototxt");
  PbParser parser{prototxt};
  auto root = parser.parse();
  if (!root.ok()) return R::failure(root.error());

  auto weights = read_weight_blob(caffemodel);
  if (!weights.ok()) return R::failure(weights.error());

  nn::Graph graph;
  graph.name = root.value().scalar("name").value_or("caffe_model");
  std::map<std::string, int> top_to_index;  // blob name -> producing layer

  for (const auto& [key, node] : root.value().children) {
    if (key != "layer") continue;
    const std::string type = node.scalar("type").value_or("");
    const std::string name = node.scalar("name").value_or("");
    nn::Layer layer;
    layer.name = name;

    for (const auto& bottom : node.all_scalars("bottom")) {
      const auto it = top_to_index.find(bottom);
      if (it == top_to_index.end()) {
        return R::failure("unknown bottom blob: " + bottom);
      }
      layer.inputs.push_back(it->second);
    }

    auto int_param = [&](const PbNode* p, const char* field, int fallback) {
      if (p == nullptr) return fallback;
      const auto v = p->scalar(field);
      if (!v) return fallback;
      return static_cast<int>(util::parse_int(*v).value_or(fallback));
    };

    if (type == "Input") {
      layer.type = nn::LayerType::Input;
      const PbNode* param = node.child("input_param");
      const PbNode* shape = param ? param->child("shape") : nullptr;
      if (shape == nullptr) return R::failure("Input without shape");
      for (const auto& d : shape->all_scalars("dim")) {
        layer.input_shape.dims.push_back(util::parse_int(d).value_or(0));
      }
    } else if (type == "Convolution") {
      layer.type = nn::LayerType::Conv2D;
      const PbNode* p = node.child("convolution_param");
      layer.units = int_param(p, "num_output", 0);
      layer.kernel_h = layer.kernel_w = int_param(p, "kernel_size", 1);
      layer.stride_h = layer.stride_w = int_param(p, "stride", 1);
      const std::string pad = p ? p->scalar("pad_mode").value_or("same") : "same";
      layer.padding = pad == "valid" ? nn::Padding::Valid : nn::Padding::Same;
    } else if (type == "Pooling") {
      const PbNode* p = node.child("pooling_param");
      const std::string pool = p ? p->scalar("pool").value_or("MAX") : "MAX";
      const std::string global =
          p ? p->scalar("global_pooling").value_or("false") : "false";
      if (global == "true") {
        layer.type = nn::LayerType::GlobalAvgPool;
      } else {
        layer.type = pool == "AVE" ? nn::LayerType::AvgPool2D
                                   : nn::LayerType::MaxPool2D;
        layer.kernel_h = layer.kernel_w = int_param(p, "kernel_size", 2);
        layer.stride_h = layer.stride_w = int_param(p, "stride", 2);
      }
    } else if (type == "InnerProduct") {
      layer.type = nn::LayerType::Dense;
      layer.units = int_param(node.child("inner_product_param"), "num_output", 0);
    } else if (type == "ReLU") {
      const PbNode* p = node.child("relu_param");
      layer.type = (p && p->scalar("clip").value_or("") == "6")
                       ? nn::LayerType::Relu6
                       : nn::LayerType::Relu;
    } else if (type == "Sigmoid") {
      layer.type = nn::LayerType::Sigmoid;
    } else if (type == "TanH") {
      layer.type = nn::LayerType::Tanh;
    } else if (type == "Softmax") {
      layer.type = nn::LayerType::Softmax;
    } else if (type == "Eltwise") {
      const PbNode* p = node.child("eltwise_param");
      layer.type = (p && p->scalar("operation").value_or("SUM") == "PROD")
                       ? nn::LayerType::Mul
                       : nn::LayerType::Add;
    } else if (type == "Concat") {
      layer.type = nn::LayerType::Concat;
      layer.axis = int_param(node.child("concat_param"), "axis", -1);
    } else if (type == "BatchNorm") {
      layer.type = nn::LayerType::BatchNorm;
    } else if (type == "Reshape") {
      layer.type = nn::LayerType::Reshape;
      const PbNode* p = node.child("reshape_param");
      const PbNode* shape = p ? p->child("shape") : nullptr;
      if (shape == nullptr) return R::failure("Reshape without shape");
      for (const auto& d : shape->all_scalars("dim")) {
        layer.target_shape.push_back(util::parse_int(d).value_or(0));
      }
    } else {
      return R::failure("unsupported caffe layer type: " + type);
    }

    // Attach weights by layer name.
    const auto wit = weights.value().find(name);
    if (wit != weights.value().end()) layer.weights = wit->second;

    const std::string top = node.scalar("top").value_or("");
    if (top.empty()) return R::failure("layer without top blob");
    const int idx = graph.add(std::move(layer));
    top_to_index[top] = idx;
  }

  if (auto status = graph.validate(); !status.ok()) {
    return R::failure("invalid caffe graph: " + status.error());
  }
  return graph;
}

}  // namespace gauge::formats
