#include "formats/ncnn.hpp"

#include <map>
#include <sstream>

#include "util/strings.hpp"

namespace gauge::formats {

namespace {

// ncnn layer dialect: the subset real ncnn zoo models use.
const char* ncnn_type_name(nn::LayerType type) {
  switch (type) {
    case nn::LayerType::Input: return "Input";
    case nn::LayerType::Conv2D: return "Convolution";
    case nn::LayerType::DepthwiseConv2D: return "ConvolutionDepthWise";
    case nn::LayerType::Dense: return "InnerProduct";
    case nn::LayerType::MaxPool2D:
    case nn::LayerType::AvgPool2D:
    case nn::LayerType::GlobalAvgPool: return "Pooling";
    case nn::LayerType::Relu: return "ReLU";
    case nn::LayerType::Relu6: return "Clip";
    case nn::LayerType::Sigmoid: return "Sigmoid";
    case nn::LayerType::Tanh: return "TanH";
    case nn::LayerType::Softmax: return "Softmax";
    case nn::LayerType::Add:
    case nn::LayerType::Mul: return "BinaryOp";
    case nn::LayerType::Concat: return "Concat";
    case nn::LayerType::ResizeNearest: return "Interp";
    case nn::LayerType::Reshape: return "Reshape";
    default: return nullptr;
  }
}

void write_tensor_bin(util::ByteWriter& w, const nn::Tensor& t) {
  w.u32(0);  // flag: raw float32 (mirrors ncnn's flag-tag convention)
  w.u32(static_cast<std::uint32_t>(t.shape().rank()));
  for (std::int64_t d : t.shape().dims) w.i64(d);
  for (std::int64_t k = 0; k < t.elements(); ++k) {
    const float v = t.dtype() == nn::DType::F32
                        ? t.f32()[static_cast<std::size_t>(k)]
                        : static_cast<float>(t.i8()[static_cast<std::size_t>(k)]) *
                              t.quant_scale;
    w.f32(v);
  }
}

bool read_tensor_bin(util::ByteReader& r, nn::Tensor& out) {
  const std::uint32_t flag = r.u32();
  if (!r.ok() || flag != 0) return false;
  const std::uint32_t rank = r.u32();
  if (!r.ok() || rank > 8) return false;
  nn::Shape shape;
  for (std::uint32_t d = 0; d < rank; ++d) shape.dims.push_back(r.i64());
  const std::int64_t elems = shape.elements();
  if (!r.ok() || elems < 0 || elems > (1 << 28)) return false;
  nn::Tensor t{shape, nn::DType::F32};
  for (auto& v : t.f32()) v = r.f32();
  if (!r.ok()) return false;
  out = std::move(t);
  return true;
}

}  // namespace

bool ncnn_supports(const nn::Graph& graph) {
  for (const auto& layer : graph.layers()) {
    if (ncnn_type_name(layer.type) == nullptr) return false;
  }
  return true;
}

util::Result<NcnnModel> write_ncnn(const nn::Graph& graph) {
  using R = util::Result<NcnnModel>;
  if (!ncnn_supports(graph)) {
    return R::failure("graph uses layers outside the ncnn dialect");
  }

  std::string param{kNcnnMagic};
  param += "\n";
  param += util::format("%zu %zu\n", graph.size(), graph.size());

  util::ByteWriter bin;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const nn::Layer& layer = graph.layer(static_cast<int>(i));
    std::string line = util::format(
        "%-24s %-16s %zu 1", ncnn_type_name(layer.type),
        layer.name.empty() ? util::format("layer_%zu", i).c_str()
                           : layer.name.c_str(),
        layer.inputs.size());
    for (int in : layer.inputs) line += util::format(" blob%d", in);
    line += util::format(" blob%zu", i);

    switch (layer.type) {
      case nn::LayerType::Input:
        for (std::size_t d = 0; d < layer.input_shape.rank(); ++d) {
          line += util::format(" %zu=%lld", d,
                               static_cast<long long>(layer.input_shape[d]));
        }
        break;
      case nn::LayerType::Conv2D:
      case nn::LayerType::DepthwiseConv2D:
        line += util::format(" 0=%d 1=%d 3=%d 4=%d 5=1", layer.units,
                             layer.kernel_h, layer.stride_h,
                             layer.padding == nn::Padding::Same ? 1 : 0);
        if (layer.type == nn::LayerType::DepthwiseConv2D) {
          line += util::format(" 7=%lld",
                               static_cast<long long>(layer.weights[0].shape()[2]));
        }
        break;
      case nn::LayerType::Dense:
        line += util::format(" 0=%d 1=1", layer.units);
        break;
      case nn::LayerType::MaxPool2D:
      case nn::LayerType::AvgPool2D:
        line += util::format(" 0=%d 1=%d 2=%d",
                             layer.type == nn::LayerType::AvgPool2D ? 1 : 0,
                             layer.kernel_h, layer.stride_h);
        break;
      case nn::LayerType::GlobalAvgPool:
        line += " 0=1 4=1";
        break;
      case nn::LayerType::Relu6:
        line += " 0=0 1=6";
        break;
      case nn::LayerType::Add:
        line += " 0=0";
        break;
      case nn::LayerType::Mul:
        line += " 0=2";
        break;
      case nn::LayerType::Concat:
        line += util::format(" 0=%d", layer.axis);
        break;
      case nn::LayerType::ResizeNearest:
        line += util::format(" 0=1 1=%d 2=%d", layer.resize_scale,
                             layer.resize_scale);
        break;
      case nn::LayerType::Softmax:
        line += util::format(" 0=%d", layer.axis);
        break;
      case nn::LayerType::Reshape:
        for (std::size_t d = 0; d < layer.target_shape.size(); ++d) {
          line += util::format(" %zu=%lld", d,
                               static_cast<long long>(layer.target_shape[d]));
        }
        break;
      default:
        break;
    }
    param += line + "\n";

    for (const auto& t : layer.weights) write_tensor_bin(bin, t);
  }
  return NcnnModel{std::move(param), std::move(bin).take()};
}

bool looks_like_ncnn_param(std::string_view text) {
  const auto first_break = text.find('\n');
  const std::string_view first_line =
      first_break == std::string_view::npos ? text : text.substr(0, first_break);
  return util::trim(first_line) == kNcnnMagic;
}

util::Result<nn::Graph> read_ncnn(const std::string& param,
                                  std::span<const std::uint8_t> bin) {
  using R = util::Result<nn::Graph>;
  if (!looks_like_ncnn_param(param)) return R::failure("missing 7767517 magic");

  const auto lines = util::split(param, '\n');
  if (lines.size() < 2) return R::failure("truncated param");
  const auto header = util::split_ws(lines[1]);
  if (header.size() != 2) return R::failure("bad count header");
  const auto layer_count = util::parse_int(header[0]);
  if (!layer_count || *layer_count < 0) return R::failure("bad layer count");

  util::ByteReader weights{bin};
  nn::Graph graph;
  std::map<std::string, int> blob_to_index;

  std::size_t line_idx = 2;
  for (std::int64_t li = 0; li < *layer_count; ++li, ++line_idx) {
    if (line_idx >= lines.size()) return R::failure("param shorter than declared");
    const auto tokens = util::split_ws(lines[line_idx]);
    if (tokens.size() < 4) return R::failure("malformed layer line");
    const std::string& type = tokens[0];
    nn::Layer layer;
    layer.name = tokens[1];
    const auto n_in = util::parse_int(tokens[2]);
    const auto n_out = util::parse_int(tokens[3]);
    if (!n_in || !n_out || *n_out != 1) return R::failure("bad blob counts");
    const std::size_t blob_fields = static_cast<std::size_t>(*n_in) + 1;
    if (tokens.size() < 4 + blob_fields) return R::failure("missing blob names");
    for (std::int64_t k = 0; k < *n_in; ++k) {
      const std::string& blob = tokens[4 + static_cast<std::size_t>(k)];
      const auto it = blob_to_index.find(blob);
      if (it == blob_to_index.end()) return R::failure("unknown blob " + blob);
      layer.inputs.push_back(it->second);
    }
    const std::string out_blob = tokens[4 + static_cast<std::size_t>(*n_in)];

    std::map<int, std::int64_t> kv;
    for (std::size_t t = 4 + blob_fields; t < tokens.size(); ++t) {
      const auto eq = tokens[t].find('=');
      if (eq == std::string::npos) return R::failure("bad k=v token");
      const auto key = util::parse_int(tokens[t].substr(0, eq));
      const auto value = util::parse_int(tokens[t].substr(eq + 1));
      if (!key || !value) return R::failure("bad k=v token");
      kv[static_cast<int>(*key)] = *value;
    }
    auto get = [&](int key, std::int64_t fallback) {
      const auto it = kv.find(key);
      return it == kv.end() ? fallback : it->second;
    };

    int weight_tensors = 0;
    if (type == "Input") {
      layer.type = nn::LayerType::Input;
      for (int d = 0; kv.count(d); ++d) layer.input_shape.dims.push_back(kv[d]);
      if (layer.input_shape.rank() == 0) return R::failure("Input without dims");
    } else if (type == "Convolution" || type == "ConvolutionDepthWise") {
      layer.type = type == "Convolution" ? nn::LayerType::Conv2D
                                         : nn::LayerType::DepthwiseConv2D;
      layer.units = static_cast<int>(get(0, 0));
      layer.kernel_h = layer.kernel_w = static_cast<int>(get(1, 1));
      layer.stride_h = layer.stride_w = static_cast<int>(get(3, 1));
      layer.padding = get(4, 1) == 1 ? nn::Padding::Same : nn::Padding::Valid;
      weight_tensors = get(5, 0) == 1 ? 2 : 1;
    } else if (type == "InnerProduct") {
      layer.type = nn::LayerType::Dense;
      layer.units = static_cast<int>(get(0, 0));
      weight_tensors = get(1, 0) == 1 ? 2 : 1;
    } else if (type == "Pooling") {
      if (get(4, 0) == 1) {
        layer.type = nn::LayerType::GlobalAvgPool;
      } else {
        layer.type = get(0, 0) == 1 ? nn::LayerType::AvgPool2D
                                    : nn::LayerType::MaxPool2D;
        layer.kernel_h = layer.kernel_w = static_cast<int>(get(1, 2));
        layer.stride_h = layer.stride_w = static_cast<int>(get(2, 2));
      }
    } else if (type == "ReLU") {
      layer.type = nn::LayerType::Relu;
    } else if (type == "Clip") {
      layer.type = nn::LayerType::Relu6;
    } else if (type == "Sigmoid") {
      layer.type = nn::LayerType::Sigmoid;
    } else if (type == "TanH") {
      layer.type = nn::LayerType::Tanh;
    } else if (type == "Softmax") {
      layer.type = nn::LayerType::Softmax;
      layer.axis = static_cast<int>(get(0, -1));
    } else if (type == "BinaryOp") {
      layer.type = get(0, 0) == 2 ? nn::LayerType::Mul : nn::LayerType::Add;
    } else if (type == "Concat") {
      layer.type = nn::LayerType::Concat;
      layer.axis = static_cast<int>(get(0, -1));
    } else if (type == "Interp") {
      layer.type = nn::LayerType::ResizeNearest;
      layer.resize_scale = static_cast<int>(get(1, 2));
    } else if (type == "Reshape") {
      layer.type = nn::LayerType::Reshape;
      for (int d = 0; kv.count(d); ++d) layer.target_shape.push_back(kv[d]);
      if (layer.target_shape.empty()) return R::failure("Reshape without dims");
    } else {
      return R::failure("unsupported ncnn layer type: " + type);
    }

    for (int t = 0; t < weight_tensors; ++t) {
      nn::Tensor tensor;
      if (!read_tensor_bin(weights, tensor)) {
        return R::failure("truncated/corrupt .bin weights");
      }
      layer.weights.push_back(std::move(tensor));
    }

    const int idx = graph.add(std::move(layer));
    blob_to_index[out_blob] = idx;
  }

  if (auto status = graph.validate(); !status.ok()) {
    return R::failure("invalid ncnn graph: " + status.error());
  }
  return graph;
}

}  // namespace gauge::formats
