// ncnn-like model format: a text .param graph (magic first line 7767517,
// exactly like real ncnn — the signature validation checks that number) and
// a raw .bin weight file with per-tensor float data.
//
// .param grammar:
//   7767517
//   <layer_count> <blob_count>
//   <Type> <name> <n_in> <n_out> <in_blobs...> <out_blobs...> <k=v...>
#pragma once

#include <string>

#include "nn/graph.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::formats {

inline constexpr std::string_view kNcnnMagic = "7767517";

struct NcnnModel {
  std::string param;   // text graph
  util::Bytes bin;     // raw weights
};

util::Result<NcnnModel> write_ncnn(const nn::Graph& graph);
util::Result<nn::Graph> read_ncnn(const std::string& param,
                                  std::span<const std::uint8_t> bin);

bool looks_like_ncnn_param(std::string_view text);

// True when all layers of `graph` are expressible in the ncnn dialect.
bool ncnn_supports(const nn::Graph& graph);

}  // namespace gauge::formats
