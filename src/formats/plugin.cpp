#include "formats/plugin.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <mutex>

#include "util/strings.hpp"

namespace gauge::formats {

// Link anchors exported by the plugin translation units. Taking their
// addresses below forces the linker to load every plugin member of the
// static archive, so their self-registration statics actually run. One
// entry per plugin.
#define GAUGE_FORMAT_PLUGIN_ANCHOR(anchor_name) \
  extern int gauge_format_plugin_anchor_##anchor_name
GAUGE_FORMAT_PLUGIN_ANCHOR(tflite);
GAUGE_FORMAT_PLUGIN_ANCHOR(tensorflow);
GAUGE_FORMAT_PLUGIN_ANCHOR(snpe);
GAUGE_FORMAT_PLUGIN_ANCHOR(caffe);
GAUGE_FORMAT_PLUGIN_ANCHOR(ncnn);
GAUGE_FORMAT_PLUGIN_ANCHOR(onnx);
GAUGE_FORMAT_PLUGIN_ANCHOR(mnn);
#undef GAUGE_FORMAT_PLUGIN_ANCHOR

// External linkage on purpose: the compiler must materialise one relocation
// per anchor (an internal array whose contents are never read would be
// folded away), and resolving those relocations forces the linker to load
// every plugin member of the archive.
extern const int* const gauge_format_plugin_anchors[];
const int* const gauge_format_plugin_anchors[] = {
    &gauge_format_plugin_anchor_tflite,
    &gauge_format_plugin_anchor_tensorflow,
    &gauge_format_plugin_anchor_snpe,
    &gauge_format_plugin_anchor_caffe,
    &gauge_format_plugin_anchor_ncnn,
    &gauge_format_plugin_anchor_onnx,
    &gauge_format_plugin_anchor_mnn,
};

namespace {

const std::vector<std::string>& empty_strings() {
  static const std::vector<std::string> kEmpty;
  return kEmpty;
}

}  // namespace

// ---- FormatPlugin defaults ----------------------------------------------

const std::vector<std::string>& FormatPlugin::extension_aliases() const {
  return empty_strings();
}

std::string FormatPlugin::companion(std::string_view) const { return {}; }

std::string FormatPlugin::companion_primary(std::string_view) const {
  return {};
}

const std::vector<std::string>& FormatPlugin::dex_markers() const {
  return empty_strings();
}

const std::vector<std::string>& FormatPlugin::native_libs() const {
  return empty_strings();
}

std::string replace_path_suffix(std::string_view path, std::string_view from,
                                std::string_view to) {
  if (path.size() <= from.size()) return {};
  const std::string lower = util::to_lower(path);
  if (!std::string_view{lower}.ends_with(from)) return {};
  std::string out{path};
  out.replace(out.size() - from.size(), from.size(), to);
  return out;
}

bool path_has_suffix(std::string_view path, std::string_view ext) {
  if (path.size() <= ext.size()) return false;
  return util::to_lower(path.substr(path.size() - ext.size())) == ext;
}

// ---- registry ------------------------------------------------------------

const std::vector<UnsupportedFramework>& PluginRegistry::unsupported() {
  // The Appendix-Table-5 rows without a parser in this reproduction. Their
  // files still count as candidates (and fail extraction), as in the paper.
  static const std::vector<UnsupportedFramework> kTable = {
      {Framework::MxNet, "MXNet", {".mar", ".model", ".json", ".params"}},
      {Framework::Keras,
       "Keras",
       {".h5", ".hd5", ".hdf5", ".keras", ".json", ".model", ".pb", ".pth"}},
      {Framework::Caffe2, "Caffe2", {".pb", ".pbtxt", ".prototxt"}},
      {Framework::PyTorch,
       "PyTorch",
       {".pt", ".pth", ".pt1", ".pkl", ".h5", ".t7", ".model", ".dms",
        ".pth.tar", ".ckpt", ".bin", ".pb", ".tar"}},
      {Framework::Torch, "Torch", {".t7", ".dat"}},
      {Framework::FeatherCnn, "FeatherCNN", {".feathermodel"}},
      {Framework::Sklearn, "Sklearn", {".pkl", ".joblib", ".model"}},
      {Framework::ArmNn, "armNN", {".armnn"}},
      {Framework::Tengine, "Tengine", {".tmfile"}},
      {Framework::Flux, "Flux", {".bson"}},
      {Framework::Chainer,
       "Chainer",
       {".npz", ".h5", ".hd5", ".hdf5", ".chainermodel"}},
  };
  return kTable;
}

PluginRegistry& PluginRegistry::instance() {
  static PluginRegistry* registry = new PluginRegistry();  // never destroyed
  return *registry;
}

void PluginRegistry::register_plugin(std::unique_ptr<FormatPlugin> plugin) {
  const auto idx = static_cast<std::size_t>(plugin->framework());
  assert(idx < by_framework_.size() && "framework out of range");
  assert(!by_framework_[idx] && "duplicate plugin registration");
  assert(!plugin->extensions().empty() && "plugin without extensions");
  by_framework_[idx] = std::move(plugin);
}

const FormatPlugin* PluginRegistry::find(Framework fw) const {
  const auto idx = static_cast<std::size_t>(fw);
  if (idx >= by_framework_.size()) return nullptr;
  return by_framework_[idx].get();
}

std::vector<const FormatPlugin*> PluginRegistry::plugins() const {
  std::vector<const FormatPlugin*> out;
  for (const auto& plugin : by_framework_) {
    if (plugin) out.push_back(plugin.get());
  }
  return out;
}

std::vector<const FormatPlugin*> PluginRegistry::plugins_by_chart_rank()
    const {
  auto out = plugins();
  std::sort(out.begin(), out.end(),
            [](const FormatPlugin* a, const FormatPlugin* b) {
              return a->chart_rank() < b->chart_rank();
            });
  return out;
}

const char* PluginRegistry::framework_name(Framework fw) const {
  if (const FormatPlugin* plugin = find(fw)) return plugin->name();
  for (const auto& entry : unsupported()) {
    if (entry.framework == fw) return entry.name;
  }
  return "?";
}

std::vector<FrameworkFormats> PluginRegistry::format_table() const {
  // Enum order reproduces the Table 5 row order; aliases are deliberately
  // excluded so the published table stays the paper's 18x69 verbatim.
  std::vector<FrameworkFormats> table;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Framework::kCount);
       ++i) {
    const auto fw = static_cast<Framework>(i);
    if (const FormatPlugin* plugin = find(fw)) {
      table.push_back({fw, plugin->extensions()});
      continue;
    }
    for (const auto& entry : unsupported()) {
      if (entry.framework == fw) {
        table.push_back({fw, entry.extensions});
        break;
      }
    }
  }
  return table;
}

// Lazily-built lookup structures over every known extension and alias.
// Built once under a mutex on first query (the parallel pipeline may race
// the first candidate lookup); registration is finished by then — all
// plugins self-register during static initialisation.
struct PluginRegistry::ExtensionIndex {
  // extension -> claiming frameworks, enum order.
  std::map<std::string, std::vector<Framework>> by_extension;
  // All known extensions, longest first (ties broken lexicographically so
  // matching stays deterministic).
  std::vector<std::string> by_length;
};

const PluginRegistry::ExtensionIndex& PluginRegistry::index() const {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock{mutex};
  if (!index_) {
    auto idx = std::make_unique<ExtensionIndex>();
    const auto claim = [&](Framework fw, const std::string& ext) {
      auto& owners = idx->by_extension[ext];
      if (std::find(owners.begin(), owners.end(), fw) == owners.end()) {
        owners.push_back(fw);
      }
    };
    for (std::size_t i = 0; i < static_cast<std::size_t>(Framework::kCount);
         ++i) {
      const auto fw = static_cast<Framework>(i);
      if (const FormatPlugin* plugin = find(fw)) {
        for (const auto& ext : plugin->extensions()) claim(fw, ext);
        for (const auto& ext : plugin->extension_aliases()) claim(fw, ext);
      } else {
        for (const auto& entry : unsupported()) {
          if (entry.framework != fw) continue;
          for (const auto& ext : entry.extensions) claim(fw, ext);
        }
      }
    }
    for (const auto& [ext, owners] : idx->by_extension) {
      idx->by_length.push_back(ext);
    }
    std::sort(idx->by_length.begin(), idx->by_length.end(),
              [](const std::string& a, const std::string& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a < b;
              });
    index_ = std::move(idx);
  }
  return *index_;
}

std::string PluginRegistry::match_extension(std::string_view path) const {
  const std::string name = util::to_lower(util::basename(path));
  // Longest-suffix-first: "net.cfg.ncnn" must match ".cfg.ncnn", not the
  // final ".ncnn" component.
  for (const auto& ext : index().by_length) {
    if (name.size() > ext.size() &&
        std::string_view{name}.ends_with(ext)) {
      return ext;
    }
  }
  return {};
}

std::vector<Framework> PluginRegistry::candidate_frameworks(
    std::string_view path) const {
  const std::string ext = match_extension(path);
  if (ext.empty()) return {};
  const auto& by_extension = index().by_extension;
  const auto it = by_extension.find(ext);
  return it == by_extension.end() ? std::vector<Framework>{} : it->second;
}

bool PluginRegistry::is_candidate(std::string_view path) const {
  return !match_extension(path).empty();
}

bool PluginRegistry::any_candidate_has_plugin(std::string_view path) const {
  for (Framework fw : candidate_frameworks(path)) {
    if (find(fw) != nullptr) return true;
  }
  return false;
}

std::optional<Framework> PluginRegistry::validate_signature(
    std::string_view path, std::span<const std::uint8_t> data) const {
  for (Framework fw : candidate_frameworks(path)) {
    const FormatPlugin* plugin = find(fw);
    if (plugin != nullptr && plugin->validate(path, data)) return fw;
  }
  return std::nullopt;
}

}  // namespace gauge::formats
