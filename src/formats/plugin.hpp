// The per-framework plugin layer. One FormatPlugin implementation carries
// *everything* gaugeNN knows about a model format — its Appendix-Table-5
// extension entries, the §3.1 signature check, weights-sibling resolution
// for two-file formats, the parser and serialiser used by the pipeline and
// the conversion matrix, and the runtime markers the synthetic store plants
// inside APKs. Adding a framework is one self-registering file under
// src/formats/plugins/ (see DESIGN.md §9); no other layer switches on
// formats::Framework.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "formats/registry.hpp"
#include "nn/graph.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::formats {

// A serialised model: primary (graph) file plus the optional weights sibling
// of two-file formats (caffe .prototxt+.caffemodel, ncnn .param+.bin).
struct ConvertedModel {
  util::Bytes primary;
  util::Bytes weights;
  bool has_weights_file = false;
};

class FormatPlugin {
 public:
  virtual ~FormatPlugin() = default;

  // ---- identity --------------------------------------------------------
  virtual Framework framework() const = 0;
  // Human name as printed in reports and document projections ("TFLite").
  virtual const char* name() const = 0;
  // Fig. 4 column position: the paper's instance-count order for the five
  // original frameworks, new plugins appended after them.
  virtual int chart_rank() const = 0;

  // ---- extension table -------------------------------------------------
  // This framework's Appendix-Table-5 rows: lowercased, leading dot. These
  // feed candidate matching and the published format_table().
  virtual const std::vector<std::string>& extensions() const = 0;
  // Extra spellings matched as candidates but not part of the published
  // 69-entry table (e.g. TensorFlow's ".pb.txt" alias of ".pbtxt").
  virtual const std::vector<std::string>& extension_aliases() const;
  // Extension the store generator uses when it ships a model of this
  // framework; defaults to the first table entry.
  virtual std::string primary_extension() const { return extensions().front(); }

  // ---- signature validation (§3.1) -------------------------------------
  virtual bool validate(std::string_view path,
                        std::span<const std::uint8_t> data) const = 0;

  // ---- two-file formats ------------------------------------------------
  // Path of the weights sibling for a primary file of this format, or ""
  // for single-file formats / non-primary paths. Matching is a
  // case-insensitive longest-suffix replacement, so multi-dot extensions
  // (".cfg.ncnn" -> ".weights.ncnn") resolve correctly.
  virtual std::string companion(std::string_view path) const;
  // Inverse: the primary path a weights companion belongs to, or "" when
  // `path` is not a weights file of this format. Used to keep weights
  // siblings from anchoring their own model records.
  virtual std::string companion_primary(std::string_view path) const;

  // ---- parse / serialise -----------------------------------------------
  // `weights` is the pre-read sibling for two-file formats (nullptr when
  // absent — two-file parsers must fail cleanly then).
  virtual util::Result<nn::Graph> parse(std::span<const std::uint8_t> primary,
                                        const util::Bytes* weights) const = 0;
  // True when the format's dialect can express every layer of the graph.
  virtual bool supports(const nn::Graph& graph) const = 0;
  virtual util::Result<ConvertedModel> serialize(
      const nn::Graph& graph) const = 0;

  // ---- ecosystem metadata ----------------------------------------------
  // Whether the on-disk encoding preserves int8 tensors + quantisation
  // metadata (drives the store's §6.1 quantisation census).
  virtual bool quantizable() const { return false; }
  // Dex class markers / native library names the framework's mobile runtime
  // ships with; the store generator plants these in APKs of apps holding
  // models of this framework.
  virtual const std::vector<std::string>& dex_markers() const;
  virtual const std::vector<std::string>& native_libs() const;
};

// Case-insensitive suffix replacement for sibling-path resolution: returns
// `path` with trailing `from` replaced by `to`, or "" when `path` does not
// end in `from`. Handles multi-dot suffixes (".cfg.ncnn") by construction.
std::string replace_path_suffix(std::string_view path, std::string_view from,
                                std::string_view to);

// True when `path` ends in `ext` (case-insensitive, non-empty stem).
bool path_has_suffix(std::string_view path, std::string_view ext);

// Enum entries from Appendix Table 5 with no parser in this reproduction.
// Their extensions still make files *candidates* (and their validation
// failures are visible per framework via gauge.pipeline.drop.no_parser.*).
struct UnsupportedFramework {
  Framework framework;
  const char* name;
  std::vector<std::string> extensions;
};

class PluginRegistry {
 public:
  static PluginRegistry& instance();

  // Called by PluginRegistrar during static initialisation; at most one
  // plugin per Framework value.
  void register_plugin(std::unique_ptr<FormatPlugin> plugin);

  const FormatPlugin* find(Framework fw) const;
  // Registered plugins in Framework-enum order (deterministic regardless of
  // static-initialisation order across translation units).
  std::vector<const FormatPlugin*> plugins() const;
  // Registered plugins in Fig. 4 column order (chart_rank ascending).
  std::vector<const FormatPlugin*> plugins_by_chart_rank() const;
  static const std::vector<UnsupportedFramework>& unsupported();

  // Name of any enum entry, plugin-backed or not.
  const char* framework_name(Framework fw) const;

  // The full Appendix-Table-5 view (plugins + unsupported), enum order.
  std::vector<FrameworkFormats> format_table() const;

  // Longest matching registered suffix of `path`'s basename ("" when none):
  // "net.cfg.ncnn" matches ".cfg.ncnn", never the bare ".ncnn".
  std::string match_extension(std::string_view path) const;
  // Frameworks claiming the matched extension, enum order.
  std::vector<Framework> candidate_frameworks(std::string_view path) const;
  bool is_candidate(std::string_view path) const;
  // True when at least one candidate framework of `path` has a plugin —
  // false means the file can only ever be a no-parser drop.
  bool any_candidate_has_plugin(std::string_view path) const;

  // First candidate plugin whose signature check accepts the bytes.
  std::optional<Framework> validate_signature(
      std::string_view path, std::span<const std::uint8_t> data) const;

 private:
  PluginRegistry() = default;
  struct ExtensionIndex;
  const ExtensionIndex& index() const;

  std::array<std::unique_ptr<FormatPlugin>, static_cast<std::size_t>(
                                                Framework::kCount)>
      by_framework_{};
  mutable std::unique_ptr<ExtensionIndex> index_;
};

template <typename Plugin>
struct PluginRegistrar {
  PluginRegistrar() {
    PluginRegistry::instance().register_plugin(std::make_unique<Plugin>());
  }
};

// Registers `PluginClass` (defined in the enclosing gauge::formats scope or
// an anonymous namespace within it) and exports a link anchor so the
// plugin's object file survives static-library archive pruning. plugin.cpp
// references every anchor; adding a framework means one new plugin file plus
// one GAUGE_FORMAT_PLUGIN_ANCHOR line there.
#define GAUGE_REGISTER_FORMAT_PLUGIN(anchor_name, PluginClass)       \
  int gauge_format_plugin_anchor_##anchor_name = 0;                  \
  namespace {                                                        \
  const ::gauge::formats::PluginRegistrar<PluginClass>               \
      gauge_format_plugin_registrar_##anchor_name{};                 \
  }                                                                  \
  static_assert(true, "")

}  // namespace gauge::formats
