#include "formats/validate.hpp"

#include "formats/caffe.hpp"
#include "formats/ncnn.hpp"
#include "formats/tfl.hpp"
#include "util/strings.hpp"

namespace gauge::formats {

std::optional<Framework> validate_signature(
    std::string_view path, std::span<const std::uint8_t> data) {
  const auto candidates = candidate_frameworks(path);
  if (candidates.empty()) return std::nullopt;

  for (Framework fw : candidates) {
    switch (fw) {
      case Framework::TfLite:
        if (looks_like_tfl(data)) return Framework::TfLite;
        break;
      case Framework::Snpe:
        if (looks_like_dlc(data)) return Framework::Snpe;
        break;
      case Framework::TensorFlow:
        if (looks_like_tf_pb(data)) return Framework::TensorFlow;
        break;
      case Framework::Ncnn: {
        const std::string ext = util::extension(path);
        if (ext == ".param" || ext == ".cfg.ncnn" || ext == ".ncnn") {
          if (looks_like_ncnn_param(util::as_view(data))) return Framework::Ncnn;
        }
        break;
      }
      case Framework::Caffe: {
        const std::string ext = util::extension(path);
        if (ext == ".prototxt" || ext == ".pbtxt") {
          if (looks_like_prototxt(util::as_view(data))) return Framework::Caffe;
        } else if (ext == ".caffemodel") {
          if (looks_like_caffemodel(data)) return Framework::Caffe;
        }
        break;
      }
      default:
        // Frameworks without an implemented parser never validate — their
        // candidate files count as extraction failures, as in the paper.
        break;
    }
  }
  return std::nullopt;
}

bool is_valid_model_file(std::string_view path,
                         std::span<const std::uint8_t> data) {
  return validate_signature(path, data).has_value();
}

}  // namespace gauge::formats
