#include "formats/validate.hpp"

#include "formats/plugin.hpp"

namespace gauge::formats {

std::optional<Framework> validate_signature(
    std::string_view path, std::span<const std::uint8_t> data) {
  return PluginRegistry::instance().validate_signature(path, data);
}

bool is_valid_model_file(std::string_view path,
                         std::span<const std::uint8_t> data) {
  return validate_signature(path, data).has_value();
}

}  // namespace gauge::formats
