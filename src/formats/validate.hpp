// Signature-based model validation (paper §3.1 "Model validation"):
// candidate files matched by extension are checked for framework-specific
// binary identifiers before being accepted as DNN models. Files that fail
// (obfuscated, encrypted, or simply not models — e.g. a .json config) are
// rejected, mirroring the paper's pipeline.
#pragma once

#include <optional>
#include <string_view>

#include "formats/registry.hpp"
#include "util/bytes.hpp"

namespace gauge::formats {

// Checks the byte signature of a candidate file against every framework its
// extension maps to; returns the framework whose signature matches, or
// nullopt when none does (validation failure).
//
// Implemented signatures (the formats this reproduction materialises):
//   TFLite      — "TFL3" at byte offset 4
//   ncnn        — first line "7767517" (.param graph file)
//   caffe       — "layer {" + "type:" in prototxt / "CAFW" magic in
//                 .caffemodel weights
// Everything else in the extension table fails validation here, which is
// exactly how unparseable-but-candidate files behave in the paper's counts.
std::optional<Framework> validate_signature(std::string_view path,
                                            std::span<const std::uint8_t> data);

// Convenience: true when validate_signature succeeds.
bool is_valid_model_file(std::string_view path,
                         std::span<const std::uint8_t> data);

}  // namespace gauge::formats
