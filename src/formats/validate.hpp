// Signature-based model validation (paper §3.1 "Model validation"):
// candidate files matched by extension are checked for framework-specific
// binary identifiers before being accepted as DNN models. Files that fail
// (obfuscated, encrypted, or simply not models — e.g. a .json config) are
// rejected, mirroring the paper's pipeline.
#pragma once

#include <optional>
#include <string_view>

#include "formats/registry.hpp"
#include "util/bytes.hpp"

namespace gauge::formats {

// Checks the byte signature of a candidate file against every framework its
// extension maps to (first matching plugin wins, enum order); returns the
// framework whose signature matches, or nullopt when none does (validation
// failure). The per-framework checks live in the FormatPlugin
// implementations under src/formats/plugins/ — e.g. "TFL3" at byte offset 4
// for TFLite, the 7767517 first line for ncnn .param graphs, "ONNX"/"MNN0"
// leading magics for the ONNX-/MNN-like containers. Candidate extensions of
// frameworks without a plugin fail validation here, which is exactly how
// unparseable-but-candidate files behave in the paper's counts.
std::optional<Framework> validate_signature(std::string_view path,
                                            std::span<const std::uint8_t> data);

// Convenience: true when validate_signature succeeds.
bool is_valid_model_file(std::string_view path,
                         std::span<const std::uint8_t> data);

}  // namespace gauge::formats
