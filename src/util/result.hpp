// Result<T>: lightweight expected-style error channel for data-path failures
// (malformed files, unsupported ops) where throwing would be noisy. Hard
// programming errors still throw or assert.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gauge::util {

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_{std::move(value)} {}  // NOLINT(google-explicit-constructor)

  static Result failure(std::string message) {
    Result r{Failure{}};
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    assert(!ok());
    return error_;
  }

  // Monadic helper: apply `f` to the value, propagate the error otherwise.
  template <typename F>
  auto map(F&& f) const -> Result<decltype(f(std::declval<const T&>()))> {
    using U = decltype(f(std::declval<const T&>()));
    if (!ok()) return Result<U>::failure(error_);
    return Result<U>{f(*value_)};
  }

 private:
  struct Failure {};
  explicit Result(Failure) {}

  std::optional<T> value_;
  std::string error_;
};

// Specialisation-free void flavour.
class [[nodiscard]] Status {
 public:
  Status() = default;
  static Status failure(std::string message) {
    Status s;
    s.error_ = std::move(message);
    return s;
  }
  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const std::string& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<std::string> error_;
};

}  // namespace gauge::util
