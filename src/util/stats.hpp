// Statistics toolbox used by the analysis and reporting layers: summary
// moments, percentiles, ECDF, histograms, Gaussian KDE (for the Fig. 10
// density lines) and least-squares line fits (Fig. 8).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gauge::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stdev(std::span<const double> xs);
// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);
double median(std::vector<double> xs);
Summary summarize(std::span<const double> xs);

// Geometric mean of strictly positive values.
double geomean(std::span<const double> xs);

// Empirical CDF over a sample. Evaluation is O(log n).
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> sample);
  // P(X <= x)
  double operator()(double x) const;
  // Inverse CDF (quantile), q in [0, 1].
  double quantile(double q) const;
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
};

std::vector<HistogramBin> histogram(std::span<const double> xs,
                                    std::size_t bins);

// Gaussian kernel density estimate. Bandwidth defaults to Silverman's rule.
class Kde {
 public:
  explicit Kde(std::vector<double> sample, double bandwidth = 0.0);
  double operator()(double x) const;
  double bandwidth() const { return bandwidth_; }
  // Evaluate on a uniform grid spanning [min - 3h, max + 3h].
  std::vector<std::pair<double, double>> grid(std::size_t points) const;

 private:
  std::vector<double> sample_;
  double bandwidth_;
};

struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

// Pearson correlation coefficient.
double correlation(std::span<const double> xs, std::span<const double> ys);

// Remove points outside [Q1 - 1.5 IQR, Q3 + 1.5 IQR] (Fig. 10c "after
// removing outliers").
std::vector<double> drop_iqr_outliers(std::vector<double> xs);

}  // namespace gauge::util
