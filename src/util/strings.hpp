// Small string helpers shared across parsers and report printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gauge::util {

std::vector<std::string> split(std::string_view text, char sep);
// Split on any whitespace run, dropping empty tokens.
std::vector<std::string> split_ws(std::string_view text);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
bool contains_ci(std::string_view haystack, std::string_view needle);

std::optional<std::int64_t> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);

// File-path helpers (apks store forward-slash paths).
std::string_view basename(std::string_view path);
// Extension including the leading dot, lowercased ("model.TFLITE" -> ".tflite").
// Recognises selected double extensions used by model formats
// (".pth.tar", ".cfg.ncnn", ".weights.ncnn").
std::string extension(std::string_view path);

// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-readable quantities for reports.
std::string human_count(double value);   // 1.2K / 3.4M / 5.6G
std::string human_bytes(std::uint64_t bytes);

}  // namespace gauge::util
