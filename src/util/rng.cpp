#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "util/hash.hpp"

namespace gauge::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix all four lanes with the stream id through splitmix to decorrelate.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  sm ^= 0xd1b54a32d192ed03ULL * (stream_id + 1);
  return Rng{splitmix64(sm)};
}

Rng Rng::fork(const std::string& label) const { return fork(fnv1a64(label)); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform_u64(span));
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stdev) { return mean + stdev * normal(); }

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u = 0.0;
  while (u == 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += 1.0 / std::pow(static_cast<double>(k), s);
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= target) return k;
  }
  return n;
}

std::size_t Rng::weighted_choice(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= target) return i;
  }
  return weights.size() - 1;
}

}  // namespace gauge::util
