#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/strings.hpp"

namespace gauge::util {

Table::Table(std::vector<std::string> header) : header_{std::move(header)} {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  return format("%.*f", precision, value);
}

std::string Table::pct(double fraction, int precision) {
  return format("%.*f%%", precision, fraction * 100.0);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string out = "+";
    for (std::size_t w : widths) out += std::string(w + 2, '-') + "+";
    out += "\n";
    return out;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    out += "\n";
    return out;
  };
  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out += ",";
    out += escape(header_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += escape(row[c]);
    }
    out += "\n";
  }
  return out;
}

void print_section(const std::string& title, const std::string& body) {
  std::printf("\n== %s ==\n%s", title.c_str(), body.c_str());
  if (body.empty() || body.back() != '\n') std::printf("\n");
}

}  // namespace gauge::util
