// Deterministic PRNG used everywhere in the simulator. xoshiro256** seeded
// via splitmix64; all distributions are implemented locally so results are
// identical across standard libraries and platforms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gauge::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derive an independent child stream (for per-app / per-model determinism
  // that does not depend on generation order).
  Rng fork(std::uint64_t stream_id) const;
  Rng fork(const std::string& label) const;

  std::uint64_t next_u64();
  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);
  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  bool bernoulli(double p);
  // Standard normal via Box-Muller (cached spare).
  double normal();
  double normal(double mean, double stdev);
  // Log-normal with given log-space parameters.
  double lognormal(double mu, double sigma);
  // Pareto (power-law) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);
  // Zipf-distributed rank in [1, n] with exponent s (simple inverse-CDF on a
  // precomputed table is avoided; uses rejection-free cumulative scan for the
  // small n we need).
  std::size_t zipf(std::size_t n, double s);

  // Pick an index according to non-negative weights (sum > 0).
  std::size_t weighted_choice(const std::vector<double>& weights);

  template <typename T>
  const T& choice(const std::vector<T>& items) {
    return items[uniform_u64(items.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = uniform_u64(i + 1);
      std::swap(items[i], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

// splitmix64 step, exposed for seeding and hashing helpers.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace gauge::util
