// ASCII table and CSV renderers used by every bench binary to print the
// paper's rows/series.
#pragma once

#include <string>
#include <vector>

namespace gauge::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Convenience: format doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  std::string render() const;   // boxed ASCII table
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// A titled section printer used by benches: prints "== title ==" then body.
void print_section(const std::string& title, const std::string& body);

}  // namespace gauge::util
