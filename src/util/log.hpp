// Minimal leveled logger. Default level is Warn so library code stays quiet
// in tests and benches; examples flip it to Info.
#pragma once

#include <string>

namespace gauge::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace gauge::util
