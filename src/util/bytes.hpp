// Little-endian byte buffer reader/writer used by every on-disk format
// (ZIP, TFL-like flatbuffer, dex-like container, weight blobs).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace gauge::util {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xffff));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xffffffffULL));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void raw(std::string_view text) {
    buf_.insert(buf_.end(), text.begin(), text.end());
  }
  // Length-prefixed (u32) string.
  void str(std::string_view text) {
    u32(static_cast<std::uint32_t>(text.size()));
    raw(text);
  }
  // Overwrite a previously written u32 at `offset` (for back-patching).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v & 0xff);
    buf_[offset + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
    buf_[offset + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
    buf_[offset + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  void seek(std::size_t pos) {
    if (pos > data_.size()) {
      ok_ = false;
      return;
    }
    pos_ = pos;
  }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::span<const std::uint8_t> raw(std::size_t n) {
    if (!need(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const auto bytes = raw(n);
    return std::string{reinterpret_cast<const char*>(bytes.data()), bytes.size()};
  }

 private:
  bool need(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

inline Bytes to_bytes(std::string_view text) {
  return Bytes{text.begin(), text.end()};
}

inline std::string_view as_view(std::span<const std::uint8_t> data) {
  return {reinterpret_cast<const char*>(data.data()), data.size()};
}

inline std::span<const std::uint8_t> as_span(std::string_view text) {
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

}  // namespace gauge::util
