#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace gauge::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string to_lower(std::string_view text) {
  std::string out{text};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = to_lower(haystack);
  const std::string n = to_lower(needle);
  return h.find(n) != std::string::npos;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  text = trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is not everywhere; strtod on a copy.
  std::string copy{text};
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return value;
}

std::string_view basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

std::string extension(std::string_view path) {
  const std::string name = to_lower(basename(path));
  // Double extensions the model-format table distinguishes.
  for (std::string_view multi : {".pth.tar", ".cfg.ncnn", ".weights.ncnn"}) {
    if (name.size() >= multi.size() &&
        name.compare(name.size() - multi.size(), multi.size(), multi) == 0) {
      return std::string{multi};
    }
  }
  const auto pos = name.find_last_of('.');
  if (pos == std::string::npos || pos == 0) return {};
  return name.substr(pos);
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string human_count(double value) {
  const char* suffix = "";
  double v = value;
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  return format("%.2f%s", v, suffix);
}

std::string human_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return format("%.2f %s", v, units[u]);
}

}  // namespace gauge::util
