#include "util/retry.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace gauge::util {

double RetryPolicy::backoff_s(int attempt) const {
  if (attempt <= 1) return 0.0;
  const double base =
      initial_backoff_s *
      std::pow(std::max(1.0, backoff_multiplier), attempt - 2);
  const double capped = std::min(base, max_backoff_s);
  if (jitter <= 0.0) return capped;
  // Fork per attempt so the delay depends only on (seed, attempt), not on
  // how many draws earlier attempts consumed.
  Rng rng = Rng{seed}.fork(static_cast<std::uint64_t>(attempt));
  const double factor = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
  return std::max(0.0, capped * factor);
}

}  // namespace gauge::util
