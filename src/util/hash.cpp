#include "util/hash.hpp"

#include <cassert>
#include <cstring>

namespace gauge::util {

namespace {

constexpr std::array<std::uint32_t, 64> kMd5K = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::array<std::uint32_t, 64> kMd5Shift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

std::uint32_t rotl32(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Md5::Md5() : a_{0x67452301}, b_{0xefcdab89}, c_{0x98badcfe}, d_{0x10325476} {}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }
  std::uint32_t a = a_, b = b_, c = c_, d = d_;
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    std::uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    f = f + a + kMd5K[i] + m[g];
    a = d;
    d = c;
    c = b;
    b = b + rotl32(f, kMd5Shift[i]);
  }
  a_ += a;
  b_ += b;
  c_ += c;
  d_ += d;
}

void Md5::update(std::span<const std::uint8_t> data) {
  assert(!finalized_);
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

void Md5::update(std::string_view text) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::array<std::uint8_t, 16> Md5::digest() {
  assert(!finalized_);
  finalized_ = true;
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80 then zeros until length ≡ 56 (mod 64), then 64-bit length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  // Feed padding through the block machinery directly.
  std::memcpy(buffer_.data() + buffer_len_, pad, std::min<std::size_t>(pad_len, 64 - buffer_len_));
  if (buffer_len_ + pad_len >= 64) {
    process_block(buffer_.data());
    std::size_t remaining = buffer_len_ + pad_len - 64;
    std::memset(buffer_.data(), 0, 64);
    buffer_len_ = remaining;
  } else {
    buffer_len_ += pad_len;
  }
  for (int i = 0; i < 8; ++i) {
    buffer_[buffer_len_ + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((bit_len >> (8 * i)) & 0xff);
  }
  process_block(buffer_.data());

  std::array<std::uint8_t, 16> out{};
  const std::uint32_t regs[4] = {a_, b_, c_, d_};
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 4; ++i) {
      out[static_cast<std::size_t>(r * 4 + i)] =
          static_cast<std::uint8_t>((regs[r] >> (8 * i)) & 0xff);
    }
  }
  return out;
}

std::string Md5::hex_digest() {
  const auto d = digest();
  return to_hex(d);
}

std::string Md5::hex(std::span<const std::uint8_t> data) {
  Md5 md5;
  md5.update(data);
  return md5.hex_digest();
}

std::string Md5::hex(std::string_view text) {
  Md5 md5;
  md5.update(text);
  return md5.hex_digest();
}

namespace {
const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& table = crc_table();
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view text) {
  return crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : text) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xF]);
  }
  return out;
}

}  // namespace gauge::util
