// Filesystem helpers for report artifacts and pipeline state. All writes go
// through AtomicFile so a crash mid-write never leaves a half-written file
// behind: readers see either the previous contents or the new ones.
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::util {

// Crash-safe whole-file replacement. Contents land in a same-directory
// temporary file, are fsync'd, then rename()d over the target, and finally
// the parent directory is fsync'd so the rename itself is durable. A crash
// at any point leaves either the old file or the new one — never a torn
// mixture, never a visible temp file after recovery (stale temps are
// clobbered by the next write).
class AtomicFile {
 public:
  explicit AtomicFile(std::string path) : path_{std::move(path)} {}

  Status write(std::string_view contents) const;
  Status write(const Bytes& contents) const;

  const std::string& path() const { return path_; }
  // The temporary name used during a write (exposed for tests).
  std::string temp_path() const;

 private:
  std::string path_;
};

// Atomic by construction (see AtomicFile).
Status write_file(const std::string& path, std::string_view contents);
Status write_file(const std::string& path, const Bytes& contents);
Result<std::string> read_text_file(const std::string& path);
Result<Bytes> read_file_bytes(const std::string& path);
Status make_directories(const std::string& path);

}  // namespace gauge::util
