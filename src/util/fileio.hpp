// Minimal filesystem helpers for report artifacts.
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::util {

Status write_file(const std::string& path, std::string_view contents);
Status write_file(const std::string& path, const Bytes& contents);
Result<std::string> read_text_file(const std::string& path);
Status make_directories(const std::string& path);

}  // namespace gauge::util
