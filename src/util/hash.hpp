// From-scratch digests used by the pipeline: MD5 (model/weight uniqueness,
// mirroring the paper's checksum methodology), CRC32 (ZIP entries) and
// FNV-1a (cheap in-memory keys).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gauge::util {

// Streaming MD5 (RFC 1321).
class Md5 {
 public:
  Md5();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);
  // Finalises and returns the 16-byte digest. The object must not be
  // updated afterwards.
  std::array<std::uint8_t, 16> digest();
  // Hex string of digest().
  std::string hex_digest();

  static std::string hex(std::span<const std::uint8_t> data);
  static std::string hex(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t a_, b_, c_, d_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) as used by ZIP.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);
std::uint32_t crc32(std::string_view text);

std::uint64_t fnv1a64(std::string_view text);
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace gauge::util
