#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <numeric>

namespace gauge::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double q) {
  assert(q >= 0.0 && q <= 100.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = (q / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stdev = stdev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  std::vector<double> copy(xs.begin(), xs.end());
  s.median = percentile(copy, 50.0);
  s.p25 = percentile(copy, 25.0);
  s.p75 = percentile(copy, 75.0);
  s.p95 = percentile(copy, 95.0);
  return s;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

Ecdf::Ecdf(std::vector<double> sample) : sorted_{std::move(sample)} {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (sorted_.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<HistogramBin> histogram(std::span<const double> xs,
                                    std::size_t bins) {
  assert(bins > 0);
  std::vector<HistogramBin> out(bins);
  if (xs.empty()) return out;
  const double lo = *std::min_element(xs.begin(), xs.end());
  double hi = *std::max_element(xs.begin(), xs.end());
  if (hi == lo) hi = lo + 1.0;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out[i].lo = lo + width * static_cast<double>(i);
    out[i].hi = out[i].lo + width;
  }
  for (double x : xs) {
    auto idx = static_cast<std::size_t>((x - lo) / width);
    if (idx >= bins) idx = bins - 1;
    out[idx].count++;
  }
  return out;
}

Kde::Kde(std::vector<double> sample, double bandwidth)
    : sample_{std::move(sample)}, bandwidth_{bandwidth} {
  if (bandwidth_ <= 0.0) {
    // Silverman's rule of thumb.
    const double sd = stdev(sample_);
    const double n = static_cast<double>(std::max<std::size_t>(sample_.size(), 1));
    bandwidth_ = 1.06 * (sd > 0 ? sd : 1.0) * std::pow(n, -0.2);
  }
}

double Kde::operator()(double x) const {
  if (sample_.empty()) return 0.0;
  const double norm =
      1.0 / (static_cast<double>(sample_.size()) * bandwidth_ *
             std::sqrt(2.0 * std::numbers::pi));
  double acc = 0.0;
  for (double s : sample_) {
    const double u = (x - s) / bandwidth_;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * norm;
}

std::vector<std::pair<double, double>> Kde::grid(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sample_.empty() || points == 0) return out;
  const double lo =
      *std::min_element(sample_.begin(), sample_.end()) - 3.0 * bandwidth_;
  const double hi =
      *std::max_element(sample_.begin(), sample_.end()) + 3.0 * bandwidth_;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(std::max<std::size_t>(points - 1, 1));
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LineFit fit;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  (void)n;
  return fit;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> drop_iqr_outliers(std::vector<double> xs) {
  if (xs.size() < 4) return xs;
  std::vector<double> copy = xs;
  const double q1 = percentile(copy, 25.0);
  const double q3 = percentile(copy, 75.0);
  const double iqr = q3 - q1;
  const double lo = q1 - 1.5 * iqr;
  const double hi = q3 + 1.5 * iqr;
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (x >= lo && x <= hi) out.push_back(x);
  }
  return out;
}

}  // namespace gauge::util
