#include "util/fileio.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace gauge::util {

Status write_file(const std::string& path, std::string_view contents) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return Status::failure("cannot open for write: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::failure("short write: " + path);
  return {};
}

Status write_file(const std::string& path, const Bytes& contents) {
  return write_file(path, as_view(contents));
}

Result<std::string> read_text_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return Result<std::string>::failure("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status make_directories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::failure("mkdir " + path + ": " + ec.message());
  return {};
}

}  // namespace gauge::util
