#include "util/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gauge::util {

namespace {

Status errno_failure(const std::string& what, const std::string& path) {
  return Status::failure(what + " " + path + ": " + std::strerror(errno));
}

// Full-buffer write with EINTR handling.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Best-effort fsync of the directory holding `path`, so a completed rename
// survives power loss. Failure is ignored: some filesystems refuse directory
// fsync and the rename itself is still ordered on the ones that matter.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string AtomicFile::temp_path() const { return path_ + ".tmp"; }

Status AtomicFile::write(std::string_view contents) const {
  const std::string tmp = temp_path();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_failure("cannot open for write:", tmp);
  if (!write_all(fd, contents.data(), contents.size())) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return errno_failure("short write:", tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return errno_failure("fsync:", tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return errno_failure("rename:", path_);
  }
  sync_parent_dir(path_);
  return {};
}

Status AtomicFile::write(const Bytes& contents) const {
  return write(as_view(contents));
}

Status write_file(const std::string& path, std::string_view contents) {
  return AtomicFile{path}.write(contents);
}

Status write_file(const std::string& path, const Bytes& contents) {
  return write_file(path, as_view(contents));
}

Result<std::string> read_text_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return Result<std::string>::failure("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<Bytes> read_file_bytes(const std::string& path) {
  auto text = read_text_file(path);
  if (!text.ok()) return Result<Bytes>::failure(text.error());
  return to_bytes(text.value());
}

Status make_directories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::failure("mkdir " + path + ": " + ec.message());
  return {};
}

}  // namespace gauge::util
