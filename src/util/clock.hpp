// Simulated monotonic clock. All "measured" time in the device simulator and
// benchmark harness flows through this, keeping every experiment
// deterministic and independent of the host machine.
#pragma once

#include <cstdint>

namespace gauge::util {

class SimClock {
 public:
  using Nanos = std::uint64_t;

  Nanos now() const { return now_ns_; }
  double now_seconds() const { return static_cast<double>(now_ns_) * 1e-9; }

  void advance_ns(Nanos ns) { now_ns_ += ns; }
  void advance_seconds(double s) {
    now_ns_ += static_cast<Nanos>(s * 1e9);
  }

 private:
  Nanos now_ns_ = 0;
};

}  // namespace gauge::util
