// Reusable bounded-retry schedule: exponential backoff with deterministic
// jitter drawn from util::Rng, so a given (seed, attempt) pair always yields
// the same delay. Time is injected through a sleep callback — callers in
// simulated contexts (the benchmark harness advances a SimClock) stay
// deterministic and fast, while wall-clock callers can pass a real sleeper.
#pragma once

#include <algorithm>
#include <functional>
#include <string>

#include "util/result.hpp"

namespace gauge::util {

struct RetryPolicy {
  // Total attempts including the first; <= 1 means no retries.
  int max_attempts = 3;
  double initial_backoff_s = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 2.0;
  // Backoff is scaled by a factor uniform in [1 - jitter, 1 + jitter].
  double jitter = 0.25;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  // Observed by `on_retry` before each re-attempt.
  struct Attempt {
    int number = 0;          // the attempt about to run (2-based)
    double backoff_s = 0.0;  // delay slept before it
    std::string last_error;  // what the previous attempt failed with
  };

  using SleepFn = std::function<void(double seconds)>;
  using OnRetryFn = std::function<void(const Attempt&)>;

  // Deterministic backoff before attempt `attempt` (2-based: there is no
  // delay before the first attempt).
  double backoff_s(int attempt) const;

  // Runs `op` (returning util::Status) until it succeeds or max_attempts is
  // exhausted; returns the final status. `sleep` and `on_retry` may be null.
  template <typename Op>
  Status run(Op&& op, const SleepFn& sleep = nullptr,
             const OnRetryFn& on_retry = nullptr) const {
    Status status;
    const int attempts = std::max(1, max_attempts);
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      if (attempt > 1) {
        const double delay = backoff_s(attempt);
        if (on_retry) on_retry({attempt, delay, status.error()});
        if (sleep) sleep(delay);
      }
      status = op();
      if (status.ok()) return status;
    }
    return status;
  }
};

}  // namespace gauge::util
