// Shared length-prefixed binary frame codec (DESIGN.md §15). One framing for
// every CRC-checked binary payload in the system: the pipeline journal's
// on-disk records, the coordinator/worker crawl protocol, and the inference
// service's request payload blobs all use the same
//
//   u32 magic | u8 version | u32 payload_len | payload | u32 crc32(payload)
//
// frame, instead of per-subsystem hand-rolled framings. The explicit version
// byte lets both journal replay and the worker handshake refuse a format
// mismatch with a clear error instead of failing via CRC heuristics.
//
// Two API layers: pure byte-level encode/decode (usable on spans — the
// journal decodes a whole file this way), and deadline-bounded socket
// helpers (`send_frame` / `recv_frame_for`) built on TcpStream's poll()-based
// `_for` primitives.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>

#include "net/socket.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::net {

inline constexpr std::uint32_t kFrameMagic = 0x4D524647;  // "GFRM"
// v1 was PR 5's unversioned journal framing ("GJL1" magic, no version byte);
// v2 added the version byte and unified journal/wire/serve framing.
inline constexpr std::uint8_t kFrameVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 9;   // magic + version + len
inline constexpr std::size_t kFrameTrailerBytes = 4;  // crc32
inline constexpr std::size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;

// Version-skew errors start with this prefix so callers (journal open, the
// worker handshake) can turn them into actionable messages.
inline constexpr const char* kVersionSkewPrefix = "frame version skew";
bool is_version_skew(const std::string& error);

util::Bytes encode_frame(std::span<const std::uint8_t> payload);
// Same, with an explicit version byte — the seam tests and tooling use to
// craft frames from a different (older/newer) codec.
util::Bytes encode_frame_with_version(std::uint8_t version,
                                      std::span<const std::uint8_t> payload);

enum class FrameDecode {
  Ok,
  Incomplete,    // not enough bytes for header, payload or trailer
  BadMagic,      // leading bytes are not a frame
  VersionSkew,   // valid magic, but a codec version this binary cannot read
  Corrupt,       // CRC mismatch
};

struct FrameView {
  std::uint8_t version = 0;
  std::span<const std::uint8_t> payload;
  std::size_t frame_bytes = 0;  // total size including header + trailer
};

// Decodes the frame at the front of `data` without copying. On anything but
// Ok, `out` is left untouched except `version`, which is filled for
// VersionSkew so the caller can name the offending version.
FrameDecode decode_frame(std::span<const std::uint8_t> data, FrameView* out);

// Sends one frame; fails with an is_timeout() error once `deadline` of
// wall-clock time elapses (the stream is then poisoned, as with any partial
// send).
util::Status send_frame(TcpStream& stream,
                        std::span<const std::uint8_t> payload,
                        std::chrono::milliseconds deadline);

// Receives one complete frame, rejecting payloads larger than `max_payload`
// before reading them (a hostile length prefix must not allocate). Errors:
// is_timeout() on deadline expiry, is_version_skew() on codec mismatch,
// "bad frame magic", "corrupt frame", and recv_exact_for's truncation
// errors when the peer closes mid-frame.
util::Result<util::Bytes> recv_frame_for(TcpStream& stream,
                                         std::size_t max_payload,
                                         std::chrono::milliseconds deadline);

}  // namespace gauge::net
