#include "net/framing.hpp"

#include <string>

#include "util/hash.hpp"

namespace gauge::net {

bool is_version_skew(const std::string& error) {
  return error.rfind(kVersionSkewPrefix, 0) == 0;
}

util::Bytes encode_frame(std::span<const std::uint8_t> payload) {
  return encode_frame_with_version(kFrameVersion, payload);
}

util::Bytes encode_frame_with_version(std::uint8_t version,
                                      std::span<const std::uint8_t> payload) {
  util::ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(version);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(util::crc32(payload));
  return std::move(w).take();
}

FrameDecode decode_frame(std::span<const std::uint8_t> data, FrameView* out) {
  if (data.size() < kFrameHeaderBytes) return FrameDecode::Incomplete;
  util::ByteReader header{data};
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint32_t length = header.u32();
  if (magic != kFrameMagic) return FrameDecode::BadMagic;
  if (version != kFrameVersion) {
    out->version = version;
    return FrameDecode::VersionSkew;
  }
  if (data.size() - kFrameHeaderBytes < length ||
      data.size() - kFrameHeaderBytes - length < kFrameTrailerBytes) {
    return FrameDecode::Incomplete;
  }
  const auto payload = data.subspan(kFrameHeaderBytes, length);
  util::ByteReader trailer{data.subspan(kFrameHeaderBytes + length)};
  if (util::crc32(payload) != trailer.u32()) return FrameDecode::Corrupt;
  out->version = version;
  out->payload = payload;
  out->frame_bytes = kFrameOverheadBytes + length;
  return FrameDecode::Ok;
}

util::Status send_frame(TcpStream& stream,
                        std::span<const std::uint8_t> payload,
                        std::chrono::milliseconds deadline) {
  const util::Bytes frame = encode_frame(payload);
  return stream.send_raw_for(std::string{util::as_view(frame)}, deadline);
}

util::Result<util::Bytes> recv_frame_for(TcpStream& stream,
                                         std::size_t max_payload,
                                         std::chrono::milliseconds deadline) {
  using R = util::Result<util::Bytes>;
  const auto start = std::chrono::steady_clock::now();
  auto header = stream.recv_exact_for(kFrameHeaderBytes, deadline);
  if (!header.ok()) return R::failure(header.error());
  util::ByteReader reader{util::as_span(header.value())};
  const std::uint32_t magic = reader.u32();
  const std::uint8_t version = reader.u8();
  const std::uint32_t length = reader.u32();
  if (magic != kFrameMagic) return R::failure("bad frame magic");
  if (version != kFrameVersion) {
    return R::failure(std::string{kVersionSkewPrefix} + ": peer writes v" +
                      std::to_string(version) + ", this binary reads v" +
                      std::to_string(kFrameVersion));
  }
  if (length > max_payload) {
    return R::failure("oversize frame: " + std::to_string(length) + " > " +
                      std::to_string(max_payload) + " byte cap");
  }
  // Body gets whatever is left of the original budget, never a fresh one.
  const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  const auto remaining =
      std::max(std::chrono::milliseconds{1}, deadline - spent);
  auto body =
      stream.recv_exact_for(length + kFrameTrailerBytes, remaining);
  if (!body.ok()) return R::failure(body.error());
  const auto body_span = util::as_span(body.value());
  const auto payload = body_span.subspan(0, length);
  util::ByteReader trailer{body_span.subspan(length)};
  if (util::crc32(payload) != trailer.u32()) {
    return R::failure("corrupt frame (crc mismatch)");
  }
  return util::Bytes{payload.begin(), payload.end()};
}

}  // namespace gauge::net
