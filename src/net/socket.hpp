// Minimal blocking TCP socket layer over loopback, used by the benchmark
// harness for its netcat-style "experiment finished" message (paper §3.3).
// RAII file descriptors; line-oriented framing. The `_for` variants take a
// wall-clock deadline (poll()-based, covering the whole operation rather
// than a single recv the way SO_RCVTIMEO would) so the master can never
// block forever on a device-side daemon that died before connecting.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace gauge::net {

// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_{fd} {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

// Deadline errors start with this prefix so callers can tell a timeout from
// a hard socket failure without a separate error channel.
inline constexpr const char* kTimeoutPrefix = "timed out";
bool is_timeout(const std::string& error);

class TcpStream {
 public:
  static util::Result<TcpStream> connect(const std::string& host,
                                         std::uint16_t port);

  // Sends `line` plus '\n'. Fails on partial writes that cannot complete.
  util::Status send_line(const std::string& line);
  // Sends `data` as-is (no newline appended).
  util::Status send_raw(const std::string& data);
  // Deadline-bounded sends: the layer historically only bounded receives, so
  // a stalled peer that stopped draining its socket could wedge a server
  // writer forever. These give up (is_timeout() error) once `deadline` of
  // wall-clock time elapses without the kernel accepting the remaining
  // bytes. On timeout a prefix may already have been sent — the connection
  // should be treated as poisoned and closed.
  util::Status send_line_for(const std::string& line,
                             std::chrono::milliseconds deadline);
  util::Status send_raw_for(const std::string& data,
                            std::chrono::milliseconds deadline);
  // Blocks until a full '\n'-terminated line arrives (newline stripped) or
  // the peer closes. A close with a buffered partial line fails with a
  // distinct "truncated line" error carrying the partial payload.
  util::Result<std::string> recv_line();
  // Same, but gives up once `deadline` of wall-clock time has elapsed
  // without a complete line; the timeout error satisfies is_timeout().
  util::Result<std::string> recv_line_for(std::chrono::milliseconds deadline);
  // Reads exactly `size` raw bytes (length-framed payloads, e.g. an inference
  // request tensor following its header line). Bytes already buffered by a
  // previous recv_line are consumed first. Fails with is_timeout() on
  // deadline expiry and a "truncated payload" error if the peer closes early.
  util::Result<std::string> recv_exact_for(std::size_t size,
                                           std::chrono::milliseconds deadline);
  // Waits until at least one byte is readable (or already buffered) within
  // `deadline`; is_timeout() error otherwise. Lets a receiver loop tick on a
  // stop flag without consuming bytes — recv_exact_for discards a partial
  // read on timeout, so a reader must not start on a frame until bytes are
  // actually pending.
  util::Status wait_readable_for(std::chrono::milliseconds deadline);
  // shutdown(2) on both directions: any recv/send blocked on this stream
  // (from any thread) returns immediately with a peer-closed/socket error.
  // The fd stays owned; destruction still closes it.
  void shutdown();

  explicit TcpStream(Fd fd) : fd_{std::move(fd)} {}

 private:
  util::Result<std::string> recv_line_impl(
      const std::chrono::steady_clock::time_point* deadline);

  Fd fd_;
  std::string buffer_;
};

class TcpListener {
 public:
  // Binds 127.0.0.1 on the given port (0 = ephemeral). `backlog` bounds the
  // kernel accept queue — an inference server under overload wants excess
  // connections queued shallowly (and shed by the client's connect deadline)
  // rather than piling up behind a long SYN backlog. Values < 1 clamp to 1.
  static util::Result<TcpListener> bind(std::uint16_t port, int backlog = 8);

  std::uint16_t port() const { return port_; }
  util::Result<TcpStream> accept();
  // Fails with an is_timeout() error if no client connects within
  // `deadline`.
  util::Result<TcpStream> accept_for(std::chrono::milliseconds deadline);

 private:
  explicit TcpListener(Fd fd, std::uint16_t port)
      : fd_{std::move(fd)}, port_{port} {}
  Fd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace gauge::net
