// Minimal blocking TCP socket layer over loopback, used by the benchmark
// harness for its netcat-style "experiment finished" message (paper §3.3).
// RAII file descriptors; line-oriented framing.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace gauge::net {

// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_{fd} {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

class TcpStream {
 public:
  static util::Result<TcpStream> connect(const std::string& host,
                                         std::uint16_t port);

  // Sends `line` plus '\n'. Fails on partial writes that cannot complete.
  util::Status send_line(const std::string& line);
  // Blocks until a full '\n'-terminated line arrives (newline stripped) or
  // the peer closes.
  util::Result<std::string> recv_line();

  explicit TcpStream(Fd fd) : fd_{std::move(fd)} {}

 private:
  Fd fd_;
  std::string buffer_;
};

class TcpListener {
 public:
  // Binds 127.0.0.1 on the given port (0 = ephemeral).
  static util::Result<TcpListener> bind(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  util::Result<TcpStream> accept();

 private:
  explicit TcpListener(Fd fd, std::uint16_t port)
      : fd_{std::move(fd)}, port_{port} {}
  Fd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace gauge::net
