#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gauge::net {

Fd::~Fd() { reset(); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool is_timeout(const std::string& error) {
  return error.rfind(kTimeoutPrefix, 0) == 0;
}

namespace {

std::string errno_message(const char* what) {
  return std::string{what} + ": " + std::strerror(errno);
}

std::string timeout_message(const char* what,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point deadline) {
  const auto budget =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - start);
  return std::string{kTimeoutPrefix} + " after " +
         std::to_string(budget.count()) + " ms waiting for " + what;
}

// Waits until `fd` is ready for `events` (POLLIN / POLLOUT) or `deadline`
// passes. Returns ok on ready, a timeout error otherwise. EINTR restarts
// with the remaining budget.
util::Status wait_ready(int fd, short events, const char* what,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return util::Status::failure(timeout_message(what, start, deadline));
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                            1, remaining.count())));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return util::Status::failure(errno_message("poll"));
    }
    if (ready == 0) {
      return util::Status::failure(timeout_message(what, start, deadline));
    }
    return {};
  }
}

util::Status wait_readable(int fd, const char* what,
                           std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point deadline) {
  return wait_ready(fd, POLLIN, what, start, deadline);
}

}  // namespace

util::Result<TcpStream> TcpStream::connect(const std::string& host,
                                           std::uint16_t port) {
  using R = util::Result<TcpStream>;
  Fd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) return R::failure(errno_message("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return R::failure("bad address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return R::failure(errno_message("connect"));
  }
  return TcpStream{std::move(fd)};
}

util::Status TcpStream::send_line(const std::string& line) {
  return send_raw(line + "\n");
}

util::Status TcpStream::send_raw(const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + sent, data.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::failure(errno_message("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return {};
}

util::Status TcpStream::send_line_for(const std::string& line,
                                      std::chrono::milliseconds deadline) {
  return send_raw_for(line + "\n", deadline);
}

util::Status TcpStream::send_raw_for(const std::string& data,
                                     std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  const auto until = start + deadline;
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (auto status = wait_ready(fd_.get(), POLLOUT, "send buffer space",
                                 start, until);
        !status.ok()) {
      return status;
    }
    // MSG_DONTWAIT: poll() reported writability, but the buffer may only
    // hold part of the remainder — never fall back into a blocking send.
    const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return util::Status::failure(errno_message("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return {};
}

util::Result<std::string> TcpStream::recv_exact_for(
    std::size_t size, std::chrono::milliseconds deadline) {
  using R = util::Result<std::string>;
  const auto start = std::chrono::steady_clock::now();
  const auto until = start + deadline;
  std::string out;
  out.reserve(size);
  // Drain bytes a previous recv_line over-read into the buffer first.
  if (!buffer_.empty()) {
    const std::size_t take = std::min(size, buffer_.size());
    out.append(buffer_, 0, take);
    buffer_.erase(0, take);
  }
  while (out.size() < size) {
    if (auto status = wait_readable(fd_.get(), "payload", start, until);
        !status.ok()) {
      return R::failure(status.error());
    }
    char chunk[4096];
    const std::size_t want = std::min(sizeof(chunk), size - out.size());
    const ssize_t n = ::recv(fd_.get(), chunk, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return R::failure(errno_message("recv"));
    }
    if (n == 0) {
      return R::failure("truncated payload (peer closed): got " +
                        std::to_string(out.size()) + " of " +
                        std::to_string(size) + " bytes");
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

util::Status TcpStream::wait_readable_for(std::chrono::milliseconds deadline) {
  if (!buffer_.empty()) return {};
  const auto start = std::chrono::steady_clock::now();
  return wait_readable(fd_.get(), "data", start, start + deadline);
}

void TcpStream::shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

util::Result<std::string> TcpStream::recv_line() {
  return recv_line_impl(nullptr);
}

util::Result<std::string> TcpStream::recv_line_for(
    std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  return recv_line_impl(&until);
}

util::Result<std::string> TcpStream::recv_line_impl(
    const std::chrono::steady_clock::time_point* deadline) {
  using R = util::Result<std::string>;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (deadline != nullptr) {
      if (auto status = wait_readable(fd_.get(), "line", start, *deadline);
          !status.ok()) {
        return R::failure(status.error());
      }
    }
    char chunk[512];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return R::failure(errno_message("recv"));
    }
    if (n == 0) {
      if (!buffer_.empty()) {
        // The peer closed mid-line; surface what arrived instead of
        // silently discarding it.
        std::string partial = std::move(buffer_);
        buffer_.clear();
        return R::failure("truncated line (peer closed): \"" + partial + "\"");
      }
      return R::failure("peer closed connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::Result<TcpListener> TcpListener::bind(std::uint16_t port, int backlog) {
  using R = util::Result<TcpListener>;
  Fd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) return R::failure(errno_message("socket"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return R::failure(errno_message("bind"));
  }
  if (::listen(fd.get(), std::max(1, backlog)) != 0) {
    return R::failure(errno_message("listen"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return R::failure(errno_message("getsockname"));
  }
  return TcpListener{std::move(fd), ntohs(bound.sin_port)};
}

util::Result<TcpStream> TcpListener::accept() {
  using R = util::Result<TcpStream>;
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return R::failure(errno_message("accept"));
    }
    return TcpStream{Fd{client}};
  }
}

util::Result<TcpStream> TcpListener::accept_for(
    std::chrono::milliseconds deadline) {
  using R = util::Result<TcpStream>;
  const auto start = std::chrono::steady_clock::now();
  const auto until = start + deadline;
  if (auto status = wait_readable(fd_.get(), "connection", start, until);
      !status.ok()) {
    return R::failure(status.error());
  }
  return accept();
}

}  // namespace gauge::net
