#include "android/playstore.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <set>

#include "formats/plugin.hpp"
#include "nn/zoo.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace gauge::android {

const char* snapshot_name(Snapshot snap) {
  return snap == Snapshot::Feb2020 ? "Feb 2020" : "Apr 2021";
}

namespace {

// -------------------------------------------------------- calibration data
//
// Raw per-category weights; exact totals are hit via largest-remainder
// apportionment so the Table 2 numbers come out exactly.

struct CategoryCal {
  const char* name;
  int apps21;       // apps in the Apr'21 top chart (<=500)
  int apps20;       // apps in the Feb'20 top chart
  double models21;  // model-instance weight, Apr'21 (Fig. 4 shape)
  double models20;  // model-instance weight, Feb'20 (Fig. 5 shape)
  double cloud21;   // cloud-API app weight, Apr'21 (Fig. 15 shape)
};

// 34 categories; apps21 sums to 16,653 and apps20 to 16,418 by construction.
constexpr CategoryCal kCategories[] = {
    // name               a21  a20   m21   m20  cloud
    {"communication",     500, 500, 255.0, 130.0, 60.0},
    {"finance",           500, 500, 200.0, 105.0, 55.0},
    {"photography",       500, 500, 185.0, 150.0, 30.0},
    {"beauty",            500, 500, 140.0,  90.0, 12.0},
    {"social",            500, 500, 120.0,  65.0, 38.0},
    {"tools",             500, 500, 100.0,  55.0, 30.0},
    {"video players",     500, 500,  88.0,  45.0, 18.0},
    {"productivity",      500, 500,  80.0,  40.0, 42.0},
    {"entertainment",     500, 500,  70.0,  35.0, 20.0},
    {"shopping",          500, 500,  60.0,  28.0, 45.0},
    {"health & fitness",  500, 500,  58.0,  18.0, 18.0},
    {"medical",           500, 500,  52.0,  14.0, 14.0},
    {"business",          500, 500,  48.0,  22.0, 65.0},
    {"education",         500, 500,  40.0,  18.0, 30.0},
    {"maps & navigation", 500, 500,  35.0,  16.0, 12.0},
    {"music & audio",     500, 500,  30.0,  14.0, 10.0},
    {"news & magazines",  500, 500,  25.0,  10.0,  8.0},
    {"sports",            500, 500,  24.0,  10.0,  8.0},
    {"dating",            500, 500,  24.0,  14.0,  6.0},
    {"food & drink",      500, 500,  20.0,  26.0, 14.0},
    {"lifestyle",         500, 500,  18.0,  30.0, 12.0},
    {"parenting",         500, 500,  12.0,   6.0,  3.0},
    {"travel & local",    500, 500,  10.0,  14.0, 16.0},
    {"auto & vehicles",   500, 500,   8.0,   4.0,  5.0},
    {"art & design",      500, 500,   8.0,   4.0,  3.0},
    {"personalization",   500, 500,   8.0,   4.0,  2.0},
    {"casual",            500, 500,  10.0,   5.0,  3.0},
    {"books & reference", 500, 500,   6.0,   3.0,  4.0},
    {"house & home",      500, 500,   5.0,   2.0,  3.0},
    {"weather",           500, 500,   4.0,   2.0,  1.0},
    {"events",            500, 418,   4.0,   2.0,  2.0},
    {"comics",            500, 500,   3.0,   1.0,  1.0},
    {"libraries & demo",  500, 500,   0.0,   0.0,  0.0},
    {"android wear",      153, 100,   6.0,  14.0,  1.0},
};
constexpr std::size_t kCategoryCount = std::size(kCategories);

// Table 2 targets.
constexpr int kModels21 = 1666;
constexpr int kModels20 = 821;
constexpr int kMlApps21 = 377;
constexpr int kMlApps20 = 236;
constexpr int kExtractableApps21 = 342;
constexpr int kUniqueModels = 318;
// §6.3 / Fig. 15 targets.
constexpr int kCloudApps21 = 524;
constexpr int kCloudApps20 = 225;
constexpr int kAmazonApps21 = 72;
constexpr int kNnapiApps = 71;
constexpr int kXnnpackApps = 1;
constexpr int kSnpeApps = 3;

// Largest-remainder apportionment of `total` across `weights`.
std::vector<int> apportion(const std::vector<double>& weights, int total) {
  double sum = 0.0;
  for (double w : weights) sum += w;
  std::vector<int> out(weights.size(), 0);
  if (sum <= 0.0 || total <= 0) return out;
  std::vector<std::pair<double, std::size_t>> remainders;
  int assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = weights[i] / sum * total;
    out[i] = static_cast<int>(exact);
    assigned += out[i];
    remainders.emplace_back(exact - out[i], i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (int k = 0; k < total - assigned; ++k) {
    out[remainders[static_cast<std::size_t>(k)].second]++;
  }
  return out;
}

// ------------------------------------------------------------ task tables

struct TaskCal {
  const char* task;
  nn::Modality modality;
  double weight;            // Table 3 instance proportions
  const char* archetype;    // preferred zoo archetype
};

constexpr TaskCal kTasks[] = {
    // Vision (1495 instances in the paper).
    {"object detection", nn::Modality::Image, 788, "fssd"},
    {"face detection", nn::Modality::Image, 197, "blazeface"},
    {"contour detection", nn::Modality::Image, 192, "contournet"},
    {"text recognition", nn::Modality::Image, 185, "ocrnet"},
    {"augmented reality", nn::Modality::Image, 51, "posenet"},
    {"semantic segmentation", nn::Modality::Image, 14, "unet"},
    {"object recognition", nn::Modality::Image, 14, "mobilenet"},
    {"pose estimation", nn::Modality::Image, 8, "posenet"},
    {"photo beauty", nn::Modality::Image, 8, "stylenet"},
    {"image classification", nn::Modality::Image, 7, "mobilenet"},
    {"nudity detection", nn::Modality::Image, 5, "vggnet"},
    {"other vision", nn::Modality::Image, 26, "vggnet"},
    // NLP (17).
    {"auto-complete", nn::Modality::Text, 9, "wordrnn"},
    {"sentiment prediction", nn::Modality::Text, 4, "textcnn"},
    {"content filter", nn::Modality::Text, 2, "textcnn"},
    {"text classification", nn::Modality::Text, 1, "textcnn"},
    {"translation", nn::Modality::Text, 1, "wordrnn"},
    // Audio (15).
    {"sound recognition", nn::Modality::Audio, 12, "audiocnn"},
    {"speech recognition", nn::Modality::Audio, 2, "speechrnn"},
    {"keyword detection", nn::Modality::Audio, 1, "audiocnn"},
    // Sensor (4).
    {"movement tracking", nn::Modality::Sensor, 3, "sensormlp"},
    {"crash detection", nn::Modality::Sensor, 1, "sensormlp"},
};
constexpr std::size_t kTaskCount = std::size(kTasks);

// Framework shares at the instance level (Fig. 4): TFLite 1436, caffe 176,
// ncnn 46, TF 5, SNPE 3 of 1666. Archetype dialect limits ride along as
// nullptr-terminated lists: `allowed` is a whitelist (everything else falls
// back), `blocked` a blacklist; both nullptr = the container carries any
// archetype.
struct FrameworkCal {
  formats::Framework framework;
  int instances21;
  int uniques;
  const char* const* allowed = nullptr;
  const char* const* blocked = nullptr;
};

constexpr const char* kCaffeArchetypes[] = {"vggnet", "contournet", "audiocnn",
                                            nullptr};
constexpr const char* kNcnnBlocked[] = {"wordrnn", "textcnn", "speechrnn",
                                        "ocrnet", "sensormlp", nullptr};

constexpr FrameworkCal kFrameworks[] = {
    {formats::Framework::TfLite, 1436, 272},
    {formats::Framework::Caffe, 176, 36, kCaffeArchetypes},
    {formats::Framework::Ncnn, 46, 7, nullptr, kNcnnBlocked},
    {formats::Framework::TensorFlow, 5, 2},
    {formats::Framework::Snpe, 3, 1},
};

// Extended-mode extras, appended *after* the base five so every base-mode
// Rng stream and the base deck stay byte-identical.
constexpr FrameworkCal kExtendedFrameworks[] = {
    {formats::Framework::Onnx, 30, 8},
    {formats::Framework::Mnn, 24, 6},
};

std::vector<FrameworkCal> active_frameworks(const StoreConfig& config) {
  std::vector<FrameworkCal> cal{std::begin(kFrameworks),
                                std::end(kFrameworks)};
  if (config.extended_frameworks) {
    cal.insert(cal.end(), std::begin(kExtendedFrameworks),
               std::end(kExtendedFrameworks));
  }
  return cal;
}

bool list_contains(const char* const* list, const std::string& value) {
  if (list == nullptr) return false;
  for (; *list != nullptr; ++list) {
    if (value == *list) return true;
  }
  return false;
}

bool framework_allows(const FrameworkCal& cal, const std::string& archetype) {
  if (cal.allowed != nullptr) return list_contains(cal.allowed, archetype);
  return !list_contains(cal.blocked, archetype);
}

std::string fallback_archetype(const FrameworkCal& cal,
                               nn::Modality modality) {
  std::string archetype;
  switch (modality) {
    case nn::Modality::Text: archetype = "textcnn"; break;
    case nn::Modality::Audio: archetype = "audiocnn"; break;
    case nn::Modality::Sensor: archetype = "sensormlp"; break;
    default: archetype = "mobilenet"; break;
  }
  if (cal.allowed != nullptr && !list_contains(cal.allowed, archetype)) {
    archetype = cal.allowed[0];
  }
  return archetype;
}

std::string task_slug(const std::string& task) {
  std::string out;
  for (char c : task) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(c)));
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

const char* kTitleWords[] = {"Super", "Magic", "Smart", "Pro",   "Go",
                             "Lite",  "Max",   "Easy", "Quick", "My"};
const char* kTitleNouns[] = {"Camera", "Chat",   "Pay",    "Editor", "Scanner",
                             "Keyboard", "Player", "Fit",  "Maps",  "Story"};

}  // namespace

const std::vector<std::string>& PlayStore::categories() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> out;
    for (const auto& cat : kCategories) out.emplace_back(cat.name);
    return out;
  }();
  return kNames;
}

PlayStore::PlayStore(const StoreConfig& config) : config_{config} { generate(); }

void PlayStore::generate() {
  util::Rng rng{config_.seed};
  const auto& registry = formats::PluginRegistry::instance();

  // Active framework calibration; totals are computed from it so extended
  // mode scales every instance-level target with the extra entries (base
  // mode sums to exactly kModels21 / kUniqueModels).
  const std::vector<FrameworkCal> frameworks = active_frameworks(config_);
  int total_instances21 = 0;
  int total_uniques = 0;
  for (const auto& fw : frameworks) {
    total_instances21 += fw.instances21;
    total_uniques += fw.uniques;
  }
  assert(config_.extended_frameworks ||
         (total_instances21 == kModels21 && total_uniques == kUniqueModels));

  // ---- 1. Apportion exact totals across categories -------------------
  std::vector<double> w21, w20, wcloud;
  for (const auto& cat : kCategories) {
    w21.push_back(cat.models21);
    w20.push_back(cat.models20);
    wcloud.push_back(cat.cloud21);
  }
  const std::vector<int> models21 = apportion(w21, total_instances21);
  const std::vector<int> models20 = apportion(w20, kModels20);
  const std::vector<int> ml_apps21 = apportion(w21, kMlApps21);
  const std::vector<int> cloud21 = apportion(wcloud, kCloudApps21);

  // Non-extractable ML apps (obfuscated / lazy models): 377 - 342 = 35,
  // spread across the ML-heavy categories.
  const std::vector<int> hidden_apps =
      apportion(w21, kMlApps21 - kExtractableApps21);
  // Feb'20 ML apps, spread by the '20 model weights.
  const std::vector<int> ml_apps20 = apportion(w20, kMlApps20);

  // ---- 2. Unique model pool ------------------------------------------
  // Tasks apportioned inside each framework bucket so every framework gets
  // a plausible mix.
  {
    int next_id = 0;
    for (const auto& fw : frameworks) {
      std::vector<double> task_weights;
      for (const auto& task : kTasks) task_weights.push_back(task.weight);
      const std::vector<int> per_task = apportion(task_weights, fw.uniques);
      for (std::size_t t = 0; t < kTaskCount; ++t) {
        for (int k = 0; k < per_task[t]; ++k) {
          UniqueModel m;
          m.id = next_id++;
          m.task = kTasks[t].task;
          m.modality = kTasks[t].modality;
          m.archetype = kTasks[t].archetype;
          if (!framework_allows(fw, m.archetype)) {
            m.archetype = fallback_archetype(fw, m.modality);
          }
          m.framework = fw.framework;
          m.seed = rng.fork(util::format("model-%d", m.id)).next_u64();
          // FLOPs spread: resolution & width vary per model.
          util::Rng mr{m.seed};
          if (m.modality == nn::Modality::Image) {
            const int resolutions[] = {32, 48, 64, 96, 128};
            m.resolution = resolutions[mr.uniform_u64(5)];
            if (m.archetype == "unet" && m.resolution > 96) m.resolution = 96;
            m.width = mr.uniform(0.5, 2.0);
          } else if (m.modality == nn::Modality::Sensor) {
            m.resolution = static_cast<int>(8 + mr.uniform_u64(24));
            m.width = mr.uniform(0.5, 1.5);
          } else {
            m.resolution = static_cast<int>(8 + mr.uniform_u64(24));
            m.width = mr.uniform(0.5, 2.0);
          }
          unique_.push_back(std::move(m));
        }
      }
    }
    assert(static_cast<int>(unique_.size()) == total_uniques);
  }

  // Fine-tuning lineage (§4.5): ~4.5% of uniques derive from another pool
  // member, so ~9% of models participate in a sharing pair ("share at least
  // 20% of the weights with at least one other model"); about half of the
  // links retrain <=3 layers (the paper's 4.2%).
  {
    util::Rng frng = rng.fork("finetune");
    const auto n_tuned = static_cast<std::size_t>(unique_.size() * 0.045 + 0.5);
    std::size_t assigned = 0;
    std::set<int> used_as_base;  // distinct bases: each link adds 2
                                 // layer-sharing models to the census
    for (std::size_t i = 0; i < unique_.size() && assigned < n_tuned; ++i) {
      // Find an earlier sibling with the same archetype+framework to be the
      // base model.
      for (std::size_t j = 0; j < i; ++j) {
        if (unique_[j].archetype == unique_[i].archetype &&
            unique_[j].framework == unique_[i].framework &&
            unique_[j].finetuned_from < 0 && unique_[i].finetuned_from < 0 &&
            !used_as_base.count(unique_[j].id)) {
          unique_[i].finetuned_from = unique_[j].id;
          // Same architecture: inherit the base's structural parameters.
          // (Quantisation flags are assigned per lineage group later, so
          // base and fine-tuned variants always match.)
          unique_[i].resolution = unique_[j].resolution;
          unique_[i].width = unique_[j].width;
          unique_[i].finetuned_layers =
              assigned % 2 == 0 ? static_cast<int>(1 + frng.uniform_u64(3))
                                : static_cast<int>(4 + frng.uniform_u64(4));
          used_as_base.insert(unique_[j].id);
          ++assigned;
          break;
        }
      }
    }
  }

  // Filenames: ~67% hint the task and/or architecture.
  {
    util::Rng nrng = rng.fork("names");
    for (auto& m : unique_) {
      const std::string ext =
          registry.find(m.framework)->primary_extension();
      if (nrng.bernoulli(0.67)) {
        m.filename = task_slug(m.task) + "_" + m.archetype + "_" +
                     std::to_string(m.id) + ext;
      } else {
        m.filename = util::format("model_%d%s", m.id, ext.c_str());
      }
    }
  }

  // ---- 3. Apps ---------------------------------------------------------
  // Per category: generate the union of both snapshots' charts, attach ML
  // roles to the top slice (popular apps are likelier to ship ML).
  std::vector<std::size_t> ml_app_indices;          // extractable, '21
  std::vector<std::size_t> ml_app_indices_2020;     // ML in '20 too
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    const CategoryCal& cat = kCategories[c];
    util::Rng crng = rng.fork(std::string{"cat-"} + cat.name);

    const int churn = std::min(cat.apps20, cat.apps21) / 20;  // ~5% turnover
    const int both = std::min(cat.apps20, cat.apps21) - churn;
    const int only20 = cat.apps20 - both;
    const int only21 = cat.apps21 - both;
    const int universe = both + only20 + only21;

    std::vector<std::size_t> cat_apps;
    for (int i = 0; i < universe; ++i) {
      AppEntry app;
      app.category = cat.name;
      app.package = util::format("com.%s.app%03d",
                                 task_slug(cat.name).c_str(), i);
      app.title = util::format(
          "%s %s %s", kTitleWords[crng.uniform_u64(std::size(kTitleWords))],
          kTitleNouns[crng.uniform_u64(std::size(kTitleNouns))],
          task_slug(cat.name).c_str());
      // Power-law installs by rank.
      app.installs = static_cast<std::int64_t>(
          5e8 / std::pow(static_cast<double>(i + 1), 0.9) *
          crng.uniform(0.8, 1.2));
      app.rating = std::clamp(crng.normal(4.1, 0.5), 1.0, 5.0);
      app.reviews = static_cast<std::int64_t>(
          static_cast<double>(app.installs) * crng.uniform(0.001, 0.02));
      if (i < both) {
        app.present_2020 = app.present_2021 = true;
      } else if (i < both + only20) {
        app.present_2020 = true;
        app.present_2021 = false;
      } else {
        app.present_2020 = false;
        app.present_2021 = true;
      }
      app.seed = crng.next_u64();
      cat_apps.push_back(apps_.size());
      package_index_[app.package] = apps_.size();
      by_category_[cat.name].push_back(apps_.size());
      apps_.push_back(std::move(app));
    }

    // ML roles: extractable apps first (top of chart), then hidden-model
    // apps. All must be present in 2021.
    int extractable = ml_apps21[c] - hidden_apps[c];
    int hidden = hidden_apps[c];
    int ml20_left = ml_apps20[c];
    for (std::size_t rank = 0; rank < cat_apps.size(); ++rank) {
      AppEntry& app = apps_[cat_apps[rank]];
      if (!app.present_2021) continue;
      if (extractable > 0) {
        app.is_ml_2021 = true;
        ml_app_indices.push_back(cat_apps[rank]);
        if (ml20_left > 0 && app.present_2020) {
          app.is_ml_2020 = true;
          ml_app_indices_2020.push_back(cat_apps[rank]);
          --ml20_left;
        }
        --extractable;
      } else if (hidden > 0) {
        app.is_ml_2021 = true;
        app.lazy_models = true;  // models obfuscated or fetched at runtime
        --hidden;
      }
    }
  }
  assert(ml_app_indices.size() == static_cast<std::size_t>(kExtractableApps21));

  // ---- 4. Model instances ---------------------------------------------
  // Global unique-id deck with the exact Fig. 4 framework counts. Coverage
  // first (every unique model ships at least once — Table 2's 318 distinct
  // checksums), then zipf popularity for the remaining copies (FSSD-style
  // hit models recur often). Shuffled, then dealt into categories.
  std::map<formats::Framework, std::vector<int>> uniques_by_fw;
  for (const auto& m : unique_) uniques_by_fw[m.framework].push_back(m.id);

  util::Rng irng = rng.fork("instances");
  std::vector<int> unique_deck;
  unique_deck.reserve(static_cast<std::size_t>(total_instances21));
  for (const auto& fw : frameworks) {
    const auto& pool = uniques_by_fw[fw.framework];
    for (int id : pool) unique_deck.push_back(id);
    // Extra copies are drawn task-first (Table 3 proportions), then
    // zipf-within-task (hit models like FSSD recur), so duplication does
    // not skew the task mix.
    std::map<std::string, std::vector<int>> pool_by_task;
    for (int id : pool) {
      pool_by_task[unique_[static_cast<std::size_t>(id)].task].push_back(id);
    }
    std::vector<std::string> task_names;
    std::vector<double> task_weights;
    for (const auto& task : kTasks) {
      const auto it = pool_by_task.find(task.task);
      if (it == pool_by_task.end()) continue;
      task_names.push_back(task.task);
      task_weights.push_back(task.weight);
    }
    for (int k = static_cast<int>(pool.size()); k < fw.instances21; ++k) {
      const auto& task_pool =
          pool_by_task[task_names[irng.weighted_choice(task_weights)]];
      unique_deck.push_back(task_pool[irng.zipf(task_pool.size(), 1.1) - 1]);
    }
  }
  irng.shuffle(unique_deck);
  assert(unique_deck.size() == static_cast<std::size_t>(total_instances21));

  // Deal 2021 instances into categories/apps.
  std::size_t deck_pos = 0;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    // Extractable apps of this category.
    std::vector<std::size_t> apps_in_cat;
    for (std::size_t idx : by_category_[kCategories[c].name]) {
      const AppEntry& app = apps_[idx];
      if (app.is_ml_2021 && !app.lazy_models) apps_in_cat.push_back(idx);
    }
    if (apps_in_cat.empty()) continue;
    std::vector<std::size_t> apps20_in_cat;
    for (std::size_t idx : apps_in_cat) {
      if (apps_[idx].is_ml_2020) apps20_in_cat.push_back(idx);
    }
    const int m21 = models21[c];
    const int m20 = models20[c];
    int carried = std::max(0, std::min(m20, m21) - std::min(m20, m21) / 5);
    if (apps20_in_cat.empty()) carried = 0;

    // App coverage: every extractable app must ship at least one model
    // ("apps w/ models" in Table 2 counts them all).
    auto pick_app = [&](const std::vector<std::size_t>& candidates)
        -> AppEntry& {
      for (std::size_t idx : candidates) {
        if (apps_[idx].model_instances.empty()) return apps_[idx];
      }
      return apps_[candidates[irng.zipf(candidates.size(), 0.7) - 1]];
    };

    for (int k = 0; k < m21; ++k) {
      ModelInstance inst;
      inst.instance_id = static_cast<int>(instances_.size());
      inst.unique_id = unique_deck[std::min(deck_pos++, unique_deck.size() - 1)];
      inst.present_2021 = true;
      inst.present_2020 = k < carried;  // the carried prefix existed in '20
      // Instances that already existed in '20 must live in an app that was
      // ML then; popular apps accumulate more models.
      AppEntry& app = pick_app(inst.present_2020 ? apps20_in_cat : apps_in_cat);
      app.model_instances.push_back(inst.instance_id);
      instances_.push_back(inst);
    }

    // 2020-only (later removed) instances.
    const int removed = apps20_in_cat.empty() ? 0 : m20 - carried;
    for (int k = 0; k < removed; ++k) {
      ModelInstance inst;
      inst.instance_id = static_cast<int>(instances_.size());
      inst.unique_id = unique_deck[irng.uniform_u64(unique_deck.size())];
      inst.present_2020 = true;
      inst.present_2021 = false;
      AppEntry& app =
          apps_[apps20_in_cat[irng.zipf(apps20_in_cat.size(), 0.7) - 1]];
      app.model_instances.push_back(inst.instance_id);
      instances_.push_back(inst);
    }
  }

  // ---- 4b. Quantisation census (§6.1), popularity-aware ----------------
  // Targets are *instance-level*: 20.27% int8 weights, 10.31% int8
  // activations (the latter carry the Quantize/Dequantize sandwich, the
  // paper's "10.3% use the dequantize layer"). Whole fine-tuning lineage
  // groups are marked together so base and variant stay layer-comparable.
  {
    // Instance popularity per unique id ('21 instances).
    std::vector<int> copies(unique_.size(), 0);
    for (const auto& inst : instances_) {
      if (inst.present_2021) copies[static_cast<std::size_t>(inst.unique_id)]++;
    }
    // Lineage groups: root id -> members.
    std::map<int, std::vector<int>> groups;
    for (const auto& m : unique_) {
      int root = m.id;
      while (unique_[static_cast<std::size_t>(root)].finetuned_from >= 0) {
        root = unique_[static_cast<std::size_t>(root)].finetuned_from;
      }
      groups[root].push_back(m.id);
    }
    auto quantizable = [&](int id) {
      const auto* plugin =
          registry.find(unique_[static_cast<std::size_t>(id)].framework);
      return plugin != nullptr && plugin->quantizable();
    };
    std::vector<int> roots;
    for (const auto& [root, _] : groups) roots.push_back(root);
    util::Rng qrng = rng.fork("quant");
    qrng.shuffle(roots);

    const int w8_target = static_cast<int>(total_instances21 * 0.2027 + 0.5);
    const int a8_target = static_cast<int>(total_instances21 * 0.1031 + 0.5);
    int w8 = 0, a8 = 0;
    for (int root : roots) {
      if (w8 >= w8_target) break;
      if (!quantizable(root)) continue;
      int group_copies = 0;
      for (int id : groups[root]) group_copies += copies[static_cast<std::size_t>(id)];
      if (group_copies == 0) continue;
      // Skip groups that would badly overshoot the instance target; smaller
      // groups later in the shuffle will fill the remainder.
      if (w8 + group_copies > w8_target + 8) continue;
      const bool vision =
          unique_[static_cast<std::size_t>(root)].modality == nn::Modality::Image;
      const bool want_a8 = vision && a8 + group_copies <= a8_target + 8;
      for (int id : groups[root]) {
        unique_[static_cast<std::size_t>(id)].int8_weights = true;
        if (want_a8) unique_[static_cast<std::size_t>(id)].int8_activations = true;
      }
      w8 += group_copies;
      if (want_a8) a8 += group_copies;
    }
  }

  // ---- 5. Cloud APIs, accelerators ------------------------------------
  {
    util::Rng crng = rng.fork("cloud");
    std::vector<std::size_t> cloud_apps;
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      int budget = cloud21[c];
      for (std::size_t idx : by_category_[kCategories[c].name]) {
        if (budget == 0) break;
        AppEntry& app = apps_[idx];
        if (!app.present_2021) continue;
        app.cloud_apis.push_back(CloudProvider::GoogleFirebase);
        cloud_apps.push_back(idx);
        --budget;
      }
    }
    // Providers: 72 Amazon, rest Google (some Google Cloud, most Firebase).
    crng.shuffle(cloud_apps);
    for (std::size_t k = 0; k < cloud_apps.size(); ++k) {
      AppEntry& app = apps_[cloud_apps[k]];
      app.cloud_apis.clear();
      if (k < static_cast<std::size_t>(kAmazonApps21)) {
        app.cloud_apis.push_back(CloudProvider::AmazonAws);
      } else if (k % 5 == 0) {
        app.cloud_apis.push_back(CloudProvider::GoogleCloud);
      } else {
        app.cloud_apis.push_back(CloudProvider::GoogleFirebase);
      }
    }
    // '20 subset: cloud adoption grew 2.33x — only kCloudApps20 of these
    // apps already called cloud ML APIs in the Feb'20 snapshot.
    int cloud20_left = kCloudApps20;
    for (std::size_t idx : cloud_apps) {
      if (cloud20_left == 0) break;
      if (apps_[idx].present_2020) {
        apps_[idx].cloud_2020 = true;
        --cloud20_left;
      }
    }
  }
  {
    // Accelerator usage among extractable ML apps.
    util::Rng arng = rng.fork("accel");
    std::vector<std::size_t> shuffled = ml_app_indices;
    arng.shuffle(shuffled);
    for (int k = 0; k < kNnapiApps && k < static_cast<int>(shuffled.size()); ++k) {
      apps_[shuffled[static_cast<std::size_t>(k)]].uses_nnapi = true;
    }
    for (int k = 0; k < kXnnpackApps; ++k) {
      apps_[shuffled[static_cast<std::size_t>(kNnapiApps + k)]].uses_xnnpack = true;
    }
    // SNPE apps: the ones holding SNPE-framework instances.
    int snpe_marked = 0;
    for (auto& app : apps_) {
      for (int inst : app.model_instances) {
        const UniqueModel& m = unique_[static_cast<std::size_t>(
            instances_[static_cast<std::size_t>(inst)].unique_id)];
        if (m.framework == formats::Framework::Snpe &&
            instances_[static_cast<std::size_t>(inst)].present_2021) {
          app.uses_snpe = true;
        }
      }
      if (app.uses_snpe) ++snpe_marked;
    }
    // Ensure at least kSnpeApps carry SNPE if the zipf deal concentrated
    // them; spread extra dlc-bearing apps if needed.
    for (std::size_t k = 0; snpe_marked < kSnpeApps && k < shuffled.size(); ++k) {
      AppEntry& app = apps_[shuffled[k]];
      if (!app.uses_snpe && !app.model_instances.empty()) {
        app.uses_snpe = true;
        ++snpe_marked;
      }
    }
  }
}

std::size_t PlayStore::app_count(Snapshot snap) const {
  std::size_t count = 0;
  for (const auto& app : apps_) {
    if (app.present(snap)) ++count;
  }
  return count;
}

std::size_t PlayStore::ml_app_count(Snapshot snap) const {
  std::size_t count = 0;
  for (const auto& app : apps_) {
    if (app.present(snap) && app.is_ml(snap)) ++count;
  }
  return count;
}

std::size_t PlayStore::model_instance_count(Snapshot snap) const {
  std::size_t count = 0;
  for (const auto& inst : instances_) {
    if (snap == Snapshot::Feb2020 ? inst.present_2020 : inst.present_2021) {
      ++count;
    }
  }
  return count;
}

std::vector<const AppEntry*> PlayStore::top_chart(
    const ChartRequest& request) const {
  std::vector<const AppEntry*> chart;
  const auto it = by_category_.find(request.category);
  if (it == by_category_.end()) return chart;
  std::vector<const AppEntry*> present;
  for (std::size_t idx : it->second) {
    const AppEntry& app = apps_[idx];
    if (app.present(request.snapshot)) present.push_back(&app);
  }
  std::sort(present.begin(), present.end(),
            [](const AppEntry* a, const AppEntry* b) {
              if (a->installs != b->installs) return a->installs > b->installs;
              return a->package < b->package;
            });
  constexpr std::size_t kChartCap = 500;
  const std::size_t end = std::min(present.size(), kChartCap);
  for (std::size_t i = request.offset; i < end && chart.size() < request.limit;
       ++i) {
    chart.push_back(present[i]);
  }
  return chart;
}

const AppEntry* PlayStore::find(const std::string& package) const {
  const auto it = package_index_.find(package);
  return it == package_index_.end() ? nullptr : &apps_[it->second];
}

nn::Graph PlayStore::build_unique_model(int unique_id) const {
  const UniqueModel& m = unique_[static_cast<std::size_t>(unique_id)];
  nn::ZooSpec spec;
  spec.archetype = m.archetype;
  spec.width = m.width;
  spec.resolution = m.resolution;
  spec.name = m.filename;
  // Fine-tuned models share the base's weights except the last k layers.
  if (m.finetuned_from >= 0) {
    const UniqueModel& base =
        unique_[static_cast<std::size_t>(m.finetuned_from)];
    spec.seed = base.seed;
    nn::Graph g = nn::build_model(spec);
    g = nn::make_finetuned(g, m.finetuned_layers, m.seed);
    if (m.int8_activations) g = nn::with_quantized_stem(g);
    else if (m.int8_weights) nn::quantize_weights(g);
    g.name = m.filename;
    return g;
  }
  spec.seed = m.seed;
  nn::Graph g = nn::build_model(spec);
  if (m.int8_activations) g = nn::with_quantized_stem(g);
  else if (m.int8_weights) nn::quantize_weights(g);
  g.name = m.filename;
  return g;
}

std::vector<std::pair<std::string, util::Bytes>> PlayStore::serialize_model(
    int unique_id) const {
  {
    const std::lock_guard<std::mutex> lock{model_file_cache_mutex_};
    const auto cached = model_file_cache_.find(unique_id);
    if (cached != model_file_cache_.end()) return cached->second;
  }
  const UniqueModel& m = unique_[static_cast<std::size_t>(unique_id)];
  const nn::Graph graph = build_unique_model(unique_id);
  const std::string base = "assets/models/" + m.filename;
  std::vector<std::pair<std::string, util::Bytes>> files;
  const auto* plugin = formats::PluginRegistry::instance().find(m.framework);
  if (plugin != nullptr) {
    auto model = plugin->serialize(graph);
    if (model.ok()) {  // generator guarantees dialect fit
      files.emplace_back(base, std::move(model.value().primary));
      if (model.value().has_weights_file) {
        files.emplace_back(plugin->companion(base),
                           std::move(model.value().weights));
      }
    }
  }
  const std::lock_guard<std::mutex> lock{model_file_cache_mutex_};
  // emplace: a concurrent first serialisation wins; ours is byte-identical.
  return model_file_cache_.emplace(unique_id, std::move(files)).first->second;
}

util::Result<AppPackage> PlayStore::download(
    const std::string& package, Snapshot snapshot,
    const std::string& device_profile) const {
  using R = util::Result<AppPackage>;
  (void)device_profile;  // no device-specific customisation exists (§4.2)
  const AppEntry* app = find(package);
  if (app == nullptr) return R::failure("unknown package: " + package);
  if (!app->present(snapshot)) {
    return R::failure("app not in this snapshot: " + package);
  }

  util::Rng arng{app->seed};
  ApkSpec spec;
  spec.manifest.package = app->package;
  spec.manifest.version_code =
      snapshot == Snapshot::Feb2020 ? 100 : 120 + static_cast<int>(arng.uniform_u64(40));
  spec.manifest.permissions = {"android.permission.INTERNET"};
  if (app->is_ml(snapshot)) {
    spec.manifest.permissions.push_back("android.permission.CAMERA");
  }

  spec.dex.classes = {
      "L" + util::join(util::split(app->package, '.'), "/") + "/MainActivity;"};
  // Decoy assets every app carries.
  spec.files.emplace_back("assets/config.json",
                          util::to_bytes("{\"flags\":{\"new_ui\":true}}"));
  spec.files.emplace_back("res/drawable/icon.png",
                          util::to_bytes("\x89PNG-stub"));
  if (config_.extended_frameworks && app->is_ml(snapshot)) {
    // A classical-ML artefact: candidate extension (.joblib -> sklearn) that
    // no registered plugin can parse, exercising the pipeline's no-parser
    // drop accounting end-to-end.
    spec.files.emplace_back("assets/vocab.joblib",
                            util::to_bytes("joblib-pickle-stub"));
  }

  // ML stacks: dex markers + native libs per shipped framework, emitted in
  // plugin chart order (stable marker bytes however the registry grows).
  if (app->is_ml(snapshot)) {
    const auto& registry = formats::PluginRegistry::instance();
    std::set<formats::Framework> shipped;
    for (int inst_id : app->model_instances) {
      const ModelInstance& inst = instances_[static_cast<std::size_t>(inst_id)];
      const bool present = snapshot == Snapshot::Feb2020 ? inst.present_2020
                                                         : inst.present_2021;
      if (!present) continue;
      shipped.insert(
          unique_[static_cast<std::size_t>(inst.unique_id)].framework);
    }
    if (app->lazy_models) {
      shipped.insert(formats::Framework::TfLite);  // library, no local model
    }
    // SNPE runtime presence is modelled by the uses_snpe SDK flag (step 5
    // marks every app holding current SNPE instances, plus spread extras),
    // not by the shipped-model set.
    shipped.erase(formats::Framework::Snpe);
    if (app->uses_snpe) shipped.insert(formats::Framework::Snpe);
    const auto push_unique = [](std::vector<std::string>& list,
                                const std::string& value) {
      if (std::find(list.begin(), list.end(), value) == list.end()) {
        list.push_back(value);
      }
    };
    for (const auto* plugin : registry.plugins_by_chart_rank()) {
      if (shipped.count(plugin->framework()) == 0) continue;
      for (const auto& marker : plugin->dex_markers()) {
        push_unique(spec.dex.classes, marker);
      }
      for (const auto& lib : plugin->native_libs()) {
        push_unique(spec.native_libs, lib);
      }
    }
    if (app->uses_nnapi) {
      spec.dex.classes.push_back("Lorg/tensorflow/lite/nnapi/NnApiDelegate;");
    }
    if (app->uses_xnnpack) spec.native_libs.push_back("libxnnpack.so");
    if (app->lazy_models) {
      if (arng.bernoulli(0.5)) {
        // Encrypted/obfuscated on-disk model: candidate extension, but the
        // payload fails signature validation (§3.1 "Model validation").
        auto files = serialize_model(
            static_cast<int>(arng.uniform_u64(unique_.size())));
        if (!files.empty()) {
          auto bytes = files[0].second;
          for (auto& b : bytes) b ^= 0x5A;
          spec.files.emplace_back("assets/models/enc_model.tflite",
                                  std::move(bytes));
        }
      } else {
        // Model fetched outside Google Play at runtime.
        spec.dex.strings.push_back(
            "https://cdn." + app->package + ".example/models/latest.tflite");
      }
    }
  }

  // Cloud API call sites (only in snapshots where the integration existed).
  const bool cloud_active = snapshot == Snapshot::Apr2021
                                ? !app->cloud_apis.empty()
                                : app->cloud_2020;
  for (CloudProvider provider :
       cloud_active ? app->cloud_apis : std::vector<CloudProvider>{}) {
    switch (provider) {
      case CloudProvider::GoogleFirebase:
        spec.dex.method_refs.push_back(
            "Lcom/google/firebase/ml/vision/FirebaseVision;->getInstance()");
        break;
      case CloudProvider::GoogleCloud:
        spec.dex.method_refs.push_back(
            "Lcom/google/cloud/vision/v1/ImageAnnotatorClient;->create()");
        spec.dex.strings.push_back("https://vision.googleapis.com/v1/images:annotate");
        break;
      case CloudProvider::AmazonAws:
        spec.dex.method_refs.push_back(
            "Lcom/amazonaws/services/rekognition/AmazonRekognitionClient;->detectLabels()");
        break;
    }
  }

  // Model payloads.
  for (int inst_id : app->model_instances) {
    const ModelInstance& inst = instances_[static_cast<std::size_t>(inst_id)];
    const bool present = snapshot == Snapshot::Feb2020 ? inst.present_2020
                                                       : inst.present_2021;
    if (!present) continue;
    auto files = serialize_model(inst.unique_id);
    for (auto& [path, bytes] : files) {
      // Duplicate filenames across instances get an instance-id prefix, as
      // apps often namespace bundled models.
      std::string final_path = path;
      for (const auto& existing : spec.files) {
        if (existing.first == final_path) {
          final_path = "assets/models/i" + std::to_string(inst_id) + "_" +
                       std::string{util::basename(path)};
          break;
        }
      }
      if (inst.obfuscated) {
        for (auto& b : bytes) b ^= 0x5A;
      }
      spec.files.emplace_back(std::move(final_path), std::move(bytes));
    }
  }

  AppPackage pkg;
  pkg.apk = build_apk(spec);

  // A slice of media-heavy apps ship OBB expansions / asset packs — with
  // textures, never models (§4.2 ground truth).
  if (arng.bernoulli(0.05)) {
    SideContainer obb;
    obb.name = util::format("main.%d.%s.obb", spec.manifest.version_code,
                            app->package.c_str());
    util::Bytes texture(2048);
    for (auto& b : texture) b = static_cast<std::uint8_t>(arng.uniform_u64(256));
    obb.bytes = build_side_container({{"textures/atlas0.ktx", texture}});
    pkg.expansions.push_back(std::move(obb));
  }
  if (arng.bernoulli(0.03)) {
    SideContainer pack;
    pack.name = "install_time.asset-pack";
    pack.bytes = build_side_container(
        {{"media/intro.webm", util::to_bytes("WEBM-stub-payload")}});
    pkg.asset_packs.push_back(std::move(pack));
  }
  return pkg;
}

}  // namespace gauge::android
