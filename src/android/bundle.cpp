#include "android/bundle.hpp"

namespace gauge::android {

util::Bytes build_side_container(
    const std::vector<std::pair<std::string, util::Bytes>>& files) {
  zipfile::ZipWriter zip;
  for (const auto& [path, data] : files) zip.add(path, data);
  return zip.finish();
}

util::Result<std::vector<std::string>> side_container_entries(
    const SideContainer& container) {
  using R = util::Result<std::vector<std::string>>;
  auto zip = zipfile::ZipReader::open(container.bytes);
  if (!zip.ok()) return R::failure(zip.error());
  std::vector<std::string> names;
  for (const auto& entry : zip.value().entries()) names.push_back(entry.name);
  return names;
}

}  // namespace gauge::android
