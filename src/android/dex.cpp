#include "android/dex.hpp"

#include <cstring>

namespace gauge::android {

namespace {
void write_table(util::ByteWriter& w, const std::vector<std::string>& items) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& s : items) w.str(s);
}

bool read_table(util::ByteReader& r, std::vector<std::string>& out) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > 1'000'000) return false;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(r.str());
    if (!r.ok()) return false;
  }
  return true;
}
}  // namespace

util::Bytes write_dex(const DexFile& dex) {
  util::ByteWriter w;
  w.raw(std::string_view{kDexMagic, 8});
  write_table(w, dex.classes);
  write_table(w, dex.method_refs);
  write_table(w, dex.strings);
  return std::move(w).take();
}

bool looks_like_dex(std::span<const std::uint8_t> data) {
  return data.size() >= 8 && std::memcmp(data.data(), kDexMagic, 8) == 0;
}

util::Result<DexFile> read_dex(std::span<const std::uint8_t> data) {
  using R = util::Result<DexFile>;
  if (!looks_like_dex(data)) return R::failure("missing dex magic");
  util::ByteReader r{data};
  r.raw(8);
  DexFile dex;
  if (!read_table(r, dex.classes) || !read_table(r, dex.method_refs) ||
      !read_table(r, dex.strings)) {
    return R::failure("corrupt dex tables");
  }
  return dex;
}

std::string to_smali(const DexFile& dex) {
  std::string out;
  for (const auto& cls : dex.classes) {
    out += ".class public " + cls + "\n";
  }
  for (const auto& method : dex.method_refs) {
    out += "    invoke-virtual {v0}, " + method + "\n";
  }
  for (const auto& str : dex.strings) {
    out += "    const-string v1, \"" + str + "\"\n";
  }
  return out;
}

}  // namespace gauge::android
