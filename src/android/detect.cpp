#include "android/detect.hpp"

#include <array>

namespace gauge::android {

const char* cloud_provider_name(CloudProvider provider) {
  switch (provider) {
    case CloudProvider::GoogleFirebase: return "Google Firebase ML";
    case CloudProvider::GoogleCloud: return "Google Cloud";
    case CloudProvider::AmazonAws: return "Amazon AWS";
  }
  return "?";
}

const char* ml_stack_name(MlStack stack) {
  switch (stack) {
    case MlStack::TfLite: return "TFLite";
    case MlStack::TensorFlow: return "TF";
    case MlStack::Caffe: return "caffe";
    case MlStack::Ncnn: return "ncnn";
    case MlStack::Snpe: return "SNPE";
    case MlStack::Onnx: return "ONNX Runtime";
    case MlStack::Mnn: return "MNN";
    case MlStack::NnApi: return "NNAPI";
    case MlStack::Xnnpack: return "XNNPACK";
    case MlStack::PyTorchMobile: return "PyTorch Mobile";
  }
  return "?";
}

namespace {

struct CloudSignature {
  CloudProvider provider;
  const char* fragment;
};

constexpr std::array kCloudSignatures = {
    CloudSignature{CloudProvider::GoogleFirebase, "Lcom/google/firebase/ml/"},
    CloudSignature{CloudProvider::GoogleFirebase,
                   "Lcom/google/mlkit/vision/"},
    CloudSignature{CloudProvider::GoogleCloud, "Lcom/google/cloud/vision/"},
    CloudSignature{CloudProvider::GoogleCloud, "Lcom/google/cloud/speech/"},
    CloudSignature{CloudProvider::GoogleCloud, "vision.googleapis.com"},
    CloudSignature{CloudProvider::GoogleCloud, "speech.googleapis.com"},
    CloudSignature{CloudProvider::AmazonAws,
                   "Lcom/amazonaws/services/rekognition/"},
    CloudSignature{CloudProvider::AmazonAws,
                   "Lcom/amazonaws/services/machinelearning/"},
    CloudSignature{CloudProvider::AmazonAws, "Lcom/amazonaws/services/comprehend/"},
};

struct StackSignature {
  MlStack stack;
  const char* fragment;
  bool native_lib;  // matched against lib names instead of smali
};

constexpr std::array kStackSignatures = {
    StackSignature{MlStack::TfLite, "Lorg/tensorflow/lite/", false},
    StackSignature{MlStack::TfLite, "libtensorflowlite_jni.so", true},
    StackSignature{MlStack::TfLite, "libtensorflowlite.so", true},
    StackSignature{MlStack::TensorFlow, "Lorg/tensorflow/contrib/android/", false},
    StackSignature{MlStack::TensorFlow, "libtensorflow_inference.so", true},
    StackSignature{MlStack::Caffe, "libcaffe.so", true},
    StackSignature{MlStack::Caffe, "libcaffe_jni.so", true},
    StackSignature{MlStack::Ncnn, "libncnn.so", true},
    StackSignature{MlStack::Snpe, "libSNPE.so", true},
    StackSignature{MlStack::Snpe, "Lcom/qualcomm/qti/snpe/", false},
    StackSignature{MlStack::Onnx, "libonnxruntime.so", true},
    StackSignature{MlStack::Onnx, "Lai/onnxruntime/", false},
    StackSignature{MlStack::Mnn, "libMNN.so", true},
    StackSignature{MlStack::Mnn, "Lcom/alibaba/android/mnn/", false},
    StackSignature{MlStack::NnApi, "Lorg/tensorflow/lite/nnapi/NnApiDelegate", false},
    StackSignature{MlStack::NnApi, "libnnapi_delegate.so", true},
    StackSignature{MlStack::Xnnpack, "libxnnpack.so", true},
    StackSignature{MlStack::Xnnpack,
                   "Lorg/tensorflow/lite/XnnpackDelegate", false},
    StackSignature{MlStack::PyTorchMobile, "Lorg/pytorch/Module", false},
    StackSignature{MlStack::PyTorchMobile, "libpytorch_jni.so", true},
};

}  // namespace

std::vector<CloudApiHit> detect_cloud_apis(const Apk& apk) {
  const std::string smali = to_smali(apk.dex());
  std::vector<CloudApiHit> hits;
  for (const auto& sig : kCloudSignatures) {
    if (smali.find(sig.fragment) != std::string::npos) {
      hits.push_back({sig.provider, sig.fragment});
    }
  }
  return hits;
}

std::vector<MlStackHit> detect_ml_stacks(const Apk& apk) {
  const std::string smali = to_smali(apk.dex());
  const auto libs = apk.native_libs();
  std::vector<MlStackHit> hits;
  for (const auto& sig : kStackSignatures) {
    bool matched = false;
    if (sig.native_lib) {
      for (const auto& lib : libs) {
        if (lib == sig.fragment) {
          matched = true;
          break;
        }
      }
    } else {
      matched = smali.find(sig.fragment) != std::string::npos;
    }
    if (matched) {
      // Deduplicate per stack, keep first evidence.
      bool seen = false;
      for (const auto& hit : hits) {
        if (hit.stack == sig.stack) {
          seen = true;
          break;
        }
      }
      if (!seen) hits.push_back({sig.stack, sig.fragment});
    }
  }
  return hits;
}

bool uses_ml(const Apk& apk) {
  for (const auto& hit : detect_ml_stacks(apk)) {
    // NNAPI/XNNPACK are delegates, not stacks by themselves; any other hit
    // marks the app as ML-powered.
    if (hit.stack != MlStack::NnApi && hit.stack != MlStack::Xnnpack) {
      return true;
    }
  }
  return false;
}

}  // namespace gauge::android
