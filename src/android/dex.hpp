// Simplified dex-like container: the pieces of a real classesN.dex that the
// pipeline actually consumes — the magic header and the string/method-ref
// tables. gaugeNN "decompiles" it into smali-style text and string-matches
// for cloud ML API calls and on-device framework usage (paper §3.2).
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace gauge::android {

inline constexpr char kDexMagic[8] = {'d', 'e', 'x', '\n', '0', '3', '5', '\0'};

struct DexFile {
  // Class descriptors ("Lcom/example/Foo;").
  std::vector<std::string> classes;
  // Method references ("Lcom/google/firebase/ml/vision/FirebaseVision;->getInstance").
  std::vector<std::string> method_refs;
  // String constants used by the code.
  std::vector<std::string> strings;
};

util::Bytes write_dex(const DexFile& dex);
util::Result<DexFile> read_dex(std::span<const std::uint8_t> data);
bool looks_like_dex(std::span<const std::uint8_t> data);

// Renders smali-style disassembly: one ".class" directive per class, one
// "invoke-virtual" per method ref, one "const-string" per string constant.
// This is what the detectors grep, mirroring apktool+smali in the paper.
std::string to_smali(const DexFile& dex);

}  // namespace gauge::android
