#include "android/apk.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace gauge::android {

std::string Manifest::serialize() const {
  std::string out;
  out += "package: " + package + "\n";
  out += "versionCode: " + std::to_string(version_code) + "\n";
  out += "minSdkVersion: " + std::to_string(min_sdk) + "\n";
  for (const auto& perm : permissions) {
    out += "uses-permission: " + perm + "\n";
  }
  return out;
}

util::Result<Manifest> Manifest::parse(std::string_view text) {
  using R = util::Result<Manifest>;
  Manifest m;
  for (const auto& line : util::split(text, '\n')) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) return R::failure("bad manifest line");
    const auto key = util::trim(trimmed.substr(0, colon));
    const auto value = std::string{util::trim(trimmed.substr(colon + 1))};
    if (key == "package") {
      m.package = value;
    } else if (key == "versionCode") {
      m.version_code = static_cast<int>(util::parse_int(value).value_or(1));
    } else if (key == "minSdkVersion") {
      m.min_sdk = static_cast<int>(util::parse_int(value).value_or(21));
    } else if (key == "uses-permission") {
      m.permissions.push_back(value);
    } else {
      return R::failure("unknown manifest key: " + std::string{key});
    }
  }
  if (m.package.empty()) return R::failure("manifest without package");
  return m;
}

util::Bytes build_apk(const ApkSpec& spec) {
  zipfile::ZipWriter zip;
  zip.add("AndroidManifest.xml", spec.manifest.serialize());
  zip.add("classes.dex", write_dex(spec.dex));
  zip.add("resources.arsc", std::string_view{"ARSC\x01\x00"});
  for (const auto& [path, data] : spec.files) {
    // Model payloads (random weights) are effectively incompressible; real
    // packagers store such assets uncompressed, and so do we — it also
    // keeps bulk packaging fast.
    if (path.starts_with("assets/models/")) {
      zip.add(path, data, zipfile::Method::Store);
    } else {
      zip.add(path, data);
    }
  }
  for (const auto& lib : spec.native_libs) {
    // ELF-stub payload: enough for name-based native-lib detection.
    zip.add("lib/arm64-v8a/" + lib,
            std::string_view{"\x7f"
                             "ELF-stub"});
  }
  return zip.finish();
}

util::Result<Apk> Apk::open(util::Bytes bytes, zipfile::ReadLimits limits) {
  using R = util::Result<Apk>;
  const std::size_t size = bytes.size();
  auto zip = zipfile::ZipReader::open(std::move(bytes), limits);
  if (!zip.ok()) return R::failure("not a zip: " + zip.error());

  Apk apk;
  apk.zip_ = std::move(zip).take();
  apk.archive_size_ = size;

  auto manifest_bytes = apk.zip_.read("AndroidManifest.xml");
  if (!manifest_bytes.ok()) return R::failure("missing AndroidManifest.xml");
  auto manifest = Manifest::parse(util::as_view(manifest_bytes.value()));
  if (!manifest.ok()) return R::failure(manifest.error());
  apk.manifest_ = std::move(manifest).take();

  auto dex_bytes = apk.zip_.read("classes.dex");
  if (!dex_bytes.ok()) return R::failure("missing classes.dex");
  auto dex = read_dex(dex_bytes.value());
  if (!dex.ok()) return R::failure(dex.error());
  apk.dex_ = std::move(dex).take();

  return apk;
}

std::vector<std::string> Apk::entry_names() const {
  std::vector<std::string> out;
  out.reserve(zip_.entries().size());
  for (const auto& entry : zip_.entries()) out.push_back(entry.name);
  return out;
}

util::Result<util::Bytes> Apk::read(std::string_view name) const {
  return zip_.read(name);
}

std::vector<std::string> Apk::native_libs() const {
  std::vector<std::string> out;
  for (const auto& entry : zip_.entries()) {
    if (entry.name.starts_with("lib/")) {
      out.emplace_back(util::basename(entry.name));
    }
  }
  return out;
}

}  // namespace gauge::android
