// APK assembly and introspection. An APK is a real ZIP archive (built by our
// zipfile library) holding AndroidManifest, classes.dex, assets/, res/ and
// lib/<abi>/*.so entries — the exact surfaces gaugeNN's extraction walks.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "android/dex.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "zipfile/zip.hpp"

namespace gauge::android {

struct Manifest {
  std::string package;
  int version_code = 1;
  int min_sdk = 21;
  std::vector<std::string> permissions;

  std::string serialize() const;
  static util::Result<Manifest> parse(std::string_view text);
};

struct ApkSpec {
  Manifest manifest;
  DexFile dex;
  // Asset path (relative, e.g. "assets/models/face.tflite") -> content.
  std::vector<std::pair<std::string, util::Bytes>> files;
  // Native libraries; stored as lib/arm64-v8a/<name> stub payloads.
  std::vector<std::string> native_libs;
};

// Builds the APK zip bytes.
util::Bytes build_apk(const ApkSpec& spec);

class Apk {
 public:
  // `limits` bounds entry extraction (zip-bomb guard); the defaults suit
  // production crawls, tests tighten them to exercise the drop path.
  static util::Result<Apk> open(util::Bytes bytes,
                                zipfile::ReadLimits limits = {});

  const Manifest& manifest() const { return manifest_; }
  const DexFile& dex() const { return dex_; }
  // All entry names in the archive.
  std::vector<std::string> entry_names() const;
  // Whether an entry exists — a central-directory lookup, no decompression.
  bool contains(std::string_view name) const { return zip_.contains(name); }
  // Entry payload.
  util::Result<util::Bytes> read(std::string_view name) const;
  // Names of bundled native libraries (basenames of lib/<abi>/ entries).
  std::vector<std::string> native_libs() const;
  // Total archive size in bytes (the 100MB Play limit applies to this).
  std::size_t archive_size() const { return archive_size_; }
  // Archive entries hidden because their names escape the archive root
  // (path traversal / absolute paths); see zipfile::safe_entry_name.
  std::size_t rejected_entry_names() const {
    return zip_.rejected_entry_names();
  }

 private:
  Apk() = default;
  zipfile::ZipReader zip_;
  Manifest manifest_;
  DexFile dex_;
  std::size_t archive_size_ = 0;
};

// Google Play's base-apk size cap (bytes); larger payloads must ship via
// expansion files or asset packs.
inline constexpr std::size_t kApkSizeLimit = 100ull * 1024 * 1024;

}  // namespace gauge::android
