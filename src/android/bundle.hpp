// Post-install distribution channels (paper §4.2): OBB expansion files and
// Play Asset Delivery asset packs. Both are ZIP side-containers next to the
// base APK. gaugeNN downloads and sweeps them for models; the paper found
// none being used for model delivery — our store generator reproduces that
// (OBBs/packs carry textures and media, not DNNs), and the §4.2 bench
// asserts it.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "zipfile/zip.hpp"

namespace gauge::android {

struct SideContainer {
  // "main.<version>.<package>.obb" or "<pack>.asset-pack"
  std::string name;
  util::Bytes bytes;  // a ZIP archive
};

// An app's complete deliverables, as served by the store.
struct AppPackage {
  util::Bytes apk;
  std::vector<SideContainer> expansions;   // OBB files
  std::vector<SideContainer> asset_packs;  // Play Asset Delivery
};

util::Bytes build_side_container(
    const std::vector<std::pair<std::string, util::Bytes>>& files);

// Lists entry names across all side containers of a package.
util::Result<std::vector<std::string>> side_container_entries(
    const SideContainer& container);

}  // namespace gauge::android
