// Static detectors over decompiled app code and native libraries:
//  - Cloud ML API usage: smali string matching against known Google
//    (Firebase ML, Cloud APIs) and Amazon (AWS ML) call signatures (§3.2).
//  - On-device ML framework / accelerator usage: dex class prefixes plus
//    bundled native library names, following Xu et al.'s methodology (§3.1
//    "native code detection").
#pragma once

#include <string>
#include <vector>

#include "android/apk.hpp"

namespace gauge::android {

enum class CloudProvider { GoogleFirebase, GoogleCloud, AmazonAws };
const char* cloud_provider_name(CloudProvider provider);

struct CloudApiHit {
  CloudProvider provider;
  std::string matched;  // the smali fragment that matched
};

// Scans the APK's smali for known cloud DNN API calls.
std::vector<CloudApiHit> detect_cloud_apis(const Apk& apk);

// On-device inference stacks detectable from code/libs.
enum class MlStack {
  TfLite,
  TensorFlow,
  Caffe,
  Ncnn,
  Snpe,
  Onnx,
  Mnn,
  NnApi,
  Xnnpack,
  PyTorchMobile,
};
const char* ml_stack_name(MlStack stack);

struct MlStackHit {
  MlStack stack;
  std::string evidence;  // lib name or class prefix that matched
};

std::vector<MlStackHit> detect_ml_stacks(const Apk& apk);

// True when any on-device inference stack is present — the paper's
// "apps including ML libraries in their codebase" criterion, which also
// catches apps whose models are obfuscated or downloaded lazily.
bool uses_ml(const Apk& apk);

}  // namespace gauge::android
