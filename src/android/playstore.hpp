// Synthetic Google Play Store: a deterministic app universe calibrated to
// the paper's dataset (Table 2, Figs. 4/5/15) plus a crawlable top-chart API
// and a lazy app-package materialiser.
//
// The generator builds one *world* containing both snapshots (Feb'20 and
// Apr'21); each snapshot view exposes the apps present at that time. Model
// *instances* carry stable ids across snapshots so the temporal analysis can
// count individual models added/removed per category (Fig. 5).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "android/bundle.hpp"
#include "android/detect.hpp"
#include "formats/registry.hpp"
#include "nn/graph.hpp"

namespace gauge::android {

enum class Snapshot { Feb2020 = 0, Apr2021 = 1 };
const char* snapshot_name(Snapshot snap);

// One *unique* model design in the ecosystem (md5-distinct graph+weights).
struct UniqueModel {
  int id = 0;
  std::string task;        // Table 3 label ("object detection", ...)
  nn::Modality modality = nn::Modality::Image;
  std::string archetype;   // zoo archetype
  double width = 1.0;
  int resolution = 64;
  std::uint64_t seed = 0;
  formats::Framework framework = formats::Framework::TfLite;
  std::string filename;    // name as shipped inside the APK
  bool int8_weights = false;
  bool int8_activations = false;  // carries a Quantize/Dequantize sandwich
  // Transfer-learning lineage: id of the pool model this was fine-tuned
  // from (-1 = trained independently) and how many layers were retrained.
  int finetuned_from = -1;
  int finetuned_layers = 0;
};

// One model *instance*: a unique model shipped inside a specific app.
struct ModelInstance {
  int instance_id = 0;
  int unique_id = 0;
  bool obfuscated = false;   // XOR-packed; fails signature validation
  bool present_2020 = false;
  bool present_2021 = false;
};

struct AppEntry {
  std::string package;
  std::string title;
  std::string category;
  std::int64_t installs = 0;
  double rating = 0.0;
  std::int64_t reviews = 0;
  bool present_2020 = true;
  bool present_2021 = true;
  bool is_ml_2020 = false;       // ships an ML library in the '20 snapshot
  bool is_ml_2021 = false;
  std::vector<int> model_instances;  // indices into PlayStore::instances()
  bool lazy_models = false;      // models fetched outside Play at runtime
  std::vector<CloudProvider> cloud_apis;  // as of Apr'21
  bool cloud_2020 = false;       // already used cloud ML APIs in Feb'20
  bool uses_nnapi = false;
  bool uses_xnnpack = false;
  bool uses_snpe = false;
  std::uint64_t seed = 0;

  bool is_ml(Snapshot snap) const {
    return snap == Snapshot::Feb2020 ? is_ml_2020 : is_ml_2021;
  }
  bool present(Snapshot snap) const {
    return snap == Snapshot::Feb2020 ? present_2020 : present_2021;
  }
};

struct StoreConfig {
  std::uint64_t seed = 20210404;
  // Opt-in: also seed the world with ONNX and MNN models (plus a decoy
  // sklearn pickle per ML app so the pipeline's no-parser path is hit).
  // Off by default so the calibrated paper-mode world stays byte-identical.
  bool extended_frameworks = false;
};

class PlayStore {
 public:
  explicit PlayStore(const StoreConfig& config = {});

  static const std::vector<std::string>& categories();

  // ---- crawl API (what gaugeNN's crawler speaks) ----
  struct ChartRequest {
    std::string category;
    Snapshot snapshot = Snapshot::Apr2021;
    std::string locale = "en_GB";
    std::string device_profile = "SM-G977B";  // S10 5G, as in the paper
    std::size_t offset = 0;
    std::size_t limit = 100;  // page size; the store caps charts at 500
  };
  // Returns one page of the category's top chart, sorted by installs.
  std::vector<const AppEntry*> top_chart(const ChartRequest& request) const;

  // Downloads an app's full package (APK + OBBs + asset packs) as Google
  // Play would serve it for the given snapshot/device profile. Model file
  // contents are identical across device profiles (the paper found no
  // device-specific model distribution, §4.2).
  util::Result<AppPackage> download(const std::string& package,
                                    Snapshot snapshot,
                                    const std::string& device_profile) const;

  const AppEntry* find(const std::string& package) const;

  // ---- world introspection (ground truth for tests/benches) ----
  const std::vector<AppEntry>& apps() const { return apps_; }
  const std::vector<UniqueModel>& unique_models() const { return unique_; }
  const std::vector<ModelInstance>& instances() const { return instances_; }

  // Materialises the graph of a unique model (deterministic per id).
  nn::Graph build_unique_model(int unique_id) const;
  // Serialises a unique model into its on-disk file set (filename -> bytes);
  // caffe/ncnn produce two files, the rest one. Results are memoised per
  // unique id under a mutex, so concurrent downloads (the parallel pipeline
  // fans out at app granularity) are safe; the first serialisation of an id
  // wins and duplicates are discarded (they are byte-identical anyway).
  std::vector<std::pair<std::string, util::Bytes>> serialize_model(
      int unique_id) const;

  // Ground-truth counts, handy for calibration tests.
  std::size_t app_count(Snapshot snap) const;
  std::size_t ml_app_count(Snapshot snap) const;
  std::size_t model_instance_count(Snapshot snap) const;

 private:
  void generate();
  StoreConfig config_;
  std::vector<AppEntry> apps_;
  std::vector<UniqueModel> unique_;
  std::vector<ModelInstance> instances_;
  std::map<std::string, std::size_t> package_index_;
  // Per-category app lists sorted by installs (both snapshots share order).
  std::map<std::string, std::vector<std::size_t>> by_category_;
  mutable std::mutex model_file_cache_mutex_;
  mutable std::map<int, std::vector<std::pair<std::string, util::Bytes>>>
      model_file_cache_;
};

}  // namespace gauge::android
