#include "telemetry/span.hpp"

#include <functional>
#include <thread>
#include <vector>

namespace gauge::telemetry {

namespace {

// Innermost-first stack of live spans on this thread. Span lifetimes are
// scope-bound, so strict LIFO holds by construction.
thread_local std::vector<const Span*> t_span_stack;

std::uint64_t this_thread_hash() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

Span::Span(std::string name, MetricsRegistry* registry)
    : registry_{registry != nullptr ? registry : &current_registry()} {
  record_.name = std::move(name);
  record_.id = registry_->next_span_id();
  if (!t_span_stack.empty()) {
    record_.parent_id = t_span_stack.back()->id();
    record_.depth = t_span_stack.back()->depth() + 1;
  }
  record_.thread_hash = this_thread_hash();
  t_span_stack.push_back(this);
  record_.start_ns = registry_->now_ns();  // last: excludes setup cost
}

Span::~Span() {
  record_.duration_ns = registry_->now_ns() - record_.start_ns;
  t_span_stack.pop_back();
  registry_->record_span(std::move(record_));
}

void Span::annotate(std::string key, std::string value) {
  record_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace gauge::telemetry
