// RAII scoped timers with parent/child nesting. Each thread keeps its own
// span stack: constructing a Span makes it the child of the innermost live
// span on the same thread, destruction pops it and records a SpanRecord
// into the registry. Trace export (telemetry/export.hpp) turns the records
// into Chrome trace_event JSON where nesting renders as stacked slices.
//
//   {
//     telemetry::Span category{"pipeline.category"};
//     category.annotate("category", "finance");
//     {
//       telemetry::Span download{"pipeline.download"};  // child of category
//       ...
//     }
//   }
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace gauge::telemetry {

class Span {
 public:
  // Records into `registry`, defaulting to current_registry() captured at
  // construction (so a span straddling a ScopedRegistry change still lands
  // where it started).
  explicit Span(std::string name, MetricsRegistry* registry = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a key/value pair surfaced in the trace JSON "args" object.
  void annotate(std::string key, std::string value);

  std::uint64_t id() const { return record_.id; }
  std::uint64_t parent_id() const { return record_.parent_id; }
  std::uint32_t depth() const { return record_.depth; }

 private:
  MetricsRegistry* registry_;
  SpanRecord record_;
};

}  // namespace gauge::telemetry
