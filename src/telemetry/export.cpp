#include "telemetry/export.hpp"

#include <algorithm>
#include <map>

#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace gauge::telemetry {

namespace {

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // Integral doubles print without an exponent/decimal tail.
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    return util::format("%lld", static_cast<long long>(value));
  }
  return util::format("%.6g", value);
}

}  // namespace

std::string to_trace_json(const MetricsRegistry& registry) {
  auto spans = registry.spans();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });

  // Renumber thread hashes to small tids in order of first appearance.
  std::map<std::uint64_t, int> tids;
  for (const auto& span : spans) {
    tids.emplace(span.thread_hash, static_cast<int>(tids.size()) + 1);
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) out += ",";
    first = false;
    out += util::format(
        "\n{\"name\":\"%s\",\"cat\":\"gauge\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d",
        escape_json(span.name).c_str(),
        static_cast<double>(span.start_ns) / 1e3,
        static_cast<double>(span.duration_ns) / 1e3,
        tids.at(span.thread_hash));
    out += util::format(",\"args\":{\"span_id\":%llu,\"parent_id\":%llu",
                        static_cast<unsigned long long>(span.id),
                        static_cast<unsigned long long>(span.parent_id));
    for (const auto& [key, value] : span.args) {
      out += util::format(",\"%s\":\"%s\"", escape_json(key).c_str(),
                          escape_json(value).c_str());
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  if (registry.spans_dropped() > 0) {
    out += util::format(
        ",\"metadata\":{\"spans_dropped\":%llu}",
        static_cast<unsigned long long>(registry.spans_dropped()));
  }
  out += "}\n";
  return out;
}

std::string metrics_to_text(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.counters()) {
    out += util::format("counter   %-44s %lld\n", name.c_str(),
                        static_cast<long long>(value));
  }
  for (const auto& [name, value] : registry.gauges()) {
    out += util::format("gauge     %-44s %s\n", name.c_str(),
                        json_number(value).c_str());
  }
  for (const auto& [name, snap] : registry.histograms()) {
    out += util::format(
        "histogram %-44s count=%llu sum=%s min=%s p50=%s p95=%s p99=%s "
        "max=%s\n",
        name.c_str(), static_cast<unsigned long long>(snap.count),
        json_number(snap.sum).c_str(), json_number(snap.min).c_str(),
        json_number(snap.p50).c_str(), json_number(snap.p95).c_str(),
        json_number(snap.p99).c_str(), json_number(snap.max).c_str());
  }
  if (registry.spans_dropped() > 0) {
    out += util::format(
        "counter   %-44s %llu\n", "gauge.telemetry.spans_dropped",
        static_cast<unsigned long long>(registry.spans_dropped()));
  }
  return out;
}

std::string metrics_to_json(const MetricsRegistry& registry) {
  std::string out = "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    out += util::format("%s\n\"%s\":%lld", first ? "" : ",",
                        escape_json(name).c_str(),
                        static_cast<long long>(value));
    first = false;
  }
  out += "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    out += util::format("%s\n\"%s\":%s", first ? "" : ",",
                        escape_json(name).c_str(),
                        json_number(value).c_str());
    first = false;
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.histograms()) {
    out += util::format(
        "%s\n\"%s\":{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,"
        "\"p50\":%s,\"p95\":%s,\"p99\":%s}",
        first ? "" : ",", escape_json(name).c_str(),
        static_cast<unsigned long long>(snap.count),
        json_number(snap.sum).c_str(), json_number(snap.min).c_str(),
        json_number(snap.max).c_str(), json_number(snap.p50).c_str(),
        json_number(snap.p95).c_str(), json_number(snap.p99).c_str());
    first = false;
  }
  out += "\n}\n}\n";
  return out;
}

std::size_t export_to_docstore(const MetricsRegistry& registry,
                               store::DocStore& store) {
  std::size_t inserted = 0;
  for (const auto& [name, value] : registry.counters()) {
    store.insert({{"metric", name},
                  {"kind", "counter"},
                  {"value", static_cast<std::int64_t>(value)}});
    ++inserted;
  }
  for (const auto& [name, value] : registry.gauges()) {
    store.insert({{"metric", name}, {"kind", "gauge"}, {"value", value}});
    ++inserted;
  }
  for (const auto& [name, snap] : registry.histograms()) {
    store.insert({{"metric", name},
                  {"kind", "histogram"},
                  {"count", static_cast<std::int64_t>(snap.count)},
                  {"sum", snap.sum},
                  {"min", snap.min},
                  {"max", snap.max},
                  {"p50", snap.p50},
                  {"p95", snap.p95},
                  {"p99", snap.p99}});
    ++inserted;
  }
  return inserted;
}

util::Status write_telemetry(const MetricsRegistry& registry,
                             const std::string& dir) {
  if (auto status = util::make_directories(dir); !status.ok()) return status;
  if (auto status = util::write_file(dir + "/trace.json",
                                     to_trace_json(registry));
      !status.ok()) {
    return status;
  }
  if (auto status = util::write_file(dir + "/metrics.txt",
                                     metrics_to_text(registry));
      !status.ok()) {
    return status;
  }
  return util::write_file(dir + "/metrics.json", metrics_to_json(registry));
}

}  // namespace gauge::telemetry
