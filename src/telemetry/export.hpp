// Exporters for the telemetry registry:
//  - Chrome trace_event JSON: load in chrome://tracing or https://ui.perfetto.dev
//    to see the span tree as stacked slices per thread.
//  - plain-text and JSON metrics dumps for logs and scripts.
//  - DocStore bridge: one document per metric, so report tooling can query
//    telemetry with the same store::Query machinery it uses for the dataset.
#pragma once

#include <cstddef>
#include <string>

#include "store/docstore.hpp"
#include "telemetry/metrics.hpp"
#include "util/result.hpp"

namespace gauge::telemetry {

// Spans as Chrome trace_event "X" (complete) events; timestamps in
// microseconds since the registry epoch. Thread hashes are renumbered to
// small stable tids so the tracks read well.
std::string to_trace_json(const MetricsRegistry& registry);

// One instrument per line: `<kind> <name> <value...>`, name-sorted.
std::string metrics_to_text(const MetricsRegistry& registry);

// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
// min, max, p50, p95, p99}}}
std::string metrics_to_json(const MetricsRegistry& registry);

// Snapshots every instrument into `store` (one document per metric, fields:
// metric, kind, value / count, sum, min, max, p50, p95, p99). Returns the
// number of documents inserted.
std::size_t export_to_docstore(const MetricsRegistry& registry,
                               store::DocStore& store);

// Writes <dir>/trace.json, <dir>/metrics.txt and <dir>/metrics.json,
// creating `dir` if needed.
util::Status write_telemetry(const MetricsRegistry& registry,
                             const std::string& dir);

}  // namespace gauge::telemetry
