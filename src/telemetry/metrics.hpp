// Self-measurement for the measurement system: a thread-safe metrics
// registry (counters, gauges, fixed-bucket histograms) shared by every
// layer of the pipeline and harness. Instruments are cheap enough for hot
// paths — lock-free atomics after a mutex-guarded first lookup — and the
// registry snapshots cleanly for the exporters in telemetry/export.hpp.
//
// Naming scheme: `gauge.<area>.<name>`, e.g. `gauge.pipeline.cache_hits`,
// `gauge.nn.threadpool.queue_depth`, `gauge.device.latency_ms`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gauge::telemetry {

// Monotonically increasing integer (events, drops, retries).
class Counter {
 public:
  void increment(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Last-write-wins level (queue depth, pool size). `add` is a CAS loop so
// concurrent deltas never lose updates.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;                // bucket upper bounds
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1 (overflow)
  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

// Fixed-bucket histogram: observations land in the first bucket whose upper
// bound is >= value (last bucket is the +inf overflow). Quantiles are
// estimated by linear interpolation inside the owning bucket, clamped to
// the observed min/max so narrow distributions stay tight.
class Histogram {
 public:
  // `bounds` must be sorted ascending; empty selects a 1-2-5 decade ladder
  // from 1e-3 to 1e5 that suits millisecond latencies and byte-ish counts.
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double value);
  HistogramSnapshot snapshot() const;

  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// A finished scoped timer, recorded by telemetry::Span on destruction.
// Timestamps are host-monotonic nanoseconds relative to the registry's
// construction (the trace epoch) — this measures the reproduction itself,
// unlike util::SimClock which measures the simulated devices.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root span
  std::uint32_t depth = 0;      // nesting depth on its thread, root = 0
  std::uint64_t thread_hash = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

// Thread-safe home for all instruments and finished spans. Instrument
// accessors return stable references: the registry owns the instruments and
// never moves them, so callers may cache `Counter&` across calls.
class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `bounds` only applies on first creation of the named histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  // Span bookkeeping (used by telemetry::Span).
  std::uint64_t next_span_id() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t now_ns() const;  // nanoseconds since the registry epoch
  void record_span(SpanRecord record);

  // Snapshot accessors: name-sorted copies taken under the registry lock.
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;
  std::vector<SpanRecord> spans() const;
  std::uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }

  // Forgets all instruments and spans (test isolation between cases).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<SpanRecord> spans_;
  std::atomic<std::uint64_t> next_span_id_{1};
  std::atomic<std::uint64_t> spans_dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
};

// Process-wide default registry: what instrumented library code records
// into unless a ScopedRegistry override is active.
MetricsRegistry& default_registry();

// The registry instrumented code should use right now (override or default).
MetricsRegistry& current_registry();

// RAII override of current_registry() — test isolation without threading a
// registry through every call site. The override is process-global (worker
// threads spawned inside the scope see it too); scopes nest LIFO and are
// not meant to be opened from concurrent threads.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry& registry);
  ~ScopedRegistry();

  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace gauge::telemetry
