#include "telemetry/metrics.hpp"

#include <algorithm>
#include <limits>

namespace gauge::telemetry {

namespace {

// Spans are bounded so hot loops (benchmarks re-running an instrumented
// path millions of times) cannot grow the registry without limit; drops are
// counted and surfaced by the exporters.
constexpr std::size_t kMaxSpans = 1 << 18;  // 262144

void atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_{bounds.empty() ? default_bounds() : std::move(bounds)},
      min_{std::numeric_limits<double>::infinity()},
      max_{-std::numeric_limits<double>::infinity()} {
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.resize(bounds_.size() + 1);
  // Concurrent observes may land between these loads; each field is
  // individually consistent, which is all the exporters need.
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = 0;
  for (const auto c : snap.bucket_counts) snap.count += c;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);

  const auto quantile = [&](double q) {
    const double target = q * static_cast<double>(snap.count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      const std::uint64_t in_bucket = snap.bucket_counts[i];
      if (in_bucket == 0) continue;
      if (static_cast<double>(cumulative + in_bucket) >= target) {
        const double lo = i == 0 ? snap.min : snap.bounds[i - 1];
        const double hi = i < snap.bounds.size() ? snap.bounds[i] : snap.max;
        const double frac =
            (target - static_cast<double>(cumulative)) /
            static_cast<double>(in_bucket);
        const double value = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        return std::clamp(value, snap.min, snap.max);
      }
      cumulative += in_bucket;
    }
    return snap.max;
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

MetricsRegistry::MetricsRegistry()
    : epoch_{std::chrono::steady_clock::now()} {}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string{name}, std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock{mutex_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string{name},
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void MetricsRegistry::record_span(SpanRecord record) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (spans_.size() >= kMaxSpans) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(record));
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::counters()
    const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histograms() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->snapshot());
  }
  return out;
}

std::vector<SpanRecord> MetricsRegistry::spans() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return spans_;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock{mutex_};
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  spans_dropped_.store(0, std::memory_order_relaxed);
  next_span_id_.store(1, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

namespace {

std::atomic<MetricsRegistry*> g_override{nullptr};

}  // namespace

MetricsRegistry& default_registry() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry{};
  return *kRegistry;  // leaked: outlives static-destruction-order games
}

MetricsRegistry& current_registry() {
  MetricsRegistry* override_registry =
      g_override.load(std::memory_order_acquire);
  return override_registry != nullptr ? *override_registry
                                      : default_registry();
}

ScopedRegistry::ScopedRegistry(MetricsRegistry& registry)
    : previous_{g_override.exchange(&registry, std::memory_order_acq_rel)} {}

ScopedRegistry::~ScopedRegistry() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace gauge::telemetry
