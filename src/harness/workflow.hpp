// The master-side benchmark workflow of Fig. 3:
//   1. push dependencies & model over adb, assert device state,
//   2. cut USB data+power through the hub,
//   3. the on-device daemon runs warm-ups then measured inferences,
//   4. the Monsoon records the whole window,
//   5. the agent raises WiFi and sends "DONE <job>" over TCP (a real
//      loopback socket here),
//   6. the master restores USB, pulls results, cleans up, next job.
//
// Built for flaky field conditions (§3.3): pushes and state asserts run
// under util::RetryPolicy, the completion wait is bounded by a deadline so a
// dead daemon can never hang the master, HubGuard restores the hub's
// data+power channels on every exit path, and batch runners quarantine
// failed jobs (with a bounded requeue for transient faults) instead of
// aborting the device's whole queue. See DESIGN.md "Harness fault model".
#pragma once

#include <string>
#include <vector>

#include "device/monsoon.hpp"
#include "harness/adb.hpp"
#include "harness/agent.hpp"
#include "harness/usbhub.hpp"
#include "util/result.hpp"
#include "util/retry.hpp"

namespace gauge::harness {

struct WorkflowResult {
  JobResult job;
  // Monsoon-side measurements over the run window.
  double monsoon_energy_j = 0.0;
  double monsoon_mean_power_w = 0.0;
  // USB-channel current integrated over the same window; the whole point of
  // the programmable hub is that this is ~zero (no charging current in the
  // measurement).
  double usb_energy_j = 0.0;
  // Energy attributable to one inference after subtracting the idle/screen
  // baseline, derived purely from the power trace.
  double measured_energy_per_inference_j = 0.0;
  std::string done_message;  // the TCP completion line
};

// Fault-tolerance knobs for one master. Retry backoffs advance the agent's
// SimClock (never the wall clock), so fault-free runs stay byte-identical
// and retry-heavy runs stay fast and deterministic.
struct HarnessOptions {
  // Wall-clock budget for the daemon to connect and deliver its completion
  // line once USB is cut; <= 0 disables the deadline (pre-recovery
  // behaviour: block forever).
  double job_deadline_s = 10.0;
  // adb pushes and device-state asserts over flaky USB.
  util::RetryPolicy push_retry{};
  // Hub reconnects (power-cycled hubs come back after a beat in the field).
  util::RetryPolicy hub_retry{};
  // Extra attempts a transiently-failed job may get before quarantine.
  int max_requeues = 1;
};

// Per-job record from the fault-tolerant batch runners: either a
// WorkflowResult or the failure reason, plus what the harness did about it.
struct JobOutcome {
  std::string job_id;
  int attempts = 0;  // completed attempts (1 = succeeded/quarantined first try)
  util::Result<WorkflowResult> result =
      util::Result<WorkflowResult>::failure("not run");
  std::string failure_stage;    // push | assert | listen | deadline |
                                // completion | reconnect | cleanup; "" if ok
  std::string recovery_action;  // e.g. "requeued after push failure; requeue
                                // succeeded"; "" if clean first try
  bool ok() const { return result.ok(); }
};

// RAII guard for the hub cut of workflow step 2: construction cuts the
// port's data+power, destruction (or an explicit restore()) brings both back
// via the retry policy — guaranteed on every exit path of the run block,
// so a mid-job failure can never leave the port disconnected and poison
// later jobs. Also captures whether the power rail was actually up during
// the run (it must not be; see WorkflowResult::usb_energy_j).
class HubGuard {
 public:
  HubGuard(UsbHub& hub, std::size_t port, const util::RetryPolicy& retry,
           util::RetryPolicy::SleepFn sleep = nullptr);
  ~HubGuard();
  HubGuard(const HubGuard&) = delete;
  HubGuard& operator=(const HubGuard&) = delete;

  // Restores data+power (idempotent). Fails only if the hub refuses every
  // reconnect attempt; the destructor will then try once more.
  util::Status restore();
  // True if the power rail was observed up at any point between the cut and
  // the restore — i.e. charging current polluted the measurement window.
  bool usb_powered_during_run() const { return powered_during_run_; }

 private:
  UsbHub* hub_;
  std::size_t port_;
  util::RetryPolicy retry_;
  util::RetryPolicy::SleepFn sleep_;
  bool restored_ = false;
  bool powered_during_run_ = false;
};

class BenchmarkMaster {
 public:
  BenchmarkMaster(UsbHub& hub, std::size_t port, DeviceAgent& agent,
                  HarnessOptions options = {})
      : hub_{&hub},
        port_{port},
        agent_{&agent},
        adb_{hub, port, agent},
        options_{options} {}

  // Runs one job end to end (single attempt, no requeue). Thread-safe
  // against nothing; one job at a time per master, as in the paper's
  // per-device serial queue. Never blocks past the configured deadline.
  util::Result<WorkflowResult> run_job(const BenchmarkJob& job);

  // Fault-tolerant batch: every job gets a JobOutcome (in input order);
  // transient failures are requeued to the back of the queue up to
  // options.max_requeues extra attempts, with hub-state recovery attempted
  // between attempts; nothing aborts the batch.
  std::vector<JobOutcome> run_jobs_detailed(
      const std::vector<BenchmarkJob>& jobs);

  // Legacy batch view over run_jobs_detailed: all results, or the first
  // failed job's reason.
  util::Result<std::vector<WorkflowResult>> run_jobs(
      const std::vector<BenchmarkJob>& jobs);

 private:
  // What a failed attempt tells the quarantine logic.
  struct AttemptTrace {
    std::string stage;
    bool transient = false;
  };

  util::Result<WorkflowResult> run_job_attempt(const BenchmarkJob& job,
                                               AttemptTrace& trace);
  // Hub-state recovery between attempts: reconnects the port (with retries)
  // when adb is down. True if the port is usable afterwards.
  bool recover_port();

  UsbHub* hub_;
  std::size_t port_;
  DeviceAgent* agent_;
  AdbConnection adb_;
  HarnessOptions options_;
};

// Fleet orchestration (paper Fig. 2: one server, several devices on the
// hub): runs each device's job queue on its own thread, one master per
// port. Results are returned per device, in job order: `outcomes` always
// covers every job (failed ones carry reason + recovery action); `results`
// is the legacy all-or-first-failure view.
struct FleetDevice {
  DeviceAgent* agent = nullptr;
  std::vector<BenchmarkJob> jobs;
};

struct FleetResult {
  std::string device;
  std::vector<JobOutcome> outcomes;
  util::Result<std::vector<WorkflowResult>> results =
      util::Result<std::vector<WorkflowResult>>::failure("not run");
};

std::vector<FleetResult> run_fleet(UsbHub& hub, std::vector<FleetDevice> fleet,
                                   HarnessOptions options = {});

}  // namespace gauge::harness
