// The master-side benchmark workflow of Fig. 3:
//   1. push dependencies & model over adb, assert device state,
//   2. cut USB data+power through the hub,
//   3. the on-device daemon runs warm-ups then measured inferences,
//   4. the Monsoon records the whole window,
//   5. the agent raises WiFi and sends "DONE <job>" over TCP (a real
//      loopback socket here),
//   6. the master restores USB, pulls results, cleans up, next job.
#pragma once

#include <vector>

#include "device/monsoon.hpp"
#include "harness/adb.hpp"
#include "harness/agent.hpp"
#include "harness/usbhub.hpp"
#include "util/result.hpp"

namespace gauge::harness {

struct WorkflowResult {
  JobResult job;
  // Monsoon-side measurements over the run window.
  double monsoon_energy_j = 0.0;
  double monsoon_mean_power_w = 0.0;
  // USB-channel current integrated over the same window; the whole point of
  // the programmable hub is that this is ~zero (no charging current in the
  // measurement).
  double usb_energy_j = 0.0;
  // Energy attributable to one inference after subtracting the idle/screen
  // baseline, derived purely from the power trace.
  double measured_energy_per_inference_j = 0.0;
  std::string done_message;  // the TCP completion line
};

class BenchmarkMaster {
 public:
  BenchmarkMaster(UsbHub& hub, std::size_t port, DeviceAgent& agent)
      : hub_{&hub}, port_{port}, agent_{&agent}, adb_{hub, port, agent} {}

  // Runs one job end to end. Thread-safe against nothing; one job at a
  // time per master, as in the paper's per-device serial queue.
  util::Result<WorkflowResult> run_job(const BenchmarkJob& job);

  // Runs a batch of jobs back to back (cleanup between jobs).
  util::Result<std::vector<WorkflowResult>> run_jobs(
      const std::vector<BenchmarkJob>& jobs);

 private:
  UsbHub* hub_;
  std::size_t port_;
  DeviceAgent* agent_;
  AdbConnection adb_;
};

// Fleet orchestration (paper Fig. 2: one server, several devices on the
// hub): runs each device's job queue on its own thread, one master per
// port. Results are returned per device, in job order. Any failed job
// aborts that device's queue; other devices keep running.
struct FleetDevice {
  DeviceAgent* agent = nullptr;
  std::vector<BenchmarkJob> jobs;
};

struct FleetResult {
  std::string device;
  util::Result<std::vector<WorkflowResult>> results =
      util::Result<std::vector<WorkflowResult>>::failure("not run");
};

std::vector<FleetResult> run_fleet(UsbHub& hub,
                                   std::vector<FleetDevice> fleet);

}  // namespace gauge::harness
