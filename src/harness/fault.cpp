#include "harness/fault.hpp"

#include "util/strings.hpp"

namespace gauge::harness {

util::Result<FaultPlan> parse_fault_plan(const std::string& spec) {
  using R = util::Result<FaultPlan>;
  FaultPlan plan;
  for (const auto& raw : util::split(spec, ';')) {
    const std::string directive{util::trim(raw)};
    if (directive.empty()) continue;
    const auto eq = directive.find('=');
    const std::string key = directive.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : directive.substr(eq + 1);
    if (key == "drop-push") {
      for (const auto& token : util::split(value, ',')) {
        const auto index = util::parse_int(token);
        if (!index || *index < 1) {
          return R::failure("fault-plan: bad push index '" + token + "'");
        }
        plan.drop_pushes.push_back(static_cast<int>(*index));
      }
    } else if (key == "kill-daemon") {
      if (value.empty()) {
        plan.kill_daemon_before_connect = true;
      } else {
        plan.kill_daemon_for_jobs.insert(value);
      }
    } else if (key == "delay-done") {
      const auto seconds = util::parse_double(value);
      if (!seconds || *seconds < 0.0) {
        return R::failure("fault-plan: bad delay-done '" + value + "'");
      }
      plan.delay_done_message_s = *seconds;
    } else if (key == "refuse-reconnect") {
      const auto count = util::parse_int(value);
      if (!count || *count < 0) {
        return R::failure("fault-plan: bad refuse-reconnect '" + value + "'");
      }
      plan.refuse_reconnects = static_cast<int>(*count);
    } else if (key == "keep-power") {
      plan.keep_power_on = true;
    } else {
      return R::failure("fault-plan: unknown directive '" + key + "'");
    }
  }
  return plan;
}

}  // namespace gauge::harness
