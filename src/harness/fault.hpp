// Deterministic fault injection for the benchmark harness (paper §3.3 runs
// in flaky field conditions: adb over USB, power-cut hubs, netcat completion
// messages). A FaultPlan describes which of those field failures to
// reproduce; the relevant slices are injected into UsbHub (reconnect/power
// faults) and DeviceAgent (push and daemon faults), which the workflow and
// AdbConnection consult. Everything is counter-based and seedless so a given
// plan always fails the same calls — the recovery paths are testable without
// flaky hardware.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace gauge::harness {

struct FaultPlan {
  // AdbConnection: 1-based indices of adb push *calls* (each retry is its
  // own call) that fail with a transient i/o error.
  std::vector<int> drop_pushes;
  // DeviceAgent: the daemon runs the benchmark but dies before opening the
  // completion TCP connection — the master only notices via its deadline.
  bool kill_daemon_before_connect = false;
  // Same, but only for specific job ids (per-job flakiness on one device).
  std::set<std::string> kill_daemon_for_jobs;
  // DeviceAgent: delay the completion message by this many wall-clock
  // seconds (used to push it past the master's deadline).
  double delay_done_message_s = 0.0;
  // UsbHub: refuse the next K reconnect attempts (channels stay down).
  int refuse_reconnects = 0;
  // UsbHub: leave the power rail up when the workflow cuts the port, so
  // charging current pollutes the measurement window.
  bool keep_power_on = false;

  bool daemon_dies_for(const std::string& job_id) const {
    return kill_daemon_before_connect ||
           kill_daemon_for_jobs.count(job_id) > 0;
  }
};

// Parses the CLI `--fault-plan` grammar: semicolon-separated directives
//   drop-push=2,3        fail the 2nd and 3rd adb push calls
//   kill-daemon          daemon dies before the TCP connect (all jobs)
//   kill-daemon=JOB      same, only for job id JOB (repeatable)
//   delay-done=0.2       delay the completion message by 0.2 s
//   refuse-reconnect=2   hub refuses the next 2 reconnects
//   keep-power           hub leaves the power rail up during the run
util::Result<FaultPlan> parse_fault_plan(const std::string& spec);

}  // namespace gauge::harness
