// adb-like control channel between the master and a DeviceAgent. All calls
// require the hub's data channel for the agent's port to be up — exactly
// the constraint that forces the Fig. 3 power-cut workflow to use an
// unattended on-device daemon plus a TCP completion message.
#pragma once

#include <string>

#include "harness/agent.hpp"
#include "harness/usbhub.hpp"

namespace gauge::harness {

class AdbConnection {
 public:
  AdbConnection(UsbHub& hub, std::size_t port, DeviceAgent& agent)
      : hub_{&hub}, port_{port}, agent_{&agent} {}

  bool connected() const { return hub_->data_on(port_); }

  util::Status push(const std::string& remote_path, util::Bytes data);
  util::Result<util::Bytes> pull(const std::string& remote_path);
  util::Status remove_all();

  // Device-state assertions performed before each job (§3.3): WiFi and
  // sensors off, screen on with the black-background app, max timeout.
  util::Status assert_benchmark_state();

 private:
  util::Status require_connection() const;

  UsbHub* hub_;
  std::size_t port_;
  DeviceAgent* agent_;
};

}  // namespace gauge::harness
