#include "harness/adb.hpp"

namespace gauge::harness {

util::Status AdbConnection::require_connection() const {
  if (!connected()) {
    return util::Status::failure("adb: device offline (USB data channel down)");
  }
  return {};
}

util::Status AdbConnection::push(const std::string& remote_path,
                                 util::Bytes data) {
  if (auto status = require_connection(); !status.ok()) return status;
  if (agent_->consume_push_fault()) {
    return util::Status::failure("adb: push i/o error (injected fault): " +
                                 remote_path);
  }
  agent_->write_file(remote_path, std::move(data));
  return {};
}

util::Result<util::Bytes> AdbConnection::pull(const std::string& remote_path) {
  if (auto status = require_connection(); !status.ok()) {
    return util::Result<util::Bytes>::failure(status.error());
  }
  return agent_->read_file(remote_path);
}

util::Status AdbConnection::remove_all() {
  if (auto status = require_connection(); !status.ok()) return status;
  agent_->remove_all_files();
  return {};
}

util::Status AdbConnection::assert_benchmark_state() {
  if (auto status = require_connection(); !status.ok()) return status;
  DeviceState& state = agent_->state();
  state.wifi_on = false;
  state.sensors_on = false;
  state.screen_on = true;       // keep Doze away (§3.3)
  state.screen_black = true;    // black-background app
  state.screen_timeout_s = 1800;
  return {};
}

}  // namespace gauge::harness
