// Programmable USB hub (YKUSH-style, paper §3.3): per-port data and power
// channels that the master toggles so charging current does not pollute the
// Monsoon energy measurements. Channel state is atomic: the fleet
// orchestrator drives one master thread per port concurrently. A FaultPlan
// slice lets tests make the hub refuse reconnects or leave the power rail
// up, reproducing the field failures the recovery layer exists for.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>

#include "harness/fault.hpp"

namespace gauge::harness {

class UsbHub {
 public:
  explicit UsbHub(std::size_t ports = 3)
      : ports_{ports},
        data_on_{std::make_unique<std::atomic<bool>[]>(ports)},
        power_on_{std::make_unique<std::atomic<bool>[]>(ports)} {
    for (std::size_t p = 0; p < ports_; ++p) {
      data_on_[p].store(true);
      power_on_[p].store(true);
    }
  }

  std::size_t ports() const { return ports_; }

  bool data_on(std::size_t port) const { return data_on_[check(port)].load(); }
  bool power_on(std::size_t port) const { return power_on_[check(port)].load(); }

  void set_data(std::size_t port, bool on) { data_on_[check(port)].store(on); }
  void set_power(std::size_t port, bool on) { power_on_[check(port)].store(on); }

  // Convenience used by the workflow: cut everything on a port. A
  // keep_power_on fault leaves the rail up (the failure mode the Fig. 3
  // power-cut exists to avoid).
  void disconnect(std::size_t port) {
    set_data(port, false);
    if (!keep_power_on_.load(std::memory_order_relaxed)) {
      set_power(port, false);
    }
  }
  // Restores both channels. Returns false (channels untouched) while a
  // refuse_reconnects fault has refusals left.
  bool reconnect(std::size_t port) {
    int left = refuse_reconnects_.load(std::memory_order_relaxed);
    while (left > 0) {
      if (refuse_reconnects_.compare_exchange_weak(left, left - 1)) {
        return false;
      }
    }
    set_data(port, true);
    set_power(port, true);
    return true;
  }

  // Installs the hub-relevant slice of `plan` (refuse_reconnects,
  // keep_power_on); the rest of the plan belongs to DeviceAgent.
  void inject_faults(const FaultPlan& plan) {
    refuse_reconnects_.store(plan.refuse_reconnects);
    keep_power_on_.store(plan.keep_power_on);
  }

 private:
  std::size_t check(std::size_t port) const {
    assert(port < ports_);
    return port;
  }

  std::size_t ports_;
  std::unique_ptr<std::atomic<bool>[]> data_on_;
  std::unique_ptr<std::atomic<bool>[]> power_on_;
  std::atomic<int> refuse_reconnects_{0};
  std::atomic<bool> keep_power_on_{false};
};

}  // namespace gauge::harness
