// Programmable USB hub (YKUSH-style, paper §3.3): per-port data and power
// channels that the master toggles so charging current does not pollute the
// Monsoon energy measurements. Channel state is atomic: the fleet
// orchestrator drives one master thread per port concurrently.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>

namespace gauge::harness {

class UsbHub {
 public:
  explicit UsbHub(std::size_t ports = 3)
      : ports_{ports},
        data_on_{std::make_unique<std::atomic<bool>[]>(ports)},
        power_on_{std::make_unique<std::atomic<bool>[]>(ports)} {
    for (std::size_t p = 0; p < ports_; ++p) {
      data_on_[p].store(true);
      power_on_[p].store(true);
    }
  }

  std::size_t ports() const { return ports_; }

  bool data_on(std::size_t port) const { return data_on_[check(port)].load(); }
  bool power_on(std::size_t port) const { return power_on_[check(port)].load(); }

  void set_data(std::size_t port, bool on) { data_on_[check(port)].store(on); }
  void set_power(std::size_t port, bool on) { power_on_[check(port)].store(on); }

  // Convenience used by the workflow: cut everything on a port.
  void disconnect(std::size_t port) {
    set_data(port, false);
    set_power(port, false);
  }
  void reconnect(std::size_t port) {
    set_data(port, true);
    set_power(port, true);
  }

 private:
  std::size_t check(std::size_t port) const {
    assert(port < ports_);
    return port;
  }

  std::size_t ports_;
  std::unique_ptr<std::atomic<bool>[]> data_on_;
  std::unique_ptr<std::atomic<bool>[]> power_on_;
};

}  // namespace gauge::harness
