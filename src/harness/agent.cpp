#include "harness/agent.hpp"

#include <algorithm>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace gauge::harness {

DeviceAgent::DeviceAgent(device::Device device, std::uint64_t seed)
    : device_{std::move(device)}, seed_{seed} {}

void DeviceAgent::write_file(const std::string& path, util::Bytes data) {
  files_[path] = std::move(data);
}

util::Result<util::Bytes> DeviceAgent::read_file(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return util::Result<util::Bytes>::failure("no such file: " + path);
  }
  return it->second;
}

bool DeviceAgent::has_file(const std::string& path) const {
  return files_.count(path) > 0;
}

std::vector<std::string> DeviceAgent::list_files() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

void DeviceAgent::remove_all_files() { files_.clear(); }

void DeviceAgent::inject_faults(FaultPlan plan) {
  fault_plan_ = std::move(plan);
  push_calls_ = 0;
}

bool DeviceAgent::consume_push_fault() {
  const int call = ++push_calls_;
  const auto& drops = fault_plan_.drop_pushes;
  return std::find(drops.begin(), drops.end(), call) != drops.end();
}

JobResult DeviceAgent::run_benchmark_daemon(const BenchmarkJob& job) {
  JobResult result;
  result.job_id = job.job_id;
  power_phases_.clear();

  const double screen_w = state_.screen_on ? device_.screen_watts : 0.0;
  const double idle_w = device_.soc.idle_watts + screen_w;

  // Short idle lead-in: the daemon polls until USB power is off.
  power_phases_.push_back({0.2, idle_w});
  clock_.advance_seconds(0.2);

  double sustained = 0.0;
  // Warm-up inferences remove cold-cache outliers (not recorded).
  for (int i = 0; i < job.warmup_iterations; ++i) {
    device::RunConfig config = job.config;
    config.sustained_seconds = sustained;
    const auto r = device::simulate_inference(device_, job.trace, config,
                                              job.model_key);
    // Warm-up (cold caches): first iterations run slower.
    const double cold_factor = 1.0 + 0.5 / (1.0 + i);
    const double t = r.latency_s * cold_factor;
    power_phases_.push_back({t, r.avg_power_w});
    clock_.advance_seconds(t);
    sustained += t;
  }

  double elapsed = 0.0;
  for (const auto& phase : power_phases_) elapsed += phase.duration_s;
  result.measure_window_start_s = elapsed;

  double energy_sum = 0.0;
  double power_time = 0.0;
  double power_weighted = 0.0;
  for (int i = 0; i < job.iterations; ++i) {
    device::RunConfig config = job.config;
    config.sustained_seconds = sustained;
    auto r = device::simulate_inference(device_, job.trace, config,
                                        job.model_key);
    // Small per-iteration jitter (scheduler noise), deterministic.
    util::Rng jitter{seed_ ^ (static_cast<std::uint64_t>(i) * 0x9e37u) ^
                     util::fnv1a64(job.job_id)};
    const double t = r.latency_s * (1.0 + 0.02 * jitter.normal());
    result.latencies_s.push_back(t);
    result.flops = r.flops;
    energy_sum += r.soc_energy_j * (t / r.latency_s);
    power_weighted += r.avg_power_w * t;
    power_time += t;
    power_phases_.push_back({t, r.avg_power_w});
    clock_.advance_seconds(t);
    sustained += t;
    if (job.sleep_between_s > 0.0) {
      power_phases_.push_back({job.sleep_between_s, idle_w});
      clock_.advance_seconds(job.sleep_between_s);
      // Sleeping lets the SoC cool a little.
      sustained = std::max(0.0, sustained - job.sleep_between_s * 0.5);
    }
  }

  // Benchmark done: WiFi back on to reach the master.
  state_.wifi_on = true;

  result.energy_per_inference_j =
      job.iterations > 0 ? energy_sum / job.iterations : 0.0;
  result.avg_power_w = power_time > 0.0 ? power_weighted / power_time : 0.0;
  double total = 0.0;
  for (const auto& phase : power_phases_) total += phase.duration_s;
  result.total_duration_s = total;
  result.measure_window_end_s = total;
  return result;
}

}  // namespace gauge::harness
