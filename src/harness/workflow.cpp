#include "harness/workflow.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "net/socket.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace gauge::harness {

namespace {

// Retry backoffs advance the device's simulated clock instead of sleeping:
// deterministic, instant, and invisible to the measurement window (the
// daemon clears its power trace per run).
util::RetryPolicy::SleepFn sim_sleep(DeviceAgent& agent) {
  return [&agent](double seconds) { agent.clock().advance_seconds(seconds); };
}

// Per-job fork of a policy so two jobs never share a jitter stream.
util::RetryPolicy for_job(util::RetryPolicy policy, const std::string& id) {
  policy.seed ^= util::fnv1a64(id);
  return policy;
}

}  // namespace

HubGuard::HubGuard(UsbHub& hub, std::size_t port,
                   const util::RetryPolicy& retry,
                   util::RetryPolicy::SleepFn sleep)
    : hub_{&hub}, port_{port}, retry_{retry}, sleep_{std::move(sleep)} {
  hub_->disconnect(port_);
  // Sample right after the cut: with a healthy hub the rail is now down; a
  // keep_power_on fault (or wiring mistake) shows up here, not after the
  // restore accidentally overwrote the evidence.
  powered_during_run_ = hub_->power_on(port_);
}

HubGuard::~HubGuard() {
  if (!restored_) (void)restore();
}

util::Status HubGuard::restore() {
  if (restored_) return {};
  // Last look at the run-window power state before we put the rail back up.
  powered_during_run_ = powered_during_run_ || hub_->power_on(port_);
  auto& metrics = telemetry::current_registry();
  auto status = retry_.run(
      [&] {
        return hub_->reconnect(port_)
                   ? util::Status{}
                   : util::Status::failure("hub refused reconnect on port " +
                                           std::to_string(port_));
      },
      sleep_,
      [&](const util::RetryPolicy::Attempt&) {
        metrics.counter("gauge.harness.hub_reconnect_retries").increment();
      });
  if (status.ok()) restored_ = true;
  return status;
}

util::Result<WorkflowResult> BenchmarkMaster::run_job(const BenchmarkJob& job) {
  AttemptTrace trace;
  return run_job_attempt(job, trace);
}

util::Result<WorkflowResult> BenchmarkMaster::run_job_attempt(
    const BenchmarkJob& job, AttemptTrace& trace) {
  using R = util::Result<WorkflowResult>;

  auto& metrics = telemetry::current_registry();
  telemetry::Span job_span{"harness.job"};
  job_span.annotate("job", job.job_id);
  const auto fail = [&](const char* stage, bool transient, std::string error) {
    metrics.counter("gauge.harness.jobs_failed").increment();
    trace.stage = stage;
    trace.transient = transient;
    job_span.annotate("stage", stage);
    job_span.annotate("error", error);
    return R::failure(std::move(error));
  };

  const auto retry_sleep = sim_sleep(*agent_);
  const auto push_policy = for_job(options_.push_retry, job.job_id);
  const auto on_push_retry = [&](const util::RetryPolicy::Attempt& attempt) {
    metrics.counter("gauge.harness.push_retries").increment();
    metrics.histogram("gauge.harness.push_backoff_s").observe(attempt.backoff_s);
  };

  // 1. Push dependencies and assert the device state over adb.
  {
    telemetry::Span span{"harness.push"};
    const auto push = [&](const std::string& path, util::Bytes data) {
      return push_policy.run([&] { return adb_.push(path, data); }, retry_sleep,
                             on_push_retry);
    };
    if (auto status = push("/data/local/tmp/bench_runner",
                           util::to_bytes("#!aarch64-daemon"));
        !status.ok()) {
      metrics.counter("gauge.harness.push_failed").increment();
      return fail("push", true, status.error());
    }
    if (auto status = push("/data/local/tmp/" + job.job_id + ".model",
                           util::to_bytes(job.model_key));
        !status.ok()) {
      metrics.counter("gauge.harness.push_failed").increment();
      return fail("push", true, status.error());
    }
  }
  {
    telemetry::Span span{"harness.assert_state"};
    auto status = push_policy.run(
        [&] { return adb_.assert_benchmark_state(); }, retry_sleep,
        [&](const util::RetryPolicy::Attempt&) {
          metrics.counter("gauge.harness.assert_retries").increment();
        });
    if (!status.ok()) return fail("assert", true, status.error());
  }

  // Master listens for the completion message before cutting the channel.
  auto listener = net::TcpListener::bind(0);
  if (!listener.ok()) return fail("listen", true, listener.error());
  const std::uint16_t done_port = listener.value().port();

  JobResult job_result;
  std::string done_line;
  bool usb_powered_during_run = false;
  {
    telemetry::Span span{"harness.run"};

    // 2. Cut USB data + power: measurements must not see charging current.
    // The guard owns both channels until restore() — every exit path below
    // (deadline hit, bad completion line, early return) puts the port back.
    HubGuard guard{*hub_, port_, for_job(options_.hub_retry, job.job_id),
                   retry_sleep};

    // 3-5. The device-side daemon runs detached (its own thread here; its
    // own process on the phone) and reports over TCP when done — unless the
    // fault plan kills it first or delays its message past the deadline.
    std::thread daemon{[&] {
      job_result = agent_->run_benchmark_daemon(job);
      const FaultPlan& faults = agent_->fault_plan();
      if (faults.daemon_dies_for(job.job_id)) return;
      if (faults.delay_done_message_s > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(faults.delay_done_message_s));
      }
      // WiFi is back on after the run; send the netcat-style done message.
      auto stream = net::TcpStream::connect("127.0.0.1", done_port);
      if (stream.ok()) {
        (void)stream.value().send_line("DONE " + job.job_id);
      }
    }};

    const bool bounded = options_.job_deadline_s > 0.0;
    const auto deadline = std::chrono::milliseconds{
        static_cast<long long>(options_.job_deadline_s * 1000.0)};
    const auto wait_start = std::chrono::steady_clock::now();

    auto connection = bounded ? listener.value().accept_for(deadline)
                              : listener.value().accept();
    if (!connection.ok()) {
      daemon.join();
      const bool timed_out = net::is_timeout(connection.error());
      if (timed_out) metrics.counter("gauge.harness.deadline_hits").increment();
      return fail(timed_out ? "deadline" : "accept", true, connection.error());
    }
    // The deadline spans accept + recv: give recv whatever budget is left.
    auto line = [&] {
      if (!bounded) return connection.value().recv_line();
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - wait_start);
      const auto remaining =
          std::max(std::chrono::milliseconds{1}, deadline - elapsed);
      return connection.value().recv_line_for(remaining);
    }();
    daemon.join();
    if (!line.ok()) {
      const bool timed_out = net::is_timeout(line.error());
      if (timed_out) metrics.counter("gauge.harness.deadline_hits").increment();
      return fail(timed_out ? "deadline" : "completion", true, line.error());
    }
    if (line.value() != "DONE " + job.job_id) {
      return fail("completion", false,
                  "unexpected completion message: " + line.value());
    }
    done_line = std::move(line).take();

    // 6. Restore USB explicitly (the guard also covers the failure returns
    // above) and capture whether the rail was up during the run.
    if (auto status = guard.restore(); !status.ok()) {
      return fail("reconnect", true, status.error());
    }
    usb_powered_during_run = guard.usb_powered_during_run();
    if (!adb_.connected()) {
      return fail("reconnect", true, "device did not come back");
    }
  }

  telemetry::Span collect_span{"harness.collect"};
  WorkflowResult result;
  result.job = std::move(job_result);
  result.done_message = std::move(done_line);

  // Monsoon measurement over the recorded phases.
  device::Monsoon monsoon{5000.0, 4.2,
                          util::fnv1a64(job.job_id) | 1};
  const auto samples = monsoon.record(agent_->last_power_phases());
  result.monsoon_energy_j = device::Monsoon::integrate_energy_j(samples);
  result.monsoon_mean_power_w = device::Monsoon::mean_power_w(samples);

  // USB channel over the same window: the hub had power cut for the whole
  // run, so the charging rail contributes nothing. (Were the hub left on,
  // this would record ~2.5 W of charge current and invalidate the
  // measurement — the reason the Fig. 3 workflow cuts power at all.)
  const double usb_watts = usb_powered_during_run ? 2.5 : 0.0;
  const auto usb_samples =
      monsoon.record({{result.job.total_duration_s, usb_watts}});
  result.usb_energy_j = device::Monsoon::integrate_energy_j(usb_samples);

  // Integrate only the measured window (warm-ups excluded) and subtract
  // the idle+screen baseline measured separately, as the paper does.
  std::vector<device::PowerSample> window;
  for (const auto& sample : samples) {
    if (sample.t_s >= result.job.measure_window_start_s &&
        sample.t_s <= result.job.measure_window_end_s) {
      window.push_back(sample);
    }
  }
  const double baseline_w =
      agent_->device().soc.idle_watts + agent_->device().screen_watts;
  const double window_s =
      result.job.measure_window_end_s - result.job.measure_window_start_s;
  const double active_j =
      device::Monsoon::integrate_energy_j(window) - baseline_w * window_s;
  result.measured_energy_per_inference_j =
      job.iterations > 0 ? std::max(0.0, active_j) / job.iterations : 0.0;

  // Cleanup for the next job.
  if (auto status = adb_.remove_all(); !status.ok()) {
    return fail("cleanup", true, status.error());
  }
  metrics.counter("gauge.harness.jobs_ok").increment();
  return result;
}

bool BenchmarkMaster::recover_port() {
  if (adb_.connected()) return true;
  auto& metrics = telemetry::current_registry();
  auto status = options_.hub_retry.run(
      [&] {
        return hub_->reconnect(port_)
                   ? util::Status{}
                   : util::Status::failure("hub refused reconnect");
      },
      sim_sleep(*agent_),
      [&](const util::RetryPolicy::Attempt&) {
        metrics.counter("gauge.harness.hub_reconnect_retries").increment();
      });
  if (status.ok()) {
    metrics.counter("gauge.harness.hub_recoveries").increment();
  }
  return status.ok() && adb_.connected();
}

std::vector<JobOutcome> BenchmarkMaster::run_jobs_detailed(
    const std::vector<BenchmarkJob>& jobs) {
  auto& metrics = telemetry::current_registry();
  std::vector<JobOutcome> outcomes(jobs.size());
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    outcomes[i].job_id = jobs[i].job_id;
    queue.push_back(i);
  }

  while (!queue.empty()) {
    const std::size_t i = queue.front();
    queue.pop_front();
    JobOutcome& outcome = outcomes[i];
    // Hub-state recovery: a previous job's failure (or a flaky hub) may have
    // left the port down; repair it before burning this job's attempt.
    if (!adb_.connected() && recover_port()) {
      outcome.recovery_action += "hub recovered; ";
    }
    AttemptTrace trace;
    outcome.attempts += 1;
    outcome.result = run_job_attempt(jobs[i], trace);
    if (outcome.result.ok()) {
      if (outcome.attempts > 1) {
        outcome.recovery_action += "requeue succeeded";
        metrics.counter("gauge.harness.recoveries").increment();
      }
      outcome.failure_stage.clear();
      continue;
    }
    outcome.failure_stage = trace.stage;
    if (trace.transient && outcome.attempts <= options_.max_requeues) {
      outcome.recovery_action +=
          "requeued after " + trace.stage + " failure; ";
      metrics.counter("gauge.harness.requeues").increment();
      queue.push_back(i);
    } else {
      outcome.recovery_action += trace.transient
                                     ? "quarantined: requeue budget exhausted"
                                     : "quarantined: permanent failure";
      metrics.counter("gauge.harness.quarantined_jobs").increment();
    }
  }

  for (const JobOutcome& outcome : outcomes) {
    metrics.histogram("gauge.harness.job_attempts")
        .observe(static_cast<double>(outcome.attempts));
  }
  return outcomes;
}

util::Result<std::vector<WorkflowResult>> BenchmarkMaster::run_jobs(
    const std::vector<BenchmarkJob>& jobs) {
  using R = util::Result<std::vector<WorkflowResult>>;
  auto outcomes = run_jobs_detailed(jobs);
  std::vector<WorkflowResult> out;
  out.reserve(outcomes.size());
  for (auto& outcome : outcomes) {
    if (!outcome.result.ok()) {
      return R::failure("job " + outcome.job_id + ": " +
                        outcome.result.error());
    }
    out.push_back(std::move(outcome.result).take());
  }
  return out;
}

std::vector<FleetResult> run_fleet(UsbHub& hub, std::vector<FleetDevice> fleet,
                                   HarnessOptions options) {
  std::vector<FleetResult> results(fleet.size());
  std::vector<std::thread> workers;
  workers.reserve(fleet.size());
  for (std::size_t port = 0; port < fleet.size(); ++port) {
    results[port].device = fleet[port].agent->device().name;
    workers.emplace_back([&, port] {
      telemetry::Span span{"harness.fleet_device"};
      span.annotate("device", results[port].device);
      BenchmarkMaster master{hub, port, *fleet[port].agent, options};
      results[port].outcomes = master.run_jobs_detailed(fleet[port].jobs);
      // Legacy all-or-first-failure view over the outcomes.
      using R = util::Result<std::vector<WorkflowResult>>;
      std::vector<WorkflowResult> ok_results;
      ok_results.reserve(results[port].outcomes.size());
      R legacy = std::move(ok_results);
      for (const JobOutcome& outcome : results[port].outcomes) {
        if (!outcome.result.ok()) {
          legacy = R::failure("job " + outcome.job_id + ": " +
                              outcome.result.error());
          break;
        }
        legacy.value().push_back(outcome.result.value());
      }
      results[port].results = std::move(legacy);
    });
  }
  for (auto& worker : workers) worker.join();
  return results;
}

}  // namespace gauge::harness
