#include "harness/workflow.hpp"

#include <thread>

#include "net/socket.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace gauge::harness {

namespace {

// adb pushes over flaky USB are the harness's most common transient
// failure in the field; retry a few times before declaring the job dead.
// Each extra attempt is counted so fleet health is visible in telemetry.
constexpr int kPushAttempts = 3;

util::Status push_with_retry(AdbConnection& adb, const std::string& path,
                             const util::Bytes& data) {
  util::Status status;
  for (int attempt = 0; attempt < kPushAttempts; ++attempt) {
    if (attempt > 0) {
      telemetry::current_registry()
          .counter("gauge.harness.push_retries")
          .increment();
    }
    status = adb.push(path, data);
    if (status.ok()) return status;
  }
  return status;
}

}  // namespace

util::Result<WorkflowResult> BenchmarkMaster::run_job(const BenchmarkJob& job) {
  using R = util::Result<WorkflowResult>;

  auto& metrics = telemetry::current_registry();
  telemetry::Span job_span{"harness.job"};
  job_span.annotate("job", job.job_id);
  const auto fail = [&metrics](std::string error) {
    metrics.counter("gauge.harness.jobs_failed").increment();
    return R::failure(std::move(error));
  };

  // 1. Push dependencies and assert the device state over adb.
  {
    telemetry::Span span{"harness.push"};
    if (auto status = push_with_retry(adb_, "/data/local/tmp/bench_runner",
                                      util::to_bytes("#!aarch64-daemon"));
        !status.ok()) {
      return fail(status.error());
    }
    if (auto status =
            push_with_retry(adb_, "/data/local/tmp/" + job.job_id + ".model",
                            util::to_bytes(job.model_key));
        !status.ok()) {
      return fail(status.error());
    }
  }
  {
    telemetry::Span span{"harness.assert_state"};
    if (auto status = adb_.assert_benchmark_state(); !status.ok()) {
      return fail(status.error());
    }
  }

  // Master listens for the completion message before cutting the channel.
  auto listener = net::TcpListener::bind(0);
  if (!listener.ok()) return fail(listener.error());
  const std::uint16_t done_port = listener.value().port();

  JobResult job_result;
  std::string done_line;
  bool usb_powered_during_run = false;
  {
    telemetry::Span span{"harness.run"};

    // 2. Cut USB data + power: measurements must not see charging current.
    hub_->disconnect(port_);

    // 3-5. The device-side daemon runs detached (its own thread here; its
    // own process on the phone) and reports over TCP when done.
    std::thread daemon{[&] {
      job_result = agent_->run_benchmark_daemon(job);
      // WiFi is back on after the run; send the netcat-style done message.
      auto stream = net::TcpStream::connect("127.0.0.1", done_port);
      if (stream.ok()) {
        (void)stream.value().send_line("DONE " + job.job_id);
      }
    }};

    auto connection = listener.value().accept();
    if (!connection.ok()) {
      daemon.join();
      return fail(connection.error());
    }
    auto line = connection.value().recv_line();
    daemon.join();
    if (!line.ok()) return fail(line.error());
    if (line.value() != "DONE " + job.job_id) {
      return fail("unexpected completion message: " + line.value());
    }
    done_line = std::move(line).take();

    // 6. Restore USB.
    usb_powered_during_run = hub_->power_on(port_);
    hub_->reconnect(port_);
    if (!adb_.connected()) return fail("device did not come back");
  }

  telemetry::Span collect_span{"harness.collect"};
  WorkflowResult result;
  result.job = std::move(job_result);
  result.done_message = std::move(done_line);

  // Monsoon measurement over the recorded phases.
  device::Monsoon monsoon{5000.0, 4.2,
                          util::fnv1a64(job.job_id) | 1};
  const auto samples = monsoon.record(agent_->last_power_phases());
  result.monsoon_energy_j = device::Monsoon::integrate_energy_j(samples);
  result.monsoon_mean_power_w = device::Monsoon::mean_power_w(samples);

  // USB channel over the same window: the hub had power cut for the whole
  // run, so the charging rail contributes nothing. (Were the hub left on,
  // this would record ~2.5 W of charge current and invalidate the
  // measurement — the reason the Fig. 3 workflow cuts power at all.)
  const double usb_watts = usb_powered_during_run ? 2.5 : 0.0;
  const auto usb_samples =
      monsoon.record({{result.job.total_duration_s, usb_watts}});
  result.usb_energy_j = device::Monsoon::integrate_energy_j(usb_samples);

  // Integrate only the measured window (warm-ups excluded) and subtract
  // the idle+screen baseline measured separately, as the paper does.
  std::vector<device::PowerSample> window;
  for (const auto& sample : samples) {
    if (sample.t_s >= result.job.measure_window_start_s &&
        sample.t_s <= result.job.measure_window_end_s) {
      window.push_back(sample);
    }
  }
  const double baseline_w =
      agent_->device().soc.idle_watts + agent_->device().screen_watts;
  const double window_s =
      result.job.measure_window_end_s - result.job.measure_window_start_s;
  const double active_j =
      device::Monsoon::integrate_energy_j(window) - baseline_w * window_s;
  result.measured_energy_per_inference_j =
      job.iterations > 0 ? std::max(0.0, active_j) / job.iterations : 0.0;

  // Cleanup for the next job.
  if (auto status = adb_.remove_all(); !status.ok()) {
    return fail(status.error());
  }
  metrics.counter("gauge.harness.jobs_ok").increment();
  return result;
}

util::Result<std::vector<WorkflowResult>> BenchmarkMaster::run_jobs(
    const std::vector<BenchmarkJob>& jobs) {
  using R = util::Result<std::vector<WorkflowResult>>;
  std::vector<WorkflowResult> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    auto result = run_job(job);
    if (!result.ok()) {
      return R::failure("job " + job.job_id + ": " + result.error());
    }
    out.push_back(std::move(result).take());
  }
  return out;
}

std::vector<FleetResult> run_fleet(UsbHub& hub,
                                   std::vector<FleetDevice> fleet) {
  std::vector<FleetResult> results(fleet.size());
  std::vector<std::thread> workers;
  workers.reserve(fleet.size());
  for (std::size_t port = 0; port < fleet.size(); ++port) {
    results[port].device = fleet[port].agent->device().name;
    workers.emplace_back([&, port] {
      telemetry::Span span{"harness.fleet_device"};
      span.annotate("device", results[port].device);
      BenchmarkMaster master{hub, port, *fleet[port].agent};
      results[port].results = master.run_jobs(fleet[port].jobs);
    });
  }
  for (auto& worker : workers) worker.join();
  return results;
}

}  // namespace gauge::harness
