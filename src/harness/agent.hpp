// DeviceAgent: the slave side of the gaugeNN benchmark platform — a
// simulated phone/board with a pushed file system, togglable radios and a
// headless benchmark daemon. The master talks to it through AdbConnection
// (harness/adb.hpp) while the hub's data channel is up; the daemon runs the
// Fig. 3 loop once USB power drops and reports completion over TCP.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "device/latency.hpp"
#include "device/monsoon.hpp"
#include "device/soc.hpp"
#include "harness/fault.hpp"
#include "nn/trace.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/result.hpp"

namespace gauge::harness {

struct DeviceState {
  bool wifi_on = true;
  bool sensors_on = true;
  bool screen_on = true;
  bool screen_black = false;   // the black-background app of §3.3
  int screen_timeout_s = 30;   // maximised before benchmarks
};

struct BenchmarkJob {
  std::string job_id;
  std::string model_key;       // checksum/name for deterministic variation
  nn::ModelTrace trace;
  device::RunConfig config;
  int warmup_iterations = 5;
  int iterations = 20;
  double sleep_between_s = 0.05;
};

struct JobResult {
  std::string job_id;
  std::vector<double> latencies_s;      // measured iterations only
  double energy_per_inference_j = 0.0;  // Monsoon, screen share removed
  double avg_power_w = 0.0;             // during measured phase
  double total_duration_s = 0.0;        // warmup + measurement + sleeps
  // Boundaries of the measured phase within the power trace (after the
  // idle lead-in and warm-ups) — the window the Monsoon analysis integrates.
  double measure_window_start_s = 0.0;
  double measure_window_end_s = 0.0;
  double flops = 0.0;
};

class DeviceAgent {
 public:
  explicit DeviceAgent(device::Device device, std::uint64_t seed = 1);

  const device::Device& device() const { return device_; }
  DeviceState& state() { return state_; }
  const DeviceState& state() const { return state_; }

  // --- file system (adb push/pull target) ---
  void write_file(const std::string& path, util::Bytes data);
  util::Result<util::Bytes> read_file(const std::string& path) const;
  bool has_file(const std::string& path) const;
  std::vector<std::string> list_files() const;
  void remove_all_files();

  // --- the headless daemon (runs after USB power is cut) ---
  // Executes the benchmark loop: warmups, measured iterations with sleeps,
  // then turns WiFi back on. Advances the agent's clock; also produces the
  // Monsoon power phases for the whole run (idle lead-in included).
  JobResult run_benchmark_daemon(const BenchmarkJob& job);
  const std::vector<device::PowerPhase>& last_power_phases() const {
    return power_phases_;
  }

  util::SimClock& clock() { return clock_; }

  // --- fault injection (deterministic flaky-field simulation) ---
  // Installs the device-side slice of `plan` (push drops, daemon faults) and
  // resets the push-call counter; the hub-side slice belongs to UsbHub.
  void inject_faults(FaultPlan plan);
  const FaultPlan& fault_plan() const { return fault_plan_; }
  // Called by AdbConnection once per push call; true = this call must fail.
  bool consume_push_fault();

 private:
  device::Device device_;
  DeviceState state_;
  util::SimClock clock_;
  std::map<std::string, util::Bytes> files_;
  std::vector<device::PowerPhase> power_phases_;
  std::uint64_t seed_;
  FaultPlan fault_plan_;
  int push_calls_ = 0;
};

}  // namespace gauge::harness
