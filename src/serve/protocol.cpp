#include "serve/protocol.hpp"

#include <cinttypes>

#include "util/strings.hpp"

namespace gauge::serve {

namespace {

using R = util::Result<Request>;

bool split_kv(const std::string& token, std::string* key, std::string* value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

}  // namespace

util::Result<Request> parse_request(const std::string& line) {
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) return R::failure("empty_request");
  Request request;
  const std::string& verb = tokens[0];
  if (verb == "PING") {
    request.verb = Request::Verb::Ping;
  } else if (verb == "STATS") {
    request.verb = Request::Verb::Stats;
  } else if (verb == "QUIT") {
    request.verb = Request::Verb::Quit;
  } else if (verb == "INFER") {
    request.verb = Request::Verb::Infer;
  } else {
    return R::failure("unknown_verb");
  }
  if (request.verb != Request::Verb::Infer) {
    if (tokens.size() != 1) return R::failure("bad_key");
    return request;
  }
  if (tokens.size() < 2 || tokens[1].find('=') != std::string::npos) {
    return R::failure("missing_model");
  }
  request.model = tokens[1];
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string key, value;
    if (!split_kv(tokens[i], &key, &value) || value.empty()) {
      return R::failure("bad_key");
    }
    if (key == "id") {
      request.id = value;
    } else if (key == "backend") {
      if (!parse_backend(value)) return R::failure("bad_value");
      request.backend = value;
    } else if (key == "deadline_ms") {
      const auto parsed = util::parse_double(value);
      if (!parsed || *parsed < 0) return R::failure("bad_value");
      request.deadline_ms = *parsed;
    } else if (key == "payload") {
      const auto parsed = util::parse_int(value);
      if (!parsed || *parsed < 0) return R::failure("bad_value");
      if (static_cast<std::uint64_t>(*parsed) > kMaxPayloadBytes) {
        return R::failure("payload_too_large");
      }
      request.payload_bytes = static_cast<std::uint64_t>(*parsed);
    } else {
      return R::failure("bad_key");
    }
  }
  return request;
}

std::optional<device::Backend> parse_backend(const std::string& token) {
  const std::string lowered = util::to_lower(token);
  for (int i = 0; i < static_cast<int>(device::Backend::kCount); ++i) {
    const auto backend = static_cast<device::Backend>(i);
    if (lowered == util::to_lower(device::backend_name(backend))) {
      return backend;
    }
  }
  return std::nullopt;
}

std::string format_response(const Response& response) {
  switch (response.kind) {
    case Response::Kind::Ok: {
      std::string line = util::format(
          "OK id=%s model=%s backend=%s fallback=%d batch=%d queue_us=%" PRIu64
          " infer_us=%" PRIu64 " total_us=%" PRIu64,
          response.id.c_str(), response.model.c_str(),
          response.backend.c_str(), response.fallback ? 1 : 0, response.batch,
          response.queue_us, response.infer_us, response.total_us);
      if (response.retried) line += " retried=1";
      return line;
    }
    case Response::Kind::Shed:
      return util::format("SHED id=%s code=%d est_wait_us=%" PRIu64
                          " depth=%" PRIu64 " retry_after_ms=%" PRIu64,
                          response.id.c_str(), response.code,
                          response.est_wait_us, response.depth,
                          response.retry_after_ms);
    case Response::Kind::Err:
      return util::format("ERR id=%s code=%d reason=%s", response.id.c_str(),
                          response.code, response.reason.c_str());
    case Response::Kind::Pong:
      return "PONG";
    case Response::Kind::Stats: {
      std::string line =
          util::format("STATS requests=%" PRIu64 " served=%" PRIu64
                       " shed=%" PRIu64 " errors=%" PRIu64,
                       response.requests, response.served, response.shed,
                       response.errors);
      for (const auto& lane : response.lanes) {
        line += util::format(" lane=%s/%s state=%s inflight=%" PRIu64,
                             lane.model.c_str(), lane.backend.c_str(),
                             lane.state.c_str(), lane.inflight);
      }
      return line;
    }
  }
  return "ERR id=0 code=500 reason=bad_kind";
}

util::Result<Response> parse_response(const std::string& line) {
  using RR = util::Result<Response>;
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) return RR::failure("empty response");
  Response response;
  const std::string& verb = tokens[0];
  if (verb == "PONG") {
    response.kind = Response::Kind::Pong;
    return response;
  }
  if (verb == "OK") {
    response.kind = Response::Kind::Ok;
  } else if (verb == "SHED") {
    response.kind = Response::Kind::Shed;
    response.code = 429;
  } else if (verb == "ERR") {
    response.kind = Response::Kind::Err;
  } else if (verb == "STATS") {
    response.kind = Response::Kind::Stats;
  } else {
    return RR::failure("unknown response verb: " + verb);
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string key, value;
    if (!split_kv(tokens[i], &key, &value)) {
      return RR::failure("bad response token: " + tokens[i]);
    }
    const auto as_u64 = [&]() -> std::uint64_t {
      const auto parsed = util::parse_int(value);
      return parsed && *parsed >= 0 ? static_cast<std::uint64_t>(*parsed) : 0;
    };
    if (key == "id") response.id = value;
    else if (key == "model") response.model = value;
    else if (key == "backend") response.backend = value;
    else if (key == "fallback") response.fallback = value == "1";
    else if (key == "retried") response.retried = value == "1";
    else if (key == "batch") response.batch = static_cast<int>(as_u64());
    else if (key == "queue_us") response.queue_us = as_u64();
    else if (key == "infer_us") response.infer_us = as_u64();
    else if (key == "total_us") response.total_us = as_u64();
    else if (key == "code") response.code = static_cast<int>(as_u64());
    else if (key == "est_wait_us") response.est_wait_us = as_u64();
    else if (key == "depth") response.depth = as_u64();
    else if (key == "retry_after_ms") response.retry_after_ms = as_u64();
    else if (key == "reason") response.reason = value;
    else if (key == "requests") response.requests = as_u64();
    else if (key == "served") response.served = as_u64();
    else if (key == "shed") response.shed = as_u64();
    else if (key == "errors") response.errors = as_u64();
    else if (key == "lane") {
      // `lane=<model>/<backend>` opens a health triple; the following
      // `state=` / `inflight=` tokens attach to it.
      const auto slash = value.find('/');
      if (slash == std::string::npos || slash == 0 ||
          slash + 1 >= value.size()) {
        return RR::failure("bad lane token: " + value);
      }
      LaneHealth lane;
      lane.model = value.substr(0, slash);
      lane.backend = value.substr(slash + 1);
      response.lanes.push_back(std::move(lane));
    } else if (key == "state") {
      if (response.lanes.empty()) {
        return RR::failure("state token outside a lane triple");
      }
      if (value != "closed" && value != "open" && value != "half_open") {
        return RR::failure("bad lane state: " + value);
      }
      response.lanes.back().state = value;
    } else if (key == "inflight") {
      if (response.lanes.empty()) {
        return RR::failure("inflight token outside a lane triple");
      }
      response.lanes.back().inflight = as_u64();
    } else return RR::failure("bad response key: " + key);
  }
  return response;
}

}  // namespace gauge::serve
