// Deterministic fault injection for the serving path (DESIGN.md §16), in
// the harness/fault.cpp style: a ServeFaultPlan is a string grammar naming
// which runtime failures to reproduce, and a ServeFaultInjector turns the
// plan into counter-based decisions consulted at the lane-execution and
// connection layers of serve/server.cpp. Everything is counter-based and
// seedless, so a given plan always fails the same batch / connection /
// frame — the recovery machinery (circuit breakers, mid-batch redispatch,
// the lane watchdog) is testable without real accelerator outages.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "device/backends.hpp"
#include "util/result.hpp"

namespace gauge::serve {

struct ServeFaultPlan {
  // kill-backend=<backend>:<after_n> — the backend executes its first N
  // batches normally, then dies: every later batch on any of its lanes
  // fails mid-execution (the tickets are redispatched to the CPU lane).
  struct KillBackend {
    device::Backend backend = device::Backend::CpuFp32;
    int after_batches = 0;
  };
  std::vector<KillBackend> kill_backends;

  // stall-lane=<model>:<n>:<ms> — the nth batch executed for <model> (any
  // backend) stalls for <ms> wall milliseconds before completing, long
  // enough for the lane watchdog to declare the executor wedged.
  struct StallLane {
    std::string model;
    int nth = 0;
    double ms = 0.0;
  };
  std::vector<StallLane> stalls;

  // fail-infer=<model>:<nth>[:<count>] — <count> consecutive batch
  // executions for <model>, starting at the nth, fail (count defaults to
  // 1). A transient fault window: the breaker opens after K consecutive
  // failures and the half-open probe after it succeeds again.
  struct FailInfer {
    std::string model;
    int nth = 0;
    int count = 1;
  };
  std::vector<FailInfer> fail_infers;

  // drop-conn=<nth> — the nth accepted connection is closed before it is
  // handed to a worker (the client sees a reset; repeatable).
  std::vector<int> drop_conns;

  // corrupt-frame=<nth> — the nth payload frame received (across all
  // connections) is treated as corrupt: the connection is poisoned and
  // closed, exactly as a CRC failure would (repeatable).
  std::vector<int> corrupt_frames;

  bool empty() const {
    return kill_backends.empty() && stalls.empty() && fail_infers.empty() &&
           drop_conns.empty() && corrupt_frames.empty();
  }
};

// Parses the `--fault-plan` grammar: semicolon-separated directives
//   kill-backend=GPU:50        GPU dies after its 50th batch
//   stall-lane=mobilenet:3:500 3rd mobilenet batch stalls 500 ms
//   fail-infer=mobilenet:2     2nd mobilenet batch fails (transient)
//   fail-infer=mobilenet:2:3   batches 2,3,4 fail (a K-failure window)
//   drop-conn=4                4th accepted connection is dropped
//   corrupt-frame=2            2nd received payload frame reads corrupt
// Backend tokens are the device layer's backend_name() strings,
// case-insensitive. All indices are 1-based.
util::Result<ServeFaultPlan> parse_serve_fault_plan(const std::string& spec);

// Thread-safe counter state over a plan. Each probe is called exactly once
// per event (batch execution / accepted connection / received frame), so
// the injected faults land on deterministic event indices.
class ServeFaultInjector {
 public:
  explicit ServeFaultInjector(ServeFaultPlan plan);

  struct ExecFault {
    bool fail = false;        // the batch fails mid-execution
    std::string reason;       // "backend_dead" | "infer_fault"
    double stall_ms = 0.0;    // sleep this long before completing
  };

  // Consulted once per batch execution, before the batch runs.
  ExecFault on_batch(const std::string& model, device::Backend backend);
  // Consulted once per accepted connection; true = close it immediately.
  bool drop_connection();
  // Consulted once per received payload frame; true = treat as corrupt.
  bool corrupt_frame();

 private:
  ServeFaultPlan plan_;
  std::mutex mutex_;
  std::vector<int> backend_batches_;  // indexed by Backend enum value
  // Per-model batch counters, keyed by model name (the zoo population is
  // small; linear scan).
  std::vector<std::pair<std::string, int>> model_batches_;
  int connections_ = 0;
  int frames_ = 0;
};

}  // namespace gauge::serve
