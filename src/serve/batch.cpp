#include "serve/batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace gauge::serve {

namespace {

// Shared piecewise-linear interpolation over (batches, values).
double interpolate(const std::vector<int>& batches,
                   const std::vector<double>& values, int n) {
  assert(!batches.empty() && batches.size() == values.size());
  if (n <= batches.front()) return values.front();
  for (std::size_t i = 1; i < batches.size(); ++i) {
    if (n <= batches[i]) {
      const double span = static_cast<double>(batches[i] - batches[i - 1]);
      const double t = static_cast<double>(n - batches[i - 1]) / span;
      return values[i - 1] + t * (values[i] - values[i - 1]);
    }
  }
  // Beyond the last point: extrapolate with the final segment's slope (the
  // curve is near-linear there, Fig. 11).
  const std::size_t last = batches.size() - 1;
  if (last == 0) return values[0] * static_cast<double>(n) / batches[0];
  const double slope = (values[last] - values[last - 1]) /
                       static_cast<double>(batches[last] - batches[last - 1]);
  return values[last] + slope * static_cast<double>(n - batches[last]);
}

}  // namespace

double BatchCurve::latency_s_at(int batch) const {
  return interpolate(batches, latency_s, batch);
}

std::vector<int> candidate_batches(int max_batch) {
  std::vector<int> out;
  for (int b : {1, 2, 4, 5, 8, 10, 16, 25, 32, 64}) {
    if (b <= max_batch) out.push_back(b);
  }
  if (out.empty() || out.back() != max_batch) out.push_back(max_batch);
  return out;
}

BatchCurve measure_batch_curve(const device::Device& device,
                               const nn::ModelTrace& trace,
                               const device::RunConfig& base,
                               std::string_view model_key,
                               const std::vector<int>& batches) {
  BatchCurve curve;
  curve.batches = batches;
  for (int b : batches) {
    device::RunConfig config = base;
    config.batch = b;
    const auto result =
        device::simulate_inference(device, trace, config, model_key);
    curve.latency_s.push_back(result.latency_s);
    curve.throughput_ips.push_back(result.throughput_ips);
  }
  return curve;
}

std::string batch_curve_json(const std::string& device,
                             const std::string& label,
                             const BatchCurve& curve) {
  std::string out = "{\"device\":\"" + device + "\",\"label\":\"" + label +
                    "\",\"points\":[";
  for (std::size_t i = 0; i < curve.batches.size(); ++i) {
    char point[128];
    std::snprintf(point, sizeof(point),
                  "%s{\"batch\":%d,\"latency_ms\":%.6f,\"throughput_ips\":%.4f}",
                  i == 0 ? "" : ",", curve.batches[i],
                  curve.latency_s[i] * 1e3, curve.throughput_ips[i]);
    out += point;
  }
  out += "]}";
  return out;
}

std::uint64_t Frontier::latency_ns_at(int n) const {
  if (batches.empty()) return 0;
  std::vector<double> values(latency_ns.begin(), latency_ns.end());
  const double estimate = interpolate(batches, values, n);
  return static_cast<std::uint64_t>(std::max(0.0, estimate));
}

Frontier choose_frontier(const BatchCurve& curve, double slo_ms,
                         double time_scale, int max_batch,
                         double latency_budget_frac, double wait_frac) {
  Frontier frontier;
  frontier.batches = curve.batches;
  for (double s : curve.latency_s) {
    frontier.latency_ns.push_back(
        static_cast<std::uint64_t>(std::max(0.0, s * time_scale * 1e9)));
  }
  const double budget_ms = slo_ms * latency_budget_frac;
  frontier.batch = 1;
  for (std::size_t i = 0; i < curve.batches.size(); ++i) {
    if (curve.batches[i] > max_batch) break;
    const double wall_ms = curve.latency_s[i] * time_scale * 1e3;
    if (curve.batches[i] == 1 || wall_ms <= budget_ms) {
      frontier.batch = curve.batches[i];
    }
  }
  frontier.batch = std::min(frontier.batch, std::max(1, max_batch));
  frontier.max_wait_ns =
      frontier.batch > 1
          ? static_cast<std::uint64_t>(std::max(0.0, slo_ms * wait_frac * 1e6))
          : 0;
  return frontier;
}

BatchQueue::BatchQueue(Frontier frontier, std::size_t capacity)
    : frontier_{std::move(frontier)}, capacity_{std::max<std::size_t>(1, capacity)} {}

std::uint64_t BatchQueue::estimate_wait_ns(
    std::size_t depth_including_self) const {
  const auto batch = static_cast<std::size_t>(frontier_.batch);
  const std::size_t queued_batches =
      (depth_including_self + batch - 1) / batch;
  const std::size_t batches_ahead =
      queued_batches + static_cast<std::size_t>(inflight_);
  return batches_ahead * frontier_.latency_ns_at(frontier_.batch);
}

BatchQueue::Admission BatchQueue::offer(std::uint64_t now_ns,
                                        const Ticket& ticket,
                                        double pressure) {
  Admission admission;
  const std::uint64_t base_estimate = estimate_wait_ns(queue_.size() + 1);
  admission.est_wait_ns = static_cast<std::uint64_t>(
      static_cast<double>(base_estimate) * std::max(1.0, pressure));
  if (queue_.size() >= capacity_) {
    admission.reason = "queue_full";
    return admission;
  }
  if (ticket.deadline_ns != 0 &&
      now_ns + admission.est_wait_ns > ticket.deadline_ns) {
    admission.reason = "deadline";
    return admission;
  }
  admission.accepted = true;
  queue_.push_back(ticket);
  return admission;
}

void BatchQueue::requeue(const std::vector<Ticket>& tickets) {
  for (auto it = tickets.rbegin(); it != tickets.rend(); ++it) {
    queue_.push_front(*it);
  }
}

std::uint64_t BatchQueue::next_flush_ns() const {
  if (queue_.empty()) return std::numeric_limits<std::uint64_t>::max();
  if (queue_.size() >= static_cast<std::size_t>(frontier_.batch)) return 0;
  return queue_.front().enqueue_ns + frontier_.max_wait_ns;
}

std::vector<Ticket> BatchQueue::pop_due(std::uint64_t now_ns) {
  std::vector<Ticket> batch;
  if (queue_.empty()) return batch;
  const auto full = static_cast<std::size_t>(frontier_.batch);
  const bool full_batch = queue_.size() >= full;
  const bool waited_out =
      now_ns >= queue_.front().enqueue_ns + frontier_.max_wait_ns;
  if (!full_batch && !waited_out) return batch;
  const std::size_t take = std::min(queue_.size(), full);
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  return batch;
}

std::vector<Ticket> BatchQueue::drain() {
  std::vector<Ticket> all{queue_.begin(), queue_.end()};
  queue_.clear();
  return all;
}

void BatchQueue::note_batch_done() {
  assert(inflight_ > 0);
  --inflight_;
}

}  // namespace gauge::serve
