// Dynamic batching for the inference service (DESIGN.md §11).
//
// The paper's Fig. 11 shows throughput scaling almost linearly with batch
// size because per-layer dispatch overhead amortises across the batch. A
// serving batcher exploits exactly that curve: measure latency(b) with the
// device latency model, pick the largest batch whose latency still fits the
// SLO budget (the *frontier*), and coalesce queued requests up to that
// frontier or until the oldest request has waited its deadline-flush budget.
//
// Everything here is a deterministic state machine driven by explicit
// nanosecond timestamps — the server wraps it in threads, tests drive it
// with util::SimClock.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "device/latency.hpp"
#include "device/soc.hpp"
#include "nn/trace.hpp"

namespace gauge::serve {

// latency(b) / throughput(b) for one (model, device, backend) combination,
// in simulator seconds — the same numbers bench_fig11_batch reports.
struct BatchCurve {
  std::vector<int> batches;           // ascending, batches.front() == 1
  std::vector<double> latency_s;      // whole-batch forward-pass latency
  std::vector<double> throughput_ips; // batch / latency

  // Piecewise-linear latency for batch sizes between (or beyond) the
  // measured points; exact at the points themselves.
  double latency_s_at(int batch) const;
};

// Canonical candidate batch sizes (the paper's 1/2/5/10/25 plus powers of
// two the batcher favours), truncated to max_batch.
std::vector<int> candidate_batches(int max_batch);

// Measures the curve with the analytic device model: one simulate_inference
// per batch size, same RunConfig otherwise. `model_key` seeds the per-model
// variation term (pass the checksum, as the runtime sweeps do).
BatchCurve measure_batch_curve(const device::Device& device,
                               const nn::ModelTrace& trace,
                               const device::RunConfig& base,
                               std::string_view model_key,
                               const std::vector<int>& batches);

// One line of machine-readable JSON for a curve point (consumed by the
// frontier-tuning tests and emitted by bench_fig11_batch).
std::string batch_curve_json(const std::string& device,
                             const std::string& label,
                             const BatchCurve& curve);

// The batcher's operating point, in *wall* nanoseconds (simulator latencies
// scaled by the server's time scale).
struct Frontier {
  int batch = 1;                  // coalesce up to this many requests
  std::uint64_t max_wait_ns = 0;  // deadline-flush budget for a partial batch
  std::vector<int> batches;               // curve support points
  std::vector<std::uint64_t> latency_ns;  // wall latency per support point

  // Piecewise-linear wall latency estimate for an n-request batch.
  std::uint64_t latency_ns_at(int n) const;
};

// Picks the largest candidate batch whose wall latency fits
// `latency_budget_frac` of the SLO, and a deadline-flush budget of
// `wait_frac` of the SLO. batch == 1 disables coalescing (max_wait 0).
Frontier choose_frontier(const BatchCurve& curve, double slo_ms,
                         double time_scale, int max_batch,
                         double latency_budget_frac = 0.5,
                         double wait_frac = 0.25);

// One queued request. `id` is the server's ticket for routing the result
// back; the queue itself never interprets it.
struct Ticket {
  std::uint64_t id = 0;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t deadline_ns = 0;  // absolute; 0 = no deadline
  // Recovery provenance (DESIGN.md §16): set when a failed/stalled batch
  // redispatched this ticket, and when that redispatch moved it onto a
  // different backend's lane. Reported as `retried=1` / `fallback=1`.
  bool retried = false;
  bool fallback = false;
};

// Bounded FIFO with admission control for one (model, backend) lane.
// Deterministic: all decisions depend only on the call sequence and the
// timestamps passed in.
class BatchQueue {
 public:
  BatchQueue(Frontier frontier, std::size_t capacity);

  struct Admission {
    bool accepted = false;
    std::uint64_t est_wait_ns = 0;  // estimated enqueue-to-completion delay
    std::string_view reason;        // "" | "queue_full" | "deadline"
  };

  // Admission control: sheds when the queue is full or when the estimated
  // completion time (queued batches ahead + in-flight batches, each costing
  // one frontier-batch execution) already overruns the request's deadline.
  // `pressure` scales the estimate (>= 1): during a brownout — a breaker
  // open or a watchdog restart window — the server inflates the estimate so
  // shedding starts before the degraded capacity is actually overrun.
  Admission offer(std::uint64_t now_ns, const Ticket& ticket,
                  double pressure = 1.0);

  // Re-admits tickets from a failed or abandoned batch at the *front* of
  // the queue (they were admitted once already and carry the oldest
  // enqueue timestamps; admission control does not apply again).
  void requeue(const std::vector<Ticket>& tickets);

  // Earliest time a flush becomes due: now (returns 0) once a full frontier
  // batch is queued, the oldest request's enqueue + max_wait otherwise,
  // UINT64_MAX when empty.
  std::uint64_t next_flush_ns() const;

  // Pops the next due batch (up to frontier.batch tickets, FIFO) or returns
  // empty when nothing is due yet. Call repeatedly until empty.
  std::vector<Ticket> pop_due(std::uint64_t now_ns);

  // Unconditionally empties the queue (shutdown drain).
  std::vector<Ticket> drain();

  // In-flight batch accounting, feeding the admission estimate.
  void note_batch_start() { ++inflight_; }
  void note_batch_done();

  std::size_t depth() const { return queue_.size(); }
  int inflight() const { return inflight_; }
  const Frontier& frontier() const { return frontier_; }

 private:
  std::uint64_t estimate_wait_ns(std::size_t depth_including_self) const;

  Frontier frontier_;
  std::size_t capacity_;
  std::deque<Ticket> queue_;
  int inflight_ = 0;
};

}  // namespace gauge::serve
