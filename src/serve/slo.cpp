#include "serve/slo.hpp"

#include <cinttypes>

#include "util/strings.hpp"

namespace gauge::serve {

namespace {

std::int64_t counter_value(
    const std::vector<std::pair<std::string, std::int64_t>>& counters,
    const std::string& name) {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

}  // namespace

SloSummary summarize_slo(const telemetry::MetricsRegistry& registry) {
  SloSummary summary;
  const auto counters = registry.counters();
  summary.requests = counter_value(counters, "gauge.serve.requests");
  summary.served = counter_value(counters, "gauge.serve.served");
  summary.shed = counter_value(counters, "gauge.serve.shed");
  summary.errors = counter_value(counters, "gauge.serve.errors");
  summary.deadline_miss = counter_value(counters, "gauge.serve.deadline_miss");
  summary.fallbacks = counter_value(counters, "gauge.serve.fallback");
  summary.batches = counter_value(counters, "gauge.serve.batches");

  const std::string exec_prefix = "gauge.serve.exec.";
  for (const auto& [name, value] : counters) {
    if (name.rfind(exec_prefix, 0) != 0 || value == 0) continue;
    summary.exec.push_back(ExecSlo{name.substr(exec_prefix.size()), value});
  }

  const std::string prefix = kLatencyHistogramPrefix;
  const auto histograms = registry.histograms();
  for (const auto& [name, snapshot] : histograms) {
    if (name.rfind(prefix, 0) != 0 || snapshot.count == 0) continue;
    ModelSlo model;
    model.model = name.substr(prefix.size());
    model.served = snapshot.count;
    model.p50_ms = snapshot.p50;
    model.p95_ms = snapshot.p95;
    model.p99_ms = snapshot.p99;
    model.mean_ms = snapshot.mean();
    for (const auto& [batch_name, batch_snapshot] : histograms) {
      if (batch_name == "gauge.serve.batch_size." + model.model) {
        model.mean_batch = batch_snapshot.mean();
      }
    }
    summary.models.push_back(std::move(model));
  }
  return summary;
}

std::string slo_report(const telemetry::MetricsRegistry& registry) {
  const SloSummary summary = summarize_slo(registry);
  std::string out;
  for (const auto& model : summary.models) {
    out += util::format(
        "SLO model=%s served=%" PRIu64
        " p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f mean_ms=%.3f mean_batch=%.2f\n",
        model.model.c_str(), model.served, model.p50_ms, model.p95_ms,
        model.p99_ms, model.mean_ms, model.mean_batch);
  }
  for (const auto& exec : summary.exec) {
    out += util::format("SLO exec backend=%s batches=%lld\n",
                        exec.backend.c_str(),
                        static_cast<long long>(exec.batches));
  }
  out += util::format(
      "SLO total requests=%lld served=%lld shed=%lld errors=%lld "
      "deadline_miss=%lld fallbacks=%lld batches=%lld\n",
      static_cast<long long>(summary.requests),
      static_cast<long long>(summary.served),
      static_cast<long long>(summary.shed),
      static_cast<long long>(summary.errors),
      static_cast<long long>(summary.deadline_miss),
      static_cast<long long>(summary.fallbacks),
      static_cast<long long>(summary.batches));
  return out;
}

}  // namespace gauge::serve
