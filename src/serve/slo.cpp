#include "serve/slo.hpp"

#include <cinttypes>

#include "util/strings.hpp"

namespace gauge::serve {

namespace {

std::int64_t counter_value(
    const std::vector<std::pair<std::string, std::int64_t>>& counters,
    const std::string& name) {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

}  // namespace

SloSummary summarize_slo(const telemetry::MetricsRegistry& registry) {
  SloSummary summary;
  const auto counters = registry.counters();
  summary.requests = counter_value(counters, "gauge.serve.requests");
  summary.served = counter_value(counters, "gauge.serve.served");
  summary.shed = counter_value(counters, "gauge.serve.shed");
  summary.errors = counter_value(counters, "gauge.serve.errors");
  summary.deadline_miss = counter_value(counters, "gauge.serve.deadline_miss");
  summary.fallbacks = counter_value(counters, "gauge.serve.fallback");
  summary.batches = counter_value(counters, "gauge.serve.batches");

  summary.breaker_opens = counter_value(counters, "gauge.serve.breaker.opens");
  summary.breaker_closes =
      counter_value(counters, "gauge.serve.breaker.closes");
  summary.breaker_fallbacks =
      counter_value(counters, "gauge.serve.breaker.fallback");
  summary.redispatched = counter_value(counters, "gauge.serve.redispatched");
  summary.watchdog_restarts =
      counter_value(counters, "gauge.serve.watchdog.restarts");

  const std::string exec_prefix = "gauge.serve.exec.";
  for (const auto& [name, value] : counters) {
    if (name.rfind(exec_prefix, 0) != 0 || value == 0) continue;
    summary.exec.push_back(ExecSlo{name.substr(exec_prefix.size()), value});
  }

  // Per-backend lane outcomes: every backend that ran (or failed) a batch.
  const std::string lane_batches_prefix = "gauge.serve.lane.batches.";
  const std::string lane_failures_prefix = "gauge.serve.lane.failures.";
  for (const auto& [name, value] : counters) {
    if (name.rfind(lane_batches_prefix, 0) != 0 || value == 0) continue;
    BackendSlo lane;
    lane.backend = name.substr(lane_batches_prefix.size());
    lane.batches = value;
    lane.failures =
        counter_value(counters, lane_failures_prefix + lane.backend);
    summary.lanes.push_back(std::move(lane));
  }

  const std::string prefix = kLatencyHistogramPrefix;
  const auto histograms = registry.histograms();
  for (const auto& [name, snapshot] : histograms) {
    if (name.rfind(prefix, 0) != 0 || snapshot.count == 0) continue;
    ModelSlo model;
    model.model = name.substr(prefix.size());
    model.served = snapshot.count;
    model.p50_ms = snapshot.p50;
    model.p95_ms = snapshot.p95;
    model.p99_ms = snapshot.p99;
    model.mean_ms = snapshot.mean();
    for (const auto& [batch_name, batch_snapshot] : histograms) {
      if (batch_name == "gauge.serve.batch_size." + model.model) {
        model.mean_batch = batch_snapshot.mean();
      }
    }
    summary.models.push_back(std::move(model));
  }
  return summary;
}

std::string slo_report(const telemetry::MetricsRegistry& registry) {
  const SloSummary summary = summarize_slo(registry);
  std::string out;
  for (const auto& model : summary.models) {
    out += util::format(
        "SLO model=%s served=%" PRIu64
        " p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f mean_ms=%.3f mean_batch=%.2f\n",
        model.model.c_str(), model.served, model.p50_ms, model.p95_ms,
        model.p99_ms, model.mean_ms, model.mean_batch);
  }
  for (const auto& exec : summary.exec) {
    out += util::format("SLO exec backend=%s batches=%lld\n",
                        exec.backend.c_str(),
                        static_cast<long long>(exec.batches));
  }
  for (const auto& lane : summary.lanes) {
    const double rate =
        lane.batches > 0
            ? static_cast<double>(lane.failures) /
                  static_cast<double>(lane.batches)
            : 0.0;
    out += util::format(
        "SLO backend name=%s batches=%lld failures=%lld error_rate=%.4f\n",
        lane.backend.c_str(), static_cast<long long>(lane.batches),
        static_cast<long long>(lane.failures), rate);
  }
  out += util::format(
      "SLO availability breaker_opens=%lld breaker_closes=%lld "
      "breaker_fallbacks=%lld redispatched=%lld watchdog_restarts=%lld\n",
      static_cast<long long>(summary.breaker_opens),
      static_cast<long long>(summary.breaker_closes),
      static_cast<long long>(summary.breaker_fallbacks),
      static_cast<long long>(summary.redispatched),
      static_cast<long long>(summary.watchdog_restarts));
  out += util::format(
      "SLO total requests=%lld served=%lld shed=%lld errors=%lld "
      "deadline_miss=%lld fallbacks=%lld batches=%lld\n",
      static_cast<long long>(summary.requests),
      static_cast<long long>(summary.served),
      static_cast<long long>(summary.shed),
      static_cast<long long>(summary.errors),
      static_cast<long long>(summary.deadline_miss),
      static_cast<long long>(summary.fallbacks),
      static_cast<long long>(summary.batches));
  return out;
}

}  // namespace gauge::serve
