#include "serve/health.hpp"

#include <algorithm>
#include <limits>

namespace gauge::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_{config} {
  config_.failure_threshold = std::max(1, config_.failure_threshold);
  config_.probe_successes = std::max(1, config_.probe_successes);
}

BreakerState CircuitBreaker::state(std::uint64_t now_ns) {
  if (state_ == BreakerState::Open &&
      now_ns >= opened_at_ns_ + config_.cooldown_ns) {
    state_ = BreakerState::HalfOpen;
    probe_inflight_ = false;
    probe_successes_ = 0;
  }
  return state_;
}

bool CircuitBreaker::allow(std::uint64_t now_ns, bool* probe) {
  if (probe) *probe = false;
  switch (state(now_ns)) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      return false;
    case BreakerState::HalfOpen:
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      if (probe) *probe = true;
      return true;
  }
  return true;
}

void CircuitBreaker::cancel_probe() { probe_inflight_ = false; }

void CircuitBreaker::open_now(std::uint64_t now_ns) {
  state_ = BreakerState::Open;
  opened_at_ns_ = now_ns;
  consecutive_failures_ = 0;
  probe_inflight_ = false;
  probe_successes_ = 0;
  ++opens_;
}

void CircuitBreaker::record_success(std::uint64_t now_ns) {
  switch (state(now_ns)) {
    case BreakerState::Closed:
      consecutive_failures_ = 0;
      return;
    case BreakerState::HalfOpen:
      probe_inflight_ = false;
      if (++probe_successes_ >= config_.probe_successes) {
        state_ = BreakerState::Closed;
        consecutive_failures_ = 0;
        ++closes_;
      }
      return;
    case BreakerState::Open:
      // A straggler from before the breaker opened; the cooldown stands.
      return;
  }
}

void CircuitBreaker::record_failure(std::uint64_t now_ns) {
  switch (state(now_ns)) {
    case BreakerState::Closed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        open_now(now_ns);
      }
      return;
    case BreakerState::HalfOpen:
      open_now(now_ns);
      return;
    case BreakerState::Open:
      return;
  }
}

std::uint64_t CircuitBreaker::open_until_ns() const {
  if (state_ == BreakerState::Closed) return 0;
  return opened_at_ns_ + config_.cooldown_ns;
}

void LaneWatchdog::note_start(std::uint64_t id, std::uint64_t now_ns,
                              std::uint64_t budget_ns) {
  deadlines_[id] = now_ns + budget_ns;
}

bool LaneWatchdog::note_done(std::uint64_t id) {
  return deadlines_.erase(id) > 0;
}

std::vector<std::uint64_t> LaneWatchdog::expired(std::uint64_t now_ns) {
  std::vector<std::uint64_t> out;
  for (auto it = deadlines_.begin(); it != deadlines_.end();) {
    if (now_ns >= it->second) {
      out.push_back(it->first);
      it = deadlines_.erase(it);
    } else {
      ++it;
    }
  }
  restarts_ += out.size();
  return out;
}

std::uint64_t LaneWatchdog::next_deadline_ns() const {
  std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [id, deadline] : deadlines_) {
    next = std::min(next, deadline);
  }
  return next;
}

}  // namespace gauge::serve
