#include "serve/fault.hpp"

#include <algorithm>

#include "serve/protocol.hpp"
#include "util/strings.hpp"

namespace gauge::serve {

util::Result<ServeFaultPlan> parse_serve_fault_plan(const std::string& spec) {
  using R = util::Result<ServeFaultPlan>;
  ServeFaultPlan plan;
  for (const auto& raw : util::split(spec, ';')) {
    const std::string directive{util::trim(raw)};
    if (directive.empty()) continue;
    const auto eq = directive.find('=');
    const std::string key = directive.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : directive.substr(eq + 1);
    const auto fields = util::split(value, ':');
    if (key == "kill-backend") {
      if (fields.size() != 2) {
        return R::failure("fault-plan: kill-backend wants <backend>:<after_n>");
      }
      const auto backend = parse_backend(fields[0]);
      if (!backend) {
        return R::failure("fault-plan: unknown backend '" + fields[0] + "'");
      }
      const auto after = util::parse_int(fields[1]);
      if (!after || *after < 0) {
        return R::failure("fault-plan: bad kill-backend count '" + fields[1] +
                          "'");
      }
      plan.kill_backends.push_back(
          {*backend, static_cast<int>(*after)});
    } else if (key == "stall-lane") {
      if (fields.size() != 3) {
        return R::failure("fault-plan: stall-lane wants <model>:<n>:<ms>");
      }
      const auto nth = util::parse_int(fields[1]);
      const auto ms = util::parse_double(fields[2]);
      if (!nth || *nth < 1 || !ms || *ms < 0.0) {
        return R::failure("fault-plan: bad stall-lane '" + value + "'");
      }
      plan.stalls.push_back({fields[0], static_cast<int>(*nth), *ms});
    } else if (key == "fail-infer") {
      if (fields.size() != 2 && fields.size() != 3) {
        return R::failure(
            "fault-plan: fail-infer wants <model>:<nth>[:<count>]");
      }
      const auto nth = util::parse_int(fields[1]);
      if (!nth || *nth < 1) {
        return R::failure("fault-plan: bad fail-infer index '" + fields[1] +
                          "'");
      }
      int count = 1;
      if (fields.size() == 3) {
        const auto parsed = util::parse_int(fields[2]);
        if (!parsed || *parsed < 1) {
          return R::failure("fault-plan: bad fail-infer count '" + fields[2] +
                            "'");
        }
        count = static_cast<int>(*parsed);
      }
      plan.fail_infers.push_back({fields[0], static_cast<int>(*nth), count});
    } else if (key == "drop-conn") {
      const auto nth = util::parse_int(value);
      if (!nth || *nth < 1) {
        return R::failure("fault-plan: bad drop-conn index '" + value + "'");
      }
      plan.drop_conns.push_back(static_cast<int>(*nth));
    } else if (key == "corrupt-frame") {
      const auto nth = util::parse_int(value);
      if (!nth || *nth < 1) {
        return R::failure("fault-plan: bad corrupt-frame index '" + value +
                          "'");
      }
      plan.corrupt_frames.push_back(static_cast<int>(*nth));
    } else {
      return R::failure("fault-plan: unknown directive '" + key + "'");
    }
  }
  return plan;
}

ServeFaultInjector::ServeFaultInjector(ServeFaultPlan plan)
    : plan_{std::move(plan)},
      backend_batches_(static_cast<std::size_t>(device::Backend::kCount), 0) {}

ServeFaultInjector::ExecFault ServeFaultInjector::on_batch(
    const std::string& model, device::Backend backend) {
  ExecFault fault;
  const std::lock_guard<std::mutex> lock{mutex_};
  const int backend_count = ++backend_batches_[static_cast<std::size_t>(backend)];
  auto model_it =
      std::find_if(model_batches_.begin(), model_batches_.end(),
                   [&](const auto& entry) { return entry.first == model; });
  if (model_it == model_batches_.end()) {
    model_batches_.emplace_back(model, 0);
    model_it = model_batches_.end() - 1;
  }
  const int model_count = ++model_it->second;

  for (const auto& stall : plan_.stalls) {
    if (stall.model == model && stall.nth == model_count) {
      fault.stall_ms = std::max(fault.stall_ms, stall.ms);
    }
  }
  for (const auto& kill : plan_.kill_backends) {
    if (kill.backend == backend && backend_count > kill.after_batches) {
      fault.fail = true;
      fault.reason = "backend_dead";
      return fault;
    }
  }
  for (const auto& window : plan_.fail_infers) {
    if (window.model == model && model_count >= window.nth &&
        model_count < window.nth + window.count) {
      fault.fail = true;
      fault.reason = "infer_fault";
      return fault;
    }
  }
  return fault;
}

bool ServeFaultInjector::drop_connection() {
  const std::lock_guard<std::mutex> lock{mutex_};
  const int nth = ++connections_;
  return std::find(plan_.drop_conns.begin(), plan_.drop_conns.end(), nth) !=
         plan_.drop_conns.end();
}

bool ServeFaultInjector::corrupt_frame() {
  const std::lock_guard<std::mutex> lock{mutex_};
  const int nth = ++frames_;
  return std::find(plan_.corrupt_frames.begin(), plan_.corrupt_frames.end(),
                   nth) != plan_.corrupt_frames.end();
}

}  // namespace gauge::serve
