// Lane health machinery for the inference service (DESIGN.md §16): a
// per-(model, backend) circuit breaker and a watchdog over in-flight batch
// executions. Both are deterministic state machines driven by explicit
// nanosecond timestamps, in the serve/batch.hpp mould — the server wraps
// them in threads under its dispatch mutex, tests drive them with
// util::SimClock, and the outputs are bit-identical for a given call
// sequence at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace gauge::serve {

// closed: traffic flows, consecutive exec failures are counted.
// open:    the lane's backend is considered dead; admission routes around
//          it (CPU fallback) until the cooldown elapses.
// half_open: cooldown elapsed; exactly one probe batch may execute. Probe
//          success closes the breaker, probe failure re-opens it.
enum class BreakerState { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  int failure_threshold = 3;  // consecutive exec failures that open it
  std::uint64_t cooldown_ns = 500'000'000;  // open -> half-open probe delay
  int probe_successes = 1;    // half-open successes that close it
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  // Observes the state at `now`, applying the lazy open -> half-open
  // transition once the cooldown has elapsed.
  BreakerState state(std::uint64_t now_ns);

  // Whether a request may execute on this lane at `now`. Closed: always.
  // Open: never (callers fall back). Half-open: grants exactly one
  // outstanding probe; a granted probe that is then *not* dispatched (e.g.
  // the queue sheds it) must be returned with cancel_probe(). `probe` (may
  // be null) reports whether this grant claimed the probe slot.
  bool allow(std::uint64_t now_ns, bool* probe = nullptr);
  void cancel_probe();

  // Outcome of a batch execution on the lane. Failures include watchdog
  // abandonments — a stalled executor counts against lane health exactly
  // like a failed one.
  void record_success(std::uint64_t now_ns);
  void record_failure(std::uint64_t now_ns);

  // When open/half-open: the instant the cooldown elapses (retry_after
  // hints); 0 when closed.
  std::uint64_t open_until_ns() const;

  // Cumulative transition counts (the SLO availability report).
  std::uint64_t opens() const { return opens_; }
  std::uint64_t closes() const { return closes_; }

 private:
  void open_now(std::uint64_t now_ns);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  bool probe_inflight_ = false;
  std::uint64_t opened_at_ns_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t closes_ = 0;
};

// Tracks in-flight batch executions by launch id and flags the ones whose
// completion deadline has passed — a stalled lane executor. The first
// party to resolve a launch wins: note_done() by the executor returns
// false when the watchdog already expired (abandoned) it, and an expired
// launch never reports done. The caller owns recovery (requeue, breaker
// accounting); this class only decides *which* launches are wedged, purely
// from the timestamps it was fed.
class LaneWatchdog {
 public:
  void note_start(std::uint64_t id, std::uint64_t now_ns,
                  std::uint64_t budget_ns);
  // True when the launch was still tracked (normal completion); false when
  // it had been abandoned by expired() — the late result must be discarded.
  bool note_done(std::uint64_t id);
  // Launches whose budget elapsed at `now`, ascending id order; they are
  // removed from tracking and counted as restarts.
  std::vector<std::uint64_t> expired(std::uint64_t now_ns);
  // Earliest future deadline, UINT64_MAX when nothing is in flight — the
  // watchdog thread's next wake-up.
  std::uint64_t next_deadline_ns() const;

  std::size_t inflight() const { return deadlines_.size(); }
  std::uint64_t restarts() const { return restarts_; }

 private:
  std::map<std::uint64_t, std::uint64_t> deadlines_;  // id -> absolute ns
  std::uint64_t restarts_ = 0;
};

}  // namespace gauge::serve
