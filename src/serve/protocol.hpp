// Wire grammar of the inference service (DESIGN.md §11). Requests and
// responses are single '\n'-terminated ASCII lines — the same framing the
// harness's done-messages use — with an optional binary payload following
// an INFER line as one CRC-checked net::framing frame (the codec shared
// with the pipeline journal and the crawl cluster protocol):
//
//   INFER <model> [id=<tok>] [backend=<tok>] [deadline_ms=<num>] [payload=<n>]
//   <frame: magic|version|len|bytes|crc> (only when payload= is present;
//                                         the frame payload must be n bytes)
//   PING | STATS | QUIT
//
//   OK id=<tok> model=<m> backend=<b> fallback=<0|1> batch=<n>
//      queue_us=<n> infer_us=<n> total_us=<n> [retried=1]
//   SHED id=<tok> code=429 est_wait_us=<n> depth=<n> retry_after_ms=<n>
//   ERR id=<tok> code=<http-ish> reason=<snake_token>
//   PONG
//   STATS requests=<n> served=<n> shed=<n> errors=<n>
//         [lane=<model>/<backend> state=closed|open|half_open inflight=<n>]...
//
// `retried=1` marks a request whose batch failed or stalled mid-execution
// and was redispatched (once) onto the CPU-fallback lane; `retry_after_ms`
// is the server's brownout hint — when to try again after a 429. STATS
// reports one lane health triple per live (model, backend) lane so
// operators and smoke tests can poll breaker state instead of sleeping.
//
// Parsing is strict: unknown verbs, unknown keys, malformed values and
// out-of-range payload sizes are protocol errors the server answers with
// ERR 400 (or 413 for oversized payloads) and counts in
// gauge.serve.errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "device/backends.hpp"
#include "util/result.hpp"

namespace gauge::serve {

// Largest accepted length-framed request payload. Inference inputs for the
// zoo population are well under this; anything bigger is a hostile frame.
inline constexpr std::uint64_t kMaxPayloadBytes = 16u << 20;

struct Request {
  enum class Verb { Infer, Ping, Stats, Quit };
  Verb verb = Verb::Infer;
  std::string model;
  std::string id = "0";
  std::string backend;       // empty = server default (CPU reference)
  double deadline_ms = 0.0;  // 0 = no deadline
  std::uint64_t payload_bytes = 0;
};

// Parses one request line. Errors are protocol errors; the message is a
// snake_case reason token suitable for an ERR response ("empty_request",
// "unknown_verb", "missing_model", "bad_key", "bad_value",
// "payload_too_large").
util::Result<Request> parse_request(const std::string& line);

// Maps a wire backend token ("CPU", "SNPE-DSP", ... — the device layer's
// backend_name() strings, case-insensitive) to the enum.
std::optional<device::Backend> parse_backend(const std::string& token);

// One (model, backend) lane's health in a STATS response: the circuit
// breaker state plus in-flight batch count (DESIGN.md §16).
struct LaneHealth {
  std::string model;
  std::string backend;
  std::string state;  // closed | open | half_open
  std::uint64_t inflight = 0;
};

struct Response {
  enum class Kind { Ok, Shed, Err, Pong, Stats };
  Kind kind = Kind::Err;
  std::string id = "0";
  // Ok fields.
  std::string model;
  std::string backend;
  bool fallback = false;
  bool retried = false;  // redispatched after a mid-batch failure
  int batch = 0;
  std::uint64_t queue_us = 0;
  std::uint64_t infer_us = 0;
  std::uint64_t total_us = 0;
  // Shed / Err fields.
  int code = 0;  // 429 shed, 400/404/413/503 errors
  std::uint64_t est_wait_us = 0;
  std::uint64_t depth = 0;
  std::uint64_t retry_after_ms = 0;  // brownout hint on SHED
  std::string reason;
  // Stats fields.
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::vector<LaneHealth> lanes;  // per-lane health (may be empty)
};

std::string format_response(const Response& response);
// Client-side parse of a response line (load generator, tests).
util::Result<Response> parse_response(const std::string& line);

}  // namespace gauge::serve
